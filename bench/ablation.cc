// Ablation studies for the design choices DESIGN.md calls out:
//
//   1. City spelling correction on/off (paper §3.2: +1.5-2.0% detected
//      duplicates from correcting the city field).
//   2. Distance function inside the equational theory (paper §2.3: edit vs
//      Damerau vs keyboard; outcomes "did not vary much").
//   3. Nickname table on/off.
//   4. Phonetic gate on/off (tighter theory).
//   5. Window-vs-passes tradeoff at an equal comparison budget (1 key with
//      w=3k vs k keys with w=w0 — the paper's core argument).
//   6. Cluster-count sweep and fixed-key prefix length for the clustering
//      method.
//
//   ./build/bench/ablation [--scale=1.0] [--seed=42]
//   (scale multiplies the default 8,000-original database)

#include <cstdio>
#include <string>
#include <vector>

#include "core/merge_purge.h"
#include "core/multipass.h"
#include "core/sort_merge_detector.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

using namespace mergepurge;

namespace {

struct Workload {
  Dataset raw;        // Unconditioned (for the engine's conditioning path).
  Dataset dataset;    // Conditioned.
  GroundTruth truth;
};

Workload MakeWorkload(double scale, uint64_t seed) {
  GeneratorConfig config = PaperGeneratorConfig(8000, 0.5, 5, scale, seed);
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  Workload w;
  w.raw = db->dataset;
  w.dataset = std::move(db->dataset);
  w.truth = std::move(db->truth);
  ConditionEmployeeDataset(&w.dataset);
  return w;
}

AccuracyReport RunMultipass(const Workload& w, const EquationalTheory& theory,
                            size_t window) {
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, window);
  auto result = mp.Run(w.dataset, StandardThreeKeys(), theory);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return EvaluateComponents(result->component_of, w.truth);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  Workload w = MakeWorkload(args.GetDouble("scale", 1.0),
                            static_cast<uint64_t>(args.GetInt("seed", 42)));
  std::printf("ablations on %zu records, multi-pass 3 keys\n\n",
              w.dataset.size());
  EmployeeTheory default_theory;

  // --- 1. Spell correction of the city field (engine path). ---
  // At the default error severity the theory's similarity thresholds
  // already absorb single-typo city names, so the correction shows its
  // value on a harsher workload (more, heavier typos) where corrupted
  // cities fall below the similarity threshold — the regime the paper's
  // +1.5-2.0% was measured in.
  {
    TablePrinter table(
        {"error severity", "city spell correction", "recall", "false-pos"});
    for (double severity : {1.0, 2.5}) {
      GeneratorConfig config =
          PaperGeneratorConfig(8000, 0.5, 5, args.GetDouble("scale", 1.0),
                               static_cast<uint64_t>(args.GetInt("seed", 42)));
      config.error_severity = severity;
      config.field_corruption_prob = severity > 1.0 ? 0.5 : 0.35;
      auto harsh = DatabaseGenerator(config).Generate();
      if (!harsh.ok()) return 1;
      // Exact-city theory: the matching regime in which the paper's
      // spelling correction pays off (thresholded similarity, our
      // default, already absorbs most city typos on its own).
      EmployeeTheoryOptions strict;
      strict.strict_city = true;
      EmployeeTheory strict_theory(strict);
      for (bool on : {false, true}) {
        MergePurgeOptions options;
        options.keys = StandardThreeKeys();
        options.window = 10;
        options.spell_correct_city = on;
        auto result =
            MergePurgeEngine(options).Run(harsh->dataset, strict_theory);
        if (!result.ok()) return 1;
        AccuracyReport report =
            EvaluateComponents(result->component_of, harsh->truth);
        table.AddRow({FormatDouble(severity, 1), on ? "on" : "off",
                      FormatPercent(report.recall_percent),
                      FormatPercent(report.false_positive_percent)});
      }
    }
    std::printf(
        "1. spell-correcting the city field under exact city matching "
        "(paper: +1.5-2.0%%)\n");
    table.Print();
    std::printf("\n");
  }

  // --- 2. Distance function. ---
  {
    TablePrinter table({"distance", "recall", "false-pos"});
    const std::pair<const char*, EmployeeTheoryOptions::Distance> kinds[] = {
        {"edit (Levenshtein)", EmployeeTheoryOptions::Distance::kEdit},
        {"damerau", EmployeeTheoryOptions::Distance::kDamerau},
        {"keyboard (typewriter)", EmployeeTheoryOptions::Distance::kKeyboard},
    };
    for (const auto& [label, kind] : kinds) {
      EmployeeTheoryOptions options;
      options.distance = kind;
      EmployeeTheory theory(options);
      AccuracyReport report = RunMultipass(w, theory, 10);
      table.AddRow({label, FormatPercent(report.recall_percent),
                    FormatPercent(report.false_positive_percent)});
    }
    std::printf("2. distance function (paper: outcome varies little)\n");
    table.Print();
    std::printf("\n");
  }

  // --- 3 + 4. Nickname table and phonetic gate. ---
  {
    TablePrinter table({"variant", "recall", "false-pos"});
    struct Variant {
      const char* label;
      bool nicknames;
      bool gate;
    };
    for (const Variant& v :
         {Variant{"baseline", true, false},
          Variant{"no nickname table", false, false},
          Variant{"phonetic gate on", true, true}}) {
      EmployeeTheoryOptions options;
      options.use_nicknames = v.nicknames;
      options.phonetic_gate = v.gate;
      EmployeeTheory theory(options);
      AccuracyReport report = RunMultipass(w, theory, 10);
      table.AddRow({v.label, FormatPercent(report.recall_percent),
                    FormatPercent(report.false_positive_percent)});
    }
    std::printf("3/4. nickname table and phonetic gate\n");
    table.Print();
    std::printf("\n");
  }

  // --- 5. Window-vs-passes at equal comparison budget. ---
  {
    TablePrinter table({"strategy", "comparisons", "recall", "false-pos"});
    // 3 passes with w=10 cost ~3*9*N comparisons; one pass with w=28 costs
    // ~27*N: the same budget spent one way or the other.
    MultiPass mp(MultiPass::Method::kSortedNeighborhood, 10);
    auto multi = mp.Run(w.dataset, StandardThreeKeys(), default_theory);
    if (!multi.ok()) return 1;
    uint64_t multi_comparisons = 0;
    for (const PassResult& pass : multi->passes) {
      multi_comparisons += pass.comparisons;
    }
    AccuracyReport multi_report =
        EvaluateComponents(multi->component_of, w.truth);
    table.AddRow({"3 keys, w=10 (+closure)",
                  FormatCount(multi_comparisons),
                  FormatPercent(multi_report.recall_percent),
                  FormatPercent(multi_report.false_positive_percent)});

    auto single = SortedNeighborhood(28).Run(w.dataset, LastNameKey(),
                                             default_theory);
    if (!single.ok()) return 1;
    AccuracyReport single_report =
        EvaluatePairSet(single->pairs, w.dataset.size(), w.truth);
    table.AddRow({"1 key (last-name), w=28",
                  FormatCount(single->comparisons),
                  FormatPercent(single_report.recall_percent),
                  FormatPercent(single_report.false_positive_percent)});
    std::printf("5. equal comparison budget: several cheap passes vs one "
                "expensive pass\n");
    table.Print();
    std::printf("\n");
  }

  // --- 5b. Merge-phase detection (SortMergeDetector) vs classic SNM. ---
  {
    TablePrinter table({"algorithm", "window", "comparisons", "recall"});
    EmployeeTheory theory;
    for (size_t window : {5, 10}) {
      auto snm = SortedNeighborhood(window).Run(w.dataset, LastNameKey(),
                                                theory);
      auto detector = SortMergeDetector(window).Run(w.dataset,
                                                    LastNameKey(), theory);
      if (!snm.ok() || !detector.ok()) return 1;
      AccuracyReport snm_report =
          EvaluatePairSet(snm->pairs, w.dataset.size(), w.truth);
      AccuracyReport det_report =
          EvaluatePairSet(detector->pairs, w.dataset.size(), w.truth);
      table.AddRow({"classic SNM", std::to_string(window),
                    FormatCount(snm->comparisons),
                    FormatPercent(snm_report.recall_percent)});
      table.AddRow({"merge-phase detection", std::to_string(window),
                    FormatCount(detector->comparisons),
                    FormatPercent(det_report.recall_percent)});
    }
    std::printf("5b. detect during merge-sort phases ([9]/[3]) vs final "
                "window scan\n");
    table.Print();
    std::printf("\n");
  }

  // --- 6. Clustering method: cluster count and fixed-key prefix. ---
  {
    TablePrinter table({"clusters", "prefix", "recall", "avg pass time(s)"});
    EmployeeTheory theory;
    for (size_t clusters : {8, 32, 128}) {
      for (size_t prefix : {2, 3, 5}) {
        ClusteringOptions options;
        options.num_clusters = clusters;
        options.window = 10;
        options.fixed_key_prefix = prefix;
        MultiPass mp(MultiPass::Method::kClustering, 10, options);
        auto result = mp.Run(w.dataset, StandardThreeKeys(), theory);
        if (!result.ok()) return 1;
        double avg_time = 0;
        for (const PassResult& pass : result->passes) {
          avg_time += pass.total_seconds;
        }
        avg_time /= static_cast<double>(result->passes.size());
        AccuracyReport report =
            EvaluateComponents(result->component_of, w.truth);
        table.AddRow({std::to_string(clusters), std::to_string(prefix),
                      FormatPercent(report.recall_percent),
                      FormatDouble(avg_time, 3)});
      }
    }
    std::printf("6. clustering method: cluster count x fixed-key prefix\n");
    table.Print();
  }
  return 0;
}
