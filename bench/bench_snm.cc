// bench_snm — the tracked SNM throughput benchmark. Runs the full
// multi-pass sorted-neighborhood pipeline (three standard keys + closure)
// over a generated database and writes BENCH_snm.json through RunReport,
// so every PR leaves a comparable machine-readable perf point
// (records/s, comparisons/s, per-pass timings, full metrics snapshot).
//
//   bench_snm [--records=20000] [--window=10] [--repeat=3] [--seed=42]
//             [--out=BENCH_snm.json]
//
// The report's "bench" config block carries the best-of-repeat wall time
// and derived throughput; passes/closure/counters come from the best run.

#include <cstdio>
#include <string>
#include <vector>

#include "core/merge_purge.h"
#include "eval/experiment.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/timer.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "bench_snm: %s\n", args.status().message().c_str());
    return 2;
  }
  const size_t records = static_cast<size_t>(args.GetInt("records", 20000));
  const size_t window = static_cast<size_t>(args.GetInt("window", 10));
  const int repeat = static_cast<int>(args.GetInt("repeat", 3));
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const std::string out = args.GetString("out", "BENCH_snm.json");

  GeneratorConfig gen_config;
  gen_config.num_records = records;
  gen_config.seed = seed;
  Result<GeneratedDatabase> generated =
      DatabaseGenerator(gen_config).Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "bench_snm: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&generated->dataset);
  const Dataset& dataset = generated->dataset;

  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = window;
  options.condition_records = false;  // Conditioned once above.
  MergePurgeEngine engine(options);
  EmployeeTheory theory;

  // Best-of-repeat: the minimum is the least-noisy throughput estimate.
  double best_seconds = 0.0;
  Result<MergePurgeResult> best = Status::NotFound("no run");
  for (int r = 0; r < repeat; ++r) {
    Timer timer;
    Result<MergePurgeResult> result = engine.Run(dataset, theory);
    const double seconds = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "bench_snm: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "run %d/%d: %.3fs, %zu entities\n", r + 1, repeat,
                 seconds, result->num_entities);
    if (!best.ok() || seconds < best_seconds) {
      best_seconds = seconds;
      best = std::move(result);
    }
  }

  uint64_t comparisons = 0;
  for (const PassResult& pass : best->detail.passes) {
    comparisons += pass.comparisons;
  }
  const double records_per_s =
      best_seconds > 0 ? static_cast<double>(dataset.size()) / best_seconds
                       : 0.0;
  const double comparisons_per_s =
      best_seconds > 0 ? static_cast<double>(comparisons) / best_seconds
                       : 0.0;

  RunReport report("bench_snm");
  report.SetConfig("records", JsonValue(static_cast<uint64_t>(records)));
  report.SetConfig("window", JsonValue(static_cast<uint64_t>(window)));
  report.SetConfig("repeat", JsonValue(static_cast<uint64_t>(repeat)));
  report.SetConfig("seed", JsonValue(seed));
  report.SetConfig("best_seconds", JsonValue(best_seconds));
  report.SetConfig("records_per_second", JsonValue(records_per_s));
  report.SetConfig("comparisons_per_second", JsonValue(comparisons_per_s));
  report.SetDataset(dataset.size(), dataset.schema().num_fields());
  report.SetMultiPass(best->detail);
  report.SetOutcome(true);
  report.CaptureMetrics();
  Status write = report.WriteToFile(out);
  if (!write.ok()) {
    std::fprintf(stderr, "bench_snm: %s\n", write.ToString().c_str());
    return 1;
  }

  std::printf("snm multi-pass: %zu records, window %zu: best %.3fs "
              "(%.0f records/s, %.0f comparisons/s) -> %s\n",
              dataset.size(), window, best_seconds, records_per_s,
              comparisons_per_s, out.c_str());
  return 0;
}
