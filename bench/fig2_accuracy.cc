// Figure 2 reproduction: accuracy of the sorted-neighborhood method as a
// function of window size, for three single-pass keys and the multi-pass
// transitive closure over them.
//
// Paper workload: 1,000,000 original records + 1,423,644 duplicates with
// varying errors; window sizes 2..50.
//   (a) percent of correctly detected duplicated pairs
//   (b) percent of incorrectly detected duplicated pairs (false positives)
//
// Expected shape: each single pass finds 50-70% and flattens quickly with
// w; the multi-pass closure reaches ~90%; false positives are small, grow
// slowly with w, and grow faster for the closure than for single passes.
//
//   ./build/bench/fig2_accuracy [--scale=0.01] [--seed=42] [--windows=...]

#include <cstdio>
#include <string>
#include <vector>

#include "core/multipass.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/string_util.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const double scale = args.GetDouble("scale", 0.01);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  // Paper: 1M originals, ~1.42 duplicates per original on average
  // (50% selected, 1..5 duplicates each, as a record "may be duplicated
  // more than once").
  GeneratorConfig config =
      PaperGeneratorConfig(1000000, 0.5, 5, scale, seed);
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);
  std::printf(
      "fig2: accuracy vs window size\n"
      "database: %zu originals + %llu duplicates = %zu records "
      "(scale=%.4g of the paper's 1M)\n\n",
      config.num_records,
      static_cast<unsigned long long>(db->truth.NumDuplicateTuples()),
      db->dataset.size(), scale);

  std::vector<size_t> windows = {2, 5, 10, 20, 30, 40, 50};
  const std::string windows_flag = args.GetString("windows", "");
  if (args.Has("windows")) {
    windows.clear();
    for (auto part : SplitView(windows_flag, ',')) {
      windows.push_back(static_cast<size_t>(
          std::strtoull(std::string(part).c_str(), nullptr, 10)));
    }
  }

  const std::vector<KeySpec> keys = StandardThreeKeys();
  EmployeeTheory theory;

  TablePrinter recall_table({"window", "last-name", "first-name", "address",
                             "multipass-3-keys"});
  TablePrinter fp_table({"window", "last-name", "first-name", "address",
                         "multipass-3-keys"});
  TablePrinter time_table({"window", "last-name(s)", "first-name(s)",
                           "address(s)", "multipass(s)"});

  for (size_t w : windows) {
    MultiPass mp(MultiPass::Method::kSortedNeighborhood, w);
    auto result = mp.Run(db->dataset, keys, theory);
    if (!result.ok()) {
      std::fprintf(stderr, "w=%zu: %s\n", w,
                   result.status().ToString().c_str());
      return 1;
    }

    std::vector<std::string> recall_row = {std::to_string(w)};
    std::vector<std::string> fp_row = {std::to_string(w)};
    std::vector<std::string> time_row = {std::to_string(w)};
    for (const PassResult& pass : result->passes) {
      AccuracyReport report =
          EvaluatePairSet(pass.pairs, db->dataset.size(), db->truth);
      recall_row.push_back(FormatPercent(report.recall_percent));
      fp_row.push_back(FormatPercent(report.false_positive_percent));
      time_row.push_back(FormatDouble(pass.total_seconds));
    }
    AccuracyReport multi = EvaluateComponents(result->component_of,
                                              db->truth);
    recall_row.push_back(FormatPercent(multi.recall_percent));
    fp_row.push_back(FormatPercent(multi.false_positive_percent));
    time_row.push_back(FormatDouble(result->total_seconds));

    recall_table.AddRow(std::move(recall_row));
    fp_table.AddRow(std::move(fp_row));
    time_table.AddRow(std::move(time_row));
  }

  std::printf("(a) percent of correctly detected duplicated pairs\n");
  recall_table.Print();
  std::printf(
      "\n(b) percent of incorrectly detected duplicated pairs "
      "(false positives / true pairs)\n");
  fp_table.Print();
  std::printf("\nwall time per run\n");
  time_table.Print();
  return 0;
}
