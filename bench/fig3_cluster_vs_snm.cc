// Figure 3 reproduction: clustering method vs sorted-neighborhood method
// on one processor.
//
// Paper workload: 250,000 originals, 35% selected for duplication, at most
// 5 duplicates each (468,730 records total); 3 independent runs (one per
// standard key) + transitive closure; the clustering method initially
// divides the data into 32 clusters.
//   (a) average time of all single-pass runs, per method
//   (b) accuracy per window, per method, plus the multi-pass closure
//
// Expected shape: clustering is faster per pass (smaller sorts) but the
// time gap is modest because window scanning dominates; SNM's accuracy
// edges higher (variable-length vs fixed-size sort key); the multi-pass
// closure exceeds 90% for w > 4 under either method.
//
//   ./build/bench/fig3_cluster_vs_snm [--scale=0.04] [--seed=42]

#include <cstdio>
#include <string>
#include <vector>

#include "core/multipass.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const double scale = args.GetDouble("scale", 0.04);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  GeneratorConfig config = PaperGeneratorConfig(250000, 0.35, 5, scale, seed);
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);
  std::printf(
      "fig3: clustering method vs sorted-neighborhood method (1 processor)\n"
      "database: %zu records (scale=%.4g of the paper's 468,730)\n\n",
      db->dataset.size(), scale);

  const std::vector<KeySpec> keys = StandardThreeKeys();
  EmployeeTheory theory;
  ClusteringOptions cluster_options;
  cluster_options.num_clusters = 32;  // Paper: merge-sort fan-out.

  const std::vector<size_t> windows = {2, 4, 6, 8, 10, 15, 20};

  TablePrinter time_table(
      {"window", "snm avg pass(s)", "clustering avg pass(s)",
       "snm multipass(s)", "clustering multipass(s)"});
  TablePrinter accuracy_table(
      {"window", "snm single-pass", "clustering single-pass",
       "snm multipass", "clustering multipass"});

  for (size_t w : windows) {
    cluster_options.window = w;
    MultiPass snm_mp(MultiPass::Method::kSortedNeighborhood, w);
    MultiPass cluster_mp(MultiPass::Method::kClustering, w,
                         cluster_options);
    auto snm = snm_mp.Run(db->dataset, keys, theory);
    auto cluster = cluster_mp.Run(db->dataset, keys, theory);
    if (!snm.ok() || !cluster.ok()) {
      std::fprintf(stderr, "w=%zu failed\n", w);
      return 1;
    }

    auto avg_pass_time = [](const MultiPassResult& r) {
      double total = 0;
      for (const PassResult& pass : r.passes) total += pass.total_seconds;
      return total / static_cast<double>(r.passes.size());
    };
    auto avg_pass_recall = [&](const MultiPassResult& r) {
      double total = 0;
      for (const PassResult& pass : r.passes) {
        total += EvaluatePairSet(pass.pairs, db->dataset.size(), db->truth)
                     .recall_percent;
      }
      return total / static_cast<double>(r.passes.size());
    };

    time_table.AddRow(
        {std::to_string(w), FormatDouble(avg_pass_time(*snm)),
         FormatDouble(avg_pass_time(*cluster)),
         FormatDouble(snm->total_seconds),
         FormatDouble(cluster->total_seconds)});
    accuracy_table.AddRow(
        {std::to_string(w), FormatPercent(avg_pass_recall(*snm)),
         FormatPercent(avg_pass_recall(*cluster)),
         FormatPercent(
             EvaluateComponents(snm->component_of, db->truth)
                 .recall_percent),
         FormatPercent(
             EvaluateComponents(cluster->component_of, db->truth)
                 .recall_percent)});
  }

  std::printf("(a) time (average single pass and full multi-pass)\n");
  time_table.Print();
  std::printf("\n(b) accuracy (percent of true duplicate pairs found)\n");
  accuracy_table.Print();
  return 0;
}
