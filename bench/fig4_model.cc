// Figure 4 + §3.5 analytic-model reproduction: time and accuracy for a
// memory-resident database, and the single-pass window W above which the
// multi-pass approach dominates.
//
// Paper workload: 13,751 records (7,500 originals, 50% selected, at most
// 5 duplicates each), fully memory-resident. Three single-pass runs with
// different keys, and the multi-pass closure at w = 10.
//
// Paper numbers to compare against:
//   alpha ~ 6, c ~ 1.2e-5 (1995 hardware; ours differ in magnitude),
//   multi-pass at w=10: 56.5s and 93.4% accuracy,
//   model crossover W > 41; measured single-pass total time reaches the
//   multi-pass time near W ~ 52, with accuracy still 73-80%;
//   no single pass reaches 93% until W > 7000.
//
//   ./build/bench/fig4_model [--scale=1.0] [--seed=42]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/multipass.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "parallel/cost_model.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/timer.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const double scale = args.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  GeneratorConfig config = PaperGeneratorConfig(7500, 0.5, 5, scale, seed);
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);
  const size_t n = db->dataset.size();
  std::printf(
      "fig4 + sec3.5: memory-resident database, time/accuracy vs window\n"
      "database: %zu records (paper: 13,751)\n\n",
      n);

  const std::vector<KeySpec> keys = StandardThreeKeys();
  EmployeeTheory theory;
  const size_t kSmallWindow = 10;
  const size_t kPasses = keys.size();

  // --- Multi-pass reference point at w = 10. ---
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, kSmallWindow);
  auto multi = mp.Run(db->dataset, keys, theory);
  if (!multi.ok()) {
    std::fprintf(stderr, "%s\n", multi.status().ToString().c_str());
    return 1;
  }
  AccuracyReport multi_report =
      EvaluateComponents(multi->component_of, db->truth);
  std::printf(
      "multi-pass (3 keys, w=%zu): %.2fs total, accuracy %.1f%% "
      "(paper: 56.5s, 93.4%%)\n\n",
      kSmallWindow, multi->total_seconds, multi_report.recall_percent);

  // --- Window sweep for the single passes (figure 4a / 4b). ---
  TablePrinter sweep({"W", "last-name(s)", "first-name(s)", "address(s)",
                      "last-name acc", "first-name acc", "address acc"});
  const std::vector<size_t> sweep_windows = {2,   5,   10,  20,  52,
                                             100, 200, 500, 1000};
  double crossover_measured = -1.0;
  for (size_t w : sweep_windows) {
    std::vector<std::string> row = {std::to_string(w)};
    std::vector<std::string> acc_cells;
    double total_time = 0.0;
    for (const KeySpec& key : keys) {
      auto pass = SortedNeighborhood(w).Run(db->dataset, key, theory);
      if (!pass.ok()) {
        std::fprintf(stderr, "%s\n", pass.status().ToString().c_str());
        return 1;
      }
      AccuracyReport report =
          EvaluatePairSet(pass->pairs, n, db->truth);
      row.push_back(FormatDouble(pass->total_seconds));
      acc_cells.push_back(FormatPercent(report.recall_percent));
      total_time += pass->total_seconds;
    }
    for (std::string& cell : acc_cells) row.push_back(std::move(cell));
    sweep.AddRow(std::move(row));
    // First W where ONE single pass costs more than the whole multi-pass
    // run — the T_sp > T_mp comparison of §3.5.
    double avg_single = total_time / static_cast<double>(keys.size());
    if (crossover_measured < 0 && avg_single > multi->total_seconds) {
      crossover_measured = static_cast<double>(w);
    }
  }
  sweep.Print();

  // --- Fit the analytic model from the w=10 last-name pass. ---
  auto calibration_pass =
      SortedNeighborhood(kSmallWindow).Run(db->dataset, keys[0], theory);
  if (!calibration_pass.ok()) return 1;
  SerialCostModel model = SerialCostModel::Fit(*calibration_pass, n);

  // Closure timings: single-pass closure vs multi-pass closure.
  Timer closure_timer;
  TransitiveClosure(calibration_pass->pairs, n);
  model.closure_sp_seconds = closure_timer.ElapsedSeconds();
  model.closure_mp_seconds = multi->closure_seconds;

  double crossover_predicted =
      model.CrossoverWindow(n, kSmallWindow, kPasses);
  std::printf(
      "\nanalytic model (sec 3.5):\n"
      "  fitted c = %.3e s/comparison (paper: 1.2e-5 on a 1995 Sparc 5)\n"
      "  fitted alpha = %.2f (paper: ~6)\n"
      "  T_cl single-pass = %.4fs, T_cl multi-pass = %.4fs\n"
      "  predicted crossover W = %.1f (paper: 41)\n"
      "  measured crossover W ~ %.0f (first sweep point where one single "
      "pass costs more than the whole multi-pass run; paper: ~52)\n",
      model.c, model.alpha, model.closure_sp_seconds,
      model.closure_mp_seconds, crossover_predicted, crossover_measured);

  // --- How large must W grow before a single pass reaches multi-pass
  //     accuracy? (paper: "no single-pass run reaches an accuracy of more
  //     than 93% until W > 7000"). Probe exponentially. ---
  std::printf(
      "\nsingle-pass window needed to reach the multi-pass accuracy "
      "(%.1f%%):\n",
      multi_report.recall_percent);
  size_t w_needed = 0;
  double time_at_w = 0.0;
  for (size_t w = 64; w <= n; w *= 2) {
    auto pass = SortedNeighborhood(w).Run(db->dataset, keys[0], theory);
    if (!pass.ok()) return 1;
    AccuracyReport report = EvaluatePairSet(pass->pairs, n, db->truth);
    std::printf("  W=%-6zu accuracy %.1f%%  time %.2fs\n", w,
                report.recall_percent, pass->total_seconds);
    if (report.recall_percent >= multi_report.recall_percent) {
      w_needed = w;
      time_at_w = pass->total_seconds;
      break;
    }
  }
  if (w_needed > 0) {
    std::printf(
        "  -> reached at W=%zu costing %.2fs vs %.2fs for multi-pass "
        "(%.1fx slower)\n",
        w_needed, time_at_w, multi->total_seconds,
        time_at_w / multi->total_seconds);
  } else {
    std::printf("  -> never reached within W <= N (as in the paper)\n");
  }
  return 0;
}
