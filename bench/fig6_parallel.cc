// Figure 6 reproduction: parallel time vs number of processors for the
// sorted-neighborhood and clustering methods (1,000,000 records, w = 10 in
// the paper; 100 clusters per processor for the clustering method).
//
// Substitution (DESIGN.md §2): the paper measured an 8-node HP cluster;
// this host has one core, so wall-clock speedup is unmeasurable. The bench
//   1. runs the REAL thread-based parallel executors and verifies they
//      produce exactly the serial pair sets (functional correctness), and
//   2. calibrates the shared-nothing cost model from measured serial phase
//      costs and prints the modeled per-P times — reproducing figure 6's
//      sublinear-speedup shape and the clustering method's advantage.
//
//   ./build/bench/fig6_parallel [--scale=0.01] [--seed=42] [--max_procs=8]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/multipass.h"
#include "core/sorted_neighborhood.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "parallel/cost_model.h"
#include "parallel/parallel_clustering.h"
#include "parallel/parallel_snm.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/timer.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const double scale = args.GetDouble("scale", 0.01);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  const size_t max_procs =
      static_cast<size_t>(args.GetInt("max_procs", 8));
  const size_t kWindow = 10;

  GeneratorConfig config = PaperGeneratorConfig(1000000, 0.5, 5, scale, seed);
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);
  const size_t n = db->dataset.size();
  // The modeled cluster runs at the PAPER's database size so the series is
  // comparable to figure 6 directly.
  const size_t model_n = static_cast<size_t>(2423644);
  std::printf(
      "fig6: parallel time vs processors (w=10)\n"
      "measurement database: %zu records (scale=%.4g); model projected to "
      "the paper's %zu records\n\n",
      n, scale, model_n);

  const std::vector<KeySpec> keys = StandardThreeKeys();
  EmployeeTheory theory;
  TheoryFactory factory = [] { return std::make_unique<EmployeeTheory>(); };

  // --- Functional check: thread executors == serial. ---
  {
    auto serial = SortedNeighborhood(kWindow).Run(db->dataset, keys[0],
                                                  theory);
    if (!serial.ok()) return 1;
    ParallelSnm snm(4, kWindow);
    auto parallel = snm.Run(db->dataset, keys[0], factory);
    if (!parallel.ok()) return 1;
    std::printf("thread-executor check (P=4, key=%s): %zu pairs %s\n",
                keys[0].name.c_str(), parallel->pairs.size(),
                parallel->pairs.size() == serial->pairs.size()
                    ? "== serial (exact)"
                    : "!= serial (BUG)");
  }

  // --- Calibrate per-key serial cost models. ---
  std::vector<SerialCostModel> fitted;
  double closure_seconds = 0.0;
  {
    MultiPass mp(MultiPass::Method::kSortedNeighborhood, kWindow);
    auto multi = mp.Run(db->dataset, keys, theory);
    if (!multi.ok()) return 1;
    closure_seconds = multi->closure_seconds * (static_cast<double>(model_n) /
                                                static_cast<double>(n));
    for (const PassResult& pass : multi->passes) {
      fitted.push_back(SerialCostModel::Fit(pass, n));
    }
  }

  // LPT imbalance measured from a real parallel clustering run.
  ClusteringOptions cluster_options;
  cluster_options.num_clusters = 100;  // Paper: 100 clusters/processor.
  cluster_options.window = kWindow;
  ParallelClustering clustering(4, cluster_options);
  auto cluster_run = clustering.Run(db->dataset, keys[0], factory);
  if (!cluster_run.ok()) return 1;
  double imbalance = clustering.last_balance().imbalance;

  // --- Modeled figure 6 series (paper-ratio I/O calibration). ---
  auto make_cluster = [&](const SerialCostModel& m) {
    return SimulatedCluster(
        CalibrateLikePaper(m, model_n, kWindow, imbalance));
  };

  std::printf("\n(a) sorted-neighborhood method, modeled seconds\n");
  TablePrinter snm_table({"P", "last-name", "first-name", "address",
                          "multipass (3P procs + closure)"});
  for (size_t p = 1; p <= max_procs; ++p) {
    std::vector<std::string> row = {std::to_string(p)};
    double slowest = 0.0;
    for (size_t k = 0; k < keys.size(); ++k) {
      double t = make_cluster(fitted[k]).SnmPassSeconds(model_n, kWindow, p);
      slowest = std::max(slowest, t);
      row.push_back(FormatDouble(t, 1));
    }
    // "The total time, if we run all runs concurrently, is approximately
    // the maximum time taken by any independent run plus the time to
    // compute the closure."
    row.push_back(FormatDouble(slowest + closure_seconds, 1));
    snm_table.AddRow(std::move(row));
  }
  snm_table.Print();

  std::printf("\n(b) clustering method, modeled seconds (100 clusters/P)\n");
  TablePrinter cl_table({"P", "last-name", "first-name", "address",
                         "multipass (3P procs + closure)"});
  for (size_t p = 1; p <= max_procs; ++p) {
    std::vector<std::string> row = {std::to_string(p)};
    double slowest = 0.0;
    for (size_t k = 0; k < keys.size(); ++k) {
      double t = make_cluster(fitted[k])
                     .ClusteringPassSeconds(model_n, kWindow, p, 100);
      slowest = std::max(slowest, t);
      row.push_back(FormatDouble(t, 1));
    }
    row.push_back(FormatDouble(slowest + closure_seconds, 1));
    cl_table.AddRow(std::move(row));
  }
  cl_table.Print();

  std::printf(
      "\nLPT imbalance used: %.3f; expected shape: sublinear speedup "
      "(coordinator broadcast is serial), clustering faster than SNM.\n",
      imbalance);
  return 0;
}
