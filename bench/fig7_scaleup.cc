// Figure 7 reproduction: scale-up — processing time as the database grows,
// for three duplication rates, for both methods.
//
// Paper workload: 4 base sizes (0.5, 1.0, 1.5, 2.0 x 10^6 originals), each
// with 10%, 30% and 50% of tuples selected for duplication (12 databases);
// three concurrent independent runs (4 processors each) + closure.
// Expected shape: time grows LINEARLY with database size, independent of
// the duplication factor; the paper then extrapolates to 10^9 records
// (~10 days for SNM, ~7 days for clustering on 1995 hardware).
//
//   ./build/bench/fig7_scaleup [--scale=0.005] [--seed=42]

#include <cstdio>
#include <string>
#include <vector>

#include "core/multipass.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

using namespace mergepurge;

namespace {

// Least-squares linear fit y = a*x + b; returns R^2.
double LinearFitR2(const std::vector<double>& x,
                   const std::vector<double>& y, double* a, double* b) {
  const size_t n = x.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  *a = denom != 0 ? (n * sxy - sx * sy) / denom : 0.0;
  *b = (sy - *a * sx) / n;
  double ss_res = 0, mean = sy / n, ss_tot = 0;
  for (size_t i = 0; i < n; ++i) {
    double fit = *a * x[i] + *b;
    ss_res += (y[i] - fit) * (y[i] - fit);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  return ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const double scale = args.GetDouble("scale", 0.005);
  const uint64_t seed = static_cast<uint64_t>(args.GetInt("seed", 42));

  const std::vector<size_t> base_sizes = {500000, 1000000, 1500000, 2000000};
  const std::vector<double> dup_rates = {0.10, 0.30, 0.50};
  const std::vector<KeySpec> keys = StandardThreeKeys();
  EmployeeTheory theory;
  ClusteringOptions cluster_options;
  cluster_options.num_clusters = 32;
  cluster_options.window = 10;

  std::printf(
      "fig7: scale-up, multi-pass (3 keys, w=10), both methods "
      "(scale=%.4g of the paper's sizes)\n\n",
      scale);

  TablePrinter table({"base size", "dup rate", "records", "snm time(s)",
                      "clustering time(s)"});

  // Per-duplication-rate series for the linearity check.
  std::vector<std::vector<double>> xs(dup_rates.size());
  std::vector<std::vector<double>> ys_snm(dup_rates.size());
  std::vector<std::vector<double>> ys_cluster(dup_rates.size());
  double largest_records = 0, largest_snm = 0, largest_cluster = 0;

  for (size_t size_index = 0; size_index < base_sizes.size(); ++size_index) {
    for (size_t rate_index = 0; rate_index < dup_rates.size();
         ++rate_index) {
      GeneratorConfig config = PaperGeneratorConfig(
          base_sizes[size_index], dup_rates[rate_index], 5, scale,
          seed + size_index * 10 + rate_index);
      auto db = DatabaseGenerator(config).Generate();
      if (!db.ok()) {
        std::fprintf(stderr, "generate: %s\n",
                     db.status().ToString().c_str());
        return 1;
      }
      ConditionEmployeeDataset(&db->dataset);

      MultiPass snm_mp(MultiPass::Method::kSortedNeighborhood, 10);
      auto snm = snm_mp.Run(db->dataset, keys, theory);
      MultiPass cluster_mp(MultiPass::Method::kClustering, 10,
                           cluster_options);
      auto cluster = cluster_mp.Run(db->dataset, keys, theory);
      if (!snm.ok() || !cluster.ok()) return 1;

      double records = static_cast<double>(db->dataset.size());
      table.AddRow({std::to_string(base_sizes[size_index]),
                    FormatPercent(100.0 * dup_rates[rate_index]),
                    std::to_string(db->dataset.size()),
                    FormatDouble(snm->total_seconds),
                    FormatDouble(cluster->total_seconds)});
      xs[rate_index].push_back(records);
      ys_snm[rate_index].push_back(snm->total_seconds);
      ys_cluster[rate_index].push_back(cluster->total_seconds);
      if (records > largest_records) {
        largest_records = records;
        largest_snm = snm->total_seconds;
        largest_cluster = cluster->total_seconds;
      }
    }
  }
  table.Print();

  std::printf("\nlinearity of time vs records (R^2 per duplication rate):\n");
  for (size_t r = 0; r < dup_rates.size(); ++r) {
    double a, b;
    double r2_snm = LinearFitR2(xs[r], ys_snm[r], &a, &b);
    double r2_cluster = LinearFitR2(xs[r], ys_cluster[r], &a, &b);
    std::printf("  %2.0f%% duplication: snm R^2=%.4f, clustering R^2=%.4f\n",
                100.0 * dup_rates[r], r2_snm, r2_cluster);
  }

  // Paper's closing estimate: time for 10^9 records by linear scaling of
  // the largest measured point ("we assume the time will keep growing
  // linearly as the size of the database increases").
  const double billion = 1e9;
  double snm_days =
      billion * largest_snm / largest_records / 86400.0;
  double cluster_days =
      billion * largest_cluster / largest_records / 86400.0;
  std::printf(
      "\nextrapolation to 10^9 records (this hardware, serial):\n"
      "  sorted-neighborhood: %.2f days   (paper, 4-proc 1995 cluster: "
      "~10 days)\n"
      "  clustering method:   %.2f days   (paper: ~7 days)\n"
      "  clustering/snm ratio: %.2f       (paper: 1621/2172 = 0.75)\n",
      snm_days, cluster_days, largest_cluster / largest_snm);
  return 0;
}
