// Micro-benchmarks (google-benchmark) for the primitives whose constants
// drive the §3.5 cost model: distance functions, phonetic codes, key
// construction, the window-scan comparison, union-find closure, and the
// external sorter.

#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/multipass.h"
#include "core/sorted_neighborhood.h"
#include "core/union_find.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "sort/external_sort.h"
#include "text/edit_distance.h"
#include "text/keyboard_distance.h"
#include "text/phonetic.h"
#include "text/normalize.h"
#include "util/random.h"

namespace mergepurge {
namespace {

std::vector<std::string> RandomNames(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    size_t len = 5 + rng.NextBounded(10);
    std::string s;
    for (size_t j = 0; j < len; ++j) {
      s += static_cast<char>('A' + rng.NextBounded(26));
    }
    names.push_back(std::move(s));
  }
  return names;
}

const GeneratedDatabase& SharedDatabase() {
  static const GeneratedDatabase* db = [] {
    GeneratorConfig config;
    config.num_records = 20000;
    config.duplicate_selection_rate = 0.5;
    config.seed = 42;
    auto generated = DatabaseGenerator(config).Generate();
    auto* out = new GeneratedDatabase(std::move(*generated));
    ConditionEmployeeDataset(&out->dataset);
    return out;
  }();
  return *db;
}

void BM_EditDistance(benchmark::State& state) {
  auto names = RandomNames(1024, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EditDistance(names[i % 1024], names[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_EditDistance);

void BM_DamerauDistance(benchmark::State& state) {
  auto names = RandomNames(1024, 2);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DamerauDistance(names[i % 1024], names[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_DamerauDistance);

void BM_BoundedDamerau(benchmark::State& state) {
  auto names = RandomNames(1024, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BoundedDamerauDistance(
        names[i % 1024], names[(i + 1) % 1024], state.range(0)));
    ++i;
  }
}
BENCHMARK(BM_BoundedDamerau)->Arg(1)->Arg(3);

void BM_KeyboardDistance(benchmark::State& state) {
  auto names = RandomNames(1024, 4);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        KeyboardDistance(names[i % 1024], names[(i + 1) % 1024]));
    ++i;
  }
}
BENCHMARK(BM_KeyboardDistance);

void BM_Soundex(benchmark::State& state) {
  auto names = RandomNames(1024, 5);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Soundex(names[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_Soundex);

void BM_Nysiis(benchmark::State& state) {
  auto names = RandomNames(1024, 6);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Nysiis(names[i % 1024]));
    ++i;
  }
}
BENCHMARK(BM_Nysiis);

void BM_BuildKey(benchmark::State& state) {
  const auto& db = SharedDatabase();
  KeyBuilder builder(LastNameKey());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.BuildKey(
        db.dataset.record(static_cast<TupleId>(i % db.dataset.size()))));
    ++i;
  }
}
BENCHMARK(BM_BuildKey);

// The merge-phase comparison: dominant constant of the cost model (alpha).
void BM_TheoryComparison(benchmark::State& state) {
  const auto& db = SharedDatabase();
  EmployeeTheory theory;
  size_t i = 0;
  const size_t n = db.dataset.size();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        theory.Matches(db.dataset.record(static_cast<TupleId>(i % n)),
                       db.dataset.record(static_cast<TupleId>((i + 1) % n))));
    ++i;
  }
}
BENCHMARK(BM_TheoryComparison);

void BM_SortByKey(benchmark::State& state) {
  const auto& db = SharedDatabase();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SortedNeighborhood::SortByKey(db.dataset, LastNameKey()));
  }
}
BENCHMARK(BM_SortByKey)->Unit(benchmark::kMillisecond);

void BM_FullSnmPass(benchmark::State& state) {
  const auto& db = SharedDatabase();
  EmployeeTheory theory;
  SortedNeighborhood snm(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = snm.Run(db.dataset, LastNameKey(), theory);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FullSnmPass)->Arg(2)->Arg(10)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_TransitiveClosure(benchmark::State& state) {
  Rng rng(9);
  PairSet pairs;
  const size_t n = 100000;
  for (size_t i = 0; i < n; ++i) {
    pairs.Add(static_cast<TupleId>(rng.NextBounded(n)),
              static_cast<TupleId>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(TransitiveClosure(pairs, n));
  }
}
BENCHMARK(BM_TransitiveClosure)->Unit(benchmark::kMillisecond);

void BM_UnionFind(benchmark::State& state) {
  Rng rng(10);
  const size_t n = 1 << 16;
  std::vector<std::pair<uint32_t, uint32_t>> ops;
  for (size_t i = 0; i < n; ++i) {
    ops.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                     static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    UnionFind uf(n);
    for (const auto& [a, b] : ops) uf.Union(a, b);
    benchmark::DoNotOptimize(uf.NumSets());
  }
}
BENCHMARK(BM_UnionFind)->Unit(benchmark::kMillisecond);

void BM_ExternalSort(benchmark::State& state) {
  const auto& db = SharedDatabase();
  ExternalSortOptions options;
  options.memory_records = static_cast<size_t>(state.range(0));
  options.fan_in = 16;
  options.temp_dir = "/tmp";
  ExternalSorter sorter(options);
  for (auto _ : state) {
    auto order = sorter.Sort(db.dataset, LastNameKey(), nullptr);
    benchmark::DoNotOptimize(order);
  }
}
BENCHMARK(BM_ExternalSort)->Arg(2000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace mergepurge

BENCHMARK_MAIN();
