file(REMOVE_RECURSE
  "CMakeFiles/fig2_accuracy.dir/fig2_accuracy.cc.o"
  "CMakeFiles/fig2_accuracy.dir/fig2_accuracy.cc.o.d"
  "fig2_accuracy"
  "fig2_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
