file(REMOVE_RECURSE
  "CMakeFiles/fig3_cluster_vs_snm.dir/fig3_cluster_vs_snm.cc.o"
  "CMakeFiles/fig3_cluster_vs_snm.dir/fig3_cluster_vs_snm.cc.o.d"
  "fig3_cluster_vs_snm"
  "fig3_cluster_vs_snm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cluster_vs_snm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
