# Empty compiler generated dependencies file for fig3_cluster_vs_snm.
# This may be replaced when dependencies are built.
