file(REMOVE_RECURSE
  "CMakeFiles/fig4_model.dir/fig4_model.cc.o"
  "CMakeFiles/fig4_model.dir/fig4_model.cc.o.d"
  "fig4_model"
  "fig4_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
