file(REMOVE_RECURSE
  "CMakeFiles/fig6_parallel.dir/fig6_parallel.cc.o"
  "CMakeFiles/fig6_parallel.dir/fig6_parallel.cc.o.d"
  "fig6_parallel"
  "fig6_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
