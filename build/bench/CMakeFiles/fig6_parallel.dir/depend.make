# Empty dependencies file for fig6_parallel.
# This may be replaced when dependencies are built.
