file(REMOVE_RECURSE
  "CMakeFiles/fig7_scaleup.dir/fig7_scaleup.cc.o"
  "CMakeFiles/fig7_scaleup.dir/fig7_scaleup.cc.o.d"
  "fig7_scaleup"
  "fig7_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
