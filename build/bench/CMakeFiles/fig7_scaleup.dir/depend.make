# Empty dependencies file for fig7_scaleup.
# This may be replaced when dependencies are built.
