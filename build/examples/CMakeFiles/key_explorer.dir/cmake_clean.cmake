file(REMOVE_RECURSE
  "CMakeFiles/key_explorer.dir/key_explorer.cpp.o"
  "CMakeFiles/key_explorer.dir/key_explorer.cpp.o.d"
  "key_explorer"
  "key_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
