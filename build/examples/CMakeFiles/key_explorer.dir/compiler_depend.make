# Empty compiler generated dependencies file for key_explorer.
# This may be replaced when dependencies are built.
