file(REMOVE_RECURSE
  "CMakeFiles/mailing_list_dedup.dir/mailing_list_dedup.cpp.o"
  "CMakeFiles/mailing_list_dedup.dir/mailing_list_dedup.cpp.o.d"
  "mailing_list_dedup"
  "mailing_list_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailing_list_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
