# Empty dependencies file for mailing_list_dedup.
# This may be replaced when dependencies are built.
