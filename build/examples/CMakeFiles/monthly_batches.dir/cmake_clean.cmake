file(REMOVE_RECURSE
  "CMakeFiles/monthly_batches.dir/monthly_batches.cpp.o"
  "CMakeFiles/monthly_batches.dir/monthly_batches.cpp.o.d"
  "monthly_batches"
  "monthly_batches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monthly_batches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
