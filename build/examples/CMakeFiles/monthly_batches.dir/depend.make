# Empty dependencies file for monthly_batches.
# This may be replaced when dependencies are built.
