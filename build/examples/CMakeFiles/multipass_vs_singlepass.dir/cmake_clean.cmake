file(REMOVE_RECURSE
  "CMakeFiles/multipass_vs_singlepass.dir/multipass_vs_singlepass.cpp.o"
  "CMakeFiles/multipass_vs_singlepass.dir/multipass_vs_singlepass.cpp.o.d"
  "multipass_vs_singlepass"
  "multipass_vs_singlepass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipass_vs_singlepass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
