# Empty dependencies file for multipass_vs_singlepass.
# This may be replaced when dependencies are built.
