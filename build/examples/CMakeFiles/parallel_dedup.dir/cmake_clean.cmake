file(REMOVE_RECURSE
  "CMakeFiles/parallel_dedup.dir/parallel_dedup.cpp.o"
  "CMakeFiles/parallel_dedup.dir/parallel_dedup.cpp.o.d"
  "parallel_dedup"
  "parallel_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
