# Empty compiler generated dependencies file for parallel_dedup.
# This may be replaced when dependencies are built.
