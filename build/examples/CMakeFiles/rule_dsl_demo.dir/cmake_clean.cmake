file(REMOVE_RECURSE
  "CMakeFiles/rule_dsl_demo.dir/rule_dsl_demo.cpp.o"
  "CMakeFiles/rule_dsl_demo.dir/rule_dsl_demo.cpp.o.d"
  "rule_dsl_demo"
  "rule_dsl_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_dsl_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
