# Empty compiler generated dependencies file for rule_dsl_demo.
# This may be replaced when dependencies are built.
