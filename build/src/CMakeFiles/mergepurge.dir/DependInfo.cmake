
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/histogram.cc" "src/CMakeFiles/mergepurge.dir/cluster/histogram.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/cluster/histogram.cc.o.d"
  "/root/repo/src/cluster/partitioner.cc" "src/CMakeFiles/mergepurge.dir/cluster/partitioner.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/cluster/partitioner.cc.o.d"
  "/root/repo/src/core/blocking.cc" "src/CMakeFiles/mergepurge.dir/core/blocking.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/blocking.cc.o.d"
  "/root/repo/src/core/clustering_method.cc" "src/CMakeFiles/mergepurge.dir/core/clustering_method.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/clustering_method.cc.o.d"
  "/root/repo/src/core/duplicate_elimination.cc" "src/CMakeFiles/mergepurge.dir/core/duplicate_elimination.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/duplicate_elimination.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/mergepurge.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/linkage.cc" "src/CMakeFiles/mergepurge.dir/core/linkage.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/linkage.cc.o.d"
  "/root/repo/src/core/merge_purge.cc" "src/CMakeFiles/mergepurge.dir/core/merge_purge.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/merge_purge.cc.o.d"
  "/root/repo/src/core/multipass.cc" "src/CMakeFiles/mergepurge.dir/core/multipass.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/multipass.cc.o.d"
  "/root/repo/src/core/naive_all_pairs.cc" "src/CMakeFiles/mergepurge.dir/core/naive_all_pairs.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/naive_all_pairs.cc.o.d"
  "/root/repo/src/core/pair_set.cc" "src/CMakeFiles/mergepurge.dir/core/pair_set.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/pair_set.cc.o.d"
  "/root/repo/src/core/purge_policy.cc" "src/CMakeFiles/mergepurge.dir/core/purge_policy.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/purge_policy.cc.o.d"
  "/root/repo/src/core/sort_merge_detector.cc" "src/CMakeFiles/mergepurge.dir/core/sort_merge_detector.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/sort_merge_detector.cc.o.d"
  "/root/repo/src/core/sorted_neighborhood.cc" "src/CMakeFiles/mergepurge.dir/core/sorted_neighborhood.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/sorted_neighborhood.cc.o.d"
  "/root/repo/src/core/union_find.cc" "src/CMakeFiles/mergepurge.dir/core/union_find.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/union_find.cc.o.d"
  "/root/repo/src/core/window_scanner.cc" "src/CMakeFiles/mergepurge.dir/core/window_scanner.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/core/window_scanner.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/mergepurge.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/key_quality.cc" "src/CMakeFiles/mergepurge.dir/eval/key_quality.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/eval/key_quality.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/mergepurge.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/CMakeFiles/mergepurge.dir/eval/table_printer.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/eval/table_printer.cc.o.d"
  "/root/repo/src/gen/error_model.cc" "src/CMakeFiles/mergepurge.dir/gen/error_model.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/gen/error_model.cc.o.d"
  "/root/repo/src/gen/generator.cc" "src/CMakeFiles/mergepurge.dir/gen/generator.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/gen/generator.cc.o.d"
  "/root/repo/src/gen/names_data.cc" "src/CMakeFiles/mergepurge.dir/gen/names_data.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/gen/names_data.cc.o.d"
  "/root/repo/src/gen/places_data.cc" "src/CMakeFiles/mergepurge.dir/gen/places_data.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/gen/places_data.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/mergepurge.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/io/csv.cc.o.d"
  "/root/repo/src/io/pairs_io.cc" "src/CMakeFiles/mergepurge.dir/io/pairs_io.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/io/pairs_io.cc.o.d"
  "/root/repo/src/keys/key_builder.cc" "src/CMakeFiles/mergepurge.dir/keys/key_builder.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/keys/key_builder.cc.o.d"
  "/root/repo/src/keys/standard_keys.cc" "src/CMakeFiles/mergepurge.dir/keys/standard_keys.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/keys/standard_keys.cc.o.d"
  "/root/repo/src/parallel/coordinator.cc" "src/CMakeFiles/mergepurge.dir/parallel/coordinator.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/parallel/coordinator.cc.o.d"
  "/root/repo/src/parallel/cost_model.cc" "src/CMakeFiles/mergepurge.dir/parallel/cost_model.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/parallel/cost_model.cc.o.d"
  "/root/repo/src/parallel/load_balance.cc" "src/CMakeFiles/mergepurge.dir/parallel/load_balance.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/parallel/load_balance.cc.o.d"
  "/root/repo/src/parallel/parallel_clustering.cc" "src/CMakeFiles/mergepurge.dir/parallel/parallel_clustering.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/parallel/parallel_clustering.cc.o.d"
  "/root/repo/src/parallel/parallel_snm.cc" "src/CMakeFiles/mergepurge.dir/parallel/parallel_snm.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/parallel/parallel_snm.cc.o.d"
  "/root/repo/src/record/dataset.cc" "src/CMakeFiles/mergepurge.dir/record/dataset.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/record/dataset.cc.o.d"
  "/root/repo/src/record/record.cc" "src/CMakeFiles/mergepurge.dir/record/record.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/record/record.cc.o.d"
  "/root/repo/src/record/schema.cc" "src/CMakeFiles/mergepurge.dir/record/schema.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/record/schema.cc.o.d"
  "/root/repo/src/rules/employee_rules_text.cc" "src/CMakeFiles/mergepurge.dir/rules/employee_rules_text.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/rules/employee_rules_text.cc.o.d"
  "/root/repo/src/rules/employee_theory.cc" "src/CMakeFiles/mergepurge.dir/rules/employee_theory.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/rules/employee_theory.cc.o.d"
  "/root/repo/src/rules/lexer.cc" "src/CMakeFiles/mergepurge.dir/rules/lexer.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/rules/lexer.cc.o.d"
  "/root/repo/src/rules/parser.cc" "src/CMakeFiles/mergepurge.dir/rules/parser.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/rules/parser.cc.o.d"
  "/root/repo/src/rules/rule_program.cc" "src/CMakeFiles/mergepurge.dir/rules/rule_program.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/rules/rule_program.cc.o.d"
  "/root/repo/src/sort/external_sort.cc" "src/CMakeFiles/mergepurge.dir/sort/external_sort.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/sort/external_sort.cc.o.d"
  "/root/repo/src/text/edit_distance.cc" "src/CMakeFiles/mergepurge.dir/text/edit_distance.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/text/edit_distance.cc.o.d"
  "/root/repo/src/text/jaro_winkler.cc" "src/CMakeFiles/mergepurge.dir/text/jaro_winkler.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/text/jaro_winkler.cc.o.d"
  "/root/repo/src/text/keyboard_distance.cc" "src/CMakeFiles/mergepurge.dir/text/keyboard_distance.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/text/keyboard_distance.cc.o.d"
  "/root/repo/src/text/nicknames.cc" "src/CMakeFiles/mergepurge.dir/text/nicknames.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/text/nicknames.cc.o.d"
  "/root/repo/src/text/normalize.cc" "src/CMakeFiles/mergepurge.dir/text/normalize.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/text/normalize.cc.o.d"
  "/root/repo/src/text/phonetic.cc" "src/CMakeFiles/mergepurge.dir/text/phonetic.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/text/phonetic.cc.o.d"
  "/root/repo/src/text/spell.cc" "src/CMakeFiles/mergepurge.dir/text/spell.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/text/spell.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/mergepurge.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/mergepurge.dir/util/random.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/mergepurge.dir/util/status.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/mergepurge.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/mergepurge.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/mergepurge.dir/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
