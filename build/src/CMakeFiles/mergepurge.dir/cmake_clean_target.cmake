file(REMOVE_RECURSE
  "libmergepurge.a"
)
