# Empty compiler generated dependencies file for mergepurge.
# This may be replaced when dependencies are built.
