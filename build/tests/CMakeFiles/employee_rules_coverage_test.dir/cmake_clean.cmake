file(REMOVE_RECURSE
  "CMakeFiles/employee_rules_coverage_test.dir/employee_rules_coverage_test.cc.o"
  "CMakeFiles/employee_rules_coverage_test.dir/employee_rules_coverage_test.cc.o.d"
  "employee_rules_coverage_test"
  "employee_rules_coverage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/employee_rules_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
