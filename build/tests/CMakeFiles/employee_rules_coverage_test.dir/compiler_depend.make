# Empty compiler generated dependencies file for employee_rules_coverage_test.
# This may be replaced when dependencies are built.
