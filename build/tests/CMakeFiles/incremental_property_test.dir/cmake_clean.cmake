file(REMOVE_RECURSE
  "CMakeFiles/incremental_property_test.dir/incremental_property_test.cc.o"
  "CMakeFiles/incremental_property_test.dir/incremental_property_test.cc.o.d"
  "incremental_property_test"
  "incremental_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
