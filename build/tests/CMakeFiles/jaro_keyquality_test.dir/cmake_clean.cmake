file(REMOVE_RECURSE
  "CMakeFiles/jaro_keyquality_test.dir/jaro_keyquality_test.cc.o"
  "CMakeFiles/jaro_keyquality_test.dir/jaro_keyquality_test.cc.o.d"
  "jaro_keyquality_test"
  "jaro_keyquality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaro_keyquality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
