# Empty dependencies file for jaro_keyquality_test.
# This may be replaced when dependencies are built.
