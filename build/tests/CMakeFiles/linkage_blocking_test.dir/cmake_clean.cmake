file(REMOVE_RECURSE
  "CMakeFiles/linkage_blocking_test.dir/linkage_blocking_test.cc.o"
  "CMakeFiles/linkage_blocking_test.dir/linkage_blocking_test.cc.o.d"
  "linkage_blocking_test"
  "linkage_blocking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linkage_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
