file(REMOVE_RECURSE
  "CMakeFiles/multipass_test.dir/multipass_test.cc.o"
  "CMakeFiles/multipass_test.dir/multipass_test.cc.o.d"
  "multipass_test"
  "multipass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
