file(REMOVE_RECURSE
  "CMakeFiles/purge_policy_test.dir/purge_policy_test.cc.o"
  "CMakeFiles/purge_policy_test.dir/purge_policy_test.cc.o.d"
  "purge_policy_test"
  "purge_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purge_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
