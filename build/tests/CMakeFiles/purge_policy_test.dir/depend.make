# Empty dependencies file for purge_policy_test.
# This may be replaced when dependencies are built.
