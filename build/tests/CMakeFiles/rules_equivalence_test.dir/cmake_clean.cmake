file(REMOVE_RECURSE
  "CMakeFiles/rules_equivalence_test.dir/rules_equivalence_test.cc.o"
  "CMakeFiles/rules_equivalence_test.dir/rules_equivalence_test.cc.o.d"
  "rules_equivalence_test"
  "rules_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rules_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
