file(REMOVE_RECURSE
  "CMakeFiles/snm_test.dir/snm_test.cc.o"
  "CMakeFiles/snm_test.dir/snm_test.cc.o.d"
  "snm_test"
  "snm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
