# Empty compiler generated dependencies file for snm_test.
# This may be replaced when dependencies are built.
