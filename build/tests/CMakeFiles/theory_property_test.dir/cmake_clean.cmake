file(REMOVE_RECURSE
  "CMakeFiles/theory_property_test.dir/theory_property_test.cc.o"
  "CMakeFiles/theory_property_test.dir/theory_property_test.cc.o.d"
  "theory_property_test"
  "theory_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
