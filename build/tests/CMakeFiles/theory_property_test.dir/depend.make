# Empty dependencies file for theory_property_test.
# This may be replaced when dependencies are built.
