file(REMOVE_RECURSE
  "CMakeFiles/window_property_test.dir/window_property_test.cc.o"
  "CMakeFiles/window_property_test.dir/window_property_test.cc.o.d"
  "window_property_test"
  "window_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
