file(REMOVE_RECURSE
  "CMakeFiles/mergepurge_cli.dir/mergepurge_cli.cc.o"
  "CMakeFiles/mergepurge_cli.dir/mergepurge_cli.cc.o.d"
  "mergepurge"
  "mergepurge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mergepurge_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
