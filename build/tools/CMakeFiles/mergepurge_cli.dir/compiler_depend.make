# Empty compiler generated dependencies file for mergepurge_cli.
# This may be replaced when dependencies are built.
