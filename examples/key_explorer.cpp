// Key exploration tooling — the paper's §2.4: "the choice of keys for
// sorting ... is a knowledge intensive activity that must be explored
// prior to running a merge/purge process." The analyzer reports, per
// candidate key, how far apart true duplicate pairs land in that key's
// sorted order — i.e. the recall CEILING of any single pass — and why
// combining complementary keys via the closure is the winning move.
//
//   ./build/examples/key_explorer [--records=8000]

#include <cstdio>

#include "eval/experiment.h"
#include "eval/key_quality.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "text/normalize.h"
#include "util/string_util.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  GeneratorConfig config;
  config.num_records = static_cast<size_t>(args.GetInt("records", 8000));
  config.duplicate_selection_rate = 0.5;
  config.seed = 42;
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);
  std::printf("database: %zu records, %llu true duplicate pairs\n\n",
              db->dataset.size(),
              static_cast<unsigned long long>(db->truth.NumTruePairs()));

  std::vector<KeySpec> candidates = StandardThreeKeys();
  candidates.push_back(PhoneticLastNameKey());

  TablePrinter table({"key", "adjacent", "median gap", "p90 gap",
                      "ceiling w=10", "ceiling w=50", "unreachable(>50)"});
  for (const KeySpec& key : candidates) {
    auto report = AnalyzeKeyQuality(db->dataset, db->truth, key);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    table.AddRow(
        {report->key_name,
         StringPrintf("%.1f%%", 100.0 *
                                    static_cast<double>(
                                        report->adjacent_pairs) /
                                    static_cast<double>(report->true_pairs)),
         FormatCount(report->median_gap), FormatCount(report->p90_gap),
         FormatPercent(report->coverage_percent[2]),
         FormatPercent(report->coverage_percent[4]),
         FormatPercent(100.0 * report->far_fraction)});
  }
  table.Print();
  std::printf(
      "\nreading: 'ceiling w=10' is the best recall ANY theory could get\n"
      "from one pass with window 10 under that key; the pairs in\n"
      "'unreachable' are why the multi-pass closure over complementary\n"
      "keys wins (each key reaches a different subset).\n");
  return 0;
}
