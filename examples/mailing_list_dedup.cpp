// Mailing-list deduplication via CSV files — the paper's motivating
// scenario: several purchased subscription lists are concatenated,
// merged, and purged so a household receives one copy of a mailing.
//
// The example fabricates three "purchased lists" as CSV files (sharing
// many households, written with different conventions), then loads them,
// concatenates, deduplicates and writes the purged list.
//
//   ./build/examples/mailing_list_dedup [--dir=/tmp]

#include <cstdio>
#include <string>

#include "core/merge_purge.h"
#include "eval/experiment.h"
#include "gen/generator.h"
#include "io/csv.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"

using namespace mergepurge;

namespace {

// Splits a generated database into three overlapping "source lists".
void WriteSourceLists(const Dataset& all, const std::string& dir) {
  Schema schema = all.schema();
  Dataset lists[3] = {Dataset(schema), Dataset(schema), Dataset(schema)};
  for (size_t t = 0; t < all.size(); ++t) {
    lists[t % 3].Append(all.record(static_cast<TupleId>(t)));
    // Every 7th record also appears on a second list (cross-list overlap).
    if (t % 7 == 0) lists[(t + 1) % 3].Append(all.record(static_cast<TupleId>(t)));
  }
  for (int i = 0; i < 3; ++i) {
    std::string path = dir + "/list_" + std::to_string(i) + ".csv";
    Status s = WriteCsvFile(lists[i], path);
    if (!s.ok()) {
      std::fprintf(stderr, "write %s: %s\n", path.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote %-28s (%zu records)\n", path.c_str(), lists[i].size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const std::string dir = args.GetString("dir", "/tmp");

  // Fabricate the three purchased lists.
  GeneratorConfig gen_config;
  gen_config.num_records = 5000;
  gen_config.duplicate_selection_rate = 0.4;
  gen_config.seed = 7;
  auto db = DatabaseGenerator(gen_config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  WriteSourceLists(db->dataset, dir);

  // --- The actual merge/purge pipeline over CSV sources. ---
  Schema schema = employee::MakeSchema();
  Dataset combined(schema);
  for (int i = 0; i < 3; ++i) {
    std::string path = dir + "/list_" + std::to_string(i) + ".csv";
    Result<Dataset> list = ReadCsvFile(schema, path);
    if (!list.ok()) {
      std::fprintf(stderr, "read %s: %s\n", path.c_str(),
                   list.status().ToString().c_str());
      return 1;
    }
    Status s = combined.Concatenate(*list);
    if (!s.ok()) {
      std::fprintf(stderr, "concat: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("concatenated input: %zu records\n", combined.size());

  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 10;
  options.spell_correct_city = true;  // Condition city names (paper §3.2).
  MergePurgeEngine engine(options);
  EmployeeTheory theory;
  auto result = engine.Run(combined, theory);
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }

  Dataset purged = result->Purge(combined);
  std::string out_path = dir + "/mailing_list_deduped.csv";
  Status s = WriteCsvFile(purged, out_path);
  if (!s.ok()) {
    std::fprintf(stderr, "write: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("deduplicated: %zu -> %zu records (saved %.1f%% of mailings)\n",
              combined.size(), purged.size(),
              100.0 * (1.0 - static_cast<double>(purged.size()) /
                                 static_cast<double>(combined.size())));
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
