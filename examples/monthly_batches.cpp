// Incremental merge/purge over monthly batches — the paper's business
// cycle (§1): "one month is a typical business cycle in certain direct
// marketing operations ... sources of data need to be identified,
// acquired, conditioned, and then correlated or merged within a small
// portion of a month."
//
// Each "month" a new list arrives and is merged against everything seen so
// far without re-running the full multi-pass process from scratch.
//
//   ./build/examples/monthly_batches [--months=6] [--records=3000]

#include <cstdio>

#include "core/incremental.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "util/timer.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const int months = static_cast<int>(args.GetInt("months", 6));
  const size_t records_per_month =
      static_cast<size_t>(args.GetInt("records", 3000));

  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 10;
  IncrementalMergePurge engine(options);
  EmployeeTheory theory;

  TablePrinter table({"month", "batch", "total records", "entities",
                      "new pairs", "merge time(s)"});

  for (int month = 1; month <= months; ++month) {
    // Each month's list overlaps earlier months: the generator reuses the
    // same seed base so many "people" recur with fresh corruption.
    GeneratorConfig config;
    config.num_records = records_per_month;
    config.duplicate_selection_rate = 0.4;
    config.max_duplicates_per_record = 2;
    config.seed = 1000 + static_cast<uint64_t>(month % 3);  // Recurrence.
    auto batch = DatabaseGenerator(config).Generate();
    if (!batch.ok()) {
      std::fprintf(stderr, "generate: %s\n",
                   batch.status().ToString().c_str());
      return 1;
    }

    Timer timer;
    auto added = engine.AddBatch(batch->dataset, theory);
    if (!added.ok()) {
      std::fprintf(stderr, "month %d: %s\n", month,
                   added.status().ToString().c_str());
      return 1;
    }
    table.AddRow({std::to_string(month),
                  std::to_string(batch->dataset.size()),
                  std::to_string(engine.size()),
                  std::to_string(engine.NumEntities()),
                  FormatCount(*added), FormatDouble(timer.ElapsedSeconds())});
  }
  table.Print();

  Dataset purged = engine.Purge();
  std::printf(
      "\nafter %d months: %zu records ingested, %zu distinct entities "
      "(%.1f%% of mailings saved)\n",
      months, engine.size(), purged.size(),
      100.0 * (1.0 - static_cast<double>(purged.size()) /
                         static_cast<double>(engine.size())));
  return 0;
}
