// Demonstrates the paper's central claim (§2.4, §3.3): several cheap
// passes with different keys and a small window, combined by transitive
// closure, dominate one expensive pass with a large window.
//
//   ./build/examples/multipass_vs_singlepass [--records=15000]

#include <cstdio>

#include "core/multipass.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }

  GeneratorConfig config;
  config.num_records = static_cast<size_t>(args.GetInt("records", 15000));
  config.duplicate_selection_rate = 0.5;
  config.max_duplicates_per_record = 5;
  config.seed = 11;
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);
  std::printf("database: %zu records, %llu true duplicate pairs\n\n",
              db->dataset.size(),
              static_cast<unsigned long long>(db->truth.NumTruePairs()));

  EmployeeTheory theory;
  TablePrinter table({"strategy", "window", "recall", "false-pos", "time(s)"});

  // Single passes with increasingly large windows (the expensive route).
  for (size_t window : {10, 20, 40, 80}) {
    auto pass = SortedNeighborhood(window).Run(db->dataset, LastNameKey(),
                                               theory);
    if (!pass.ok()) {
      std::fprintf(stderr, "%s\n", pass.status().ToString().c_str());
      return 1;
    }
    AccuracyReport report =
        EvaluatePairSet(pass->pairs, db->dataset.size(), db->truth);
    table.AddRow({"single-pass (last-name)", std::to_string(window),
                  FormatPercent(report.recall_percent),
                  FormatPercent(report.false_positive_percent),
                  FormatDouble(pass->total_seconds)});
  }

  // Multi-pass with a small window (the cheap route).
  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 10);
  auto result = mp.Run(db->dataset, StandardThreeKeys(), theory);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  AccuracyReport report = EvaluateComponents(result->component_of,
                                             db->truth);
  table.AddRow({"multi-pass (3 keys + closure)", "10",
                FormatPercent(report.recall_percent),
                FormatPercent(report.false_positive_percent),
                FormatDouble(result->total_seconds)});

  table.Print();
  std::printf(
      "\nThe moral (paper §1): \"several distinct 'cheap' passes over the "
      "data\nproduces more accurate results than one 'expensive' pass over "
      "the data.\"\n");
  return 0;
}
