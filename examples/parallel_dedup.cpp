// Parallel merge/purge (paper §4): runs the thread-based shared-nothing
// executors (banded fragments for SNM; LPT-balanced clusters for the
// clustering method), verifies they reproduce the serial pair sets, and
// prints the calibrated cluster model's projected times for P = 1..8.
//
//   ./build/examples/parallel_dedup [--records=10000] [--procs=4]

#include <cstdio>
#include <memory>

#include "core/clustering_method.h"
#include "core/sorted_neighborhood.h"
#include "eval/experiment.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "parallel/cost_model.h"
#include "parallel/parallel_clustering.h"
#include "parallel/parallel_snm.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  const size_t procs = static_cast<size_t>(args.GetInt("procs", 4));

  GeneratorConfig config;
  config.num_records = static_cast<size_t>(args.GetInt("records", 10000));
  config.duplicate_selection_rate = 0.5;
  config.seed = 3;
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);

  TheoryFactory factory = [] { return std::make_unique<EmployeeTheory>(); };

  // Serial reference pass.
  EmployeeTheory serial_theory;
  auto serial = SortedNeighborhood(10).Run(db->dataset, LastNameKey(),
                                           serial_theory);
  if (!serial.ok()) {
    std::fprintf(stderr, "%s\n", serial.status().ToString().c_str());
    return 1;
  }

  // Parallel SNM on worker threads.
  ParallelSnm snm(procs, 10);
  auto snm_result = snm.Run(db->dataset, LastNameKey(), factory);
  if (!snm_result.ok()) {
    std::fprintf(stderr, "%s\n", snm_result.status().ToString().c_str());
    return 1;
  }
  std::printf("parallel SNM (%zu workers): %zu pairs (serial: %zu) -> %s\n",
              procs, snm_result->pairs.size(), serial->pairs.size(),
              snm_result->pairs.size() == serial->pairs.size()
                  ? "identical"
                  : "MISMATCH");

  // Parallel clustering method.
  ClusteringOptions cluster_options;
  cluster_options.num_clusters = 25;  // Per processor.
  ParallelClustering clustering(procs, cluster_options);
  auto cluster_result = clustering.Run(db->dataset, LastNameKey(), factory);
  if (!cluster_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 cluster_result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "parallel clustering (%zu workers): %zu pairs, LPT imbalance %.3f\n\n",
      procs, cluster_result->pairs.size(),
      clustering.last_balance().imbalance);

  // Project cluster times from the calibrated model (the paper's HP
  // cluster had real parallel hardware; on one core we model, §4).
  SerialCostModel fitted = SerialCostModel::Fit(*serial,
                                                db->dataset.size());
  ClusterModelParams params = CalibrateLikePaper(
      fitted, db->dataset.size(), 10, clustering.last_balance().imbalance);
  SimulatedCluster cluster_model(params);

  TablePrinter table({"P", "snm time(s)", "clustering time(s)", "speedup"});
  double base = cluster_model.SnmPassSeconds(db->dataset.size(), 10, 1);
  for (size_t p = 1; p <= 8; ++p) {
    double snm_time = cluster_model.SnmPassSeconds(db->dataset.size(), 10, p);
    double cl_time = cluster_model.ClusteringPassSeconds(
        db->dataset.size(), 10, p, 100);
    table.AddRow({std::to_string(p), FormatDouble(snm_time, 3),
                  FormatDouble(cl_time, 3),
                  FormatDouble(base / snm_time, 2)});
  }
  std::printf("modeled cluster times (c=%.2e, alpha=%.1f):\n", params.c,
              params.alpha);
  table.Print();
  return 0;
}
