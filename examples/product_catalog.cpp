// A second domain (paper §2.3: "We could equally as well demonstrate the
// concepts using alternative databases of different typed objects and
// correspondingly different rule sets."): deduplicating a PRODUCT CATALOG
// merged from several supplier feeds.
//
// Schema: sku, brand, model, description, price_cents. The equational
// theory is written entirely in the rule language; keys, conditioning and
// the merge policy are domain-specific. Nothing in the engine knows about
// employees.
//
//   ./build/examples/product_catalog [--products=4000]

#include <cstdio>
#include <string>
#include <vector>

#include "core/merge_purge.h"
#include "core/multipass.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/error_model.h"
#include "rules/analysis/analyzer.h"
#include "rules/rule_program.h"
#include "text/normalize.h"
#include "util/random.h"
#include "util/string_util.h"

using namespace mergepurge;

namespace {

constexpr FieldId kSku = 0;
constexpr FieldId kBrand = 1;
constexpr FieldId kModel = 2;
constexpr FieldId kDescription = 3;
constexpr FieldId kPriceCents = 4;

Schema ProductSchema() {
  return Schema({"sku", "brand", "model", "description", "price_cents"});
}

// Product equational theory: SKUs are strong identifiers when present;
// otherwise brand+model must agree closely with a corroborating
// description or price.
constexpr char kProductRules[] = R"(
merge description: prefer longest
merge sku: prefer non_empty_first

# Join only on PLAUSIBLE skus: degenerate identifiers (truncated feed
# values) would transitively merge unrelated products.
rule same-sku:
  if r1.sku == r2.sku and length(r1.sku) >= 6
  then match

rule sku-typo-brand:
  if not empty(r1.sku) and not empty(r2.sku)
  and damerau(r1.sku, r2.sku) <= 1
  and r1.brand == r2.brand and not empty(r1.brand)
  and similarity(r1.model, r2.model) >= 0.7
  then match

rule brand-model-exact:
  if r1.brand == r2.brand and not empty(r1.brand)
  and r1.model == r2.model and not empty(r1.model)
  then match

# Model NUMBERS are identifiers: a one-character model-number difference
# is a different product, so the digits must agree exactly and only the
# letter part may differ slightly (feed typos).
rule brand-model-close-description:
  if r1.brand == r2.brand and not empty(r1.brand)
  and digits(r1.model) == digits(r2.model) and not empty(digits(r1.model))
  and similarity(r1.model, r2.model) >= 0.8
  and not empty(r1.model) and not empty(r2.model)
  and similarity(r1.description, r2.description) >= 0.7
  then match

rule model-price:
  if digits(r1.model) == digits(r2.model) and not empty(digits(r1.model))
  and similarity(r1.model, r2.model) >= 0.85
  and not empty(r1.model) and not empty(r2.model)
  and r1.price_cents == r2.price_cents and not empty(r1.price_cents)
  and sounds_like(r1.brand, r2.brand)
  then match
)";

struct Catalog {
  Dataset dataset;
  GroundTruth truth;
};

// Synthesizes a catalog with duplicated, corrupted listings (different
// suppliers list the same product with typos and reformatted models).
Catalog MakeCatalog(size_t products, uint64_t seed) {
  static constexpr const char* kBrands[] = {
      "ACME",  "GLOBEX",   "INITECH", "UMBRA",   "VANDELAY",
      "HOOLI", "WAYSTAR",  "STARK",   "WONKA",   "TYRELL",
      "CYBER", "APERTURE", "MONARCH", "SIRIUS",  "OSCORP",
  };
  static constexpr const char* kLines[] = {
      "DRILL", "ROUTER", "SANDER", "SAW",    "LATHE",  "PRESS",
      "PUMP",  "VALVE",  "MOTOR",  "SENSOR", "CAMERA", "MONITOR",
  };
  Rng rng(seed);
  ErrorModel errors;
  std::vector<Record> records;
  std::vector<uint32_t> origin;

  for (size_t i = 0; i < products; ++i) {
    Record product;
    std::string brand = kBrands[rng.NextBounded(15)];
    std::string line = kLines[rng.NextBounded(12)];
    std::string model =
        line + " " + std::to_string(100 + rng.NextBounded(900)) +
        std::string(1, static_cast<char>('A' + rng.NextBounded(26)));
    product.set_field(kSku, StringPrintf("%c%c-%06llu", brand[0], line[0],
                                         static_cast<unsigned long long>(
                                             rng.NextBounded(1000000))));
    product.set_field(kBrand, brand);
    product.set_field(kModel, model);
    product.set_field(kDescription,
                      brand + " " + model + " PROFESSIONAL SERIES");
    product.set_field(kPriceCents,
                      std::to_string(999 + rng.NextBounded(200000)));

    // 0-3 extra supplier listings with feed-specific corruption.
    size_t listings = rng.NextBounded(4);
    for (size_t l = 0; l < listings; ++l) {
      Record listing = product;
      if (rng.NextBernoulli(0.3)) listing.set_field(kSku, "");
      if (!listing.field(kSku).empty() && rng.NextBernoulli(0.2)) {
        listing.set_field(kSku,
                          errors.InjectOneTypo(listing.field(kSku), &rng));
      }
      if (rng.NextBernoulli(0.4)) {
        listing.set_field(kModel,
                          errors.InjectOneTypo(listing.field(kModel), &rng));
      }
      if (rng.NextBernoulli(0.5)) {
        listing.set_field(kDescription,
                          std::string(listing.field(kBrand)) + " " +
                              std::string(listing.field(kModel)));
      }
      records.push_back(std::move(listing));
      origin.push_back(static_cast<uint32_t>(i));
    }
    records.push_back(std::move(product));
    origin.push_back(static_cast<uint32_t>(i));
  }

  // Shuffle in lockstep.
  for (size_t i = records.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(records[i - 1], records[j]);
    std::swap(origin[i - 1], origin[j]);
  }

  Catalog catalog;
  catalog.dataset = Dataset(ProductSchema());
  for (Record& r : records) catalog.dataset.Append(std::move(r));
  catalog.truth = GroundTruth(std::move(origin));
  return catalog;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }
  Catalog catalog = MakeCatalog(
      static_cast<size_t>(args.GetInt("products", 4000)), 77);
  std::printf("catalog: %zu listings, %llu true duplicate pairs\n",
              catalog.dataset.size(),
              static_cast<unsigned long long>(
                  catalog.truth.NumTruePairs()));

  // Domain conditioning: normalize the text fields.
  for (size_t t = 0; t < catalog.dataset.size(); ++t) {
    Record& r = catalog.dataset.mutable_record(static_cast<TupleId>(t));
    for (FieldId f : {kSku, kBrand, kModel, kDescription}) {
      r.set_field(f, NormalizeBasic(r.field(f)));
    }
  }

  // Domain keys: sku; brand+model; model alone.
  KeySpec sku_key{"sku", {KeyComponent::Full(kSku),
                          KeyComponent::Prefix(kBrand, 4)}};
  KeySpec brand_model_key{"brand-model",
                          {KeyComponent::Full(kBrand),
                           KeyComponent::Full(kModel)}};
  KeySpec model_key{"model", {KeyComponent::Full(kModel),
                              KeyComponent::Prefix(kBrand, 3)}};

  // Static preflight of the domain theory against the domain keys: any
  // rulecheck finding — including a rule no pass can window
  // (window-coverage) — aborts before data is touched.
  AnalyzerOptions lint_options;
  lint_options.passes = {
      {"sku", {"sku", "brand"}},
      {"brand-model", {"brand", "model"}},
      {"model", {"model", "brand"}},
  };
  AnalysisReport lint = AnalyzeRuleSource(kProductRules, lint_options);
  if (!lint.empty()) {
    std::fputs(lint.ToText("<product-rules>").c_str(), stderr);
    return 1;
  }

  Result<RuleProgram> theory =
      RuleProgram::Compile(kProductRules, catalog.dataset.schema());
  if (!theory.ok()) {
    std::fprintf(stderr, "rules: %s\n", theory.status().ToString().c_str());
    return 1;
  }

  MultiPass mp(MultiPass::Method::kSortedNeighborhood, 10);
  auto result = mp.Run(catalog.dataset,
                       {sku_key, brand_model_key, model_key}, *theory);
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"pass", "pairs", "recall"});
  for (const PassResult& pass : result->passes) {
    AccuracyReport report = EvaluatePairSet(
        pass.pairs, catalog.dataset.size(), catalog.truth);
    table.AddRow({pass.key_name, FormatCount(pass.pairs.size()),
                  FormatPercent(report.recall_percent)});
  }
  AccuracyReport multi =
      EvaluateComponents(result->component_of, catalog.truth);
  table.AddRow({"multipass+closure",
                FormatCount(result->union_pair_count),
                FormatPercent(multi.recall_percent)});
  table.Print();
  std::printf("false positives: %.2f%% of true pairs\n",
              multi.false_positive_percent);

  // Purge with the rule program's merge directives.
  Dataset purged = theory->purge_policy().Purge(catalog.dataset,
                                                result->component_of);
  std::printf("catalog: %zu listings -> %zu distinct products\n",
              catalog.dataset.size(), purged.size());
  return 0;
}
