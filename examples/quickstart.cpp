// Quickstart: generate a noisy mailing-list database, run the multi-pass
// merge/purge engine over it, and report accuracy against ground truth.
//
//   ./build/examples/quickstart [--records=20000] [--window=10]

#include <cstdio>

#include "core/merge_purge.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"

using namespace mergepurge;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.status().ok()) {
    std::fprintf(stderr, "%s\n", args.status().ToString().c_str());
    return 1;
  }

  // 1. Generate a database with known duplicates (stand-in for your own
  //    concatenated record sources).
  GeneratorConfig gen_config;
  gen_config.num_records = static_cast<size_t>(args.GetInt("records", 20000));
  gen_config.duplicate_selection_rate = 0.5;
  gen_config.max_duplicates_per_record = 5;
  gen_config.seed = 42;
  auto db = DatabaseGenerator(gen_config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("input: %zu records (%llu are duplicates of another)\n",
              db->dataset.size(),
              static_cast<unsigned long long>(
                  db->truth.NumDuplicateTuples()));

  // 2. Configure the engine: multi-pass sorted-neighborhood over the three
  //    standard keys, small window, conditioning on.
  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = static_cast<size_t>(args.GetInt("window", 10));
  MergePurgeEngine engine(options);

  // 3. Run with the 26-rule employee equational theory.
  EmployeeTheory theory;
  auto result = engine.Run(db->dataset, theory);
  if (!result.ok()) {
    std::fprintf(stderr, "run: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the outcome.
  std::printf("found %zu distinct entities (%.1f%% shrink)\n",
              result->num_entities,
              100.0 * (1.0 - static_cast<double>(result->num_entities) /
                                 static_cast<double>(db->dataset.size())));
  for (const PassResult& pass : result->detail.passes) {
    std::printf("  pass '%s': %zu pairs, %.2fs (%.2fs scanning)\n",
                pass.key_name.c_str(), pass.pairs.size(),
                pass.total_seconds, pass.scan_seconds);
  }
  std::printf("  closure: %.3fs over %llu distinct pairs\n",
              result->detail.closure_seconds,
              static_cast<unsigned long long>(
                  result->detail.union_pair_count));

  AccuracyReport report =
      EvaluateComponents(result->component_of, db->truth);
  std::printf(
      "accuracy: %.1f%% of true duplicate pairs found, %.2f%% false "
      "positives, precision %.1f%%\n",
      report.recall_percent, report.false_positive_percent,
      report.precision_percent);

  // 5. Purge: one merged record per entity.
  Dataset purged = result->Purge(db->dataset);
  std::printf("purged dataset: %zu records\n", purged.size());
  return 0;
}
