// The declarative rule language (paper §2.3): "Users of a general purpose
// merge/purge facility benefit from higher level formalisms and languages
// permitting ease of experimentation and modification."
//
// This example compiles a small custom equational theory from rule-language
// source, runs it inside the sorted-neighborhood method, and prints which
// rules fired how often. It also shows the full built-in 26-rule program.
//
//   ./build/examples/rule_dsl_demo

#include <cstdio>

#include "core/sorted_neighborhood.h"
#include "eval/metrics.h"
#include "eval/table_printer.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_rules_text.h"
#include "rules/rule_program.h"
#include "text/normalize.h"

using namespace mergepurge;

// A deliberately small custom theory: three rules a user might start with
// before growing a full rule base.
constexpr char kCustomRules[] = R"(
# Same SSN and similar last name.
rule ssn-and-surname:
  if r1.ssn == r2.ssn and not empty(r1.ssn)
  and similarity(r1.last_name, r2.last_name) >= 0.75
  then match

# The paper's example rule.
rule surname-address:
  if r1.last_name == r2.last_name and not empty(r1.last_name)
  and similarity(r1.first_name, r2.first_name) >= 0.8
  and r1.address == r2.address and not empty(r1.address)
  then match

# Nickname-aware: Joseph and Giuseppe at the same address.
rule nickname-address:
  if same_name(r1.first_name, r2.first_name)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and similarity(r1.address, r2.address) >= 0.8
  and r1.zip == r2.zip and not empty(r1.zip)
  then match
)";

int main() {
  GeneratorConfig config;
  config.num_records = 8000;
  config.duplicate_selection_rate = 0.5;
  config.seed = 13;
  auto db = DatabaseGenerator(config).Generate();
  if (!db.ok()) {
    std::fprintf(stderr, "generate: %s\n", db.status().ToString().c_str());
    return 1;
  }
  ConditionEmployeeDataset(&db->dataset);

  auto run_program = [&](const char* label, std::string_view source) {
    Result<RuleProgram> program =
        RuleProgram::Compile(source, db->dataset.schema());
    if (!program.ok()) {
      std::fprintf(stderr, "compile: %s\n",
                   program.status().ToString().c_str());
      std::exit(1);
    }
    auto pass = SortedNeighborhood(10).Run(db->dataset, LastNameKey(),
                                           *program);
    if (!pass.ok()) {
      std::fprintf(stderr, "run: %s\n", pass.status().ToString().c_str());
      std::exit(1);
    }
    AccuracyReport report =
        EvaluatePairSet(pass->pairs, db->dataset.size(), db->truth);
    std::printf("%s: %zu rules, recall %.1f%%, false positives %.2f%%\n",
                label, program->num_rules(), report.recall_percent,
                report.false_positive_percent);

    TablePrinter table({"rule", "fired"});
    const auto& counts = program->rule_fire_counts();
    for (size_t i = 0; i < program->num_rules(); ++i) {
      if (counts[i] == 0) continue;
      table.AddRow({program->rule_name(i), FormatCount(counts[i])});
    }
    table.Print();
    std::printf("\n");
  };

  run_program("custom 3-rule theory", kCustomRules);
  run_program("built-in 26-rule employee theory", EmployeeRulesText());
  return 0;
}
