#include "cluster/histogram.h"

#include <cctype>

namespace mergepurge {

namespace {

size_t CharIndex(char c) {
  unsigned char uc = static_cast<unsigned char>(c);
  if (std::isdigit(uc)) {
    return 1 + static_cast<size_t>(uc - '0');
  }
  if (std::isalpha(uc)) {
    return 11 + static_cast<size_t>(std::toupper(uc) - 'A');
  }
  return 0;
}

size_t PowAlphabet(size_t depth) {
  size_t out = 1;
  for (size_t i = 0; i < depth; ++i) out *= Histogram::kAlphabet;
  return out;
}

}  // namespace

Histogram::Histogram(size_t depth)
    : depth_(depth < 1 ? 1 : (depth > 4 ? 4 : depth)),
      counts_(PowAlphabet(depth_), 0) {}

size_t Histogram::BinOf(std::string_view key) const {
  size_t bin = 0;
  for (size_t i = 0; i < depth_; ++i) {
    size_t digit = i < key.size() ? CharIndex(key[i]) : 0;
    bin = bin * kAlphabet + digit;
  }
  return bin;
}

void Histogram::Add(std::string_view key) {
  ++counts_[BinOf(key)];
  ++total_count_;
}

}  // namespace mergepurge
