// Frequency histogram over key prefixes (paper §2.2.1).
//
// "For instance, from a directory database we may compute the distribution
// of the first three letters of every name. ... That is, we have a cluster
// space of 27x27x27 bins (26 letters plus the space)."
//
// The histogram maps a key's first `depth` characters into bins and the
// bin counts drive the equi-depth partitioner. We extend the paper's
// 27-symbol alphabet (letters + other) with the ten digits — keys whose
// principal field is an address start with a street NUMBER, and folding
// all digits into one symbol would funnel the entire database into a
// single hot bin (exactly the skew §2.2.1 warns about).

#ifndef MERGEPURGE_CLUSTER_HISTOGRAM_H_
#define MERGEPURGE_CLUSTER_HISTOGRAM_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace mergepurge {

class Histogram {
 public:
  // 26 letters + 10 digits + everything else.
  static constexpr size_t kAlphabet = 37;

  // depth in [1, 4]: number of leading key characters considered. The
  // paper's example is depth 3 (27^3 = 19683 bins). Out-of-range depths
  // are clamped.
  explicit Histogram(size_t depth = 3);

  size_t depth() const { return depth_; }
  size_t num_bins() const { return counts_.size(); }

  // Bin index of a key: its first `depth` characters, each mapped
  // 0-9 -> 1..10, A-Z -> 11..36 (case-insensitive), anything else -> 0,
  // radix-37 combined. Strings shorter than `depth` are padded with
  // "other". The mapping is monotone in the upper-cased key prefix (ASCII
  // orders digits before letters), so a contiguous bin range corresponds
  // to a contiguous key range.
  size_t BinOf(std::string_view key) const;

  // Counts one key.
  void Add(std::string_view key);

  uint64_t count(size_t bin) const { return counts_[bin]; }
  uint64_t total() const { return total_count_; }

  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  size_t depth_;
  std::vector<uint64_t> counts_;
  uint64_t total_count_ = 0;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CLUSTER_HISTOGRAM_H_
