#include "cluster/partitioner.h"

#include <string>

namespace mergepurge {

KeyPartitioner::KeyPartitioner(Histogram bins,
                               std::vector<uint32_t> bin_to_cluster,
                               size_t num_clusters)
    : histogram_depth_bin_(std::move(bins)),
      bin_to_cluster_(std::move(bin_to_cluster)),
      num_clusters_(num_clusters) {}

Result<KeyPartitioner> KeyPartitioner::FromHistogram(
    const Histogram& histogram, size_t num_clusters) {
  if (num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (histogram.total() == 0) {
    return Status::InvalidArgument("histogram is empty");
  }
  if (num_clusters > histogram.num_bins()) {
    num_clusters = histogram.num_bins();
  }

  const uint64_t total = histogram.total();
  const size_t num_bins = histogram.num_bins();
  std::vector<uint32_t> bin_to_cluster(num_bins, 0);

  // Greedy equi-depth cut: close the current subrange once its mass
  // reaches the remaining-average target. Recomputing the target from the
  // *remaining* mass keeps late clusters from starving when early bins are
  // heavy (skew, hot spots).
  uint32_t cluster = 0;
  uint64_t mass_in_cluster = 0;
  uint64_t mass_remaining = total;
  for (size_t bin = 0; bin < num_bins; ++bin) {
    bin_to_cluster[bin] = cluster;
    mass_in_cluster += histogram.count(bin);
    uint64_t clusters_left = num_clusters - cluster;
    uint64_t target = (mass_remaining + clusters_left - 1) / clusters_left;
    if (mass_in_cluster >= target &&
        cluster + 1 < static_cast<uint32_t>(num_clusters)) {
      mass_remaining -= mass_in_cluster;
      mass_in_cluster = 0;
      ++cluster;
    }
  }

  return KeyPartitioner(Histogram(histogram.depth()),
                        std::move(bin_to_cluster), num_clusters);
}

Histogram BuildHistogram(const std::vector<std::string>& keys, size_t depth,
                         size_t sample_size, Rng* rng) {
  Histogram histogram(depth);
  if (sample_size == 0 || sample_size >= keys.size()) {
    for (const std::string& key : keys) histogram.Add(key);
    return histogram;
  }
  for (size_t i = 0; i < sample_size; ++i) {
    histogram.Add(keys[rng->NextBounded(keys.size())]);
  }
  return histogram;
}

}  // namespace mergepurge
