// Equi-depth partitioning of histogram bins into clusters (paper §2.2.1).
//
// "Given a frequency distribution histogram with B bins for that field
// (C <= B), we want to divide those B bins into C subranges. ... for each
// of the C subranges we must expect the sum of the frequencies over the
// subrange to be close to 1/C."
//
// The partitioner greedily walks the bins accumulating mass and cuts a new
// subrange whenever the running sum reaches total/C; the resulting
// bin->cluster map is monotone, so each cluster covers a contiguous key
// range and the per-cluster sort preserves global neighborhood structure
// inside the cluster.

#ifndef MERGEPURGE_CLUSTER_PARTITIONER_H_
#define MERGEPURGE_CLUSTER_PARTITIONER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "cluster/histogram.h"
#include "util/random.h"
#include "util/status.h"

namespace mergepurge {

class KeyPartitioner {
 public:
  // Builds a partitioner splitting the histogram's mass into (at most)
  // num_clusters equi-depth subranges. num_clusters must be >= 1; the
  // histogram must have counted at least one key.
  static Result<KeyPartitioner> FromHistogram(const Histogram& histogram,
                                              size_t num_clusters);

  // Cluster of a key: bin lookup + table index (the paper's "complexity of
  // this mapping is, at worst, log B"; ours is O(depth) + O(1)).
  size_t ClusterOf(std::string_view key) const {
    return bin_to_cluster_[histogram_depth_bin_.BinOf(key)];
  }

  size_t num_clusters() const { return num_clusters_; }

 private:
  KeyPartitioner(Histogram bins, std::vector<uint32_t> bin_to_cluster,
                 size_t num_clusters);

  // An empty histogram reused only for BinOf (cheap, no counts needed).
  Histogram histogram_depth_bin_;
  std::vector<uint32_t> bin_to_cluster_;
  size_t num_clusters_;
};

// Builds a histogram from a sample of `keys`. sample_size == 0 means use
// every key ("If we do not have access to such a list, we can randomly
// sample the name field of our database to have an approximation of the
// distribution", §2.2.1).
Histogram BuildHistogram(const std::vector<std::string>& keys, size_t depth,
                         size_t sample_size, Rng* rng);

}  // namespace mergepurge

#endif  // MERGEPURGE_CLUSTER_PARTITIONER_H_
