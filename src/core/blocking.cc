#include "core/blocking.h"

#include <algorithm>
#include <unordered_map>

#include "util/timer.h"

namespace mergepurge {

Result<PassResult> BlockingMethod::Run(const Dataset& dataset,
                                       const KeySpec& key,
                                       const EquationalTheory& theory) const {
  KeyBuilder builder(key.FixedWidth(block_key_prefix_));
  MERGEPURGE_RETURN_NOT_OK(builder.Validate(dataset.schema()));

  PassResult result;
  result.key_name = key.name + "+blocking";
  Timer total;

  // Group by exact blocking key.
  Timer phase;
  std::unordered_map<std::string, std::vector<TupleId>> blocks;
  for (size_t t = 0; t < dataset.size(); ++t) {
    blocks[builder.BuildKey(dataset.record(static_cast<TupleId>(t)))]
        .push_back(static_cast<TupleId>(t));
  }
  result.create_keys_seconds = phase.ElapsedSeconds();

  // All pairs within each block.
  phase.Restart();
  last_largest_block_ = 0;
  for (const auto& [block_key, members] : blocks) {
    last_largest_block_ = std::max(last_largest_block_, members.size());
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        ++result.comparisons;
        if (theory.Matches(dataset.record(members[i]),
                           dataset.record(members[j]))) {
          ++result.matches;
          result.pairs.Add(members[i], members[j]);
        }
      }
    }
  }
  result.scan_seconds = phase.ElapsedSeconds();
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
