// BlockingMethod: the classical "blocking" baseline from the record-
// linkage literature — partition records by an exact blocking key (here: a
// fixed-width prefix key) and compare ALL pairs within each block. The
// sorted-neighborhood method generalizes this: blocking is SNM with the
// window replaced by block boundaries. Included as a comparison point for
// the ablation bench: blocking's cost is data-dependent (quadratic in the
// largest block, unbounded under skew) where SNM's is a strict w*N.

#ifndef MERGEPURGE_CORE_BLOCKING_H_
#define MERGEPURGE_CORE_BLOCKING_H_

#include "core/sorted_neighborhood.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

class BlockingMethod {
 public:
  // Blocks on the fixed-width form of `key` with this prefix per
  // variable-length component (compare ClusteringOptions::fixed_key_prefix).
  explicit BlockingMethod(size_t block_key_prefix = 3)
      : block_key_prefix_(block_key_prefix) {}

  Result<PassResult> Run(const Dataset& dataset, const KeySpec& key,
                         const EquationalTheory& theory) const;

  // Size of the largest block in the most recent Run (skew indicator:
  // comparisons grow with its square).
  size_t last_largest_block() const { return last_largest_block_; }

 private:
  size_t block_key_prefix_;
  mutable size_t last_largest_block_ = 0;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_BLOCKING_H_
