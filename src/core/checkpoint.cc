#include "core/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "io/pairs_io.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/fs.h"
#include "util/string_util.h"

namespace mergepurge {

namespace {
constexpr char kManifestMagic[] = "MPCK1";
}  // namespace

uint64_t DatasetDigest(const Dataset& dataset) {
  uint64_t digest = Fnv1a64("dataset");
  for (const Record& record : dataset.records()) {
    for (const std::string& field : record.fields()) {
      digest = Fnv1a64(field, digest);
      digest = Fnv1a64("\x1f", digest);  // Field separator.
    }
    digest = Fnv1a64("\x1e", digest);  // Record separator.
  }
  return digest;
}

uint64_t KeySpecDigest(const KeySpec& spec) {
  uint64_t digest = Fnv1a64(spec.name);
  for (const KeyComponent& component : spec.components) {
    digest = Fnv1a64(
        StringPrintf("|f=%u;k=%d;l=%zu", component.field,
                     static_cast<int>(component.kind), component.length),
        digest);
  }
  return digest;
}

Status WriteTextFileAtomic(const std::string& path,
                           const std::string& content) {
  // Full durable protocol (util/fs.h): tmp + fsync + rename + directory
  // fsync, every step's failure propagated — a checkpoint manifest that
  // survives a crash must never point at data that didn't.
  return WriteFileDurable(path, content);
}

std::string ManifestFileName(size_t pass_index) {
  return StringPrintf("pass_%zu.manifest", pass_index);
}

std::string PairsFileName(size_t pass_index) {
  return StringPrintf("pass_%zu.mpp", pass_index);
}

Status WritePassCheckpoint(const std::string& dir, size_t pass_index,
                           const PassManifest& manifest,
                           const PairSet& pairs) {
  // Pairs first: the manifest is the commit record, so it must only
  // appear after the data it points at is in place.
  const std::string pairs_path = dir + "/" + manifest.pairs_file;
  const std::string pairs_tmp = pairs_path + ".tmp";
  MERGEPURGE_RETURN_NOT_OK(WritePairSetFile(pairs, pairs_tmp));
  // fsync before the rename and the directory after it: the manifest
  // below is the commit record, so the pairs bytes (and their name) must
  // be durable first. Every failure propagates as a Status.
  Status durable = FsyncPath(pairs_tmp);
  if (durable.ok() &&
      std::rename(pairs_tmp.c_str(), pairs_path.c_str()) != 0) {
    durable = Status::IoError("rename failed: " + pairs_tmp + " -> " +
                              pairs_path);
  }
  if (!durable.ok()) {
    std::remove(pairs_tmp.c_str());
    return durable;
  }
  MERGEPURGE_RETURN_NOT_OK(FsyncPath(dir));

  std::ostringstream out;
  out << kManifestMagic << '\n';
  out << "key " << manifest.key_name << '\n';
  out << "spec " << StringPrintf("%016llx",
                                 static_cast<unsigned long long>(
                                     manifest.key_digest))
      << '\n';
  out << "config " << StringPrintf("%016llx",
                                   static_cast<unsigned long long>(
                                       manifest.config_digest))
      << '\n';
  out << "dataset " << StringPrintf("%016llx",
                                    static_cast<unsigned long long>(
                                        manifest.dataset_digest))
      << '\n';
  out << "pairs " << manifest.pairs_file << '\n';
  out << "complete " << (manifest.complete ? 1 : 0) << '\n';
  Status status = WriteTextFileAtomic(
      dir + "/" + ManifestFileName(pass_index), out.str());
  if (status.ok()) {
    static Counter* const saves =
        MetricsRegistry::Global().GetCounter(metric_names::kCheckpointSaves);
    saves->Increment();
  }
  return status;
}

Result<PassManifest> ReadPassManifest(const std::string& dir,
                                      size_t pass_index) {
  const std::string path = dir + "/" + ManifestFileName(pass_index);
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no manifest: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    return Status::ParseError(path + ": not a checkpoint manifest");
  }
  PassManifest manifest;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return Status::ParseError(StringPrintf("%s:%zu: malformed line",
                                             path.c_str(), line_number));
    }
    std::string field = line.substr(0, space);
    std::string value = line.substr(space + 1);
    if (field == "key") {
      manifest.key_name = value;
    } else if (field == "spec" || field == "config" || field == "dataset") {
      char* end = nullptr;
      uint64_t digest = std::strtoull(value.c_str(), &end, 16);
      if (end == value.c_str() || *end != '\0') {
        return Status::ParseError(StringPrintf("%s:%zu: bad digest",
                                               path.c_str(), line_number));
      }
      if (field == "spec") manifest.key_digest = digest;
      if (field == "config") manifest.config_digest = digest;
      if (field == "dataset") manifest.dataset_digest = digest;
    } else if (field == "pairs") {
      manifest.pairs_file = value;
    } else if (field == "complete") {
      manifest.complete = value == "1";
    } else {
      return Status::ParseError(StringPrintf("%s:%zu: unknown field '%s'",
                                             path.c_str(), line_number,
                                             field.c_str()));
    }
  }
  if (manifest.pairs_file.empty()) {
    return Status::ParseError(path + ": manifest has no pairs file");
  }
  return manifest;
}

bool ManifestMatches(const PassManifest& manifest,
                     const std::string& key_name, uint64_t key_digest,
                     uint64_t config_digest, uint64_t dataset_digest) {
  return manifest.complete && manifest.key_name == key_name &&
         manifest.key_digest == key_digest &&
         manifest.config_digest == config_digest &&
         manifest.dataset_digest == dataset_digest;
}

Result<PairSet> LoadCheckpointedPairs(const std::string& dir,
                                      const PassManifest& manifest) {
  Result<PairSet> pairs = ReadPairSetFile(dir + "/" + manifest.pairs_file);
  if (pairs.ok()) {
    static Counter* const loads =
        MetricsRegistry::Global().GetCounter(metric_names::kCheckpointLoads);
    loads->Increment();
  }
  return pairs;
}

}  // namespace mergepurge
