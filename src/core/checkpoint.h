// Checkpoint/resume for multi-pass merge/purge runs. The paper's §4.1
// pipelined operation ("We ran all independent runs in turn and stored the
// results on disk. We then computed the transitive closure over the
// results stored on disk.") assumes every run finishes; a multi-hour
// multi-pass job that dies between passes had to start over. This module
// makes the pipeline crash-consistent:
//
//   * after each pass its pair set is persisted via pairs_io, written to a
//     temp file and atomically renamed into place;
//   * a small manifest per pass records the pass identity — key name, key
//     spec digest, a config digest (method/window/cluster parameters) and
//     a record-source digest — plus a completion flag, also written
//     write-to-temp + rename (the manifest only becomes visible after its
//     pairs file is durable);
//   * on resume, a pass whose manifest exists, is complete, and matches
//     the current identity is loaded from disk instead of re-run; the
//     interrupted pass (missing or mismatched manifest) re-runs, and the
//     closure is recomputed over all passes.
//
// Digest mismatches (different inputs, keys, window, or method) silently
// invalidate the checkpoint for that pass — resuming with changed
// parameters recomputes rather than corrupting the closure.

#ifndef MERGEPURGE_CORE_CHECKPOINT_H_
#define MERGEPURGE_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "core/pair_set.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "util/status.h"

namespace mergepurge {

struct PassManifest {
  std::string key_name;
  uint64_t key_digest = 0;      // KeySpecDigest of the pass key.
  uint64_t config_digest = 0;   // Method/window/clustering parameters.
  uint64_t dataset_digest = 0;  // DatasetDigest of the record source.
  std::string pairs_file;       // Relative to the checkpoint dir.
  bool complete = false;
};

// Structural digests (FNV-1a). Any change to the hashed identity
// invalidates prior checkpoints, which is exactly the desired behaviour.
uint64_t DatasetDigest(const Dataset& dataset);
uint64_t KeySpecDigest(const KeySpec& spec);

// Writes `content` to path atomically (temp file in the same directory,
// then rename), so readers never observe a torn file.
Status WriteTextFileAtomic(const std::string& path,
                           const std::string& content);

// Writes the pass's pairs file (atomically, consulting the io.pairs_write
// fault point) and then its manifest. `dir` must exist.
Status WritePassCheckpoint(const std::string& dir, size_t pass_index,
                           const PassManifest& manifest,
                           const PairSet& pairs);

// Reads pass `pass_index`'s manifest. NotFound when absent; ParseError on
// a malformed file.
Result<PassManifest> ReadPassManifest(const std::string& dir,
                                      size_t pass_index);

// True iff `manifest` is complete and identifies the same pass as the
// given identity digests.
bool ManifestMatches(const PassManifest& manifest,
                     const std::string& key_name, uint64_t key_digest,
                     uint64_t config_digest, uint64_t dataset_digest);

// Loads the pairs file a manifest points at.
Result<PairSet> LoadCheckpointedPairs(const std::string& dir,
                                      const PassManifest& manifest);

// Canonical file names inside a checkpoint directory.
std::string ManifestFileName(size_t pass_index);
std::string PairsFileName(size_t pass_index);

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_CHECKPOINT_H_
