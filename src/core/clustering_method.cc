#include "core/clustering_method.h"

#include <algorithm>

#include "cluster/partitioner.h"
#include "core/window_scanner.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace mergepurge {

Result<PassResult> ClusteringMethod::Run(
    const Dataset& dataset, const KeySpec& key,
    const EquationalTheory& theory) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  if (options_.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  KeyBuilder full_builder(key);
  MERGEPURGE_RETURN_NOT_OK(full_builder.Validate(dataset.schema()));
  if (dataset.empty()) {
    PassResult empty;
    empty.key_name = key.name;
    return empty;
  }

  static Counter* const passes_counter =
      MetricsRegistry::Global().GetCounter(metric_names::kSnmPasses);
  static LatencyHistogram* const sort_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kSnmSortUs);
  static LatencyHistogram* const scan_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kSnmScanUs);

  Span pass_span("clustering-pass");
  pass_span.AddArg("key", key.name);

  PassResult result;
  result.key_name = key.name;
  Timer total;

  // --- Phase 1: extract the fixed-size key and cluster the data. ---
  Timer phase;
  const KeySpec fixed_spec = key.FixedWidth(options_.fixed_key_prefix);
  KeyBuilder fixed_builder(fixed_spec);
  std::vector<std::string> cluster_keys = fixed_builder.BuildKeys(dataset);
  result.create_keys_seconds = phase.ElapsedSeconds();

  phase.Restart();
  Rng rng(options_.seed);
  Histogram histogram =
      BuildHistogram(cluster_keys, options_.histogram_depth,
                     options_.histogram_sample, &rng);
  Result<KeyPartitioner> partitioner =
      KeyPartitioner::FromHistogram(histogram, options_.num_clusters);
  if (!partitioner.ok()) return partitioner.status();

  std::vector<std::vector<TupleId>> clusters(partitioner->num_clusters());
  for (size_t t = 0; t < dataset.size(); ++t) {
    clusters[partitioner->ClusterOf(cluster_keys[t])].push_back(
        static_cast<TupleId>(t));
  }
  result.cluster_seconds = phase.ElapsedSeconds();

  last_stats_ = ClusterStats();
  last_stats_.num_clusters = clusters.size();
  last_stats_.smallest_cluster = dataset.size();
  for (const std::vector<TupleId>& cluster : clusters) {
    last_stats_.largest_cluster =
        std::max(last_stats_.largest_cluster, cluster.size());
    last_stats_.smallest_cluster =
        std::min(last_stats_.smallest_cluster, cluster.size());
    if (cluster.empty()) ++last_stats_.empty_clusters;
  }
  // Surface severe key skew ("we must expect to compute very large
  // clusters and some empty clusters", §2.2.1): a hot cluster erodes both
  // the method's speed advantage and downstream load balance.
  const size_t average = dataset.size() / clusters.size();
  if (average > 0 && last_stats_.largest_cluster > 4 * average) {
    MERGEPURGE_LOG(kWarning)
        << "clustering key '" << key.name << "': largest cluster holds "
        << last_stats_.largest_cluster << " records (" << clusters.size()
        << " clusters, average " << average << ") — key prefix is skewed";
  }

  // --- Phase 2: sorted-neighborhood inside each cluster. ---
  // Sort key: the fixed cluster key (paper), or the full key (ablation).
  std::vector<std::string> sort_keys;
  if (options_.sort_with_full_key) {
    sort_keys = full_builder.BuildKeys(dataset);
  }
  const std::vector<std::string>& keys_for_sort =
      options_.sort_with_full_key ? sort_keys : cluster_keys;

  WindowScanner scanner(options_.window);
  ScanStats pass_stats;
  {
    Span span("cluster-scan");
    for (std::vector<TupleId>& cluster : clusters) {
      if (cluster.size() < 2) continue;
      phase.Restart();
      std::sort(cluster.begin(), cluster.end(),
                [&keys_for_sort](TupleId a, TupleId b) {
                  int cmp = keys_for_sort[a].compare(keys_for_sort[b]);
                  if (cmp != 0) return cmp < 0;
                  return a < b;
                });
      result.sort_seconds += phase.ElapsedSeconds();

      phase.Restart();
      ScanStats stats =
          scanner.Scan(dataset, cluster, theory, &result.pairs);
      result.scan_seconds += phase.ElapsedSeconds();
      pass_stats += stats;
    }
    span.AddArg("clusters", static_cast<uint64_t>(clusters.size()));
    span.AddArg("comparisons", pass_stats.comparisons);
  }
  result.windows = pass_stats.windows;
  result.comparisons = pass_stats.comparisons;
  result.matches = pass_stats.matches;

  FlushScanStats(pass_stats);
  theory.FlushMetrics();
  passes_counter->Increment();
  sort_us->Record(result.sort_seconds * 1e6);
  scan_us->Record(result.scan_seconds * 1e6);

  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
