// ClusteringMethod: one pass of the clustering variant (paper §2.2.1).
//
// Phase 1 (cluster data): extract a fixed-size key per record and assign
// it to one of C equi-depth clusters via the key-prefix histogram.
// Phase 2: run the sorted-neighborhood method independently inside each
// cluster — sorting by the SAME fixed-size key extracted in phase 1
// ("We do not need, however, to recompute a key ... We can use the key
// extracted above for sorting"). The fixed key is what costs the method
// accuracy relative to full-key SNM (paper §3.4); set
// ClusteringOptions::sort_with_full_key to ablate that choice.

#ifndef MERGEPURGE_CORE_CLUSTERING_METHOD_H_
#define MERGEPURGE_CORE_CLUSTERING_METHOD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/sorted_neighborhood.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

struct ClusteringOptions {
  // Number of clusters ("initially divided the data into 32 clusters ...
  // chosen to match the fan-out of the merge-sort algorithm", §3.4).
  size_t num_clusters = 32;

  // Window for the per-cluster scans.
  size_t window = 10;

  // Leading characters of each variable-length key component kept in the
  // fixed-size cluster key (the paper's 3-letter example).
  size_t fixed_key_prefix = 3;

  // Histogram depth (prefix characters -> 27^depth bins).
  size_t histogram_depth = 3;

  // Sample size for the histogram; 0 = exact scan of all keys.
  size_t histogram_sample = 0;

  // Ablation: sort clusters by the full variable-length key instead of the
  // fixed cluster key (closes the accuracy gap vs SNM; not what the paper's
  // clustering method does).
  bool sort_with_full_key = false;

  uint64_t seed = 7;
};

struct ClusterStats {
  size_t num_clusters = 0;
  size_t largest_cluster = 0;
  size_t smallest_cluster = 0;
  size_t empty_clusters = 0;
};

class ClusteringMethod {
 public:
  explicit ClusteringMethod(ClusteringOptions options) : options_(options) {}

  const ClusteringOptions& options() const { return options_; }

  // Runs one clustering-method pass with `key` over `dataset`.
  Result<PassResult> Run(const Dataset& dataset, const KeySpec& key,
                         const EquationalTheory& theory) const;

  // Statistics of the most recent Run's partition (for load-balance and
  // skew reporting).
  const ClusterStats& last_cluster_stats() const { return last_stats_; }

 private:
  ClusteringOptions options_;
  mutable ClusterStats last_stats_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_CLUSTERING_METHOD_H_
