#include "core/duplicate_elimination.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/timer.h"

namespace mergepurge {

PassResult ExactDuplicateElimination::Run(const Dataset& dataset) const {
  PassResult result;
  result.key_name = "exact-duplicate-elimination";
  Timer total;

  // Sort tuple ids by full record content (lexicographic over fields).
  Timer phase;
  std::vector<TupleId> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&dataset](TupleId a, TupleId b) {
              const auto& fa = dataset.record(a).fields();
              const auto& fb = dataset.record(b).fields();
              if (fa != fb) return fa < fb;
              return a < b;
            });
  result.sort_seconds = phase.ElapsedSeconds();

  phase.Restart();
  for (size_t i = 1; i < order.size(); ++i) {
    ++result.comparisons;
    if (dataset.record(order[i - 1]) == dataset.record(order[i])) {
      ++result.matches;
      result.pairs.Add(order[i - 1], order[i]);
    }
  }
  result.scan_seconds = phase.ElapsedSeconds();
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
