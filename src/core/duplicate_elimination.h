// Classical exact-duplicate elimination (Bitton & DeWitt, TODS 1983): sort
// the whole records lexicographically and collapse adjacent exact
// duplicates. The paper positions the sorted-neighborhood method as a
// generalization of this algorithm to approximate matching; it is included
// as the classical baseline — it finds only byte-identical records, which
// on corrupted data is a small fraction of the true duplicates.

#ifndef MERGEPURGE_CORE_DUPLICATE_ELIMINATION_H_
#define MERGEPURGE_CORE_DUPLICATE_ELIMINATION_H_

#include "core/sorted_neighborhood.h"
#include "record/dataset.h"

namespace mergepurge {

class ExactDuplicateElimination {
 public:
  // Emits a pair for every two byte-identical records (grouped, so a
  // k-duplicate group contributes k-1 chained pairs; closure restores the
  // full group).
  PassResult Run(const Dataset& dataset) const;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_DUPLICATE_ELIMINATION_H_
