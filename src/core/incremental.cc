#include "core/incremental.h"

#include <algorithm>

#include "text/normalize.h"

namespace mergepurge {

IncrementalMergePurge::IncrementalMergePurge(MergePurgeOptions options)
    : options_(std::move(options)) {
  for (const KeySpec& spec : options_.keys) {
    KeyState state;
    state.spec = spec;
    key_states_.push_back(std::move(state));
  }
}

Result<uint64_t> IncrementalMergePurge::AddBatch(
    const Dataset& batch, const EquationalTheory& theory) {
  if (options_.keys.empty()) {
    return Status::InvalidArgument("no keys configured");
  }
  if (options_.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  if (!all_.empty() && !(all_.schema() == batch.schema())) {
    return Status::InvalidArgument("batch schema differs from previous");
  }
  if (options_.condition_records &&
      !(batch.schema() == employee::MakeSchema())) {
    return Status::InvalidArgument(
        "condition_records=true requires the employee schema");
  }

  // Any admitted record changes the partition (at minimum it adds a
  // singleton): drop the label cache, and keep holding labels_mu_ for the
  // rest of the batch so the closure_ mutations below (Grow, the scan's
  // Unions) are covered by the same lock readers take to rebuild the
  // cache. AddBatch callers are single-writer, so the long hold contends
  // with nothing in correct use; it exists to make incorrect use (a
  // reader racing a batch) crash into the lock instead of the parent
  // array.
  MutexLock labels_lock(labels_mu_);
  labels_valid_ = false;

  // Condition a private copy of the batch, then append to the store.
  Dataset conditioned;
  const Dataset* incoming = &batch;
  if (options_.condition_records) {
    conditioned = batch;
    ConditionEmployeeDataset(&conditioned);
    incoming = &conditioned;
  }
  const TupleId first_new = static_cast<TupleId>(all_.size());
  if (all_.empty()) all_ = Dataset(batch.schema());
  for (const Record& r : incoming->records()) all_.Append(r);
  const TupleId end_new = static_cast<TupleId>(all_.size());
  closure_.Grow(all_.size());

  const size_t w = options_.window;
  uint64_t new_pairs = 0;

  for (KeyState& state : key_states_) {
    KeyBuilder builder(state.spec);
    MERGEPURGE_RETURN_NOT_OK(builder.Validate(all_.schema()));

    // Key + sort the new tuple ids.
    state.keys.resize(all_.size());
    std::vector<TupleId> fresh;
    fresh.reserve(end_new - first_new);
    for (TupleId t = first_new; t < end_new; ++t) {
      state.keys[t] = builder.BuildKey(all_.record(t));
      fresh.push_back(t);
    }
    std::sort(fresh.begin(), fresh.end(),
              [&state](TupleId a, TupleId b) {
                int cmp = state.keys[a].compare(state.keys[b]);
                if (cmp != 0) return cmp < 0;
                return a < b;
              });

    // Linear merge into the existing order; is_new marks fresh positions.
    std::vector<TupleId> merged;
    merged.reserve(state.order.size() + fresh.size());
    std::vector<char> is_new;
    is_new.reserve(merged.capacity());
    size_t i = 0;
    size_t j = 0;
    while (i < state.order.size() && j < fresh.size()) {
      int cmp = state.keys[state.order[i]].compare(state.keys[fresh[j]]);
      bool take_old = cmp < 0 || (cmp == 0 && state.order[i] < fresh[j]);
      merged.push_back(take_old ? state.order[i] : fresh[j]);
      is_new.push_back(take_old ? 0 : 1);
      take_old ? ++i : ++j;
    }
    for (; i < state.order.size(); ++i) {
      merged.push_back(state.order[i]);
      is_new.push_back(0);
    }
    for (; j < fresh.size(); ++j) {
      merged.push_back(fresh[j]);
      is_new.push_back(1);
    }

    // Window-scan only the disturbed neighborhoods: every in-window pair
    // involving at least one new record.
    for (size_t p = 0; p < merged.size(); ++p) {
      if (!is_new[p]) continue;
      const size_t lo = p >= w - 1 ? p - (w - 1) : 0;
      for (size_t q = lo; q < p; ++q) {
        // New-new pairs are scanned once (q < p); new-old always.
        if (theory.Matches(all_.record(merged[q]),
                           all_.record(merged[p]))) {
          if (pairs_.Add(merged[q], merged[p])) ++new_pairs;
          closure_.Union(merged[q], merged[p]);
        }
      }
      const size_t hi = std::min(merged.size(), p + w);
      for (size_t q = p + 1; q < hi; ++q) {
        if (is_new[q]) continue;  // Handled from q's own loop.
        if (theory.Matches(all_.record(merged[p]),
                           all_.record(merged[q]))) {
          if (pairs_.Add(merged[p], merged[q])) ++new_pairs;
          closure_.Union(merged[p], merged[q]);
        }
      }
    }
    state.order = std::move(merged);
  }
  return new_pairs;
}

Status IncrementalMergePurge::Restore(Dataset records, PairSet pairs) {
  if (options_.keys.empty()) {
    return Status::InvalidArgument("no keys configured");
  }
  if (!all_.empty()) {
    return Status::InvalidArgument("Restore requires an empty engine");
  }
  MutexLock labels_lock(labels_mu_);
  labels_valid_ = false;
  all_ = std::move(records);
  pairs_ = std::move(pairs);
  closure_.Grow(all_.size());
  // Deterministic order is not needed for correctness (union-find labels
  // are canonical regardless of union order) but keeps recovery runs
  // reproducible; this is a startup-only path, so the materialized copy
  // is fine.
  for (const auto& [lo, hi] : pairs_.ToSortedVector()) {
    closure_.Union(lo, hi);
  }

  for (KeyState& state : key_states_) {
    KeyBuilder builder(state.spec);
    MERGEPURGE_RETURN_NOT_OK(builder.Validate(all_.schema()));
    state.keys.resize(all_.size());
    state.order.resize(all_.size());
    for (TupleId t = 0; t < static_cast<TupleId>(all_.size()); ++t) {
      state.keys[t] = builder.BuildKey(all_.record(t));
      state.order[t] = t;
    }
    std::sort(state.order.begin(), state.order.end(),
              [&state](TupleId a, TupleId b) {
                int cmp = state.keys[a].compare(state.keys[b]);
                if (cmp != 0) return cmp < 0;
                return a < b;
              });
  }
  return Status::OK();
}

Result<ProbeResult> IncrementalMergePurge::MatchOnly(
    const Record& record, const EquationalTheory& theory) const {
  if (options_.keys.empty()) {
    return Status::InvalidArgument("no keys configured");
  }
  if (options_.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  ProbeResult result;
  if (all_.empty()) return result;

  Record probe = record;
  if (options_.condition_records) ConditionEmployeeRecord(&probe);

  const size_t w = options_.window;
  std::vector<char> matched(all_.size(), 0);
  for (const KeyState& state : key_states_) {
    KeyBuilder builder(state.spec);
    MERGEPURGE_RETURN_NOT_OK(builder.Validate(all_.schema()));
    const std::string probe_key = builder.BuildKey(probe);
    // A probe admitted now would carry the largest tuple id, so among
    // equal keys it sorts after every existing record (AddBatch's
    // tie-break): its position is the first entry with a greater key.
    const auto pos = std::upper_bound(
        state.order.begin(), state.order.end(), probe_key,
        [&state](const std::string& key, TupleId t) {
          return key.compare(state.keys[t]) < 0;
        });
    const size_t p = static_cast<size_t>(pos - state.order.begin());
    // Neighbors that would land at distances 1..w-1 before the probe.
    const size_t lo = p >= w - 1 ? p - (w - 1) : 0;
    for (size_t q = lo; q < p; ++q) {
      const TupleId t = state.order[q];
      if (matched[t]) continue;
      if (theory.Matches(all_.record(t), probe)) {
        matched[t] = 1;
        result.matches.push_back(t);
      }
    }
    // ... and at distances 1..w-1 after it.
    const size_t hi = std::min(state.order.size(), p + (w - 1));
    for (size_t q = p; q < hi; ++q) {
      const TupleId t = state.order[q];
      if (matched[t]) continue;
      if (theory.Matches(probe, all_.record(t))) {
        matched[t] = 1;
        result.matches.push_back(t);
      }
    }
  }
  std::sort(result.matches.begin(), result.matches.end());
  return result;
}

const std::vector<uint32_t>& IncrementalMergePurge::CachedComponentLabels()
    const {
  MutexLock lock(labels_mu_);
  if (!labels_valid_) {
    labels_cache_ = closure_.ComponentLabels();
    labels_valid_ = true;
  }
  return labels_cache_;
}

std::vector<uint32_t> IncrementalMergePurge::ComponentLabels() const {
  return CachedComponentLabels();
}

Dataset IncrementalMergePurge::Purge() const {
  MergePurgeResult result;
  result.component_of = ComponentLabels();
  return result.Purge(all_);
}

}  // namespace mergepurge
