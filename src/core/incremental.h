// IncrementalMergePurge: month-over-month operation.
//
// The paper's motivating scenario (§1) is periodic: "It is not uncommon
// for large businesses to acquire scores of databases each month ... that
// need to be analyzed within a few days." Re-running the full multi-pass
// process over the ever-growing concatenation each month wastes the work
// already done, so this engine keeps, per key, the sorted order of all
// records seen so far and, when a batch arrives:
//
//   1. conditions and keys the new records,
//   2. merges them into each key's sorted order (one linear merge),
//   3. window-scans ONLY the neighborhoods disturbed by insertions —
//      every pair within the window that involves at least one new record
//      (old-old pairs cannot become closer: insertions only push existing
//      records apart),
//   4. folds the discovered pairs into a persistent union-find closure.
//
// Guarantee (tested): after any sequence of batches, the incremental pair
// set is a SUPERSET of what a from-scratch multi-pass run over the full
// concatenation finds with the same keys and window — records that were
// neighbors in an earlier, smaller database stay merged even if later
// insertions push them apart.

#ifndef MERGEPURGE_CORE_INCREMENTAL_H_
#define MERGEPURGE_CORE_INCREMENTAL_H_

#include <string>
#include <vector>

#include "core/merge_purge.h"
#include "core/pair_set.h"
#include "core/union_find.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"
#include "util/sync.h"

namespace mergepurge {

// Result of a read-only probe (MatchOnly): the tuple ids the candidate
// matched inside the disturbed windows, deduplicated across key passes and
// sorted ascending. The probe record itself is never admitted.
struct ProbeResult {
  std::vector<TupleId> matches;
};

class IncrementalMergePurge {
 public:
  // keys/window as in MergePurgeOptions; condition_records applies the
  // employee conditioning to each incoming batch.
  explicit IncrementalMergePurge(MergePurgeOptions options);

  // Merges a new batch of records (same schema as previous batches).
  // Returns the number of NEW matching pairs discovered.
  Result<uint64_t> AddBatch(const Dataset& batch,
                            const EquationalTheory& theory);

  // Restores the engine from durable state: a record store (already
  // conditioned — Restore never re-conditions) and the pair set, as
  // saved by a service snapshot (service/snapshot.h). Only valid on an
  // engine that has seen no batches. Per-key sorted orders are rebuilt
  // by a full sort; because AddBatch's merge is ordered by the same
  // total (key, tuple id) comparator, the rebuilt orders are identical
  // to the ones the original batch sequence produced, and the closure
  // rebuilt from the pairs is canonically labeled — so a restored
  // engine is indistinguishable from the live one it was copied from.
  Status Restore(Dataset records, PairSet pairs);

  // Read-only probe: conditions and keys `record` exactly as AddBatch
  // would, finds its would-be position in every key's sorted order, and
  // window-scans the neighborhoods it would disturb — without copying the
  // record into the store or touching any engine state. The tuple ids
  // returned are exactly the old-record side of the pairs AddBatch would
  // discover for a singleton batch of `record`.
  //
  // Thread-safety: concurrent MatchOnly calls are safe provided no
  // AddBatch runs concurrently (single-writer / multi-reader; the service
  // layer enforces this with a shared_mutex).
  Result<ProbeResult> MatchOnly(const Record& record,
                                const EquationalTheory& theory) const;

  // All records accepted so far (conditioned if the option is on); tuple
  // ids are stable across batches.
  const Dataset& records() const { return all_; }

  size_t size() const { return all_.size(); }

  // All matching pairs discovered so far (before closure).
  const PairSet& pairs() const { return pairs_; }

  // Current equivalence classes (transitive closure over all batches).
  // Canonically labeled (smallest tuple id of each class, see
  // UnionFind::ComponentLabels). The labeling is computed at most once per
  // batch: results are cached and invalidated by AddBatch, so per-request
  // callers (the match service) pay O(1) amortized instead of an O(n)
  // closure walk per call.
  std::vector<uint32_t> ComponentLabels() const;

  // Zero-copy variant: a reference to the internal label cache, rebuilt
  // if a batch invalidated it. The reference stays valid and constant
  // until the next AddBatch. Concurrent callers serialize only on the
  // (cheap) cache check; the union-find itself is never mutated by
  // readers once the cache is warm.
  const std::vector<uint32_t>& CachedComponentLabels() const;

  // Number of distinct entities so far.
  size_t NumEntities() const {
    MutexLock lock(labels_mu_);
    return closure_.NumSets();
  }

  // One merged record per entity (see MergePurgeResult::Purge).
  Dataset Purge() const;

 private:
  struct KeyState {
    KeySpec spec;
    std::vector<TupleId> order;     // All tuple ids, sorted by key.
    std::vector<std::string> keys;  // Key per tuple id (index = tid).
  };

  MergePurgeOptions options_;
  Dataset all_;
  std::vector<KeyState> key_states_;
  PairSet pairs_;

  // labels_mu_ guards the label cache AND the union-find itself: readers
  // trigger path compression inside closure_.ComponentLabels() during a
  // rebuild, and AddBatch holds the lock across its Grow/Union mutations,
  // so concurrent readers never race on the parent array.
  mutable Mutex labels_mu_{lockrank::kLabels};
  mutable UnionFind closure_ MERGEPURGE_GUARDED_BY(labels_mu_){0};
  mutable bool labels_valid_ MERGEPURGE_GUARDED_BY(labels_mu_) = false;
  mutable std::vector<uint32_t> labels_cache_
      MERGEPURGE_GUARDED_BY(labels_mu_);
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_INCREMENTAL_H_
