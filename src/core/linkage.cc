#include "core/linkage.h"

#include <algorithm>

#include "text/normalize.h"

namespace mergepurge {

LinkageEngine::LinkageEngine(MergePurgeOptions options)
    : options_(std::move(options)) {}

Result<LinkageResult> LinkageEngine::Run(
    const Dataset& left, const Dataset& right,
    const EquationalTheory& theory) const {
  if (options_.keys.empty()) {
    return Status::InvalidArgument("MergePurgeOptions.keys is empty");
  }
  if (options_.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  if (!(left.schema() == right.schema())) {
    return Status::InvalidArgument("sources have different schemas");
  }

  // Concatenate: left tuples keep their ids, right tuples are shifted.
  Dataset combined = left;
  MERGEPURGE_RETURN_NOT_OK(combined.Concatenate(right));
  if (options_.condition_records) {
    if (!(combined.schema() == employee::MakeSchema())) {
      return Status::InvalidArgument(
          "condition_records=true requires the employee schema");
    }
    ConditionEmployeeDataset(&combined);
  }

  MultiPass::Method method =
      options_.method == MergePurgeOptions::Method::kSortedNeighborhood
          ? MultiPass::Method::kSortedNeighborhood
          : MultiPass::Method::kClustering;
  MultiPass multipass(method, options_.window, options_.clustering);
  Result<MultiPassResult> detail =
      multipass.Run(combined, options_.keys, theory);
  if (!detail.ok()) return detail.status();

  LinkageResult result;
  result.left_size = left.size();
  result.right_size = right.size();
  result.detail = std::move(*detail);

  // Filter to cross-boundary pairs (pairs are normalized lo < hi, so lo is
  // the left-side tuple when the pair crosses).
  const TupleId boundary = static_cast<TupleId>(left.size());
  PairSet cross;
  for (const PassResult& pass : result.detail.passes) {
    pass.pairs.ForEach([&](TupleId a, TupleId b) {
      TupleId lo = std::min(a, b);
      TupleId hi = std::max(a, b);
      if (lo < boundary && hi >= boundary) cross.Add(lo, hi);
    });
  }
  for (const auto& [lo, hi] : cross.ToSortedVector()) {
    result.links.emplace_back(lo, hi - boundary);
  }
  return result;
}

}  // namespace mergepurge
