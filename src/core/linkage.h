// Cross-source record linkage: the variant of merge/purge where only
// matches BETWEEN two sources matter (e.g., linking a new purchased list
// against the house file) and within-source duplicates are out of scope.
// Implemented by concatenating the sources, running the normal multi-pass
// process, and filtering the discovered pairs to those that cross the
// source boundary BEFORE the closure — so within-source matches cannot
// bridge two cross-source entities transitively unless the cross-source
// evidence itself exists.

#ifndef MERGEPURGE_CORE_LINKAGE_H_
#define MERGEPURGE_CORE_LINKAGE_H_

#include <vector>

#include "core/merge_purge.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

struct LinkageResult {
  // One entry per discovered link: (tuple id in left, tuple id in right),
  // ids LOCAL to each source dataset.
  std::vector<std::pair<TupleId, TupleId>> links;

  // Per-pass detail from the underlying multi-pass run (tuple ids are in
  // the concatenated space: left tuples first, then right).
  MultiPassResult detail;

  size_t left_size = 0;
  size_t right_size = 0;
};

class LinkageEngine {
 public:
  // Same options as MergePurgeEngine (method, keys, window, conditioning).
  explicit LinkageEngine(MergePurgeOptions options);

  // Finds links between records of `left` and `right` (same schema).
  Result<LinkageResult> Run(const Dataset& left, const Dataset& right,
                            const EquationalTheory& theory) const;

 private:
  MergePurgeOptions options_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_LINKAGE_H_
