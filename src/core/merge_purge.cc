#include "core/merge_purge.h"

#include <unordered_map>

#include "gen/places_data.h"
#include "text/normalize.h"
#include "text/spell.h"

namespace mergepurge {

MergePurgeEngine::MergePurgeEngine(MergePurgeOptions options)
    : options_(std::move(options)) {}

Dataset MergePurgeResult::Purge(const Dataset& dataset) const {
  // Group tuples by component, preserving first-seen order of components.
  std::unordered_map<uint32_t, size_t> component_to_output;
  Dataset out(dataset.schema());
  std::vector<std::vector<TupleId>> groups;
  for (size_t t = 0; t < dataset.size() && t < component_of.size(); ++t) {
    uint32_t component = component_of[t];
    auto [it, inserted] =
        component_to_output.emplace(component, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<TupleId>(t));
  }

  for (const std::vector<TupleId>& group : groups) {
    // Merge by completeness: for each field keep the longest non-empty
    // value seen in the class.
    Record merged = dataset.record(group[0]);
    for (size_t i = 1; i < group.size(); ++i) {
      const Record& r = dataset.record(group[i]);
      for (FieldId f = 0; f < dataset.schema().num_fields(); ++f) {
        if (r.field(f).size() > merged.field(f).size()) {
          merged.set_field(f, std::string(r.field(f)));
        }
      }
    }
    out.Append(std::move(merged));
  }
  return out;
}

Result<MergePurgeResult> MergePurgeEngine::Run(
    const Dataset& dataset, const EquationalTheory& theory) const {
  if (options_.keys.empty()) {
    return Status::InvalidArgument("MergePurgeOptions.keys is empty");
  }
  if (options_.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }

  // Conditioning runs on a private copy so callers keep their raw data.
  const Dataset* input = &dataset;
  Dataset conditioned;
  if (options_.condition_records &&
      !(dataset.schema() == employee::MakeSchema())) {
    return Status::InvalidArgument(
        "condition_records=true requires the employee schema; "
        "pre-condition custom schemas and set condition_records=false");
  }
  if (options_.condition_records) {
    conditioned = dataset;
    ConditionEmployeeDataset(&conditioned);
    if (options_.spell_correct_city) {
      static const SpellCorrector* corrector =
          new SpellCorrector(AllCityNames());
      for (size_t t = 0; t < conditioned.size(); ++t) {
        Record& r = conditioned.mutable_record(static_cast<TupleId>(t));
        r.set_field(employee::kCity,
                    corrector->Correct(r.field(employee::kCity)));
      }
    }
    input = &conditioned;
  }

  MultiPass::Method method =
      options_.method == MergePurgeOptions::Method::kSortedNeighborhood
          ? MultiPass::Method::kSortedNeighborhood
          : MultiPass::Method::kClustering;
  MultiPass multipass(method, options_.window, options_.clustering);
  Result<MultiPassResult> detail =
      multipass.Run(*input, options_.keys, theory, options_.checkpoint_dir);
  if (!detail.ok()) return detail.status();

  MergePurgeResult result;
  result.detail = std::move(*detail);
  result.component_of = result.detail.component_of;

  std::unordered_map<uint32_t, bool> seen;
  for (uint32_t component : result.component_of) seen.emplace(component, true);
  result.num_entities = seen.size();
  return result;
}

}  // namespace mergepurge
