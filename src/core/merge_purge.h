// MergePurgeEngine: the top-level public API. One call runs the complete
// pipeline of the paper: condition the concatenated record list, run one or
// more merge passes (sorted-neighborhood or clustering method) with the
// given keys, compute the transitive closure, and optionally purge —
// collapse each equivalence class into one merged record.
//
// Typical use (see examples/quickstart.cpp):
//
//   MergePurgeOptions options;
//   options.keys = StandardThreeKeys();   // multi-pass over 3 keys
//   options.window = 10;
//   MergePurgeEngine engine(options);
//   EmployeeTheory theory;
//   auto result = engine.Run(dataset, theory);
//   Dataset deduped = result->Purge(dataset);

#ifndef MERGEPURGE_CORE_MERGE_PURGE_H_
#define MERGEPURGE_CORE_MERGE_PURGE_H_

#include <vector>

#include "core/multipass.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

struct MergePurgeOptions {
  enum class Method { kSortedNeighborhood, kClustering };

  Method method = Method::kSortedNeighborhood;

  // Sort keys; one entry = single pass, several = multi-pass + closure.
  std::vector<KeySpec> keys;

  // Window size of the merge phase.
  size_t window = 10;

  // Clustering-method tuning (used when method == kClustering).
  ClusteringOptions clustering;

  // Condition (normalize) the records before merging (paper §3.2). The
  // engine conditions a private copy; the caller's dataset is untouched.
  bool condition_records = true;

  // Run the corpus spelling corrector over the city field during
  // conditioning (paper §3.2: improves detected duplicates by ~1.5-2%).
  bool spell_correct_city = false;

  // Non-empty: checkpoint each pass's pairs under this directory and
  // resume from any pass already completed there with matching inputs and
  // parameters (core/checkpoint.h). The CLI exposes this as --resume=DIR.
  std::string checkpoint_dir;
};

struct MergePurgeResult {
  // Per-tuple equivalence-class labels after the transitive closure.
  std::vector<uint32_t> component_of;

  // Per-pass details and closure timing.
  MultiPassResult detail;

  // Number of distinct entities found (equivalence classes).
  size_t num_entities = 0;

  // Purge phase: produces one merged record per entity. Fields are merged
  // by completeness — for each field the longest non-empty value among the
  // class's records wins (a simple instance of the paper's "data-directed
  // projection"). Records must be the dataset the result was computed on.
  Dataset Purge(const Dataset& dataset) const;
};

class MergePurgeEngine {
 public:
  explicit MergePurgeEngine(MergePurgeOptions options);

  const MergePurgeOptions& options() const { return options_; }

  // Runs merge (and closure) over the dataset. The theory's comparison
  // counter reflects the run afterwards.
  Result<MergePurgeResult> Run(const Dataset& dataset,
                               const EquationalTheory& theory) const;

 private:
  MergePurgeOptions options_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_MERGE_PURGE_H_
