#include "core/multipass.h"

#include <filesystem>
#include <unordered_set>

#include "core/checkpoint.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mergepurge {

std::vector<uint32_t> TransitiveClosure(
    const std::vector<const PairSet*>& pair_sets, size_t n) {
  static Counter* const unions =
      MetricsRegistry::Global().GetCounter(metric_names::kClosureUnions);
  static Counter* const union_calls =
      MetricsRegistry::Global().GetCounter(metric_names::kClosureUnionCalls);
  static Counter* const compressions = MetricsRegistry::Global().GetCounter(
      metric_names::kClosurePathCompressions);
  static LatencyHistogram* const closure_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kClosureUs);

  Span span("transitive-closure");
  Timer timer;
  UnionFind uf(n);
  for (const PairSet* pairs : pair_sets) {
    pairs->ForEach([&uf](TupleId a, TupleId b) { uf.Union(a, b); });
  }
  std::vector<uint32_t> labels = uf.ComponentLabels();
  span.AddArg("unions", uf.unions_performed());
  unions->Add(uf.unions_performed());
  union_calls->Add(uf.union_calls());
  compressions->Add(uf.path_compressions());
  closure_us->Record(static_cast<double>(timer.ElapsedMicros()));
  return labels;
}

std::vector<uint32_t> TransitiveClosure(const PairSet& pairs, size_t n) {
  return TransitiveClosure(std::vector<const PairSet*>{&pairs}, n);
}

Result<PassResult> MultiPass::RunOnePass(
    const Dataset& dataset, const KeySpec& key,
    const EquationalTheory& theory) const {
  return method_ == Method::kSortedNeighborhood
             ? SortedNeighborhood(window_).Run(dataset, key, theory)
             : ClusteringMethod(clustering_options_).Run(dataset, key,
                                                         theory);
}

uint64_t MultiPass::ConfigDigest() const {
  std::string config = StringPrintf(
      "method=%d;window=%zu",
      static_cast<int>(method_), window_);
  if (method_ == Method::kClustering) {
    config += StringPrintf(
        ";clusters=%zu;prefix=%zu;depth=%zu;sample=%zu;full_key=%d;seed=%llu",
        clustering_options_.num_clusters,
        clustering_options_.fixed_key_prefix,
        clustering_options_.histogram_depth,
        clustering_options_.histogram_sample,
        clustering_options_.sort_with_full_key ? 1 : 0,
        static_cast<unsigned long long>(clustering_options_.seed));
  }
  return Fnv1a64(config);
}

Result<MultiPassResult> MultiPass::Run(
    const Dataset& dataset, const std::vector<KeySpec>& keys,
    const EquationalTheory& theory) const {
  return Run(dataset, keys, theory, /*checkpoint_dir=*/"");
}

Result<MultiPassResult> MultiPass::Run(
    const Dataset& dataset, const std::vector<KeySpec>& keys,
    const EquationalTheory& theory,
    const std::string& checkpoint_dir) const {
  if (keys.empty()) {
    return Status::InvalidArgument("multi-pass requires at least one key");
  }

  const bool checkpointing = !checkpoint_dir.empty();
  uint64_t dataset_digest = 0;
  uint64_t config_digest = 0;
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir " +
                             checkpoint_dir + ": " + ec.message());
    }
    dataset_digest = DatasetDigest(dataset);
    config_digest = ConfigDigest();
  }

  static Counter* const invalidations = MetricsRegistry::Global().GetCounter(
      metric_names::kCheckpointInvalidations);
  ProgressReporter& progress = ProgressReporter::Global();

  Span run_span("multipass-run");
  run_span.AddArg("keys", static_cast<uint64_t>(keys.size()));

  MultiPassResult result;
  for (size_t i = 0; i < keys.size(); ++i) {
    const KeySpec& key = keys[i];
    Span pass_span("pass");
    pass_span.AddArg("index", static_cast<uint64_t>(i));
    pass_span.AddArg("key", key.name);

    if (checkpointing) {
      Result<PassManifest> manifest = ReadPassManifest(checkpoint_dir, i);
      if (manifest.ok() &&
          ManifestMatches(*manifest, key.name, KeySpecDigest(key),
                          config_digest, dataset_digest)) {
        Result<PairSet> stored =
            LoadCheckpointedPairs(checkpoint_dir, *manifest);
        if (stored.ok()) {
          PassResult pass;
          pass.key_name = key.name;
          pass.pairs = std::move(*stored);
          pass.resumed = true;
          ++result.passes_resumed;
          result.passes.push_back(std::move(pass));
          continue;
        }
        // A manifest whose pairs file is unreadable falls through to a
        // recompute — the checkpoint is advisory, never authoritative.
      } else if (manifest.ok()) {
        // A manifest exists but no longer describes this dataset/key/
        // config: the checkpointed pass is stale and will be recomputed.
        invalidations->Increment();
      }
    }

    progress.BeginPhase(
        StringPrintf("pass %zu/%zu (%s)", i + 1, keys.size(),
                     key.name.c_str()),
        dataset.size());
    Result<PassResult> pass = RunOnePass(dataset, key, theory);
    progress.FinishPhase();
    if (!pass.ok()) return pass.status();
    result.total_seconds += pass->total_seconds;

    if (checkpointing) {
      PassManifest manifest;
      manifest.key_name = key.name;
      manifest.key_digest = KeySpecDigest(key);
      manifest.config_digest = config_digest;
      manifest.dataset_digest = dataset_digest;
      manifest.pairs_file = PairsFileName(i);
      manifest.complete = true;
      MERGEPURGE_RETURN_NOT_OK(
          WritePassCheckpoint(checkpoint_dir, i, manifest, pass->pairs));
    }
    result.passes.push_back(std::move(*pass));
  }

  progress.BeginPhase("transitive closure");
  Timer closure_timer;
  PairSet all_pairs;
  std::vector<const PairSet*> pair_sets;
  pair_sets.reserve(result.passes.size());
  for (const PassResult& pass : result.passes) {
    all_pairs.Merge(pass.pairs);
    pair_sets.push_back(&pass.pairs);
  }
  result.union_pair_count = all_pairs.size();
  result.component_of = TransitiveClosure(pair_sets, dataset.size());
  result.closure_seconds = closure_timer.ElapsedSeconds();
  result.total_seconds += result.closure_seconds;
  progress.FinishPhase();
  return result;
}

}  // namespace mergepurge
