#include "core/multipass.h"

#include <filesystem>
#include <unordered_set>

#include "core/checkpoint.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mergepurge {

std::vector<uint32_t> TransitiveClosure(
    const std::vector<const PairSet*>& pair_sets, size_t n) {
  UnionFind uf(n);
  for (const PairSet* pairs : pair_sets) {
    pairs->ForEach([&uf](TupleId a, TupleId b) { uf.Union(a, b); });
  }
  return uf.ComponentLabels();
}

std::vector<uint32_t> TransitiveClosure(const PairSet& pairs, size_t n) {
  return TransitiveClosure(std::vector<const PairSet*>{&pairs}, n);
}

Result<PassResult> MultiPass::RunOnePass(
    const Dataset& dataset, const KeySpec& key,
    const EquationalTheory& theory) const {
  return method_ == Method::kSortedNeighborhood
             ? SortedNeighborhood(window_).Run(dataset, key, theory)
             : ClusteringMethod(clustering_options_).Run(dataset, key,
                                                         theory);
}

uint64_t MultiPass::ConfigDigest() const {
  std::string config = StringPrintf(
      "method=%d;window=%zu",
      static_cast<int>(method_), window_);
  if (method_ == Method::kClustering) {
    config += StringPrintf(
        ";clusters=%zu;prefix=%zu;depth=%zu;sample=%zu;full_key=%d;seed=%llu",
        clustering_options_.num_clusters,
        clustering_options_.fixed_key_prefix,
        clustering_options_.histogram_depth,
        clustering_options_.histogram_sample,
        clustering_options_.sort_with_full_key ? 1 : 0,
        static_cast<unsigned long long>(clustering_options_.seed));
  }
  return Fnv1a64(config);
}

Result<MultiPassResult> MultiPass::Run(
    const Dataset& dataset, const std::vector<KeySpec>& keys,
    const EquationalTheory& theory) const {
  return Run(dataset, keys, theory, /*checkpoint_dir=*/"");
}

Result<MultiPassResult> MultiPass::Run(
    const Dataset& dataset, const std::vector<KeySpec>& keys,
    const EquationalTheory& theory,
    const std::string& checkpoint_dir) const {
  if (keys.empty()) {
    return Status::InvalidArgument("multi-pass requires at least one key");
  }

  const bool checkpointing = !checkpoint_dir.empty();
  uint64_t dataset_digest = 0;
  uint64_t config_digest = 0;
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(checkpoint_dir, ec);
    if (ec) {
      return Status::IoError("cannot create checkpoint dir " +
                             checkpoint_dir + ": " + ec.message());
    }
    dataset_digest = DatasetDigest(dataset);
    config_digest = ConfigDigest();
  }

  MultiPassResult result;
  for (size_t i = 0; i < keys.size(); ++i) {
    const KeySpec& key = keys[i];

    if (checkpointing) {
      Result<PassManifest> manifest = ReadPassManifest(checkpoint_dir, i);
      if (manifest.ok() &&
          ManifestMatches(*manifest, key.name, KeySpecDigest(key),
                          config_digest, dataset_digest)) {
        Result<PairSet> stored =
            LoadCheckpointedPairs(checkpoint_dir, *manifest);
        if (stored.ok()) {
          PassResult pass;
          pass.key_name = key.name;
          pass.pairs = std::move(*stored);
          pass.resumed = true;
          ++result.passes_resumed;
          result.passes.push_back(std::move(pass));
          continue;
        }
        // A manifest whose pairs file is unreadable falls through to a
        // recompute — the checkpoint is advisory, never authoritative.
      }
    }

    Result<PassResult> pass = RunOnePass(dataset, key, theory);
    if (!pass.ok()) return pass.status();
    result.total_seconds += pass->total_seconds;

    if (checkpointing) {
      PassManifest manifest;
      manifest.key_name = key.name;
      manifest.key_digest = KeySpecDigest(key);
      manifest.config_digest = config_digest;
      manifest.dataset_digest = dataset_digest;
      manifest.pairs_file = PairsFileName(i);
      manifest.complete = true;
      MERGEPURGE_RETURN_NOT_OK(
          WritePassCheckpoint(checkpoint_dir, i, manifest, pass->pairs));
    }
    result.passes.push_back(std::move(*pass));
  }

  Timer closure_timer;
  PairSet all_pairs;
  std::vector<const PairSet*> pair_sets;
  pair_sets.reserve(result.passes.size());
  for (const PassResult& pass : result.passes) {
    all_pairs.Merge(pass.pairs);
    pair_sets.push_back(&pass.pairs);
  }
  result.union_pair_count = all_pairs.size();
  result.component_of = TransitiveClosure(pair_sets, dataset.size());
  result.closure_seconds = closure_timer.ElapsedSeconds();
  result.total_seconds += result.closure_seconds;
  return result;
}

}  // namespace mergepurge
