#include "core/multipass.h"

#include <unordered_set>

#include "util/timer.h"

namespace mergepurge {

std::vector<uint32_t> TransitiveClosure(
    const std::vector<const PairSet*>& pair_sets, size_t n) {
  UnionFind uf(n);
  for (const PairSet* pairs : pair_sets) {
    pairs->ForEach([&uf](TupleId a, TupleId b) { uf.Union(a, b); });
  }
  return uf.ComponentLabels();
}

std::vector<uint32_t> TransitiveClosure(const PairSet& pairs, size_t n) {
  return TransitiveClosure(std::vector<const PairSet*>{&pairs}, n);
}

Result<MultiPassResult> MultiPass::Run(
    const Dataset& dataset, const std::vector<KeySpec>& keys,
    const EquationalTheory& theory) const {
  if (keys.empty()) {
    return Status::InvalidArgument("multi-pass requires at least one key");
  }

  MultiPassResult result;
  for (const KeySpec& key : keys) {
    Result<PassResult> pass =
        method_ == Method::kSortedNeighborhood
            ? SortedNeighborhood(window_).Run(dataset, key, theory)
            : ClusteringMethod(clustering_options_).Run(dataset, key, theory);
    if (!pass.ok()) return pass.status();
    result.total_seconds += pass->total_seconds;
    result.passes.push_back(std::move(*pass));
  }

  Timer closure_timer;
  PairSet all_pairs;
  std::vector<const PairSet*> pair_sets;
  pair_sets.reserve(result.passes.size());
  for (const PassResult& pass : result.passes) {
    all_pairs.Merge(pass.pairs);
    pair_sets.push_back(&pass.pairs);
  }
  result.union_pair_count = all_pairs.size();
  result.component_of = TransitiveClosure(pair_sets, dataset.size());
  result.closure_seconds = closure_timer.ElapsedSeconds();
  result.total_seconds += result.closure_seconds;
  return result;
}

}  // namespace mergepurge
