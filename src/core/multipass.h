// MultiPass: "execute several independent runs of the sorted neighborhood
// method, each time using a different key and a relatively small window
// ... then apply the transitive closure to those pairs of records. The
// results will be a union of all pairs discovered by all independent runs,
// with no duplicates, plus all those pairs that can be inferred by
// transitivity of equality." (paper §2.4)

#ifndef MERGEPURGE_CORE_MULTIPASS_H_
#define MERGEPURGE_CORE_MULTIPASS_H_

#include <vector>

#include "core/clustering_method.h"
#include "core/sorted_neighborhood.h"
#include "core/union_find.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

// Computes the transitive closure of the given pair sets over n tuples and
// returns per-tuple component labels (tuples in the same component are
// declared the same entity).
std::vector<uint32_t> TransitiveClosure(
    const std::vector<const PairSet*>& pair_sets, size_t n);

// Convenience for a single pair set.
std::vector<uint32_t> TransitiveClosure(const PairSet& pairs, size_t n);

struct MultiPassResult {
  std::vector<PassResult> passes;        // One per key, in input order.
  std::vector<uint32_t> component_of;    // Closure over all passes' pairs.
  double closure_seconds = 0.0;
  double total_seconds = 0.0;            // Sum of pass times + closure.

  // Number of distinct pairs across all passes before closure.
  uint64_t union_pair_count = 0;

  // Checkpointed runs: passes loaded from disk instead of computed.
  size_t passes_resumed = 0;
};

class MultiPass {
 public:
  enum class Method { kSortedNeighborhood, kClustering };

  MultiPass(Method method, size_t window,
            ClusteringOptions clustering_options = ClusteringOptions())
      : method_(method),
        window_(window),
        clustering_options_(clustering_options) {
    clustering_options_.window = window;
  }

  // Runs one pass per key and closes over the union of the results.
  Result<MultiPassResult> Run(const Dataset& dataset,
                              const std::vector<KeySpec>& keys,
                              const EquationalTheory& theory) const;

  // Checkpointed variant: after each pass, persists that pass's pairs and
  // a manifest under `checkpoint_dir` (created if missing; see
  // core/checkpoint.h for the crash-consistency protocol). Passes whose
  // manifest matches the current dataset/key/config identity are loaded
  // from disk and skipped; the closure is always recomputed. An empty dir
  // behaves exactly like Run() above.
  Result<MultiPassResult> Run(const Dataset& dataset,
                              const std::vector<KeySpec>& keys,
                              const EquationalTheory& theory,
                              const std::string& checkpoint_dir) const;

 private:
  Result<PassResult> RunOnePass(const Dataset& dataset, const KeySpec& key,
                                const EquationalTheory& theory) const;
  uint64_t ConfigDigest() const;

  Method method_;
  size_t window_;
  ClusteringOptions clustering_options_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_MULTIPASS_H_
