#include "core/naive_all_pairs.h"

#include "util/timer.h"

namespace mergepurge {

PassResult NaiveAllPairs::Run(const Dataset& dataset,
                              const EquationalTheory& theory) const {
  PassResult result;
  result.key_name = "all-pairs";
  Timer total;
  const size_t n = dataset.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      ++result.comparisons;
      if (theory.Matches(dataset.record(static_cast<TupleId>(i)),
                         dataset.record(static_cast<TupleId>(j)))) {
        ++result.matches;
        result.pairs.Add(static_cast<TupleId>(i), static_cast<TupleId>(j));
      }
    }
  }
  result.scan_seconds = total.ElapsedSeconds();
  result.total_seconds = result.scan_seconds;
  return result;
}

}  // namespace mergepurge
