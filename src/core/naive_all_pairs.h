// NaiveAllPairs: the quadratic baseline — compare every pair of records.
// "We presume a pure quadratic time process (i.e., comparing each pair of
// records) is infeasible" (paper §2.1) for production sizes; it remains
// the accuracy gold standard for the theory on small databases and anchors
// the benchmarks' recall ceilings.

#ifndef MERGEPURGE_CORE_NAIVE_ALL_PAIRS_H_
#define MERGEPURGE_CORE_NAIVE_ALL_PAIRS_H_

#include "core/sorted_neighborhood.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"

namespace mergepurge {

class NaiveAllPairs {
 public:
  // Compares all N*(N-1)/2 pairs. Only sensible for small datasets.
  PassResult Run(const Dataset& dataset,
                 const EquationalTheory& theory) const;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_NAIVE_ALL_PAIRS_H_
