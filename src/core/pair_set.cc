#include "core/pair_set.h"

#include <algorithm>

namespace mergepurge {

bool PairSet::Add(TupleId a, TupleId b) {
  if (a == b) return false;
  return packed_.insert(Pack(a, b)).second;
}

bool PairSet::Contains(TupleId a, TupleId b) const {
  if (a == b) return false;
  return packed_.count(Pack(a, b)) != 0;
}

void PairSet::Merge(const PairSet& other) {
  packed_.insert(other.packed_.begin(), other.packed_.end());
}

std::vector<std::pair<TupleId, TupleId>> PairSet::ToSortedVector() const {
  std::vector<uint64_t> packed(packed_.begin(), packed_.end());
  std::sort(packed.begin(), packed.end());
  std::vector<std::pair<TupleId, TupleId>> out;
  out.reserve(packed.size());
  for (uint64_t p : packed) {
    out.emplace_back(static_cast<TupleId>(p >> 32),
                     static_cast<TupleId>(p & 0xffffffffu));
  }
  return out;
}

}  // namespace mergepurge
