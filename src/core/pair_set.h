// PairSet: a deduplicated set of unordered tuple-id pairs — the output of
// a merge pass ("each independent run will produce a set of pairs of
// records which can be merged", paper §2.4). Pairs are stored as packed
// 64-bit keys (lo id in the high word) in a hash set.

#ifndef MERGEPURGE_CORE_PAIR_SET_H_
#define MERGEPURGE_CORE_PAIR_SET_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "record/record.h"

namespace mergepurge {

class PairSet {
 public:
  PairSet() = default;

  // Adds the unordered pair {a, b}; ignores self-pairs. Returns true if
  // the pair was new.
  bool Add(TupleId a, TupleId b);

  bool Contains(TupleId a, TupleId b) const;

  size_t size() const { return packed_.size(); }
  bool empty() const { return packed_.empty(); }

  // Inserts every pair of `other`.
  void Merge(const PairSet& other);

  // Materializes (lo, hi) pairs, sorted for deterministic iteration.
  std::vector<std::pair<TupleId, TupleId>> ToSortedVector() const;

  // Applies fn(lo, hi) to each pair in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t packed : packed_) {
      fn(static_cast<TupleId>(packed >> 32),
         static_cast<TupleId>(packed & 0xffffffffu));
    }
  }

  void Reserve(size_t n) { packed_.reserve(n); }

 private:
  static uint64_t Pack(TupleId a, TupleId b) {
    TupleId lo = a < b ? a : b;
    TupleId hi = a < b ? b : a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  }

  std::unordered_set<uint64_t> packed_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_PAIR_SET_H_
