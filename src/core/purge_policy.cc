#include "core/purge_policy.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace mergepurge {

Result<MergeStrategy> MergeStrategyFromName(std::string_view name) {
  if (name == "longest") return MergeStrategy::kLongest;
  if (name == "most_frequent") return MergeStrategy::kMostFrequent;
  if (name == "first_seen") return MergeStrategy::kFirstSeen;
  if (name == "non_empty_first") return MergeStrategy::kNonEmptyFirst;
  if (name == "concat_distinct") return MergeStrategy::kConcatDistinct;
  return Status::InvalidArgument("unknown merge strategy '" +
                                 std::string(name) + "'");
}

void PurgePolicy::Set(FieldId field, MergeStrategy strategy) {
  if (field >= strategies_.size()) {
    strategies_.resize(field + 1, MergeStrategy::kLongest);
  }
  strategies_[field] = strategy;
}

MergeStrategy PurgePolicy::strategy_for(FieldId field) const {
  return field < strategies_.size() ? strategies_[field]
                                    : MergeStrategy::kLongest;
}

std::string PurgePolicy::MergeField(const Dataset& dataset,
                                    const std::vector<TupleId>& members,
                                    FieldId field) const {
  switch (strategy_for(field)) {
    case MergeStrategy::kLongest: {
      std::string_view best;
      for (TupleId t : members) {
        std::string_view value = dataset.record(t).field(field);
        if (value.size() > best.size()) best = value;
      }
      return std::string(best);
    }
    case MergeStrategy::kMostFrequent: {
      // Modal non-empty value; ties go to the value seen first so the
      // result is deterministic.
      std::map<std::string_view, size_t> counts;
      std::string_view best;
      size_t best_count = 0;
      for (TupleId t : members) {
        std::string_view value = dataset.record(t).field(field);
        if (value.empty()) continue;
        size_t count = ++counts[value];
        if (count > best_count) {
          best_count = count;
          best = value;
        }
      }
      return std::string(best);
    }
    case MergeStrategy::kFirstSeen:
      return std::string(dataset.record(members.front()).field(field));
    case MergeStrategy::kNonEmptyFirst: {
      for (TupleId t : members) {
        std::string_view value = dataset.record(t).field(field);
        if (!value.empty()) return std::string(value);
      }
      return "";
    }
    case MergeStrategy::kConcatDistinct: {
      std::string out;
      std::vector<std::string_view> seen;
      for (TupleId t : members) {
        std::string_view value = dataset.record(t).field(field);
        if (value.empty()) continue;
        if (std::find(seen.begin(), seen.end(), value) != seen.end()) {
          continue;
        }
        seen.push_back(value);
        if (!out.empty()) out += " / ";
        out += value;
      }
      return out;
    }
  }
  return "";
}

Record PurgePolicy::MergeClass(const Dataset& dataset,
                               const std::vector<TupleId>& members) const {
  Record merged;
  for (FieldId f = 0; f < dataset.schema().num_fields(); ++f) {
    merged.set_field(f, MergeField(dataset, members, f));
  }
  return merged;
}

Dataset PurgePolicy::Purge(const Dataset& dataset,
                           const std::vector<uint32_t>& component_of) const {
  std::unordered_map<uint32_t, size_t> component_to_group;
  std::vector<std::vector<TupleId>> groups;
  for (size_t t = 0; t < dataset.size() && t < component_of.size(); ++t) {
    auto [it, inserted] =
        component_to_group.emplace(component_of[t], groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(static_cast<TupleId>(t));
  }
  Dataset out(dataset.schema());
  for (const std::vector<TupleId>& group : groups) {
    out.Append(MergeClass(dataset, group));
  }
  return out;
}

}  // namespace mergepurge
