// PurgePolicy: the purge phase's merge semantics (paper §5): "The
// consequent of the rules can be programmed to specify selective
// extraction, purging, and even deduction of information, i.e.
// 'data-directed' projections, selections and deductions can be specified
// in the rule sets when matching records are found."
//
// A policy assigns each field a merge strategy applied across the records
// of one equivalence class:
//   kLongest       longest non-empty value (completeness; the default)
//   kMostFrequent  modal value (majority vote repairs typos)
//   kFirstSeen     value of the lowest tuple id (stable provenance)
//   kNonEmptyFirst first non-empty value in tuple-id order
//   kConcatDistinct all distinct non-empty values joined with " / "
//                  (deduction-style retention of alternates, e.g. aliases)
//
// Policies can be written in the rule language alongside match rules:
//
//   merge first_name: prefer most_frequent
//   merge last_name: prefer concat_distinct
//
// (see ParsePurgePolicy / RuleProgram integration in rules/).

#ifndef MERGEPURGE_CORE_PURGE_POLICY_H_
#define MERGEPURGE_CORE_PURGE_POLICY_H_

#include <string>
#include <string_view>
#include <vector>

#include "record/dataset.h"
#include "util/status.h"

namespace mergepurge {

enum class MergeStrategy {
  kLongest,
  kMostFrequent,
  kFirstSeen,
  kNonEmptyFirst,
  kConcatDistinct,
};

// Parses a strategy name ("longest", "most_frequent", "first_seen",
// "non_empty_first", "concat_distinct").
Result<MergeStrategy> MergeStrategyFromName(std::string_view name);

class PurgePolicy {
 public:
  // Every field defaults to kLongest.
  PurgePolicy() = default;

  // Sets the strategy for one field.
  void Set(FieldId field, MergeStrategy strategy);

  MergeStrategy strategy_for(FieldId field) const;

  // Merges the records of one equivalence class (tuple ids into `dataset`,
  // in ascending order) into a single record.
  Record MergeClass(const Dataset& dataset,
                    const std::vector<TupleId>& members) const;

  // Purges a whole dataset given per-tuple component labels: one merged
  // record per class, classes ordered by first appearance.
  Dataset Purge(const Dataset& dataset,
                const std::vector<uint32_t>& component_of) const;

 private:
  std::string MergeField(const Dataset& dataset,
                         const std::vector<TupleId>& members,
                         FieldId field) const;

  std::vector<MergeStrategy> strategies_;  // Indexed by field; may be short.
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_PURGE_POLICY_H_
