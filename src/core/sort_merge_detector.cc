#include "core/sort_merge_detector.h"

#include <string>
#include <vector>

#include "util/timer.h"

namespace mergepurge {

namespace {

// One merge step: merges `left` and `right` (sorted by key, ties by tid)
// into `out`, comparing each emitted record against the previous window-1
// emitted records that came from the other input run.
void MergeAndDetect(const Dataset& dataset,
                    const std::vector<std::string>& keys,
                    const std::vector<TupleId>& left,
                    const std::vector<TupleId>& right, size_t window,
                    const EquationalTheory& theory, PassResult* result,
                    std::vector<TupleId>* out) {
  out->clear();
  out->reserve(left.size() + right.size());
  // Ring buffer of the last window-1 emitted (tid, from_left) entries.
  std::vector<std::pair<TupleId, bool>> recent;
  recent.reserve(window > 0 ? window - 1 : 0);
  size_t ring_pos = 0;

  auto emit = [&](TupleId tid, bool from_left) {
    for (const auto& [other, other_from_left] : recent) {
      if (other_from_left == from_left) continue;  // Same-run: seen before.
      ++result->comparisons;
      if (theory.Matches(dataset.record(other), dataset.record(tid))) {
        ++result->matches;
        result->pairs.Add(other, tid);
      }
    }
    if (window >= 2) {
      if (recent.size() < window - 1) {
        recent.emplace_back(tid, from_left);
      } else {
        recent[ring_pos] = {tid, from_left};
        ring_pos = (ring_pos + 1) % (window - 1);
      }
    }
    out->push_back(tid);
  };

  size_t i = 0;
  size_t j = 0;
  while (i < left.size() && j < right.size()) {
    int cmp = keys[left[i]].compare(keys[right[j]]);
    bool take_left = cmp < 0 || (cmp == 0 && left[i] < right[j]);
    if (take_left) {
      emit(left[i++], true);
    } else {
      emit(right[j++], false);
    }
  }
  while (i < left.size()) emit(left[i++], true);
  while (j < right.size()) emit(right[j++], false);
}

}  // namespace

Result<PassResult> SortMergeDetector::Run(
    const Dataset& dataset, const KeySpec& key,
    const EquationalTheory& theory) const {
  if (window_ < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  KeyBuilder builder(key);
  MERGEPURGE_RETURN_NOT_OK(builder.Validate(dataset.schema()));

  PassResult result;
  result.key_name = key.name + "+merge-detect";
  Timer total;

  Timer phase;
  std::vector<std::string> keys = builder.BuildKeys(dataset);
  result.create_keys_seconds = phase.ElapsedSeconds();

  // Bottom-up merge sort from singleton runs; detection happens inside
  // every merge, so there is no separate window-scan phase.
  phase.Restart();
  std::vector<std::vector<TupleId>> runs(dataset.size());
  for (size_t t = 0; t < dataset.size(); ++t) {
    runs[t] = {static_cast<TupleId>(t)};
  }
  std::vector<TupleId> merged;
  while (runs.size() > 1) {
    std::vector<std::vector<TupleId>> next;
    next.reserve((runs.size() + 1) / 2);
    for (size_t r = 0; r + 1 < runs.size(); r += 2) {
      MergeAndDetect(dataset, keys, runs[r], runs[r + 1], window_, theory,
                     &result, &merged);
      next.push_back(std::move(merged));
    }
    if (runs.size() % 2 == 1) next.push_back(std::move(runs.back()));
    runs = std::move(next);
  }
  result.sort_seconds = phase.ElapsedSeconds();
  result.scan_seconds = 0.0;  // Folded into the merge phases.
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
