// SortMergeDetector: the alternative sorted-neighborhood algorithm the
// paper sketches in §2.2 — based on the duplicate-elimination idea of
// Bitton & DeWitt [3] and detailed in the companion TR [9]: "This
// duplicate elimination algorithm takes advantage of the fact that
// 'matching' records will come together during different phases of the
// Sort phase."
//
// Instead of sorting fully and then window-scanning, the detector runs a
// bottom-up merge sort over the keys and applies the equational theory
// DURING every merge step: as each record is emitted, it is compared
// against the previous w-1 emitted records that came from the OTHER input
// run (same-run pairs were already within w in an earlier merge and have
// been compared there).
//
// Properties (tested in tests/sort_merge_detector_test.cc):
//  * The detected pair set is a SUPERSET of the classic SNM pass with the
//    same window: two records within w of each other in the final order
//    were within w when their runs first merged. The converse fails —
//    records adjacent mid-sort can drift apart later — so the detector
//    catches matches the final window scan misses.
//  * The price is more comparisons: up to ~w*N per merge level instead of
//    w*N once. The ablation bench quantifies the recall/cost tradeoff.

#ifndef MERGEPURGE_CORE_SORT_MERGE_DETECTOR_H_
#define MERGEPURGE_CORE_SORT_MERGE_DETECTOR_H_

#include "core/sorted_neighborhood.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

class SortMergeDetector {
 public:
  explicit SortMergeDetector(size_t window) : window_(window) {}

  size_t window() const { return window_; }

  // Runs the merge-sort-with-detection pass. window >= 2 required.
  Result<PassResult> Run(const Dataset& dataset, const KeySpec& key,
                         const EquationalTheory& theory) const;

 private:
  size_t window_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_SORT_MERGE_DETECTOR_H_
