#include "core/sorted_neighborhood.h"

#include <algorithm>
#include <numeric>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sort/external_sort.h"
#include "util/timer.h"

namespace mergepurge {

std::vector<TupleId> SortedNeighborhood::SortByKey(const Dataset& dataset,
                                                   const KeySpec& key) {
  KeyBuilder builder(key);
  std::vector<std::string> keys = builder.BuildKeys(dataset);
  std::vector<TupleId> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&keys](TupleId a, TupleId b) {
    int cmp = keys[a].compare(keys[b]);
    if (cmp != 0) return cmp < 0;
    return a < b;
  });
  return order;
}

Result<PassResult> SortedNeighborhood::Run(
    const Dataset& dataset, const KeySpec& key,
    const EquationalTheory& theory) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  KeyBuilder builder(key);
  MERGEPURGE_RETURN_NOT_OK(builder.Validate(dataset.schema()));

  static Counter* const passes_counter =
      MetricsRegistry::Global().GetCounter(metric_names::kSnmPasses);
  static LatencyHistogram* const sort_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kSnmSortUs);
  static LatencyHistogram* const scan_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kSnmScanUs);

  Span pass_span("snm-pass");
  pass_span.AddArg("key", key.name);

  PassResult result;
  result.key_name = key.name;
  Timer total;
  Timer phase;
  std::vector<TupleId> order;

  if (options_.external_sort_memory > 0) {
    // I/O-bound regime: key creation is folded into run formation inside
    // the external sorter, so both phases are reported as sort time.
    Span span("external-sort");
    ExternalSortOptions sort_options;
    sort_options.memory_records = options_.external_sort_memory;
    sort_options.fan_in = options_.external_sort_fan_in;
    sort_options.temp_dir = options_.temp_dir;
    Result<std::vector<TupleId>> sorted =
        ExternalSorter(sort_options).Sort(dataset, key, nullptr);
    if (!sorted.ok()) return sorted.status();
    order = std::move(*sorted);
    result.sort_seconds = phase.ElapsedSeconds();
    sort_us->Record(static_cast<double>(phase.ElapsedMicros()));
  } else {
    // Phase 1: create keys.
    std::vector<std::string> keys;
    {
      Span span("create-keys");
      keys = builder.BuildKeys(dataset);
    }
    result.create_keys_seconds = phase.ElapsedSeconds();

    // Phase 2: sort.
    phase.Restart();
    {
      Span span("sort");
      order.resize(dataset.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&keys](TupleId a, TupleId b) {
        int cmp = keys[a].compare(keys[b]);
        if (cmp != 0) return cmp < 0;
        return a < b;
      });
    }
    result.sort_seconds = phase.ElapsedSeconds();
    sort_us->Record(static_cast<double>(phase.ElapsedMicros()));
  }

  // Phase 3: window scan (merge).
  phase.Restart();
  ScanStats stats;
  {
    Span span("window-scan");
    WindowScanner scanner(options_.window);
    stats = scanner.Scan(dataset, order, theory, &result.pairs);
    span.AddArg("windows", stats.windows);
    span.AddArg("comparisons", stats.comparisons);
  }
  result.scan_seconds = phase.ElapsedSeconds();
  scan_us->Record(static_cast<double>(phase.ElapsedMicros()));

  FlushScanStats(stats);
  theory.FlushMetrics();
  passes_counter->Increment();

  result.windows = stats.windows;
  result.comparisons = stats.comparisons;
  result.matches = stats.matches;
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
