// SortedNeighborhood: one pass of the sorted-neighborhood method
// (paper §2.2): create keys -> sort -> window scan.

#ifndef MERGEPURGE_CORE_SORTED_NEIGHBORHOOD_H_
#define MERGEPURGE_CORE_SORTED_NEIGHBORHOOD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/pair_set.h"
#include "core/window_scanner.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

// The outcome and phase timings of one merge pass (either method).
struct PassResult {
  std::string key_name;
  PairSet pairs;
  uint64_t windows = 0;  // Window positions scanned.
  uint64_t comparisons = 0;
  uint64_t matches = 0;
  double create_keys_seconds = 0.0;
  double sort_seconds = 0.0;   // SNM: full sort; clustering: per-cluster sorts.
  double cluster_seconds = 0.0;  // Clustering method only.
  double scan_seconds = 0.0;
  double total_seconds = 0.0;
  // True when the pass was loaded from a checkpoint instead of computed
  // (comparison/timing counters are then zero — the work never ran).
  bool resumed = false;
};

struct SnmOptions {
  size_t window = 10;

  // When > 0, the sort phase runs through the external k-way merge sorter
  // with at most this many (key, tid) entries in memory — the paper's
  // I/O-bound regime (§2.2: "for very large databases the dominant cost
  // will be disk I/O"). 0 = in-memory sort.
  size_t external_sort_memory = 0;

  // Merge fan-in for the external sort (paper used 16).
  size_t external_sort_fan_in = 16;

  // Run-file directory for the external sort.
  std::string temp_dir = "/tmp";
};

class SortedNeighborhood {
 public:
  explicit SortedNeighborhood(size_t window) { options_.window = window; }
  explicit SortedNeighborhood(SnmOptions options)
      : options_(std::move(options)) {}

  size_t window() const { return options_.window; }
  const SnmOptions& options() const { return options_; }

  // Runs one full pass with `key` over `dataset`. window >= 2 required.
  Result<PassResult> Run(const Dataset& dataset, const KeySpec& key,
                         const EquationalTheory& theory) const;

  // Sorts tuple ids of `dataset` by the key (ties broken by tuple id for
  // determinism). Exposed for the parallel implementation and tests.
  static std::vector<TupleId> SortByKey(const Dataset& dataset,
                                        const KeySpec& key);

 private:
  SnmOptions options_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_SORTED_NEIGHBORHOOD_H_
