#include "core/union_find.h"

#include <numeric>

namespace mergepurge {

UnionFind::UnionFind(size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

uint32_t UnionFind::Find(uint32_t x) {
  uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  // Path compression.
  while (parent_[x] != root) {
    uint32_t next = parent_[x];
    parent_[x] = root;
    ++path_compressions_;
    x = next;
  }
  return root;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  ++union_calls_;
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  ++unions_performed_;
  return true;
}

uint32_t UnionFind::SetSize(uint32_t x) { return size_[Find(x)]; }

void UnionFind::Grow(size_t n) {
  if (n <= parent_.size()) return;
  size_t old_size = parent_.size();
  parent_.resize(n);
  size_.resize(n, 1);
  for (size_t i = old_size; i < n; ++i) {
    parent_[i] = static_cast<uint32_t>(i);
  }
  num_sets_ += n - old_size;
}

std::vector<uint32_t> UnionFind::ComponentLabels() {
  // Canonical labeling: each element gets the smallest element of its set,
  // not the internal root. Roots depend on union order, and pair sets are
  // hash sets whose iteration order changes across (de)serialization; a
  // checkpointed-and-resumed closure must label identically to the run it
  // replaced.
  std::vector<uint32_t> labels(parent_.size());
  constexpr uint32_t kUnset = 0xffffffffu;
  std::vector<uint32_t> canonical(parent_.size(), kUnset);
  for (size_t i = 0; i < parent_.size(); ++i) {
    uint32_t root = Find(static_cast<uint32_t>(i));
    if (canonical[root] == kUnset) canonical[root] = static_cast<uint32_t>(i);
    labels[i] = canonical[root];
  }
  return labels;
}

}  // namespace mergepurge
