// Union-find (disjoint sets) with union by size and path compression.
// This is the transitive-closure engine of the multi-pass approach: the
// closure over pairs of tuple ids is "executed on pairs of tuple id's ...
// and fast solutions to compute transitive closure exist" (paper §3.3) —
// with these two heuristics the total cost is effectively linear.

#ifndef MERGEPURGE_CORE_UNION_FIND_H_
#define MERGEPURGE_CORE_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mergepurge {

class UnionFind {
 public:
  explicit UnionFind(size_t n);

  size_t size() const { return parent_.size(); }

  // Representative of x's set (with path compression).
  uint32_t Find(uint32_t x);

  // Merges the sets of a and b; returns true if they were distinct.
  bool Union(uint32_t a, uint32_t b);

  bool SameSet(uint32_t a, uint32_t b) { return Find(a) == Find(b); }

  // Number of elements in x's set.
  uint32_t SetSize(uint32_t x);

  // Number of disjoint sets.
  size_t NumSets() const { return num_sets_; }

  // Extends the universe to n elements (new elements are singletons).
  // No-op if n <= size(). Used by the incremental engine as batches arrive.
  void Grow(size_t n);

  // Labels each element with the smallest element of its set (compresses
  // all paths). The labeling is canonical: it depends only on the
  // partition, not on the order unions were applied, so closures computed
  // from differently-ordered (but equal) pair sets label identically.
  std::vector<uint32_t> ComponentLabels();

  // --- Work counters (plain members: UnionFind is single-threaded).
  // The closure driver flushes these to the global registry. ---

  // Union(a, b) calls that actually merged two distinct sets.
  uint64_t unions_performed() const { return unions_performed_; }
  // All Union(a, b) calls, including no-ops on already-joined sets.
  uint64_t union_calls() const { return union_calls_; }
  // Parent pointers rewritten by path compression inside Find().
  uint64_t path_compressions() const { return path_compressions_; }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
  size_t num_sets_;
  uint64_t unions_performed_ = 0;
  uint64_t union_calls_ = 0;
  uint64_t path_compressions_ = 0;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_UNION_FIND_H_
