#include "core/window_scanner.h"

namespace mergepurge {

ScanStats WindowScanner::Scan(const Dataset& dataset,
                              const std::vector<TupleId>& order,
                              const EquationalTheory& theory,
                              PairSet* pairs) const {
  return ScanRange(dataset, order, 0, order.size(), theory, pairs);
}

ScanStats WindowScanner::ScanRange(const Dataset& dataset,
                                   const std::vector<TupleId>& order,
                                   size_t begin, size_t end,
                                   const EquationalTheory& theory,
                                   PairSet* pairs) const {
  ScanStats stats;
  if (window_ < 2 || begin >= end) return stats;
  for (size_t i = begin + 1; i < end; ++i) {
    const TupleId entering = order[i];
    const Record& new_record = dataset.record(entering);
    const size_t window_start =
        (i - begin >= window_ - 1) ? i - (window_ - 1) : begin;
    for (size_t j = window_start; j < i; ++j) {
      ++stats.comparisons;
      const TupleId other = order[j];
      if (theory.Matches(dataset.record(other), new_record)) {
        ++stats.matches;
        pairs->Add(other, entering);
      }
    }
  }
  return stats;
}

}  // namespace mergepurge
