#include "core/window_scanner.h"

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace mergepurge {

void FlushScanStats(const ScanStats& stats) {
  static Counter* const windows =
      MetricsRegistry::Global().GetCounter(metric_names::kSnmWindows);
  static Counter* const comparisons =
      MetricsRegistry::Global().GetCounter(metric_names::kSnmComparisons);
  static Counter* const matches =
      MetricsRegistry::Global().GetCounter(metric_names::kSnmMatches);
  windows->Add(stats.windows);
  comparisons->Add(stats.comparisons);
  matches->Add(stats.matches);
}

ScanStats WindowScanner::Scan(const Dataset& dataset,
                              const std::vector<TupleId>& order,
                              const EquationalTheory& theory,
                              PairSet* pairs) const {
  return ScanRange(dataset, order, 0, order.size(), theory, pairs);
}

ScanStats WindowScanner::ScanRange(const Dataset& dataset,
                                   const std::vector<TupleId>& order,
                                   size_t begin, size_t end,
                                   const EquationalTheory& theory,
                                   PairSet* pairs) const {
  // Progress is reported in chunks so the hot loop sees only local
  // arithmetic between chunk boundaries.
  constexpr uint64_t kProgressChunk = 8192;
  ProgressReporter& progress = ProgressReporter::Global();
  ScanStats stats;
  if (window_ < 2 || begin >= end) return stats;
  for (size_t i = begin + 1; i < end; ++i) {
    const TupleId entering = order[i];
    const Record& new_record = dataset.record(entering);
    const size_t window_start =
        (i - begin >= window_ - 1) ? i - (window_ - 1) : begin;
    ++stats.windows;
    if ((stats.windows & (kProgressChunk - 1)) == 0) {
      progress.Advance(kProgressChunk);
    }
    for (size_t j = window_start; j < i; ++j) {
      ++stats.comparisons;
      const TupleId other = order[j];
      if (theory.Matches(dataset.record(other), new_record)) {
        ++stats.matches;
        pairs->Add(other, entering);
      }
    }
  }
  progress.Advance(stats.windows & (kProgressChunk - 1));
  return stats;
}

}  // namespace mergepurge
