// WindowScanner: the merge phase of the sorted-neighborhood method
// (paper §2.2, figure 1). "Move a fixed size window through the sequential
// list of records limiting the comparisons for matching records to those
// records in the window. If the size of the window is w records, then
// every new record entering the window is compared with the previous w-1
// records to find 'matching' records."

#ifndef MERGEPURGE_CORE_WINDOW_SCANNER_H_
#define MERGEPURGE_CORE_WINDOW_SCANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pair_set.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"

namespace mergepurge {

struct ScanStats {
  uint64_t windows = 0;  // Window positions advanced (records entering).
  uint64_t comparisons = 0;
  uint64_t matches = 0;

  ScanStats& operator+=(const ScanStats& other) {
    windows += other.windows;
    comparisons += other.comparisons;
    matches += other.matches;
    return *this;
  }
};

// Adds `stats` to the global snm.* counters. Call once per completed
// scan (serial) or inside the task commit (parallel) so speculative or
// retried executions are counted exactly once per committed unit of
// work. Kept out of the scan loop: the loop accumulates plain locals.
void FlushScanStats(const ScanStats& stats);

class WindowScanner {
 public:
  // window must be >= 2 (a window of 1 compares nothing).
  explicit WindowScanner(size_t window) : window_(window) {}

  size_t window() const { return window_; }

  // Scans `order` (tuple ids in sorted sequence) over `dataset`, applying
  // `theory` to each in-window pair; matching pairs are added to `pairs`.
  ScanStats Scan(const Dataset& dataset, const std::vector<TupleId>& order,
                 const EquationalTheory& theory, PairSet* pairs) const;

  // Scans a contiguous sub-range [begin, end) of `order`; used by the
  // parallel implementation, where fragments overlap by window-1 records
  // so the fragmentation is invisible (paper figure 5).
  ScanStats ScanRange(const Dataset& dataset,
                      const std::vector<TupleId>& order, size_t begin,
                      size_t end, const EquationalTheory& theory,
                      PairSet* pairs) const;

 private:
  size_t window_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_CORE_WINDOW_SCANNER_H_
