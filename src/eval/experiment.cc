#include "eval/experiment.h"

#include <cstdlib>

#include "util/string_util.h"

namespace mergepurge {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      status_ = Status::InvalidArgument("unexpected argument: " + arg);
      return;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      flags_.emplace_back(body, "true");
    } else {
      flags_.emplace_back(body.substr(0, eq), body.substr(eq + 1));
    }
  }
}

std::vector<std::string> ArgParser::Names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [key, value] : flags_) names.push_back(key);
  return names;
}

bool ArgParser::Has(const std::string& name) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return true;
  }
  return false;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& default_value) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return value;
  }
  return default_value;
}

int64_t ArgParser::GetInt(const std::string& name,
                          int64_t default_value) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return std::strtoll(value.c_str(), nullptr, 10);
  }
  return default_value;
}

double ArgParser::GetDouble(const std::string& name,
                            double default_value) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) return std::strtod(value.c_str(), nullptr);
  }
  return default_value;
}

bool ArgParser::GetBool(const std::string& name, bool default_value) const {
  for (const auto& [key, value] : flags_) {
    if (key == name) {
      return value == "true" || value == "1" || value == "yes";
    }
  }
  return default_value;
}

GeneratorConfig PaperGeneratorConfig(size_t paper_num_records,
                                     double selection_rate,
                                     int max_duplicates, double scale,
                                     uint64_t seed) {
  GeneratorConfig config;
  if (scale <= 0.0) scale = 1.0;
  double scaled = static_cast<double>(paper_num_records) * scale;
  config.num_records = scaled < 100.0 ? 100 : static_cast<size_t>(scaled);
  config.duplicate_selection_rate = selection_rate;
  config.max_duplicates_per_record = max_duplicates;
  config.seed = seed;
  return config;
}

}  // namespace mergepurge
