// Shared experiment plumbing for the benchmark harnesses: --flag=value
// parsing and the common workload descriptors used across figure benches.

#ifndef MERGEPURGE_EVAL_EXPERIMENT_H_
#define MERGEPURGE_EVAL_EXPERIMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "util/status.h"

namespace mergepurge {

// Parses "--name=value" (and bare "--name" as boolean true) arguments.
// Unknown positional arguments are an error surfaced via status().
class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  const Status& status() const { return status_; }

  bool Has(const std::string& name) const;

  // Flag names in the order given (for unknown-flag validation by tools).
  std::vector<std::string> Names() const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

 private:
  std::vector<std::pair<std::string, std::string>> flags_;
  Status status_;
};

// Builds the generator config used throughout the paper-figure benches:
// `scale` scales the paper's record counts down to laptop sizes (scale=1.0
// reproduces the paper's N).
GeneratorConfig PaperGeneratorConfig(size_t paper_num_records,
                                     double selection_rate,
                                     int max_duplicates, double scale,
                                     uint64_t seed);

}  // namespace mergepurge

#endif  // MERGEPURGE_EVAL_EXPERIMENT_H_
