#include "eval/key_quality.h"

#include <algorithm>
#include <unordered_map>

#include "core/sorted_neighborhood.h"

namespace mergepurge {

Result<KeyQualityReport> AnalyzeKeyQuality(const Dataset& dataset,
                                           const GroundTruth& truth,
                                           const KeySpec& key,
                                           std::vector<uint64_t> windows) {
  KeyBuilder builder(key);
  MERGEPURGE_RETURN_NOT_OK(builder.Validate(dataset.schema()));

  KeyQualityReport report;
  report.key_name = key.name;

  // Position of each tuple in the key's sorted order.
  std::vector<TupleId> order = SortedNeighborhood::SortByKey(dataset, key);
  std::vector<uint64_t> position(dataset.size());
  for (size_t p = 0; p < order.size(); ++p) position[order[p]] = p;

  // Gap of every true pair: group tuples by origin, then all in-group
  // pairs.
  std::unordered_map<uint32_t, std::vector<TupleId>> groups;
  for (size_t t = 0; t < dataset.size(); ++t) {
    groups[truth.origin_of(static_cast<TupleId>(t))].push_back(
        static_cast<TupleId>(t));
  }
  std::vector<uint64_t> gaps;
  for (const auto& [origin, members] : groups) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        uint64_t pi = position[members[i]];
        uint64_t pj = position[members[j]];
        gaps.push_back(pi > pj ? pi - pj : pj - pi);
      }
    }
  }
  report.true_pairs = gaps.size();
  if (gaps.empty()) return report;

  std::sort(gaps.begin(), gaps.end());
  report.adjacent_pairs = static_cast<uint64_t>(
      std::upper_bound(gaps.begin(), gaps.end(), 1) - gaps.begin());
  report.median_gap = gaps[gaps.size() / 2];
  report.p90_gap = gaps[gaps.size() * 9 / 10];
  report.max_gap = gaps.back();
  report.far_fraction =
      static_cast<double>(gaps.end() -
                          std::upper_bound(gaps.begin(), gaps.end(), 50)) /
      static_cast<double>(gaps.size());

  for (uint64_t w : windows) {
    uint64_t reachable = static_cast<uint64_t>(
        std::upper_bound(gaps.begin(), gaps.end(), w > 0 ? w - 1 : 0) -
        gaps.begin());
    report.coverage_windows.push_back(w);
    report.coverage_percent.push_back(
        100.0 * static_cast<double>(reachable) /
        static_cast<double>(gaps.size()));
  }
  return report;
}

}  // namespace mergepurge
