// Key-quality analysis (paper §2.4: "the choice of keys for sorting,
// their order, and the extraction of relevant information from a key
// field is a knowledge intensive activity that must be explored prior to
// running a merge/purge process").
//
// Given a dataset with ground truth and a key spec, the analyzer sorts by
// the key and measures, for every true duplicate pair, the DISTANCE
// between its two records in the sorted order. The distribution answers
// the operational questions directly:
//   * coverage_at(w): the recall CEILING of a single SNM pass with window
//     w under this key (pairs farther apart than w-1 cannot be compared);
//   * median/p90 gap: how large a window this key would need;
//   * far_fraction: the share of pairs this key can never catch cheaply —
//     the reason multi-pass with complementary keys wins.

#ifndef MERGEPURGE_EVAL_KEY_QUALITY_H_
#define MERGEPURGE_EVAL_KEY_QUALITY_H_

#include <cstdint>
#include <vector>

#include "gen/generator.h"
#include "keys/key_builder.h"
#include "record/dataset.h"
#include "util/status.h"

namespace mergepurge {

struct KeyQualityReport {
  std::string key_name;
  uint64_t true_pairs = 0;

  // Sorted-order gap distribution over true pairs.
  uint64_t adjacent_pairs = 0;   // Gap == 1.
  uint64_t median_gap = 0;
  uint64_t p90_gap = 0;
  uint64_t max_gap = 0;

  // Fraction of true pairs with gap > 50 (incurable by any practical
  // window; the paper's w sweep stopped at 50).
  double far_fraction = 0.0;

  // Recall ceiling of a single pass with window w: fraction of true pairs
  // with gap <= w - 1. `coverage_windows` lists the probed w values
  // aligned with `coverage_percent`.
  std::vector<uint64_t> coverage_windows;
  std::vector<double> coverage_percent;
};

// Analyzes `key` over the dataset + truth. Probes coverage at the given
// windows (default {2, 5, 10, 20, 50}).
Result<KeyQualityReport> AnalyzeKeyQuality(
    const Dataset& dataset, const GroundTruth& truth, const KeySpec& key,
    std::vector<uint64_t> windows = {2, 5, 10, 20, 50});

}  // namespace mergepurge

#endif  // MERGEPURGE_EVAL_KEY_QUALITY_H_
