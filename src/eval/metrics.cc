#include "eval/metrics.h"

#include <algorithm>

#include "core/multipass.h"

namespace mergepurge {

AccuracyReport EvaluateComponents(const std::vector<uint32_t>& component_of,
                                  const GroundTruth& truth) {
  AccuracyReport report;
  report.true_pairs = truth.NumTruePairs();

  // Sort (component, origin) so each component is a contiguous run and
  // each (component, origin) subgroup is contiguous within it.
  std::vector<std::pair<uint32_t, uint32_t>> labels;
  labels.reserve(component_of.size());
  for (size_t t = 0; t < component_of.size(); ++t) {
    labels.emplace_back(component_of[t],
                        truth.origin_of(static_cast<TupleId>(t)));
  }
  std::sort(labels.begin(), labels.end());

  auto pairs_of = [](uint64_t k) { return k * (k - 1) / 2; };

  size_t i = 0;
  while (i < labels.size()) {
    size_t component_end = i;
    while (component_end < labels.size() &&
           labels[component_end].first == labels[i].first) {
      ++component_end;
    }
    report.found_pairs += pairs_of(component_end - i);
    size_t j = i;
    while (j < component_end) {
      size_t group_end = j;
      while (group_end < component_end &&
             labels[group_end].second == labels[j].second) {
        ++group_end;
      }
      report.true_positives += pairs_of(group_end - j);
      j = group_end;
    }
    i = component_end;
  }

  report.false_positives = report.found_pairs - report.true_positives;
  if (report.true_pairs > 0) {
    report.recall_percent =
        100.0 * static_cast<double>(report.true_positives) /
        static_cast<double>(report.true_pairs);
    report.false_positive_percent =
        100.0 * static_cast<double>(report.false_positives) /
        static_cast<double>(report.true_pairs);
  }
  if (report.found_pairs > 0) {
    report.precision_percent =
        100.0 * static_cast<double>(report.true_positives) /
        static_cast<double>(report.found_pairs);
  }
  return report;
}

AccuracyReport EvaluatePairSet(const PairSet& pairs, size_t n,
                               const GroundTruth& truth) {
  return EvaluateComponents(TransitiveClosure(pairs, n), truth);
}

}  // namespace mergepurge
