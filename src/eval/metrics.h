// Accuracy metrics against generator ground truth.
//
// All evaluation is equivalence-class based: a run's output (a pair set or
// the multi-pass closure) is first closed transitively, then every pair of
// tuples sharing a component is a "detected duplicated pair". Against the
// ground truth this yields the paper's two curves:
//   * recall_percent — "percent of correctly detected duplicated pairs"
//     (figure 2a): detected true pairs / total true pairs;
//   * false_positive_percent — "percent of incorrectly detected duplicated
//     pairs" (figure 2b): detected false pairs / total true pairs.

#ifndef MERGEPURGE_EVAL_METRICS_H_
#define MERGEPURGE_EVAL_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/pair_set.h"
#include "gen/generator.h"

namespace mergepurge {

struct AccuracyReport {
  uint64_t true_pairs = 0;       // Ground-truth duplicate pairs.
  uint64_t found_pairs = 0;      // Pairs implied by the found components.
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;

  double recall_percent = 0.0;
  double false_positive_percent = 0.0;  // FP / true_pairs * 100.
  double precision_percent = 0.0;       // TP / found_pairs * 100.
};

// Evaluates per-tuple component labels (e.g. MultiPassResult.component_of).
AccuracyReport EvaluateComponents(const std::vector<uint32_t>& component_of,
                                  const GroundTruth& truth);

// Closes `pairs` over n tuples, then evaluates the components.
AccuracyReport EvaluatePairSet(const PairSet& pairs, size_t n,
                               const GroundTruth& truth);

}  // namespace mergepurge

#endif  // MERGEPURGE_EVAL_METRICS_H_
