#include "eval/table_printer.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "util/string_util.h"

namespace mergepurge {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out += "  ";
      out += cells[c];
      out.append(widths[c] - cells[c].size(), ' ');
    }
    // Trim trailing padding.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  append_row(headers_);
  std::vector<std::string> rule;
  for (size_t width : widths) rule.push_back(std::string(width, '-'));
  append_row(rule);
  for (const auto& row : rows_) append_row(row);
  return out;
}

void TablePrinter::Print() const {
  std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

std::string FormatDouble(double value, int decimals) {
  return StringPrintf("%.*f", decimals, value);
}

std::string FormatPercent(double value) {
  return StringPrintf("%.2f%%", value);
}

std::string FormatCount(uint64_t value) {
  return StringPrintf("%llu", static_cast<unsigned long long>(value));
}

}  // namespace mergepurge
