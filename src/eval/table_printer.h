// Aligned plain-text tables for the benchmark harnesses (each figure bench
// prints the paper's series as one of these tables).

#ifndef MERGEPURGE_EVAL_TABLE_PRINTER_H_
#define MERGEPURGE_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mergepurge {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Rows shorter than the header are padded with empty cells.
  void AddRow(std::vector<std::string> cells);

  std::string ToString() const;

  // Writes ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers for table cells.
std::string FormatDouble(double value, int decimals = 2);
std::string FormatPercent(double value);
std::string FormatCount(uint64_t value);

}  // namespace mergepurge

#endif  // MERGEPURGE_EVAL_TABLE_PRINTER_H_
