#include "gen/error_model.h"

#include <cctype>

#include "text/keyboard_distance.h"

namespace mergepurge {

ErrorModel::ErrorModel(TypoFrequencies frequencies, double adjacent_key_bias)
    : frequencies_(frequencies), adjacent_key_bias_(adjacent_key_bias) {}

int ErrorModel::SampleTypoCount(double severity, Rng* rng) const {
  if (severity < 0.0) severity = 0.0;
  // Geometric-style tail: P(>=k+1 | >=k) grows with severity but is capped
  // so fields never dissolve into noise entirely.
  double continue_prob = 0.20 * severity;
  if (continue_prob > 0.6) continue_prob = 0.6;
  int count = 1;
  while (count < 6 && rng->NextBernoulli(continue_prob)) ++count;
  return count;
}

ErrorModel::TypoType ErrorModel::SampleType(Rng* rng) const {
  size_t pick = rng->NextWeighted(
      {frequencies_.substitution, frequencies_.deletion,
       frequencies_.insertion, frequencies_.transposition});
  switch (pick) {
    case 0:
      return TypoType::kSubstitution;
    case 1:
      return TypoType::kDeletion;
    case 2:
      return TypoType::kInsertion;
    default:
      return TypoType::kTransposition;
  }
}

char ErrorModel::RandomCharLike(char context, Rng* rng) const {
  if (std::isdigit(static_cast<unsigned char>(context))) {
    return static_cast<char>('0' + rng->NextBounded(10));
  }
  return static_cast<char>('A' + rng->NextBounded(26));
}

char ErrorModel::SubstituteChar(char original, Rng* rng) const {
  // Digits stay digits (an SSN or zip with a letter would be rejected at
  // data entry); the adjacent-key effect becomes the neighbouring digit.
  if (std::isdigit(static_cast<unsigned char>(original))) {
    if (rng->NextBernoulli(adjacent_key_bias_)) {
      char lo = original == '0' ? '1' : static_cast<char>(original - 1);
      char hi = original == '9' ? '8' : static_cast<char>(original + 1);
      return rng->NextBernoulli(0.5) ? lo : hi;
    }
    char replacement = static_cast<char>('0' + rng->NextBounded(10));
    while (replacement == original) {
      replacement = static_cast<char>('0' + rng->NextBounded(10));
    }
    return replacement;
  }
  // Typists usually hit a neighbouring key.
  if (rng->NextBernoulli(adjacent_key_bias_)) {
    char neighbor = NeighborKey(
        original, static_cast<unsigned>(rng->NextBounded(8)));
    if (neighbor != original) {
      if (std::isupper(static_cast<unsigned char>(original))) {
        neighbor = static_cast<char>(
            std::toupper(static_cast<unsigned char>(neighbor)));
      }
      return neighbor;
    }
  }
  char replacement = RandomCharLike(original, rng);
  // Guarantee the substitution changes the character.
  while (replacement == original) replacement = RandomCharLike(original, rng);
  return replacement;
}

std::string ErrorModel::InjectOneTypo(std::string_view s, Rng* rng) const {
  std::string out(s);
  if (out.empty()) {
    // Insertion is the only typo applicable to an empty field.
    out += static_cast<char>('A' + rng->NextBounded(26));
    return out;
  }
  TypoType type = SampleType(rng);
  size_t pos = rng->NextBounded(out.size());
  switch (type) {
    case TypoType::kSubstitution:
      out[pos] = SubstituteChar(out[pos], rng);
      break;
    case TypoType::kDeletion:
      out.erase(pos, 1);
      break;
    case TypoType::kInsertion: {
      char c = RandomCharLike(out[pos], rng);
      out.insert(out.begin() + static_cast<long>(pos), c);
      break;
    }
    case TypoType::kTransposition:
      if (out.size() >= 2) {
        if (pos == out.size() - 1) --pos;
        if (out[pos] != out[pos + 1]) {
          std::swap(out[pos], out[pos + 1]);
        } else {
          // Transposing equal characters is a no-op; substitute instead so
          // the corruption always takes effect.
          out[pos] = SubstituteChar(out[pos], rng);
        }
      } else {
        out[pos] = SubstituteChar(out[pos], rng);
      }
      break;
  }
  return out;
}

std::string ErrorModel::InjectTypos(std::string_view s, int count,
                                    Rng* rng) const {
  std::string out(s);
  for (int i = 0; i < count; ++i) out = InjectOneTypo(out, rng);
  return out;
}

std::string ErrorModel::TransposeDigits(std::string_view digits,
                                        Rng* rng) const {
  std::string out(digits);
  if (out.size() < 2) return out;
  size_t pos = rng->NextBounded(out.size() - 1);
  // Find a position where the swap is visible.
  for (size_t tries = 0; tries < out.size() && out[pos] == out[pos + 1];
       ++tries) {
    pos = rng->NextBounded(out.size() - 1);
  }
  std::swap(out[pos], out[pos + 1]);
  return out;
}

}  // namespace mergepurge
