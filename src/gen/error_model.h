// Typographical error model for the database generator.
//
// Error-type frequencies follow the spelling-correction literature the
// paper cites (Kukich, ACM Computing Surveys 24(4), 1992): the vast
// majority of misspellings are single errors, split across substitution,
// deletion, insertion and adjacent transposition; typed substitutions are
// strongly biased toward QWERTY-adjacent keys.

#ifndef MERGEPURGE_GEN_ERROR_MODEL_H_
#define MERGEPURGE_GEN_ERROR_MODEL_H_

#include <string>
#include <string_view>

#include "util/random.h"

namespace mergepurge {

// Relative frequencies of the four primitive typo operations. Values are
// weights (normalized internally).
struct TypoFrequencies {
  double substitution = 0.40;
  double deletion = 0.25;
  double insertion = 0.20;
  double transposition = 0.15;
};

class ErrorModel {
 public:
  explicit ErrorModel(TypoFrequencies frequencies = TypoFrequencies(),
                      double adjacent_key_bias = 0.65);

  // Samples how many typos a corrupted field receives. Severity 1.0 yields
  // the literature's distribution (~80% single error, ~15% double, ~5%
  // triple); higher severity shifts mass to more errors. Always >= 1.
  int SampleTypoCount(double severity, Rng* rng) const;

  // Applies `count` random typos. Alphabetic input yields alphabetic
  // noise; digit positions get digit noise, so SSNs/zips stay digit
  // strings.
  std::string InjectTypos(std::string_view s, int count, Rng* rng) const;

  // Applies exactly one typo of a sampled type.
  std::string InjectOneTypo(std::string_view s, Rng* rng) const;

  // Transposes two adjacent digits of a digit string (the paper's
  // "193456782 vs 913456782" SSN error). Position is random; strings
  // shorter than 2 are returned unchanged.
  std::string TransposeDigits(std::string_view digits, Rng* rng) const;

 private:
  enum class TypoType { kSubstitution, kDeletion, kInsertion, kTransposition };

  TypoType SampleType(Rng* rng) const;
  char RandomCharLike(char context, Rng* rng) const;
  char SubstituteChar(char original, Rng* rng) const;

  TypoFrequencies frequencies_;
  double adjacent_key_bias_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_GEN_ERROR_MODEL_H_
