#include "gen/generator.h"

#include <algorithm>
#include <unordered_map>

#include "gen/names_data.h"
#include "gen/places_data.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "text/nicknames.h"
#include "util/string_util.h"

namespace mergepurge {

GroundTruth::GroundTruth(std::vector<uint32_t> origin_of)
    : origin_of_(std::move(origin_of)) {
  std::unordered_map<uint32_t, uint64_t> cluster_sizes;
  for (uint32_t origin : origin_of_) ++cluster_sizes[origin];
  for (const auto& [origin, size] : cluster_sizes) {
    num_true_pairs_ += size * (size - 1) / 2;
    num_duplicate_tuples_ += size - 1;
  }
}

DatabaseGenerator::DatabaseGenerator(GeneratorConfig config)
    : config_(config), error_model_() {}

namespace {

// Street types cycled through address generation.
constexpr const char* kStreetTypes[] = {"ST", "AVE", "RD", "DR", "LN",
                                        "BLVD", "CT", "PL"};

std::string RandomNicknameVariant(std::string_view first_name, Rng* rng) {
  // Walk the default nickname groups: pick another variant that shares the
  // canonical form. The table maps variant -> canonical, so we search for a
  // different variant with the same canonical by probing known diminutive
  // transformations first, then fall back to the canonical itself.
  const NicknameTable& table = NicknameTable::Default();
  std::string canonical = table.Canonicalize(first_name);
  if (!EqualsIgnoreCase(canonical, first_name)) {
    // The name itself is a variant: use the canonical form.
    return canonical;
  }
  // The name is canonical. Derive a plausible diminutive deterministically:
  // prefix truncation is the most common English diminutive ("DAN", "ROB").
  if (first_name.size() > 4) {
    size_t keep = 3 + rng->NextBounded(2);
    return std::string(first_name.substr(0, keep));
  }
  return std::string(first_name);
}

}  // namespace

Record DatabaseGenerator::MakeOriginal(uint64_t ordinal, Rng* rng) const {
  Record r;
  // SSN: 9 digits; ordinal-based prefix keeps originals distinct, low
  // digits randomized so sorting by SSN is not generation order.
  std::string ssn = StringPrintf("%09llu",
                                 static_cast<unsigned long long>(
                                     (ordinal * 2654435761ull +
                                      rng->NextBounded(997)) %
                                     1000000000ull));
  r.set_field(employee::kSsn, std::move(ssn));
  r.set_field(employee::kFirstName,
              FirstNameAt(rng->NextBounded(NumFirstNames())));
  if (rng->NextBernoulli(config_.empty_initial_prob)) {
    r.set_field(employee::kInitial, "");
  } else {
    r.set_field(employee::kInitial,
                std::string(1, static_cast<char>('A' + rng->NextBounded(26))));
  }
  r.set_field(employee::kLastName,
              SurnameAt(rng->NextBounded(NumSurnames())));

  std::string address =
      StringPrintf("%llu %s %s",
                   static_cast<unsigned long long>(1 + rng->NextBounded(9999)),
                   StreetNameAt(rng->NextBounded(NumStreetNames())).c_str(),
                   kStreetTypes[rng->NextBounded(8)]);
  r.set_field(employee::kAddress, std::move(address));
  if (rng->NextBernoulli(config_.empty_apartment_prob)) {
    r.set_field(employee::kApartment, "");
  } else {
    r.set_field(employee::kApartment,
                StringPrintf("APT %llu", static_cast<unsigned long long>(
                                             1 + rng->NextBounded(99))));
  }

  Place place = PlaceAt(rng->NextBounded(NumPlaces()));
  r.set_field(employee::kCity, place.city);
  r.set_field(employee::kState, place.state);
  r.set_field(employee::kZip,
              StringPrintf("%05llu", static_cast<unsigned long long>(
                                         place.zip_base)));
  return r;
}

Record DatabaseGenerator::MakeDuplicate(const Record& original,
                                        Rng* rng) const {
  Record dup = original;

  // --- Gross, field-replacing errors first. ---
  if (rng->NextBernoulli(config_.ssn_transpose_prob)) {
    dup.set_field(employee::kSsn,
                  error_model_.TransposeDigits(dup.field(employee::kSsn),
                                               rng));
  }
  if (rng->NextBernoulli(config_.last_name_change_prob)) {
    // Marriage / alias: a completely different surname.
    dup.set_field(employee::kLastName,
                  SurnameAt(rng->NextBounded(NumSurnames())));
  }
  if (rng->NextBernoulli(config_.address_change_prob)) {
    // The person moved: new street address and apartment, same city with
    // probability 1/2 (local move) else a new place entirely.
    dup.set_field(
        employee::kAddress,
        StringPrintf("%llu %s %s",
                     static_cast<unsigned long long>(
                         1 + rng->NextBounded(9999)),
                     StreetNameAt(rng->NextBounded(NumStreetNames())).c_str(),
                     kStreetTypes[rng->NextBounded(8)]));
    dup.set_field(employee::kApartment, "");
    if (rng->NextBernoulli(0.5)) {
      Place place = PlaceAt(rng->NextBounded(NumPlaces()));
      dup.set_field(employee::kCity, place.city);
      dup.set_field(employee::kState, place.state);
      dup.set_field(employee::kZip,
                    StringPrintf("%05llu", static_cast<unsigned long long>(
                                               place.zip_base)));
    }
  }
  if (rng->NextBernoulli(config_.nickname_prob)) {
    dup.set_field(employee::kFirstName,
                  RandomNicknameVariant(dup.field(employee::kFirstName),
                                        rng));
  }
  if (rng->NextBernoulli(config_.initial_flip_prob)) {
    if (dup.field(employee::kInitial).empty()) {
      dup.set_field(employee::kInitial,
                    std::string(1, static_cast<char>(
                                       'A' + rng->NextBounded(26))));
    } else {
      dup.set_field(employee::kInitial, "");
    }
  }
  if (rng->NextBernoulli(config_.missing_field_prob)) {
    // Blank out one of the optional fields.
    static constexpr FieldId kOptional[] = {employee::kInitial,
                                            employee::kApartment,
                                            employee::kZip};
    dup.set_field(kOptional[rng->NextBounded(3)], "");
  }

  // --- Per-field typographical noise. ---
  static constexpr FieldId kTypoFields[] = {
      employee::kSsn,     employee::kFirstName, employee::kLastName,
      employee::kAddress, employee::kCity,      employee::kZip,
  };
  for (FieldId field : kTypoFields) {
    if (dup.field(field).empty()) continue;
    if (!rng->NextBernoulli(config_.field_corruption_prob)) continue;
    int typos = error_model_.SampleTypoCount(config_.error_severity, rng);
    dup.set_field(field,
                  error_model_.InjectTypos(dup.field(field), typos, rng));
  }
  return dup;
}

Record DatabaseGenerator::MakeFamilyMember(const Record& relative,
                                           uint64_t ordinal,
                                           Rng* rng) const {
  // Start from a fresh person (own SSN, initial, first name)...
  Record member = MakeOriginal(ordinal, rng);
  // ...living in the relative's household with the same surname.
  member.set_field(employee::kLastName,
                   std::string(relative.field(employee::kLastName)));
  member.set_field(employee::kAddress,
                   std::string(relative.field(employee::kAddress)));
  member.set_field(employee::kApartment,
                   std::string(relative.field(employee::kApartment)));
  member.set_field(employee::kCity,
                   std::string(relative.field(employee::kCity)));
  member.set_field(employee::kState,
                   std::string(relative.field(employee::kState)));
  member.set_field(employee::kZip,
                   std::string(relative.field(employee::kZip)));
  if (rng->NextBernoulli(config_.family_similar_name_prob)) {
    // A spouse or sibling with a similar-sounding name (MICHAEL/MICHAELA,
    // JOHN/JOHNNA): derive by extending or trimming the partner's name.
    std::string partner(relative.field(employee::kFirstName));
    if (!partner.empty()) {
      if (rng->NextBernoulli(0.5)) {
        partner += (rng->NextBernoulli(0.5) ? "A" : "E");
      } else if (partner.size() > 3) {
        partner.pop_back();
      }
      member.set_field(employee::kFirstName, std::move(partner));
    }
  }
  return member;
}

Result<GeneratedDatabase> DatabaseGenerator::Generate() const {
  if (config_.num_records == 0) {
    return Status::InvalidArgument("num_records must be > 0");
  }
  if (config_.duplicate_selection_rate < 0.0 ||
      config_.duplicate_selection_rate > 1.0) {
    return Status::InvalidArgument(
        "duplicate_selection_rate must be in [0, 1]");
  }
  if (config_.max_duplicates_per_record < 0) {
    return Status::InvalidArgument("max_duplicates_per_record must be >= 0");
  }

  Rng rng(config_.seed);
  Rng original_rng = rng.Fork();
  Rng duplicate_rng = rng.Fork();
  Rng shuffle_rng = rng.Fork();

  std::vector<Record> records;
  std::vector<uint32_t> origin_of;

  Record previous_original;
  for (size_t i = 0; i < config_.num_records; ++i) {
    Record original =
        (i > 0 && original_rng.NextBernoulli(config_.family_prob))
            ? MakeFamilyMember(previous_original, i, &original_rng)
            : MakeOriginal(i, &original_rng);
    bool selected =
        original_rng.NextBernoulli(config_.duplicate_selection_rate);
    int num_dups =
        (selected && config_.max_duplicates_per_record > 0)
            ? static_cast<int>(1 + duplicate_rng.NextBounded(
                                       static_cast<uint64_t>(
                                           config_.max_duplicates_per_record)))
            : 0;
    for (int d = 0; d < num_dups; ++d) {
      records.push_back(MakeDuplicate(original, &duplicate_rng));
      origin_of.push_back(static_cast<uint32_t>(i));
    }
    previous_original = original;
    records.push_back(std::move(original));
    origin_of.push_back(static_cast<uint32_t>(i));
  }

  if (config_.shuffle) {
    // Fisher-Yates over records and provenance in lockstep.
    for (size_t i = records.size(); i > 1; --i) {
      size_t j = shuffle_rng.NextBounded(i);
      std::swap(records[i - 1], records[j]);
      std::swap(origin_of[i - 1], origin_of[j]);
    }
  }

  GeneratedDatabase out;
  out.dataset = Dataset(employee::MakeSchema());
  out.dataset.Reserve(records.size());
  for (Record& r : records) out.dataset.Append(std::move(r));
  out.truth = GroundTruth(std::move(origin_of));

  static Counter* const gen_records =
      MetricsRegistry::Global().GetCounter(metric_names::kGenRecords);
  static Counter* const gen_duplicates =
      MetricsRegistry::Global().GetCounter(metric_names::kGenDuplicates);
  gen_records->Add(out.dataset.size());
  gen_duplicates->Add(out.dataset.size() - config_.num_records);
  return out;
}

}  // namespace mergepurge
