// Controlled synthetic database generation (paper §3.1).
//
// "All databases used to test the sorted neighborhood method and the
// clustering method were generated automatically by a database generator
// that allows us to perform controlled studies and to establish the
// accuracy of the solution method."
//
// Parameters mirror the paper's: database size, the percentage of records
// selected for duplication, the maximum number of duplicates per selected
// record, and the amount (severity) of error introduced into duplicates.
// The generator also produces the GroundTruth used by the accuracy metrics.

#ifndef MERGEPURGE_GEN_GENERATOR_H_
#define MERGEPURGE_GEN_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "gen/error_model.h"
#include "record/dataset.h"
#include "util/random.h"
#include "util/status.h"

namespace mergepurge {

struct GeneratorConfig {
  // Number of original (non-duplicate) records.
  size_t num_records = 10000;

  // Fraction of originals selected to receive duplicates (paper: 10%-50%).
  double duplicate_selection_rate = 0.5;

  // Each selected original receives between 1 and this many duplicates,
  // uniformly (paper: "a maximum of 5 duplicates per selected record").
  int max_duplicates_per_record = 5;

  // Scales the number of typos per corrupted field (1.0 = literature
  // distribution; see ErrorModel::SampleTypoCount).
  double error_severity = 1.0;

  // Per corruptible field, the probability a duplicate gets typos in it.
  double field_corruption_prob = 0.35;

  // Gross errors (paper: "range from small typographical changes, to
  // complete change of last names and addresses").
  double ssn_transpose_prob = 0.20;   // Transpose two adjacent SSN digits.
  double last_name_change_prob = 0.04;  // Complete surname change.
  double address_change_prob = 0.08;    // Complete move: address+apt change.
  double nickname_prob = 0.15;          // First name replaced by a variant.
  double missing_field_prob = 0.06;     // Blank out a non-key field.
  double initial_flip_prob = 0.12;      // Initial appears/disappears/changes.

  // Probability an original record has an empty middle initial / apartment.
  double empty_initial_prob = 0.30;
  double empty_apartment_prob = 0.60;

  // Probability an original is a household member of the previous original:
  // same surname and address but a DIFFERENT person (own SSN, own first
  // name, often a similar-sounding one — the paper's "Michael Smith and
  // Michele Smith could have the same address" example, §2.3). Households
  // are what give the equational theory realistic false positives.
  double family_prob = 0.05;

  // Given a family member, probability the first name is derived from the
  // partner's (MICHAEL -> MICHAELA) rather than drawn independently.
  double family_similar_name_prob = 0.30;

  // Shuffle the concatenated list so duplicates are not adjacent by
  // construction (input order must not leak into accuracy).
  bool shuffle = true;

  uint64_t seed = 42;
};

// The per-tuple provenance of a generated database. Tuple t originates
// from original record origin_of[t] (an id in [0, num_originals)); a pair
// (a, b) is a true duplicate pair iff origin_of[a] == origin_of[b].
class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(std::vector<uint32_t> origin_of);

  size_t num_tuples() const { return origin_of_.size(); }
  uint32_t origin_of(TupleId t) const { return origin_of_[t]; }

  bool IsTruePair(TupleId a, TupleId b) const {
    return a != b && origin_of_[a] == origin_of_[b];
  }

  // Number of unordered true duplicate pairs: sum over origin clusters of
  // size k of k*(k-1)/2. This is the recall denominator.
  uint64_t NumTruePairs() const { return num_true_pairs_; }

  // Number of tuples that are duplicates (cluster size - 1 summed).
  uint64_t NumDuplicateTuples() const { return num_duplicate_tuples_; }

 private:
  std::vector<uint32_t> origin_of_;
  uint64_t num_true_pairs_ = 0;
  uint64_t num_duplicate_tuples_ = 0;
};

struct GeneratedDatabase {
  Dataset dataset;     // Employee schema; originals + duplicates, shuffled.
  GroundTruth truth;
};

class DatabaseGenerator {
 public:
  explicit DatabaseGenerator(GeneratorConfig config);

  // Generates the database. Deterministic in config.seed.
  Result<GeneratedDatabase> Generate() const;

 private:
  Record MakeOriginal(uint64_t ordinal, Rng* rng) const;
  Record MakeDuplicate(const Record& original, Rng* rng) const;
  Record MakeFamilyMember(const Record& relative, uint64_t ordinal,
                          Rng* rng) const;

  GeneratorConfig config_;
  ErrorModel error_model_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_GEN_GENERATOR_H_
