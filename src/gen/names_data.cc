#include "gen/names_data.h"

#include <array>

namespace mergepurge {

namespace {

// Common US first names (census-style). Kept plain so nickname-table and
// phonetic tests can reference familiar entries.
constexpr const char* kFirstNames[] = {
    "JAMES",     "JOHN",      "ROBERT",   "MICHAEL",  "WILLIAM",
    "DAVID",     "RICHARD",   "CHARLES",  "JOSEPH",   "THOMAS",
    "CHRISTOPHER", "DANIEL",  "PAUL",     "MARK",     "DONALD",
    "GEORGE",    "KENNETH",   "STEVEN",   "EDWARD",   "BRIAN",
    "RONALD",    "ANTHONY",   "KEVIN",    "JASON",    "MATTHEW",
    "GARY",      "TIMOTHY",   "JOSE",     "LARRY",    "JEFFREY",
    "FRANK",     "SCOTT",     "ERIC",     "STEPHEN",  "ANDREW",
    "RAYMOND",   "GREGORY",   "JOSHUA",   "JERRY",    "DENNIS",
    "WALTER",    "PATRICK",   "PETER",    "HAROLD",   "DOUGLAS",
    "HENRY",     "CARL",      "ARTHUR",   "RYAN",     "ROGER",
    "JOE",       "JUAN",      "JACK",     "ALBERT",   "JONATHAN",
    "JUSTIN",    "TERRY",     "GERALD",   "KEITH",    "SAMUEL",
    "WILLIE",    "RALPH",     "LAWRENCE", "NICHOLAS", "ROY",
    "BENJAMIN",  "BRUCE",     "BRANDON",  "ADAM",     "HARRY",
    "FRED",      "WAYNE",     "BILLY",    "STEVE",    "LOUIS",
    "JEREMY",    "AARON",     "RANDY",    "HOWARD",   "EUGENE",
    "CARLOS",    "RUSSELL",   "BOBBY",    "VICTOR",   "MARTIN",
    "ERNEST",    "PHILLIP",   "TODD",     "JESSE",    "CRAIG",
    "ALAN",      "SHAWN",     "CLARENCE", "SEAN",     "PHILIP",
    "CHRIS",     "JOHNNY",    "EARL",     "JIMMY",    "ANTONIO",
    "MARY",      "PATRICIA",  "LINDA",    "BARBARA",  "ELIZABETH",
    "JENNIFER",  "MARIA",     "SUSAN",    "MARGARET", "DOROTHY",
    "LISA",      "NANCY",     "KAREN",    "BETTY",    "HELEN",
    "SANDRA",    "DONNA",     "CAROL",    "RUTH",     "SHARON",
    "MICHELLE",  "LAURA",     "SARAH",    "KIMBERLY", "DEBORAH",
    "JESSICA",   "SHIRLEY",   "CYNTHIA",  "ANGELA",   "MELISSA",
    "BRENDA",    "AMY",       "ANNA",     "REBECCA",  "VIRGINIA",
    "KATHLEEN",  "PAMELA",    "MARTHA",   "DEBRA",    "AMANDA",
    "STEPHANIE", "CAROLYN",   "CHRISTINE", "MARIE",   "JANET",
    "CATHERINE", "FRANCES",   "ANN",      "JOYCE",    "DIANE",
    "ALICE",     "JULIE",     "HEATHER",  "TERESA",   "DORIS",
    "GLORIA",    "EVELYN",    "JEAN",     "CHERYL",   "MILDRED",
    "KATHERINE", "JOAN",      "ASHLEY",   "JUDITH",   "ROSE",
    "JANICE",    "KELLY",     "NICOLE",   "JUDY",     "CHRISTINA",
    "KATHY",     "THERESA",   "BEVERLY",  "DENISE",   "TAMMY",
    "IRENE",     "JANE",      "LORI",     "RACHEL",   "MARILYN",
    "ANDREA",    "KATHRYN",   "LOUISE",   "SARA",     "ANNE",
    "JACQUELINE", "WANDA",    "BONNIE",   "JULIA",    "RUBY",
    "LOIS",      "TINA",      "PHYLLIS",  "NORMA",    "PAULA",
    "DIANA",     "ANNIE",     "LILLIAN",  "EMILY",    "ROBIN",
};

// Surname roots: common US surnames plus productive stems.
constexpr const char* kSurnameRoots[] = {
    "SMITH",    "JOHNSON",  "WILLIAMS", "BROWN",    "JONES",
    "MILLER",   "DAVIS",    "GARCIA",   "RODRIGUEZ", "WILSON",
    "MARTINEZ", "ANDERSON", "TAYLOR",   "THOMAS",   "HERNANDEZ",
    "MOORE",    "MARTIN",   "JACKSON",  "THOMPSON", "WHITE",
    "LOPEZ",    "LEE",      "GONZALEZ", "HARRIS",   "CLARK",
    "LEWIS",    "ROBINSON", "WALKER",   "PEREZ",    "HALL",
    "YOUNG",    "ALLEN",    "SANCHEZ",  "WRIGHT",   "KING",
    "SCOTT",    "GREEN",    "BAKER",    "ADAMS",    "NELSON",
    "HILL",     "RAMIREZ",  "CAMPBELL", "MITCHELL", "ROBERTS",
    "CARTER",   "PHILLIPS", "EVANS",    "TURNER",   "TORRES",
    "PARKER",   "COLLINS",  "EDWARDS",  "STEWART",  "FLORES",
    "MORRIS",   "NGUYEN",   "MURPHY",   "RIVERA",   "COOK",
    "ROGERS",   "MORGAN",   "PETERSON", "COOPER",   "REED",
    "BAILEY",   "BELL",     "GOMEZ",    "KELLY",    "HOWARD",
    "WARD",     "COX",      "DIAZ",     "RICHARDSON", "WOOD",
    "WATSON",   "BROOKS",   "BENNETT",  "GRAY",     "JAMES",
    "REYES",    "CRUZ",     "HUGHES",   "PRICE",    "MYERS",
    "LONG",     "FOSTER",   "SANDERS",  "ROSS",     "MORALES",
    "POWELL",   "SULLIVAN", "RUSSELL",  "ORTIZ",    "JENKINS",
    "GUTIERREZ", "PERRY",   "BUTLER",   "BARNES",   "FISHER",
    "HENDERSON", "COLEMAN", "SIMMONS",  "PATTERSON", "JORDAN",
    "REYNOLDS", "HAMILTON", "GRAHAM",   "KIM",      "GONZALES",
    "ALEXANDER", "RAMOS",   "WALLACE",  "GRIFFIN",  "WEST",
    "COLE",     "HAYES",    "CHAVEZ",   "GIBSON",   "BRYANT",
    "ELLIS",    "STEVENS",  "MURRAY",   "FORD",     "MARSHALL",
    "OWENS",    "MCDONALD", "HARRISON", "RUIZ",     "KENNEDY",
    "WELLS",    "ALVAREZ",  "WOODS",    "MENDOZA",  "CASTILLO",
    "OLSON",    "WEBB",     "WASHINGTON", "TUCKER", "FREEMAN",
    "BURNS",    "HENRY",    "VASQUEZ",  "SNYDER",   "SIMPSON",
    "CRAWFORD", "JIMENEZ",  "PORTER",   "MASON",    "SHAW",
    "GORDON",   "WAGNER",   "HUNTER",   "ROMERO",   "HICKS",
    "DIXON",    "HUNT",     "PALMER",   "ROBERTSON", "BLACK",
    "HOLMES",   "STONE",    "MEYER",    "BOYD",     "MILLS",
    "WARREN",   "FOX",      "ROSE",     "RICE",     "MORENO",
    "SCHMIDT",  "PATEL",    "FERGUSON", "NICHOLS",  "HERRERA",
    "MEDINA",   "RYAN",     "FERNANDEZ", "WEAVER",  "DANIELS",
    "STEPHENS", "GARDNER",  "PAYNE",    "KELLEY",   "DUNN",
    "PIERCE",   "ARNOLD",   "TRAN",     "SPENCER",  "PETERS",
    "HAWKINS",  "GRANT",    "HANSEN",   "CASTRO",   "HOFFMAN",
    "HART",     "ELLIOTT",  "CUNNINGHAM", "KNIGHT", "BRADLEY",
    "CARROLL",  "HUDSON",   "DUNCAN",   "ARMSTRONG", "BERRY",
    "ANDREWS",  "JOHNSTON", "RAY",      "LANE",     "RILEY",
    "CARPENTER", "PERKINS", "AGUILAR",  "SILVA",    "RICHARDS",
    "WILLIS",   "MATTHEWS", "CHAPMAN",  "LAWRENCE", "GARZA",
    "VARGAS",   "WATKINS",  "WHEELER",  "LARSON",   "CARLSON",
    "HARPER",   "GEORGE",   "GREENE",   "BURKE",    "GUZMAN",
    "MORRISON", "MUNOZ",    "JACOBS",   "OBRIEN",   "LAWSON",
    "FRANKLIN", "LYNCH",    "BISHOP",   "CARR",     "SALAZAR",
    "AUSTIN",   "MENDEZ",   "GILBERT",  "JENSEN",   "WILLIAMSON",
    "MONTGOMERY", "HARVEY", "OCONNOR",  "HARMON",   "HANSON",
    "WEBER",    "MCCOY",    "BARKER",   "BERG",     "STEIN",
    "FELD",     "HOLT",     "LUND",     "BECK",     "NORD",
};

// Suffixes composed onto roots to expand the corpus. The empty suffix keeps
// every root itself a member.
constexpr const char* kSurnameSuffixes[] = {
    "",      "SON",   "S",     "MAN",   "MANN",  "SEN",   "ER",
    "TON",   "LEY",   "FIELD", "WOOD",  "FORD",  "BERG",  "STEIN",
    "DALE",  "WELL",  "WORTH", "MORE",  "LAND",  "STROM", "QUIST",
    "GREN",  "BY",    "WICK",  "HAM",   "COTT",  "BURN",  "SHAW",
    "STONE", "BRIDGE", "BROOK", "GATE", "HURST", "MERE",  "THORPE",
    "STAD",  "VIK",   "NESS",  "HOLM",  "LIND",  "BLAD",  "FELT",
    "INS",   "KINS",  "ETT",   "ARD",   "OTT",   "ELL",   "OW",
    "AY",
};

constexpr size_t kNumFirstNames =
    sizeof(kFirstNames) / sizeof(kFirstNames[0]);
constexpr size_t kNumSurnameRoots =
    sizeof(kSurnameRoots) / sizeof(kSurnameRoots[0]);
constexpr size_t kNumSurnameSuffixes =
    sizeof(kSurnameSuffixes) / sizeof(kSurnameSuffixes[0]);

// Composed portion: every root x every suffix.
constexpr size_t kComposedSurnames = kNumSurnameRoots * kNumSurnameSuffixes;

// Hyphenated portion on top, sized to push the corpus past 63,000:
// root[i] + '-' + root[j] for a deterministic subset of (i, j).
constexpr size_t kHyphenatedSurnames = 64000 - kComposedSurnames;

}  // namespace

size_t NumFirstNames() { return kNumFirstNames; }

std::string FirstNameAt(size_t index) {
  return kFirstNames[index % kNumFirstNames];
}

size_t NumSurnames() { return kComposedSurnames + kHyphenatedSurnames; }

std::string SurnameAt(size_t index) {
  index %= NumSurnames();
  if (index < kComposedSurnames) {
    size_t root = index / kNumSurnameSuffixes;
    size_t suffix = index % kNumSurnameSuffixes;
    std::string name = kSurnameRoots[root];
    name += kSurnameSuffixes[suffix];
    return name;
  }
  // Hyphenated double-barrelled names; stride the second index so pairs are
  // spread across the root list rather than clustered.
  size_t k = index - kComposedSurnames;
  size_t first = k % kNumSurnameRoots;
  size_t second = (k * 31 + 7) % kNumSurnameRoots;
  std::string name = kSurnameRoots[first];
  name += '-';
  name += kSurnameRoots[second];
  return name;
}

}  // namespace mergepurge
