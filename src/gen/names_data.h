// Name corpora for the database generator.
//
// The paper draws names "randomly from a list of 63000 real names". That
// list is not available, so we substitute (see DESIGN.md §2): embedded
// lists of common US first names and surname roots are expanded by
// deterministic morphological composition (root + suffix, hyphenation)
// into a virtual corpus of > 63,000 distinct surnames with realistic
// lengths, shared prefixes and collision structure. Names are addressed by
// index so the corpus never needs to be materialized.

#ifndef MERGEPURGE_GEN_NAMES_DATA_H_
#define MERGEPURGE_GEN_NAMES_DATA_H_

#include <cstddef>
#include <string>

namespace mergepurge {

// Number of distinct first names (male + female + neutral).
size_t NumFirstNames();

// Returns the first name at `index` (upper-case). index < NumFirstNames().
std::string FirstNameAt(size_t index);

// Number of distinct surnames in the virtual corpus (> 63,000).
size_t NumSurnames();

// Returns the surname at `index` (upper-case). index < NumSurnames().
std::string SurnameAt(size_t index);

}  // namespace mergepurge

#endif  // MERGEPURGE_GEN_NAMES_DATA_H_
