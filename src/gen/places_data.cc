#include "gen/places_data.h"

#include "util/string_util.h"

namespace mergepurge {

namespace {

struct BaseCity {
  const char* name;
  const char* state;
  int zip_prefix;  // Three-digit zip prefix typical for the area.
};

// Real US cities with their states and representative 3-digit zip prefixes.
constexpr BaseCity kBaseCities[] = {
    {"NEW YORK", "NY", 100},      {"BROOKLYN", "NY", 112},
    {"BUFFALO", "NY", 142},       {"ROCHESTER", "NY", 146},
    {"SYRACUSE", "NY", 132},      {"ALBANY", "NY", 122},
    {"YONKERS", "NY", 107},       {"UTICA", "NY", 135},
    {"LOS ANGELES", "CA", 900},   {"SAN DIEGO", "CA", 921},
    {"SAN JOSE", "CA", 951},      {"SAN FRANCISCO", "CA", 941},
    {"FRESNO", "CA", 937},        {"SACRAMENTO", "CA", 958},
    {"OAKLAND", "CA", 946},       {"BAKERSFIELD", "CA", 933},
    {"ANAHEIM", "CA", 928},       {"RIVERSIDE", "CA", 925},
    {"STOCKTON", "CA", 952},      {"CHICAGO", "IL", 606},
    {"AURORA", "IL", 605},        {"ROCKFORD", "IL", 611},
    {"JOLIET", "IL", 604},        {"NAPERVILLE", "IL", 605},
    {"SPRINGFIELD", "IL", 627},   {"PEORIA", "IL", 616},
    {"HOUSTON", "TX", 770},       {"SAN ANTONIO", "TX", 782},
    {"DALLAS", "TX", 752},        {"AUSTIN", "TX", 787},
    {"FORT WORTH", "TX", 761},    {"EL PASO", "TX", 799},
    {"ARLINGTON", "TX", 760},     {"CORPUS CHRISTI", "TX", 784},
    {"PLANO", "TX", 750},         {"LAREDO", "TX", 780},
    {"LUBBOCK", "TX", 794},       {"PHILADELPHIA", "PA", 191},
    {"PITTSBURGH", "PA", 152},    {"ALLENTOWN", "PA", 181},
    {"ERIE", "PA", 165},          {"READING", "PA", 196},
    {"SCRANTON", "PA", 185},      {"PHOENIX", "AZ", 850},
    {"TUCSON", "AZ", 857},        {"MESA", "AZ", 852},
    {"CHANDLER", "AZ", 852},      {"GLENDALE", "AZ", 853},
    {"SCOTTSDALE", "AZ", 852},    {"JACKSONVILLE", "FL", 322},
    {"MIAMI", "FL", 331},         {"TAMPA", "FL", 336},
    {"ORLANDO", "FL", 328},       {"ST PETERSBURG", "FL", 337},
    {"HIALEAH", "FL", 330},       {"TALLAHASSEE", "FL", 323},
    {"FORT LAUDERDALE", "FL", 333}, {"COLUMBUS", "OH", 432},
    {"CLEVELAND", "OH", 441},     {"CINCINNATI", "OH", 452},
    {"TOLEDO", "OH", 436},        {"AKRON", "OH", 443},
    {"DAYTON", "OH", 454},        {"CHARLOTTE", "NC", 282},
    {"RALEIGH", "NC", 276},       {"GREENSBORO", "NC", 274},
    {"DURHAM", "NC", 277},        {"WINSTON SALEM", "NC", 271},
    {"DETROIT", "MI", 482},       {"GRAND RAPIDS", "MI", 495},
    {"WARREN", "MI", 480},        {"LANSING", "MI", 489},
    {"FLINT", "MI", 485},         {"SEATTLE", "WA", 981},
    {"SPOKANE", "WA", 992},       {"TACOMA", "WA", 984},
    {"VANCOUVER", "WA", 986},     {"BELLEVUE", "WA", 980},
    {"BOSTON", "MA", 21},         {"WORCESTER", "MA", 16},
    {"SPRINGFIELD", "MA", 11},    {"LOWELL", "MA", 18},
    {"CAMBRIDGE", "MA", 21},      {"DENVER", "CO", 802},
    {"COLORADO SPRINGS", "CO", 809}, {"AURORA", "CO", 800},
    {"LAKEWOOD", "CO", 802},      {"BALTIMORE", "MD", 212},
    {"ROCKVILLE", "MD", 208},     {"FREDERICK", "MD", 217},
    {"MILWAUKEE", "WI", 532},     {"MADISON", "WI", 537},
    {"GREEN BAY", "WI", 543},     {"KENOSHA", "WI", 531},
    {"MEMPHIS", "TN", 381},       {"NASHVILLE", "TN", 372},
    {"KNOXVILLE", "TN", 379},     {"CHATTANOOGA", "TN", 374},
    {"PORTLAND", "OR", 972},      {"SALEM", "OR", 973},
    {"EUGENE", "OR", 974},        {"GRESHAM", "OR", 970},
    {"OKLAHOMA CITY", "OK", 731}, {"TULSA", "OK", 741},
    {"NORMAN", "OK", 730},        {"LAS VEGAS", "NV", 891},
    {"RENO", "NV", 895},          {"HENDERSON", "NV", 890},
    {"ALBUQUERQUE", "NM", 871},   {"SANTA FE", "NM", 875},
    {"LAS CRUCES", "NM", 880},    {"KANSAS CITY", "MO", 641},
    {"ST LOUIS", "MO", 631},      {"SPRINGFIELD", "MO", 658},
    {"INDEPENDENCE", "MO", 640},  {"ATLANTA", "GA", 303},
    {"COLUMBUS", "GA", 319},      {"AUGUSTA", "GA", 309},
    {"SAVANNAH", "GA", 314},      {"MACON", "GA", 312},
    {"VIRGINIA BEACH", "VA", 234}, {"NORFOLK", "VA", 235},
    {"RICHMOND", "VA", 232},      {"ARLINGTON", "VA", 222},
    {"NEWPORT NEWS", "VA", 236},  {"OMAHA", "NE", 681},
    {"LINCOLN", "NE", 685},       {"MINNEAPOLIS", "MN", 554},
    {"ST PAUL", "MN", 551},       {"DULUTH", "MN", 558},
    {"ROCHESTER", "MN", 559},     {"NEW ORLEANS", "LA", 701},
    {"BATON ROUGE", "LA", 708},   {"SHREVEPORT", "LA", 711},
    {"LAFAYETTE", "LA", 705},     {"WICHITA", "KS", 672},
    {"OVERLAND PARK", "KS", 662}, {"TOPEKA", "KS", 666},
    {"LOUISVILLE", "KY", 402},    {"LEXINGTON", "KY", 405},
    {"BOWLING GREEN", "KY", 421}, {"BIRMINGHAM", "AL", 352},
    {"MONTGOMERY", "AL", 361},    {"MOBILE", "AL", 366},
    {"HUNTSVILLE", "AL", 358},    {"SALT LAKE CITY", "UT", 841},
    {"PROVO", "UT", 846},         {"OGDEN", "UT", 844},
    {"HARTFORD", "CT", 61},       {"NEW HAVEN", "CT", 65},
    {"BRIDGEPORT", "CT", 66},     {"STAMFORD", "CT", 69},
    {"PROVIDENCE", "RI", 29},     {"WARWICK", "RI", 28},
    {"NEWARK", "NJ", 71},         {"JERSEY CITY", "NJ", 73},
    {"PATERSON", "NJ", 75},       {"TRENTON", "NJ", 86},
    {"EDISON", "NJ", 88},         {"DES MOINES", "IA", 503},
    {"CEDAR RAPIDS", "IA", 524},  {"DAVENPORT", "IA", 528},
    {"JACKSON", "MS", 392},       {"GULFPORT", "MS", 395},
    {"LITTLE ROCK", "AR", 722},   {"FAYETTEVILLE", "AR", 727},
    {"BOISE", "ID", 837},         {"NAMPA", "ID", 836},
    {"ANCHORAGE", "AK", 995},     {"FAIRBANKS", "AK", 997},
    {"HONOLULU", "HI", 968},      {"HILO", "HI", 967},
    {"CHARLESTON", "SC", 294},    {"COLUMBIA", "SC", 292},
    {"SIOUX FALLS", "SD", 571},   {"RAPID CITY", "SD", 577},
    {"FARGO", "ND", 581},         {"BISMARCK", "ND", 585},
    {"BILLINGS", "MT", 591},      {"MISSOULA", "MT", 598},
    {"CHEYENNE", "WY", 820},      {"CASPER", "WY", 826},
    {"BURLINGTON", "VT", 54},     {"MONTPELIER", "VT", 56},
    {"MANCHESTER", "NH", 31},     {"CONCORD", "NH", 33},
    {"PORTLAND", "ME", 41},       {"BANGOR", "ME", 44},
    {"WILMINGTON", "DE", 198},    {"DOVER", "DE", 199},
    {"CHARLESTON", "WV", 253},    {"HUNTINGTON", "WV", 257},
    {"WASHINGTON", "DC", 200},
};

// Composition patterns expanding the base list. %s is the base city name.
constexpr const char* kCityPatterns[] = {
    "%s",          "NORTH %s",    "SOUTH %s",    "EAST %s",
    "WEST %s",     "NEW %s",      "LAKE %s",     "%s HEIGHTS",
    "%s PARK",     "%s SPRINGS",  "%s FALLS",    "%s JUNCTION",
    "PORT %s",     "FORT %s",     "%s VALLEY",   "%s GROVE",
    "MOUNT %s",    "%s BEACH",    "%s HILLS",    "OLD %s",
    "UPPER %s",    "LOWER %s",    "%s CENTER",   "%s RIDGE",
    "GLEN %s",     "%s VILLE",    "SAINT %s",    "%s CREEK",
    "GRAND %s",    "%s GARDENS",  "%s SHORES",   "BIG %s",
    "LITTLE %s",   "%s MILLS",    "%s LANDING",  "CAPE %s",
    "%s CROSSING", "%s STATION",  "HIGH %s",     "ROYAL %s",
    "%s HARBOR",   "%s POINT",    "%s FOREST",   "%s PLAINS",
    "%s COVE",     "SUN %s",      "%s CITY",     "%s TOWN",
    "%s FERRY",    "%s BLUFF",    "%s PRAIRIE",  "%s MEADOWS",
    "%s VISTA",    "BELLE %s",    "%s BEND",     "%s GAP",
    "%s FORGE",    "%s DEPOT",    "TWIN %s",     "%s OAKS",
    "%s PINES",    "%s RAPIDS",   "%s SUMMIT",   "%s CORNER",
    "%s ESTATES",  "%s TERRACE",  "FAIR %s",     "%s WELLS",
    "%s HOLLOW",   "%s CANYON",   "%s MESA",     "%s FLATS",
    "%s RANCH",    "RIVER %s",    "STONE %s",    "%s RUN",
    "%s FORK",     "%s MANOR",    "%s ACRES",    "SPRING %s",
    "%s KNOLLS",   "%s WOODS",    "%s ISLAND",   "%s LAKESIDE",
    "GREEN %s",    "%s GLADE",    "%s FIELD",    "MILL %s",
    "%s HAVEN",    "%s CHAPEL",   "%s MOUND",    "%s BASIN",
    "%s DALE",     "PLEASANT %s", "%s BROOK",    "CEDAR %s",
    "OAK %s",      "PINE %s",     "ELM %s",      "MAPLE %s",
};

constexpr const char* kStreetNames[] = {
    "MAIN",      "OAK",       "PINE",      "MAPLE",     "CEDAR",
    "ELM",       "WASHINGTON", "LAKE",     "HILL",      "PARK",
    "WALNUT",    "SPRING",    "NORTH",     "RIDGE",     "CHURCH",
    "CHESTNUT",  "BROADWAY",  "SUNSET",    "RAILROAD",  "JEFFERSON",
    "CENTER",    "HIGHLAND",  "FOREST",    "MILL",      "RIVER",
    "FRANKLIN",  "SCHOOL",    "PROSPECT",  "MEADOW",    "GARDEN",
    "LIBERTY",   "GROVE",     "COLLEGE",   "VALLEY",    "SPRUCE",
    "WILLOW",    "LINCOLN",   "MADISON",   "JACKSON",   "ADAMS",
    "MONROE",    "HARRISON",  "CHERRY",    "DOGWOOD",   "MAGNOLIA",
    "LOCUST",    "POPLAR",    "SYCAMORE",  "HICKORY",   "ASPEN",
    "BIRCH",     "LAUREL",    "HOLLY",     "JUNIPER",   "HAWTHORNE",
    "COLUMBIA",  "VICTORIA",  "CAMBRIDGE", "OXFORD",    "WINDSOR",
    "ESSEX",     "DEVON",     "BRISTOL",   "CANTERBURY", "DOVER",
    "FAIRVIEW",  "LAKEVIEW",  "HILLCREST", "WOODLAND",  "RIVERSIDE",
};

constexpr size_t kNumBaseCities =
    sizeof(kBaseCities) / sizeof(kBaseCities[0]);
constexpr size_t kNumCityPatterns =
    sizeof(kCityPatterns) / sizeof(kCityPatterns[0]);
constexpr size_t kNumStreetNames =
    sizeof(kStreetNames) / sizeof(kStreetNames[0]);

std::string ApplyPattern(const char* pattern, const std::string& base) {
  std::string out;
  for (const char* p = pattern; *p != '\0'; ++p) {
    if (*p == '%' && *(p + 1) == 's') {
      out += base;
      ++p;
    } else {
      out += *p;
    }
  }
  return out;
}

}  // namespace

size_t NumPlaces() { return kNumBaseCities * kNumCityPatterns; }

Place PlaceAt(size_t index) {
  index %= NumPlaces();
  size_t base = index % kNumBaseCities;
  size_t pattern = index / kNumBaseCities;
  const BaseCity& bc = kBaseCities[base];
  Place place;
  place.city = ApplyPattern(kCityPatterns[pattern], bc.name);
  place.state = bc.state;
  // Each (base, pattern) combination gets its own zip window inside the
  // base city's 3-digit prefix; zips are 5 digits (leading zeros are added
  // at formatting time for the New England prefixes).
  place.zip_base =
      bc.zip_prefix * 100 + static_cast<int>((pattern * 7) % 100);
  return place;
}

std::vector<std::string> AllCityNames() {
  std::vector<std::string> names;
  names.reserve(NumPlaces());
  for (size_t i = 0; i < NumPlaces(); ++i) names.push_back(PlaceAt(i).city);
  return names;
}

size_t NumStreetNames() { return kNumStreetNames; }

std::string StreetNameAt(size_t index) {
  return kStreetNames[index % kNumStreetNames];
}

}  // namespace mergepurge
