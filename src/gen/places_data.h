// City / state / zip corpus for the database generator.
//
// The paper used publicly available lists of US cities, states and zip
// codes (18,670 city names; the city corpus also feeds the spelling
// corrector). We substitute an embedded list of real US cities expanded by
// deterministic composition ("LAKE x", "x HEIGHTS", ...) to the same order
// of magnitude, with a consistent state and zip range per city so that
// records from the same place agree across fields.

#ifndef MERGEPURGE_GEN_PLACES_DATA_H_
#define MERGEPURGE_GEN_PLACES_DATA_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mergepurge {

struct Place {
  std::string city;
  std::string state;  // Two-letter code.
  int zip_base;       // First zip of the city's range; range spans 100.
};

// Number of distinct places (~18,670, matching the paper's city corpus).
size_t NumPlaces();

// Returns the place at `index`. index < NumPlaces(). Deterministic.
Place PlaceAt(size_t index);

// Materializes all distinct city names (the spelling-correction corpus).
std::vector<std::string> AllCityNames();

// Street-name components for address generation.
size_t NumStreetNames();
std::string StreetNameAt(size_t index);

}  // namespace mergepurge

#endif  // MERGEPURGE_GEN_PLACES_DATA_H_
