#include "io/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace mergepurge {

Result<std::vector<std::string>> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current += c;
      ++i;
      continue;
    }
    if (c == '"') {
      if (!current.empty()) {
        return Status::ParseError("quote in the middle of an unquoted field");
      }
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    current += c;
    ++i;
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes =
      field.find_first_of(",\"\n") != std::string_view::npos ||
      (!field.empty() &&
       (field.front() == ' ' || field.back() == ' '));
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

void AppendCsvRow(const std::vector<std::string>& fields, std::string* out) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out->push_back(',');
    out->append(EscapeCsvField(fields[i]));
  }
  out->push_back('\n');
}

Result<Dataset> ParseCsvBody(const Schema& schema, std::istream& in,
                             const std::string& source_name) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError(source_name + ": missing header row");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  Result<std::vector<std::string>> header = ParseCsvLine(line);
  if (!header.ok()) {
    return Status::ParseError(
        StringPrintf("%s:1: %s", source_name.c_str(),
                     header.status().message().c_str()));
  }
  if (*header != schema.field_names()) {
    return Status::ParseError(source_name +
                              ":1: header does not match schema");
  }

  Dataset dataset(schema);
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    Result<std::vector<std::string>> fields = ParseCsvLine(line);
    if (!fields.ok()) {
      return Status::ParseError(
          StringPrintf("%s:%zu: %s", source_name.c_str(), line_number,
                       fields.status().message().c_str()));
    }
    if (fields->size() != schema.num_fields()) {
      return Status::ParseError(StringPrintf(
          "%s:%zu: expected %zu fields, got %zu", source_name.c_str(),
          line_number, schema.num_fields(), fields->size()));
    }
    dataset.Append(Record(std::move(*fields)));
  }
  return dataset;
}

}  // namespace

std::string WriteCsvString(const Dataset& dataset) {
  std::string out;
  AppendCsvRow(dataset.schema().field_names(), &out);
  for (const Record& r : dataset.records()) AppendCsvRow(r.fields(), &out);
  return out;
}

Result<Dataset> ReadCsvString(const Schema& schema, std::string_view text) {
  std::istringstream in{std::string(text)};
  return ParseCsvBody(schema, in, "<string>");
}

Status WriteCsvFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  std::string text = WriteCsvString(dataset);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  return ParseCsvBody(schema, in, path);
}

}  // namespace mergepurge
