// CSV persistence for datasets (RFC-4180-style quoting). Used to save
// generated databases and to load externally supplied record sources.

#ifndef MERGEPURGE_IO_CSV_H_
#define MERGEPURGE_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "record/dataset.h"
#include "util/status.h"

namespace mergepurge {

// Parses one CSV line into fields. Handles quoted fields containing commas,
// doubled quotes, but not embedded newlines (records in this domain are
// single-line).
Result<std::vector<std::string>> ParseCsvLine(std::string_view line);

// Escapes one field for CSV output (quotes when it contains , " or space
// padding that must be preserved).
std::string EscapeCsvField(std::string_view field);

// Writes the dataset with a header row of field names.
Status WriteCsvFile(const Dataset& dataset, const std::string& path);

// Reads a CSV file whose header must match the given schema's field names.
Result<Dataset> ReadCsvFile(const Schema& schema, const std::string& path);

// Serializes to / parses from an in-memory CSV string (used by tests and by
// the external sorter's run files).
std::string WriteCsvString(const Dataset& dataset);
Result<Dataset> ReadCsvString(const Schema& schema, std::string_view text);

}  // namespace mergepurge

#endif  // MERGEPURGE_IO_CSV_H_
