#include "io/pairs_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "core/union_find.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace mergepurge {

namespace {
constexpr char kMagic[] = "MPP1";
}  // namespace

Status WritePairSetFile(const PairSet& pairs, const std::string& path) {
  MERGEPURGE_RETURN_NOT_OK(
      FaultInjector::Global().OnPoint(fault_points::kPairsWrite));
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << kMagic << '\n';
  for (const auto& [lo, hi] : pairs.ToSortedVector()) {
    out << lo << ' ' << hi << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<PairSet> ReadPairSetFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::ParseError(path + ": not a pair-set file");
  }
  PairSet pairs;
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (std::sscanf(line.c_str(), "%" SCNu32 " %" SCNu32, &lo, &hi) != 2 ||
        lo >= hi) {
      return Status::ParseError(StringPrintf(
          "%s:%zu: malformed pair line", path.c_str(), line_number));
    }
    pairs.Add(lo, hi);
  }
  return pairs;
}

Result<std::vector<uint32_t>> ClosureFromFiles(
    const std::vector<std::string>& paths, size_t n) {
  UnionFind closure(n);
  for (const std::string& path : paths) {
    Result<PairSet> pairs = ReadPairSetFile(path);
    if (!pairs.ok()) return pairs.status();
    bool out_of_range = false;
    pairs->ForEach([&closure, n, &out_of_range](TupleId a, TupleId b) {
      if (a >= n || b >= n) {
        out_of_range = true;
        return;
      }
      closure.Union(a, b);
    });
    if (out_of_range) {
      return Status::OutOfRange(path +
                                ": pair references a tuple id >= n");
    }
  }
  return closure.ComponentLabels();
}

}  // namespace mergepurge
