// Disk persistence for pair sets. The paper ran independent passes, stored
// each result on disk, and computed the transitive closure over the stored
// files (§4.1: "We ran all independent runs in turn and stored the results
// on disk. We then computed the transitive closure over the results stored
// on disk."). These helpers support the same pipelined operation: each
// pass (possibly on a different machine or day) writes its pairs; the
// closure step reads all files.
//
// File format: "MPP1\n" magic line, then one "lo hi\n" pair of decimal
// tuple ids per line, sorted ascending (diff-friendly, deterministic).

#ifndef MERGEPURGE_IO_PAIRS_IO_H_
#define MERGEPURGE_IO_PAIRS_IO_H_

#include <string>
#include <vector>

#include "core/pair_set.h"
#include "util/status.h"

namespace mergepurge {

Status WritePairSetFile(const PairSet& pairs, const std::string& path);

Result<PairSet> ReadPairSetFile(const std::string& path);

// Reads every file and returns per-tuple component labels of the
// transitive closure over the union (n = number of tuples).
Result<std::vector<uint32_t>> ClosureFromFiles(
    const std::vector<std::string>& paths, size_t n);

}  // namespace mergepurge

#endif  // MERGEPURGE_IO_PAIRS_IO_H_
