#include "keys/key_builder.h"

#include <cctype>

#include "text/phonetic.h"

#include "util/string_util.h"

namespace mergepurge {

KeySpec KeySpec::FixedWidth(size_t prefix_length) const {
  KeySpec out = *this;
  out.name = name + "-fixed";
  for (KeyComponent& component : out.components) {
    if (component.kind == KeyComponent::Kind::kFullField) {
      component.kind = KeyComponent::Kind::kPrefix;
      component.length = prefix_length;
    }
  }
  return out;
}

std::string KeyBuilder::BuildKey(const Record& record) const {
  std::string key;
  for (const KeyComponent& component : spec_.components) {
    std::string_view value = record.field(component.field);
    switch (component.kind) {
      case KeyComponent::Kind::kFullField:
        key.append(value);
        break;
      case KeyComponent::Kind::kPrefix: {
        std::string_view p = Prefix(value, component.length);
        key.append(p);
        key.append(component.length - p.size(), ' ');
        break;
      }
      case KeyComponent::Kind::kFirstNonBlank: {
        char c = ' ';
        for (char v : value) {
          if (v != ' ') {
            c = v;
            break;
          }
        }
        key.push_back(c);
        break;
      }
      case KeyComponent::Kind::kDigitPrefix: {
        size_t taken = 0;
        for (char v : value) {
          if (taken == component.length) break;
          if (std::isdigit(static_cast<unsigned char>(v))) {
            key.push_back(v);
            ++taken;
          }
        }
        key.append(component.length - taken, ' ');
        break;
      }
      case KeyComponent::Kind::kSoundex: {
        std::string code = Soundex(value);
        key.append(code);
        key.append(4 - code.size(), ' ');  // Codes are 4 chars or empty.
        break;
      }
    }
  }
  return key;
}

std::vector<std::string> KeyBuilder::BuildKeys(const Dataset& dataset) const {
  std::vector<std::string> keys;
  keys.reserve(dataset.size());
  for (const Record& record : dataset.records()) {
    keys.push_back(BuildKey(record));
  }
  return keys;
}

Status KeyBuilder::Validate(const Schema& schema) const {
  if (spec_.components.empty()) {
    return Status::InvalidArgument("key spec has no components");
  }
  for (const KeyComponent& component : spec_.components) {
    if (component.field >= schema.num_fields()) {
      return Status::InvalidArgument(StringPrintf(
          "key component references field %zu but schema has %zu fields",
          component.field, schema.num_fields()));
    }
    if ((component.kind == KeyComponent::Kind::kPrefix ||
         component.kind == KeyComponent::Kind::kDigitPrefix) &&
        component.length == 0) {
      return Status::InvalidArgument(
          "prefix key component must have length > 0");
    }
  }
  return Status::OK();
}

}  // namespace mergepurge
