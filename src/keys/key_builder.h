// Sort-key construction (paper §2.2 phase 1 and §2.4).
//
// "A key is defined to be a sequence of a subset of attributes, or
// substrings within the attributes, chosen from the record. For example, we
// may choose a key as the last name of the employee record, followed by the
// first non blank character of the first name sub-field followed by the
// first six digits of the social security field."
//
// A KeySpec is an ordered list of KeyComponents; KeyBuilder renders a
// record into its key string. Keys are compared as plain byte strings, so
// component order encodes priority ("attributes that appear first in the
// key have a higher priority").

#ifndef MERGEPURGE_KEYS_KEY_BUILDER_H_
#define MERGEPURGE_KEYS_KEY_BUILDER_H_

#include <string>
#include <vector>

#include "record/dataset.h"
#include "record/record.h"
#include "record/schema.h"
#include "util/status.h"

namespace mergepurge {

struct KeyComponent {
  enum class Kind {
    kFullField,      // The whole field value (variable length).
    kPrefix,         // The first `length` characters.
    kFirstNonBlank,  // The first non-space character (1 char or empty).
    kDigitPrefix,    // The first `length` digit characters.
    kSoundex,        // The field's Soundex code (4 chars, fixed width).
  };

  FieldId field = kInvalidField;
  Kind kind = Kind::kFullField;
  size_t length = 0;  // Used by kPrefix / kDigitPrefix.

  static KeyComponent Full(FieldId field) {
    return {field, Kind::kFullField, 0};
  }
  static KeyComponent Prefix(FieldId field, size_t length) {
    return {field, Kind::kPrefix, length};
  }
  static KeyComponent FirstNonBlank(FieldId field) {
    return {field, Kind::kFirstNonBlank, 0};
  }
  static KeyComponent DigitPrefix(FieldId field, size_t length) {
    return {field, Kind::kDigitPrefix, length};
  }
  // A phonetic key component: "keys should be chosen so that ... similar
  // and matching records should have nearly equal key values" (§2.2) —
  // Soundex makes the key invariant to many typographical errors in the
  // field, at the price of coarser ordering.
  static KeyComponent SoundexCode(FieldId field) {
    return {field, Kind::kSoundex, 0};
  }
};

struct KeySpec {
  std::string name;  // For experiment reports ("last-name key").
  std::vector<KeyComponent> components;

  // Returns a fixed-width variant of this spec: every kFullField component
  // becomes a kPrefix of `prefix_length`. This is the key the clustering
  // method uses ("the clustering method uses the fixed-sized key extracted
  // during its clustering phase", §3.4).
  KeySpec FixedWidth(size_t prefix_length) const;
};

class KeyBuilder {
 public:
  explicit KeyBuilder(KeySpec spec) : spec_(std::move(spec)) {}

  const KeySpec& spec() const { return spec_; }

  // Renders the key for one record. Fixed-length components are padded
  // with spaces (sorting below any letter/digit) so all keys from a spec
  // with only fixed components have equal width.
  std::string BuildKey(const Record& record) const;

  // Renders keys for every record in order.
  std::vector<std::string> BuildKeys(const Dataset& dataset) const;

  // Validates the spec against a schema (fields in range, lengths set).
  Status Validate(const Schema& schema) const;

 private:
  KeySpec spec_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_KEYS_KEY_BUILDER_H_
