#include "keys/standard_keys.h"

#include "record/schema.h"

namespace mergepurge {

KeySpec LastNameKey() {
  KeySpec spec;
  spec.name = "last-name";
  spec.components = {
      KeyComponent::Full(employee::kLastName),
      KeyComponent::FirstNonBlank(employee::kFirstName),
      KeyComponent::DigitPrefix(employee::kSsn, 6),
  };
  return spec;
}

KeySpec FirstNameKey() {
  KeySpec spec;
  spec.name = "first-name";
  spec.components = {
      KeyComponent::Full(employee::kFirstName),
      KeyComponent::FirstNonBlank(employee::kLastName),
      KeyComponent::DigitPrefix(employee::kSsn, 6),
  };
  return spec;
}

KeySpec AddressKey() {
  KeySpec spec;
  spec.name = "address";
  spec.components = {
      KeyComponent::Full(employee::kAddress),
      KeyComponent::Prefix(employee::kLastName, 4),
      KeyComponent::Prefix(employee::kCity, 4),
  };
  return spec;
}

std::vector<KeySpec> StandardThreeKeys() {
  return {LastNameKey(), FirstNameKey(), AddressKey()};
}

KeySpec PhoneticLastNameKey() {
  KeySpec spec;
  spec.name = "soundex-last-name";
  spec.components = {
      KeyComponent::SoundexCode(employee::kLastName),
      KeyComponent::Full(employee::kLastName),
      KeyComponent::FirstNonBlank(employee::kFirstName),
      KeyComponent::DigitPrefix(employee::kSsn, 6),
  };
  return spec;
}

}  // namespace mergepurge
