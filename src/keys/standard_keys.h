// The three keys of the paper's experiments (§3.3): "On the first run the
// last name was the principal field of the key. On the second run, the
// first name was the principal field, while in the last run, the street
// address was the principal field."

#ifndef MERGEPURGE_KEYS_STANDARD_KEYS_H_
#define MERGEPURGE_KEYS_STANDARD_KEYS_H_

#include <vector>

#include "keys/key_builder.h"

namespace mergepurge {

// Last name first, then first-name initial, then 6 SSN digits.
KeySpec LastNameKey();

// First name first, then last-name initial, then 6 SSN digits.
KeySpec FirstNameKey();

// Street address first, then last-name prefix, then city prefix.
KeySpec AddressKey();

// The three standard keys in paper order (last-name, first-name, address);
// the multi-pass experiments run one pass per entry.
std::vector<KeySpec> StandardThreeKeys();

// Extension: Soundex of the last name first — typo-invariant ordering at
// the price of coarser discrimination (ablated in bench/ablation).
KeySpec PhoneticLastNameKey();

}  // namespace mergepurge

#endif  // MERGEPURGE_KEYS_STANDARD_KEYS_H_
