#include "obs/drain.h"

#include <csignal>
#include <thread>
#include <unistd.h>

#include "util/logging.h"

namespace mergepurge {

SignalDrain& SignalDrain::Global() {
  static SignalDrain* instance = new SignalDrain();
  return *instance;
}

void SignalDrain::Install() {
  bool expected = false;
  if (!installed_.compare_exchange_strong(expected, true)) return;

  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  // Detached: the watcher blocks in sigwait() for the process lifetime;
  // there is nothing to join on a normal exit.
  std::thread([this] { WatcherLoop(); }).detach();  // lockcheck: allow(detached-thread)
}

void SignalDrain::OnSignal(std::function<void(int)> callback) {
  MutexLock lock(mu_);
  callbacks_.push_back(std::move(callback));
}

void SignalDrain::WatcherLoop() {
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  int signo = 0;
  if (sigwait(&set, &signo) != 0) return;
  signal_number_.store(signo, std::memory_order_release);
  LogMessage(LogLevel::kInfo,
             std::string("received ") +
                 (signo == SIGINT ? "SIGINT" : "SIGTERM") +
                 ", draining");

  std::vector<std::function<void(int)>> callbacks;
  {
    MutexLock lock(mu_);
    callbacks = callbacks_;
  }
  for (const auto& callback : callbacks) callback(signo);

  if (exit_after_callbacks_.load(std::memory_order_relaxed)) {
    _exit(128 + signo);
  }
  // Cooperative mode: a second signal should kill the process the
  // conventional way instead of being swallowed by the mask.
  pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
}

}  // namespace mergepurge
