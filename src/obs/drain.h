// SignalDrain: one SIGINT/SIGTERM story for every long-running binary.
//
// Both the batch CLI and the online server must flush their observability
// sinks (--metrics-out run report, --trace-out Chrome trace) when the
// operator interrupts them; the server additionally needs a *graceful*
// drain — stop accepting, finish in-flight requests, then flush. Doing
// any of that inside a signal handler is undefined behaviour (JSON
// serialization allocates), so SignalDrain uses the sigwait idiom
// instead: it blocks SIGINT/SIGTERM in the installing thread — and, via
// mask inheritance, in every thread spawned afterwards — and parks a
// dedicated watcher thread in sigwait(). When a signal arrives the
// watcher runs the registered drain callbacks on its own (ordinary,
// signal-safe) thread, in registration order.
//
// Two termination modes:
//   * exit mode (default, the CLI): after the callbacks run, the process
//     _exit()s with the conventional 128+signo code;
//   * cooperative mode (the server): callbacks only request a drain
//     (e.g. Server::RequestDrain) and the main thread finishes shutdown
//     and exits normally.
//
// Install() must run before any other thread is created, or those threads
// keep the default disposition and the process can die without draining.

#ifndef MERGEPURGE_OBS_DRAIN_H_
#define MERGEPURGE_OBS_DRAIN_H_

#include <atomic>
#include <functional>
#include <vector>

#include "util/sync.h"

namespace mergepurge {

class SignalDrain {
 public:
  // The process-wide instance; signals are inherently global state.
  static SignalDrain& Global();

  SignalDrain(const SignalDrain&) = delete;
  SignalDrain& operator=(const SignalDrain&) = delete;

  // Blocks SIGINT and SIGTERM in the calling thread and starts the
  // watcher. Idempotent; call first thing in main(), before any thread
  // (thread pools, batcher) is spawned so they inherit the mask.
  void Install();

  // Registers a callback to run (watcher thread, registration order) when
  // a drain signal arrives. The signal number is passed through. Safe to
  // call before or after Install().
  void OnSignal(std::function<void(int)> callback);

  // exit mode (default true): _exit(128 + signo) after the callbacks.
  // Set false for cooperative shutdown (server mode).
  void set_exit_after_callbacks(bool exit_after) {
    exit_after_callbacks_.store(exit_after, std::memory_order_relaxed);
  }

  // True once a drain signal has been received.
  bool triggered() const {
    return signal_number_.load(std::memory_order_acquire) != 0;
  }
  // The signal received, or 0 if none yet.
  int signal_number() const {
    return signal_number_.load(std::memory_order_acquire);
  }

 private:
  SignalDrain() = default;

  void WatcherLoop();

  std::atomic<bool> installed_{false};
  std::atomic<bool> exit_after_callbacks_{true};
  std::atomic<int> signal_number_{0};
  Mutex mu_{lockrank::kDrain};
  std::vector<std::function<void(int)>> callbacks_ MERGEPURGE_GUARDED_BY(mu_);
};

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_DRAIN_H_
