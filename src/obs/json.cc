#include "obs/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace mergepurge {

void JsonValue::Set(std::string key, JsonValue value) {
  if (kind_ != Kind::kObject) return;
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::Append(JsonValue value) {
  if (kind_ != Kind::kArray) return;
  elements_.push_back(std::move(value));
}

size_t JsonValue::size() const {
  return kind_ == Kind::kArray ? elements_.size() : members_.size();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  *out += buffer;
}

void Indent(std::string* out, int indent, int depth) {
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      *out += std::to_string(int_);
      return;
    case Kind::kDouble:
      AppendNumber(out, double_);
      return;
    case Kind::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) Indent(out, indent, depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent > 0 && !elements_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        if (indent > 0) Indent(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(members_[i].first);
        *out += indent > 0 ? "\": " : "\":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent > 0 && !members_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    MERGEPURGE_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& message) const {
    return Status::ParseError(
        StringPrintf("json: %s at offset %zu", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(StringPrintf("expected '%c'", c));
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        MERGEPURGE_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", JsonValue(true), out);
      case 'f':
        return ParseLiteral("false", JsonValue(false), out);
      case 'n':
        return ParseLiteral("null", JsonValue(), out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Error("unexpected character");
    }
  }

  Status ParseLiteral(std::string_view word, JsonValue value,
                      JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      MERGEPURGE_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      MERGEPURGE_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      MERGEPURGE_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      MERGEPURGE_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      MERGEPURGE_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      MERGEPURGE_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out->push_back(escape);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          MERGEPURGE_RETURN_NOT_OK(ParseHex4(&code));
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("invalid escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xc0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    } else {
      out->push_back(static_cast<char>(0xe0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
                                      static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") return Error("invalid number");
    char* end = nullptr;
    if (is_double) {
      double value = std::strtod(token.c_str(), &end);
      if (end != token.c_str() + token.size()) {
        return Error("invalid number");
      }
      *out = JsonValue(value);
    } else {
      errno = 0;
      long long value = std::strtoll(token.c_str(), &end, 10);
      if (end != token.c_str() + token.size()) {
        return Error("invalid number");
      }
      if (errno == ERANGE) {
        // Out-of-range integers degrade to double rather than failing.
        *out = JsonValue(std::strtod(token.c_str(), &end));
      } else {
        *out = JsonValue(static_cast<int64_t>(value));
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace mergepurge
