// A small JSON document model shared by the observability sinks: the
// metrics/report/trace writers build JsonValue trees and Dump() them, and
// the validation tooling (tools/validate_report, tests) Parse()s emitted
// files back to check structure. Self-contained on purpose — the container
// bakes no JSON library, and the artifact formats (run reports, Chrome
// traces) are simple enough that a dependency would be all cost.
//
// Supported faithfully: null, booleans, 64-bit integers (kept exact, not
// coerced through double), doubles, strings (with \uXXXX escapes decoded
// to UTF-8), arrays and objects. Objects preserve insertion order so
// reports render stably and diffs stay readable.

#ifndef MERGEPURGE_OBS_JSON_H_
#define MERGEPURGE_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace mergepurge {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  JsonValue(int value) : kind_(Kind::kInt), int_(value) {}
  JsonValue(int64_t value) : kind_(Kind::kInt), int_(value) {}
  JsonValue(uint64_t value)
      : kind_(Kind::kInt), int_(static_cast<int64_t>(value)) {}
  JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}
  JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  JsonValue(std::string_view value)
      : kind_(Kind::kString), string_(value) {}
  JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}

  static JsonValue Object() { return JsonValue(Kind::kObject); }
  static JsonValue Array() { return JsonValue(Kind::kArray); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const {
    return kind_ == Kind::kDouble ? static_cast<int64_t>(double_) : int_;
  }
  double double_value() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return string_; }

  // --- Object operations (no-ops / empty on other kinds). ---

  // Adds or replaces a member; insertion order is preserved.
  void Set(std::string key, JsonValue value);

  // Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  // --- Array operations. ---
  void Append(JsonValue value);
  size_t size() const;
  const JsonValue& at(size_t index) const { return elements_[index]; }
  const std::vector<JsonValue>& elements() const { return elements_; }

  // Serializes the tree. indent > 0 pretty-prints with that many spaces
  // per level; 0 emits compact single-line JSON.
  std::string Dump(int indent = 0) const;

  // Parses a complete JSON document (trailing non-whitespace is an error).
  static Result<JsonValue> Parse(std::string_view text);

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

// Escapes `s` as the contents of a JSON string literal (no quotes added).
std::string JsonEscape(std::string_view s);

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_JSON_H_
