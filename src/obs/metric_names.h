// The stable metric name catalog. Names are dot-delimited,
// lowercase, and NEVER renamed once shipped — downstream perf tooling
// (bench/BENCH_snm.json trajectories, tools/validate_report) keys on them.
// New metrics may be added freely; document additions in
// docs/observability.md.
//
// Two families take a dynamic suffix:
//   rules.fired.<rule-id>          one counter per equational-theory rule
//   parallel.worker_tasks.<w>      committed tasks per virtual worker

#ifndef MERGEPURGE_OBS_METRIC_NAMES_H_
#define MERGEPURGE_OBS_METRIC_NAMES_H_

namespace mergepurge {

class MetricsRegistry;

namespace metric_names {

// --- Generator (src/gen). ---
inline constexpr char kGenRecords[] = "gen.records";
inline constexpr char kGenDuplicates[] = "gen.duplicates";

// --- External sort (src/sort). ---
inline constexpr char kSortSpills[] = "sort.spills";
inline constexpr char kSortMergePasses[] = "sort.merge_passes";
inline constexpr char kSortEntriesWritten[] = "sort.entries_written";
inline constexpr char kSortEntriesRead[] = "sort.entries_read";
inline constexpr char kSortInitialRuns[] = "sort.initial_runs";

// --- Window scan / SNM merge phase (both methods, serial + parallel).
// Counts COMMITTED work only: parallel fragments flush inside the
// exactly-once commit, so a retried or speculated fragment contributes
// once no matter how many attempts ran (see docs/observability.md). ---
inline constexpr char kSnmWindows[] = "snm.windows";
inline constexpr char kSnmComparisons[] = "snm.comparisons";
inline constexpr char kSnmMatches[] = "snm.matches";
inline constexpr char kSnmPasses[] = "snm.passes";
inline constexpr char kSnmScanUs[] = "snm.scan_us";          // Histogram.
inline constexpr char kSnmSortUs[] = "snm.sort_us";          // Histogram.

// --- Equational theories (src/rules). ---
inline constexpr char kRulesFiredPrefix[] = "rules.fired.";  // + rule id.
inline constexpr char kRulesDistanceCalls[] = "rules.distance_calls";
inline constexpr char kRulesEarlyExits[] = "rules.early_exits";

// --- Transitive closure (union-find). ---
inline constexpr char kClosureUnions[] = "closure.unions";
inline constexpr char kClosureUnionCalls[] = "closure.union_calls";
inline constexpr char kClosurePathCompressions[] =
    "closure.path_compressions";
inline constexpr char kClosureUs[] = "closure.us";           // Histogram.

// --- Parallel executors (src/parallel). ---
inline constexpr char kParallelTasks[] = "parallel.tasks";
inline constexpr char kParallelWorkerTasksPrefix[] =
    "parallel.worker_tasks.";                                // + worker id.

// --- ResilientRunner fault-tolerance accounting. ---
inline constexpr char kResilientRetries[] = "resilient.retries";
inline constexpr char kResilientSpeculations[] = "resilient.speculations";
inline constexpr char kResilientExhausted[] = "resilient.exhausted";
inline constexpr char kResilientQueueWaitUs[] =
    "resilient.queue_wait_us";                               // Histogram.

// --- Fault injection (src/util/fault_injector). ---
inline constexpr char kFaultsTripped[] = "faults.tripped";

// --- Checkpoint/resume (src/core/checkpoint). ---
inline constexpr char kCheckpointSaves[] = "checkpoint.saves";
inline constexpr char kCheckpointLoads[] = "checkpoint.loads";
inline constexpr char kCheckpointInvalidations[] =
    "checkpoint.invalidations";

// --- Online match/upsert service (src/service). Counted at the server,
// not the client: loadgen-side latencies live under service.client.*. ---
inline constexpr char kServiceConnections[] = "service.connections";
inline constexpr char kServiceConnectionsRejected[] =
    "service.connections_rejected";
inline constexpr char kServiceRequests[] = "service.requests";
inline constexpr char kServiceMatchRequests[] = "service.match_requests";
inline constexpr char kServiceUpsertRequests[] = "service.upsert_requests";
inline constexpr char kServiceUpsertRecords[] = "service.upsert_records";
inline constexpr char kServiceErrors[] = "service.errors";
inline constexpr char kServiceBatches[] = "service.batches";
inline constexpr char kServiceRequestUs[] = "service.request_us";   // Hist.
inline constexpr char kServiceMatchUs[] = "service.match_us";       // Hist.
inline constexpr char kServiceUpsertUs[] = "service.upsert_us";     // Hist.
// Time an upsert spends queued in the batcher before its batch commits.
inline constexpr char kServiceQueueWaitUs[] =
    "service.queue_wait_us";                                        // Hist.
// Records per committed batch (coalescing effectiveness).
inline constexpr char kServiceBatchRecords[] =
    "service.batch_records";                                        // Hist.

// --- Commit-pipeline stage attribution. One sample per committed batch
// in every stage histogram, so their counts all equal service.batches
// and their p50s decompose service.upsert_us end to end (the ci.sh
// stats e2e asserts both). queue_wait here is the OLDEST request's wait
// (the batch-level number that chains with the downstream stages);
// service.queue_wait_us above stays per-request. ---
inline constexpr char kServiceStageQueueWaitUs[] =
    "service.stage.queue_wait_us";                                  // Hist.
inline constexpr char kServiceStageWalAppendUs[] =
    "service.stage.wal_append_us";                                  // Hist.
inline constexpr char kServiceStageWalFsyncUs[] =
    "service.stage.wal_fsync_us";                                   // Hist.
inline constexpr char kServiceStageApplyUs[] =
    "service.stage.apply_us";                                       // Hist.
inline constexpr char kServiceStageLabelRebuildUs[] =
    "service.stage.label_rebuild_us";                               // Hist.
inline constexpr char kServiceStageAckUs[] =
    "service.stage.ack_us";                                         // Hist.

// --- Resident-state gauges, refreshed after every committed batch (and
// on snapshot/WAL activity for the last two). These answer "how big is
// the live engine right now" without taking the engine lock. ---
inline constexpr char kServiceRecordsResident[] =
    "service.records_resident";                                     // Gauge.
inline constexpr char kServicePairsResident[] =
    "service.pairs_resident";                                       // Gauge.
inline constexpr char kServiceComponentsResident[] =
    "service.components_resident";                                  // Gauge.
inline constexpr char kServiceWalOpenSegmentBytes[] =
    "service.wal.open_segment_bytes";                               // Gauge.
inline constexpr char kServiceSnapshotAgeMs[] =
    "service.snapshot.age_ms";                                      // Gauge.

// --- Durability: write-ahead log + snapshots (src/service/wal,
// src/service/snapshot; see docs/durability.md). ---
inline constexpr char kServiceWalAppends[] = "service.wal.appends";
inline constexpr char kServiceWalFsyncs[] = "service.wal.fsyncs";
inline constexpr char kServiceWalBytes[] = "service.wal.bytes";
inline constexpr char kServiceWalSegmentsRemoved[] =
    "service.wal.segments_removed";
inline constexpr char kServiceWalAppendUs[] =
    "service.wal.append_us";                                        // Hist.
inline constexpr char kServiceSnapshotSaves[] = "service.snapshot.saves";
inline constexpr char kServiceSnapshotFailures[] =
    "service.snapshot.failures";
inline constexpr char kServiceSnapshotWriteUs[] =
    "service.snapshot.write_us";                                    // Hist.
// Startup recovery (snapshot load + WAL tail replay).
inline constexpr char kServiceRecoveryBatchesReplayed[] =
    "service.recovery.batches_replayed";
inline constexpr char kServiceRecoveryRecordsReplayed[] =
    "service.recovery.records_replayed";
inline constexpr char kServiceRecoveryTruncatedBytes[] =
    "service.recovery.truncated_bytes";
inline constexpr char kServiceRecoveryUs[] =
    "service.recovery.us";                                          // Hist.

// --- Loadgen client-side measurements (tools/mergepurge_loadgen). ---
inline constexpr char kServiceClientRequestUs[] =
    "service.client.request_us";                                    // Hist.
inline constexpr char kServiceClientMatchUs[] =
    "service.client.match_us";                                      // Hist.
inline constexpr char kServiceClientUpsertUs[] =
    "service.client.upsert_us";                                     // Hist.
// Reconnect/resend attempts after transient transport errors (server
// restart mid-run); see the loadgen backoff loop.
inline constexpr char kServiceClientRetries[] = "service.client.retries";

// --- Shard coordinator (src/shard; see docs/sharding.md). Counted in
// the coordinator process; the per-shard engines report the ordinary
// service.* set in their own registries. ---
// Owner-routed record admissions (each record counts once, on its
// owner set — replicas are counted separately below).
inline constexpr char kCoordRouteRecords[] = "coord.route_records";
// Boundary-band replicas shipped to neighboring shards (§4
// fragmentation volume).
inline constexpr char kCoordReplicaRecords[] = "coord.replica_records";
// Per-shard-batch retry attempts (reconnect/backoff via CallWithRetry).
inline constexpr char kCoordShardRetries[] = "coord.shard_retries";
// Wall time of one upsert's full shard fan-out (route + send + collect).
inline constexpr char kCoordFanoutUs[] = "coord.fanout_us";      // Hist.
// Time folding shard responses into the global closure.
inline constexpr char kCoordClosureMergeUs[] =
    "coord.closure_merge_us";                                    // Hist.
// Global ids admitted / distinct global entities after closure.
inline constexpr char kCoordGlobalRecords[] =
    "coord.global_records";                                      // Gauge.
inline constexpr char kCoordGlobalEntities[] =
    "coord.global_entities";                                     // Gauge.

}  // namespace metric_names

// Registers every catalogued fixed-name metric in `registry` so snapshots
// and run reports always contain the full key set, zero-valued when a
// stage never ran (e.g. resilient.retries in a serial run). RunReport
// calls this on construction; tests call it directly.
void PreregisterStandardMetrics(MetricsRegistry& registry);

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_METRIC_NAMES_H_
