#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mergepurge {

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    total += stripe.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Stripe& stripe : stripes_) {
    stripe.value.store(0, std::memory_order_relaxed);
  }
}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

LatencyHistogram::LatencyHistogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  assert(!bounds_.empty() && "histogram needs at least one bound");
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be increasing");
}

void LatencyHistogram::Record(double value) {
  // First bucket whose upper bound admits the value; past-the-end is the
  // overflow bucket.
  size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(buckets_.size());
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    snapshot.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  return snapshot;
}

void LatencyHistogram::Reset() {
  for (std::atomic<uint64_t>& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> LatencyHistogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LatencyHistogram::LatencyBounds() {
  // 10^(i/10) for i = 0..70: 1 µs .. 1e7 µs (10 s), ten buckets per
  // decade. Values are computed once per registration, so the pow calls
  // never touch a hot path.
  std::vector<double> bounds;
  bounds.reserve(71);
  for (int i = 0; i <= 70; ++i) {
    bounds.push_back(std::pow(10.0, i / 10.0));
  }
  return bounds;
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  auto it = counters.find(std::string(name));
  return it == counters.end() ? 0 : it->second;
}

JsonValue MetricsSnapshot::ToJson() const {
  JsonValue out = JsonValue::Object();

  JsonValue counters_json = JsonValue::Object();
  for (const auto& [name, value] : counters) {
    counters_json.Set(name, JsonValue(value));
  }
  out.Set("counters", std::move(counters_json));

  JsonValue gauges_json = JsonValue::Object();
  for (const auto& [name, value] : gauges) {
    gauges_json.Set(name, JsonValue(value));
  }
  out.Set("gauges", std::move(gauges_json));

  JsonValue histograms_json = JsonValue::Object();
  for (const auto& [name, histogram] : histograms) {
    JsonValue h = JsonValue::Object();
    h.Set("count", JsonValue(histogram.count));
    h.Set("sum", JsonValue(histogram.sum));
    JsonValue buckets = JsonValue::Array();
    for (size_t i = 0; i < histogram.counts.size(); ++i) {
      JsonValue bucket = JsonValue::Object();
      if (i < histogram.bounds.size()) {
        bucket.Set("le", JsonValue(histogram.bounds[i]));
      } else {
        bucket.Set("le", JsonValue("+inf"));
      }
      bucket.Set("count", JsonValue(histogram.counts[i]));
      buckets.Append(std::move(bucket));
    }
    h.Set("buckets", std::move(buckets));
    histograms_json.Set(name, std::move(h));
  }
  out.Set("histograms", std::move(histograms_json));
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instrumentation may run during static
  // destruction of other objects.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = LatencyHistogram::LatencyBounds();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<LatencyHistogram>(std::string(name),
                                                  std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms[name] = histogram->Snapshot();
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace mergepurge
