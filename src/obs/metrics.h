// MetricsRegistry: named counters, gauges and fixed-bucket histograms for
// the merge/purge pipeline. Design goals, in order:
//
//   1. Hot paths stay hot. Counter::Add is one relaxed atomic increment on
//      a cacheline-private stripe selected by the calling thread's dense
//      ordinal — no locks, no shared contended line. Library code that is
//      hotter still (the window scan's per-pair loop) accumulates in plain
//      locals and flushes one Add per batch.
//   2. Names are stable, dot-delimited, and catalogued in
//      obs/metric_names.h (documented in docs/observability.md). A metric,
//      once registered, lives for the process: handles returned by the
//      registry never dangle, so call sites cache them in static locals.
//   3. Snapshots are exact. Snapshot() sums every stripe; with all writer
//      threads quiescent the result equals the arithmetic sum of all Adds
//      (verified under contention by tests/obs_metrics_test.cc).
//
// With no sink requested nothing is ever serialized; the registry is then
// just a few idle cache lines.

#ifndef MERGEPURGE_OBS_METRICS_H_
#define MERGEPURGE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "util/sync.h"
#include "util/thread_id.h"

namespace mergepurge {

// Stripes per counter. Threads hash onto stripes by dense ordinal, so up
// to this many threads increment without sharing a cache line. More
// stripes than the thread pools this project spawns would be dead memory.
inline constexpr size_t kCounterStripes = 16;

// A monotonically increasing sum. Thread-safe; Add is wait-free.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    stripes_[CurrentThreadOrdinal() % kCounterStripes].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  // Exact when writers are quiescent; otherwise a consistent lower bound
  // of the increments that happened-before the call.
  uint64_t Value() const;

  void Reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };

  std::string name_;
  std::array<Stripe, kCounterStripes> stripes_;
};

// A last-write-wins instantaneous value (e.g. configured worker count).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  // Upper bounds of the finite buckets; bucket i counts values
  // v <= bounds[i] (and > bounds[i-1]). counts has bounds.size() + 1
  // entries; the last is the overflow bucket (> bounds.back()).
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
};

// A fixed-bucket histogram (bounds immutable after construction, so
// Record never allocates or locks).
class LatencyHistogram {
 public:
  // `bounds` must be strictly increasing and non-empty.
  LatencyHistogram(std::string name, std::vector<double> bounds);

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void Record(double value);

  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  // `count` buckets growing geometrically from `start` by `factor`:
  // {start, start*factor, ...}. Used for count-scaled histograms (batch
  // sizes); the *_us histograms default to LatencyBounds() instead.
  static std::vector<double> ExponentialBounds(double start = 1.0,
                                               double factor = 4.0,
                                               size_t count = 20);

  // The default latency scale: log-spaced from 1 µs to 10 s, ten buckets
  // per decade (bounds 10^(i/10) µs, i = 0..70; ratio ≈1.26 between
  // neighbors). Fine enough that a sub-millisecond upsert path resolves
  // into distinct buckets and interpolated quantiles stay within a few
  // percent of the exact value, instead of the old x4 scale that
  // quantized everything under 1 ms into one or two buckets.
  static std::vector<double> LatencyBounds();

 private:
  std::string name_;
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1.
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// A point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  // Value of a counter, 0 when absent (absent and zero are
  // indistinguishable on purpose: catalogued metrics are pre-registered).
  uint64_t counter(std::string_view name) const;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  JsonValue ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry all library instrumentation writes to.
  static MetricsRegistry& Global();

  // Returns the metric named `name`, creating it on first use. Pointers
  // are stable for the registry's lifetime — cache them at call sites:
  //   static Counter* const c = MetricsRegistry::Global().GetCounter(...);
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);

  // First registration fixes the bucket bounds; later calls return the
  // existing histogram regardless of `bounds`. Empty bounds select
  // LatencyHistogram::LatencyBounds().
  LatencyHistogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every value but keeps all registrations (cached handles stay
  // valid). Used between runs sharing a process (tests, benches).
  void Reset();

 private:
  // mu_ guards only the registration maps; metric values themselves are
  // atomics, so handles returned by Get* are written without the lock.
  mutable Mutex mu_{lockrank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      MERGEPURGE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      MERGEPURGE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_ MERGEPURGE_GUARDED_BY(mu_);
};

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_METRICS_H_
