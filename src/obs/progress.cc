#include "obs/progress.h"

#include <chrono>
#include <cstdio>

namespace mergepurge {

namespace {

constexpr int64_t kPaintIntervalNs = 200'000'000;  // 5 Hz.

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ProgressReporter& ProgressReporter::Global() {
  static ProgressReporter* reporter = new ProgressReporter();
  return *reporter;
}

void ProgressReporter::Disable() {
  FinishPhase();
  enabled_.store(false, std::memory_order_relaxed);
}

void ProgressReporter::BeginPhase(std::string_view name, uint64_t total) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  if (line_open_) {
    std::fputc('\n', stderr);
    line_open_ = false;
  }
  phase_ = std::string(name);
  total_ = total;
  done_ = 0;
  last_paint_ns_ = 0;
  Paint(/*force=*/true);
}

void ProgressReporter::Advance(uint64_t items) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  done_ += items;
  Paint(/*force=*/false);
}

void ProgressReporter::FinishPhase() {
  if (!enabled()) return;
  MutexLock lock(mu_);
  if (!phase_.empty()) Paint(/*force=*/true);
  if (line_open_) {
    std::fputc('\n', stderr);
    line_open_ = false;
  }
  phase_.clear();
  total_ = 0;
  done_ = 0;
}

void ProgressReporter::Paint(bool force) {
  int64_t now = NowNanos();
  if (!force && now - last_paint_ns_ < kPaintIntervalNs) return;
  last_paint_ns_ = now;
  if (total_ > 0) {
    double pct = 100.0 * static_cast<double>(done_) /
                 static_cast<double>(total_);
    if (pct > 100.0) pct = 100.0;
    std::fprintf(stderr, "\r[mergepurge] %s: %llu/%llu (%.1f%%)   ",
                 phase_.c_str(), static_cast<unsigned long long>(done_),
                 static_cast<unsigned long long>(total_), pct);
  } else {
    std::fprintf(stderr, "\r[mergepurge] %s: %llu   ", phase_.c_str(),
                 static_cast<unsigned long long>(done_));
  }
  std::fflush(stderr);
  line_open_ = true;
}

}  // namespace mergepurge
