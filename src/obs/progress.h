// A throttled one-line stderr progress display for long pipeline runs,
// enabled by mergepurge_cli --progress. Library code reports phases and
// item counts; the reporter rewrites a single status line at most a few
// times per second. When disabled (the default), Advance() is one
// relaxed load — cheap enough for chunked calls from scan loops.

#ifndef MERGEPURGE_OBS_PROGRESS_H_
#define MERGEPURGE_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/sync.h"

namespace mergepurge {

class ProgressReporter {
 public:
  ProgressReporter() = default;
  ProgressReporter(const ProgressReporter&) = delete;
  ProgressReporter& operator=(const ProgressReporter&) = delete;

  // The process-wide reporter library code advances. Disabled by default.
  static ProgressReporter& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }

  // Finishes any pending line and disables further output.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Starts a named phase ("pass 1/3: sort", "closure"). `total` is the
  // expected item count for the phase, or 0 when unknown.
  void BeginPhase(std::string_view name, uint64_t total = 0);

  // Adds `items` completed units to the current phase; repaints the
  // status line if the throttle interval has elapsed.
  void Advance(uint64_t items);

  // Terminates the status line (if one was painted) so subsequent normal
  // output starts on a fresh line. Called at phase/run boundaries.
  void FinishPhase();

 private:
  void Paint(bool force) MERGEPURGE_REQUIRES(mu_);

  std::atomic<bool> enabled_{false};
  Mutex mu_{lockrank::kProgress};
  std::string phase_ MERGEPURGE_GUARDED_BY(mu_);
  uint64_t total_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  uint64_t done_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  // steady_clock ticks (ns) of the last repaint; throttles to ~5 Hz.
  int64_t last_paint_ns_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  bool line_open_ MERGEPURGE_GUARDED_BY(mu_) = false;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_PROGRESS_H_
