#include "obs/run_report.h"

#include <fstream>

#include "core/multipass.h"
#include "obs/metric_names.h"
#include "util/string_util.h"

namespace mergepurge {

void PreregisterStandardMetrics(MetricsRegistry& registry) {
  namespace mn = metric_names;
  for (const char* name :
       {mn::kGenRecords, mn::kGenDuplicates, mn::kSortSpills,
        mn::kSortMergePasses, mn::kSortEntriesWritten, mn::kSortEntriesRead,
        mn::kSortInitialRuns, mn::kSnmWindows, mn::kSnmComparisons,
        mn::kSnmMatches, mn::kSnmPasses, mn::kRulesDistanceCalls,
        mn::kRulesEarlyExits, mn::kClosureUnions, mn::kClosureUnionCalls,
        mn::kClosurePathCompressions, mn::kParallelTasks,
        mn::kResilientRetries, mn::kResilientSpeculations,
        mn::kResilientExhausted, mn::kFaultsTripped, mn::kCheckpointSaves,
        mn::kCheckpointLoads, mn::kCheckpointInvalidations,
        mn::kServiceConnections, mn::kServiceConnectionsRejected,
        mn::kServiceRequests, mn::kServiceMatchRequests,
        mn::kServiceUpsertRequests, mn::kServiceUpsertRecords,
        mn::kServiceErrors, mn::kServiceBatches, mn::kServiceWalAppends,
        mn::kServiceWalFsyncs, mn::kServiceWalBytes,
        mn::kServiceWalSegmentsRemoved, mn::kServiceSnapshotSaves,
        mn::kServiceSnapshotFailures, mn::kServiceRecoveryBatchesReplayed,
        mn::kServiceRecoveryRecordsReplayed,
        mn::kServiceRecoveryTruncatedBytes, mn::kServiceClientRetries,
        mn::kCoordRouteRecords, mn::kCoordReplicaRecords,
        mn::kCoordShardRetries}) {
    registry.GetCounter(name);
  }
  for (const char* name :
       {mn::kSnmScanUs, mn::kSnmSortUs, mn::kClosureUs,
        mn::kResilientQueueWaitUs, mn::kServiceRequestUs,
        mn::kServiceMatchUs, mn::kServiceUpsertUs, mn::kServiceQueueWaitUs,
        mn::kServiceClientRequestUs, mn::kServiceClientMatchUs,
        mn::kServiceClientUpsertUs, mn::kServiceWalAppendUs,
        mn::kServiceSnapshotWriteUs, mn::kServiceRecoveryUs,
        mn::kServiceStageQueueWaitUs, mn::kServiceStageWalAppendUs,
        mn::kServiceStageWalFsyncUs, mn::kServiceStageApplyUs,
        mn::kServiceStageLabelRebuildUs, mn::kServiceStageAckUs,
        mn::kCoordFanoutUs, mn::kCoordClosureMergeUs}) {
    registry.GetHistogram(name);
  }
  for (const char* name :
       {mn::kServiceRecordsResident, mn::kServicePairsResident,
        mn::kServiceComponentsResident, mn::kServiceWalOpenSegmentBytes,
        mn::kServiceSnapshotAgeMs, mn::kCoordGlobalRecords,
        mn::kCoordGlobalEntities}) {
    registry.GetGauge(name);
  }
  // Batch sizes are small integers, not microseconds: count-scaled
  // buckets (1..~1k by x2) instead of the default latency scale.
  registry.GetHistogram(
      mn::kServiceBatchRecords,
      LatencyHistogram::ExponentialBounds(1.0, 2.0, 11));
}

RunReport::RunReport(std::string tool, MetricsRegistry* registry)
    : tool_(std::move(tool)),
      registry_(registry),
      config_(JsonValue::Object()),
      dataset_(JsonValue::Object()),
      passes_(JsonValue::Array()),
      closure_(JsonValue::Object()),
      outcome_(JsonValue::Object()) {
  PreregisterStandardMetrics(*registry_);
}

void RunReport::SetConfig(std::string_view key, JsonValue value) {
  config_.Set(std::string(key), std::move(value));
}

void RunReport::SetDataset(uint64_t records, uint64_t fields) {
  dataset_.Set("records", JsonValue(records));
  dataset_.Set("fields", JsonValue(fields));
}

void RunReport::AddPass(const PassResult& pass) {
  JsonValue p = JsonValue::Object();
  p.Set("key", JsonValue(pass.key_name));
  p.Set("pairs", JsonValue(static_cast<uint64_t>(pass.pairs.size())));
  p.Set("windows", JsonValue(pass.windows));
  p.Set("comparisons", JsonValue(pass.comparisons));
  p.Set("matches", JsonValue(pass.matches));
  p.Set("create_keys_seconds", JsonValue(pass.create_keys_seconds));
  p.Set("sort_seconds", JsonValue(pass.sort_seconds));
  p.Set("cluster_seconds", JsonValue(pass.cluster_seconds));
  p.Set("scan_seconds", JsonValue(pass.scan_seconds));
  p.Set("total_seconds", JsonValue(pass.total_seconds));
  p.Set("resumed", JsonValue(pass.resumed));
  passes_.Append(std::move(p));
}

void RunReport::SetMultiPass(const MultiPassResult& result) {
  passes_ = JsonValue::Array();
  for (const PassResult& pass : result.passes) AddPass(pass);
  closure_.Set("union_pairs", JsonValue(result.union_pair_count));
  closure_.Set("closure_seconds", JsonValue(result.closure_seconds));
  closure_.Set("total_seconds", JsonValue(result.total_seconds));
  closure_.Set("passes_resumed",
               JsonValue(static_cast<uint64_t>(result.passes_resumed)));
}

void RunReport::SetOutcome(bool ok, std::string_view detail) {
  outcome_.Set("ok", JsonValue(ok));
  if (!detail.empty()) outcome_.Set("detail", JsonValue(detail));
}

void RunReport::CaptureMetrics() {
  metrics_ = registry_->Snapshot();
  metrics_captured_ = true;
}

JsonValue RunReport::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("tool", JsonValue(tool_));
  out.Set("schema_version", JsonValue(1));
  out.Set("config", config_);
  out.Set("dataset", dataset_);
  out.Set("passes", passes_);
  out.Set("closure", closure_);
  out.Set("outcome", outcome_);
  // A report without an explicit CaptureMetrics() still carries the
  // registry's current (possibly all-zero) state.
  JsonValue metrics =
      metrics_captured_ ? metrics_.ToJson() : registry_->Snapshot().ToJson();
  for (auto& [key, value] : metrics.members()) {
    out.Set(key, value);
  }
  return out;
}

Status RunReport::WriteToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::IoError(
        StringPrintf("cannot open report output '%s'", path.c_str()));
  }
  file << ToJson().Dump(/*indent=*/1) << '\n';
  if (!file.good()) {
    return Status::IoError(
        StringPrintf("failed writing report output '%s'", path.c_str()));
  }
  return Status::OK();
}

}  // namespace mergepurge
