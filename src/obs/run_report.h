// RunReport: the machine-readable summary of one merge/purge run.
// Collects tool identity, configuration, dataset shape, per-pass
// SNM/clustering stats, closure stats, and a full metrics snapshot into
// one JSON document (schema documented in docs/observability.md).
// Written by mergepurge_cli --metrics-out and the bench harnesses
// (BENCH_snm.json); validated by tools/validate_report and ci.sh.

#ifndef MERGEPURGE_OBS_RUN_REPORT_H_
#define MERGEPURGE_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace mergepurge {

struct MultiPassResult;
struct PassResult;

class RunReport {
 public:
  // Construction pre-registers the standard metric catalog in `registry`
  // so every report carries the full key set (zeros for stages that
  // never ran). Defaults to the global registry.
  explicit RunReport(std::string tool,
                     MetricsRegistry* registry = &MetricsRegistry::Global());

  // --- Identity and configuration. ---
  void SetConfig(std::string_view key, JsonValue value);
  void SetDataset(uint64_t records, uint64_t fields);

  // --- Results. ---
  void AddPass(const PassResult& pass);

  // Serializes every pass plus closure stats and the distinct-pair union.
  void SetMultiPass(const MultiPassResult& result);

  void SetOutcome(bool ok, std::string_view detail = "");

  // Copies the registry's current state into the report. Call after the
  // pipeline finishes; the last capture wins.
  void CaptureMetrics();

  // Top-level document:
  //   {"tool", "schema_version", "config", "dataset", "passes",
  //    "closure", "outcome", "counters", "gauges", "histograms"}
  JsonValue ToJson() const;

  // ToJson() pretty-printed to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  std::string tool_;
  MetricsRegistry* registry_;
  JsonValue config_;
  JsonValue dataset_;
  JsonValue passes_;
  JsonValue closure_;
  JsonValue outcome_;
  MetricsSnapshot metrics_;
  bool metrics_captured_ = false;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_RUN_REPORT_H_
