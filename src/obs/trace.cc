#include "obs/trace.h"

#include <fstream>
#include <utility>

#include "util/string_util.h"

namespace mergepurge {

namespace {

// Innermost open span on this thread; children link to it as parent.
thread_local uint64_t tls_current_span_id = 0;

}  // namespace

TraceRecorder::TraceRecorder() = default;

TraceRecorder& TraceRecorder::Global() {
  // Leaked intentionally, like MetricsRegistry::Global(): spans may close
  // during static destruction of other objects.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Record(TraceSpan span) {
  MutexLock lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> TraceRecorder::Spans() const {
  MutexLock lock(mu_);
  return spans_;
}

size_t TraceRecorder::span_count() const {
  MutexLock lock(mu_);
  return spans_.size();
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  spans_.clear();
  next_span_id_.store(1, std::memory_order_relaxed);
  epoch_.Restart();
}

JsonValue TraceRecorder::ToChromeJson() const {
  JsonValue events = JsonValue::Array();
  std::vector<TraceSpan> spans = Spans();
  for (const TraceSpan& span : spans) {
    JsonValue event = JsonValue::Object();
    event.Set("name", JsonValue(span.name));
    event.Set("ph", JsonValue("X"));
    event.Set("pid", JsonValue(1));
    event.Set("tid", JsonValue(static_cast<uint64_t>(span.thread_ordinal)));
    event.Set("ts", JsonValue(span.start_us));
    event.Set("dur", JsonValue(span.duration_us));
    JsonValue args = JsonValue::Object();
    args.Set("span_id", JsonValue(span.id));
    if (span.parent_id != 0) {
      args.Set("parent_id", JsonValue(span.parent_id));
    }
    for (const auto& [key, value] : span.args) {
      args.Set(key, JsonValue(value));
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  JsonValue out = JsonValue::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", JsonValue("ms"));
  return out;
}

Status TraceRecorder::ExportChromeJson(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::IoError(
        StringPrintf("cannot open trace output '%s'", path.c_str()));
  }
  file << ToChromeJson().Dump(/*indent=*/1) << '\n';
  if (!file.good()) {
    return Status::IoError(
        StringPrintf("failed writing trace output '%s'", path.c_str()));
  }
  return Status::OK();
}

Span::Span(TraceRecorder& recorder, std::string_view name)
    : recorder_(&recorder), active_(recorder.enabled()) {
  if (!active_) return;
  span_.name = std::string(name);
  span_.id = recorder_->NextSpanId();
  span_.parent_id = tls_current_span_id;
  span_.thread_ordinal = CurrentThreadOrdinal();
  span_.start_us = recorder_->NowMicros();
  tls_current_span_id = span_.id;
}

Span::Span(std::string_view name) : Span(TraceRecorder::Global(), name) {}

Span::~Span() {
  if (!active_) return;
  span_.duration_us = recorder_->NowMicros() - span_.start_us;
  tls_current_span_id = span_.parent_id;
  recorder_->Record(std::move(span_));
}

void Span::AddArg(std::string_view key, std::string value) {
  if (!active_) return;
  span_.args.emplace_back(std::string(key), std::move(value));
}

void Span::AddArg(std::string_view key, uint64_t value) {
  AddArg(key, std::to_string(value));
}

}  // namespace mergepurge
