// Phase-scoped tracing for the merge/purge pipeline.
//
//   TraceRecorder& tracer = TraceRecorder::Global();
//   {
//     Span span(tracer, "sort-pass-2");   // opens a span on this thread
//     ...                                  // nested Spans become children
//   }                                      // closes and records it
//
// Spans nest per thread via a thread-local parent stack; cross-thread
// spans (parallel workers) appear side by side under their own thread
// ids. The recorder is disabled by default, making Span construction a
// single relaxed load plus nothing — pipelines that never ask for a
// trace pay essentially zero.
//
// ExportChromeJson() writes the Chrome trace-event format ("ph":"X"
// complete events) loadable by chrome://tracing and ui.perfetto.dev; see
// docs/observability.md for the exact schema.

#ifndef MERGEPURGE_OBS_TRACE_H_
#define MERGEPURGE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_id.h"
#include "util/timer.h"

namespace mergepurge {

// One completed span. Timestamps are microseconds relative to the
// recorder's epoch (its construction or last Clear()).
struct TraceSpan {
  std::string name;
  uint64_t id = 0;         // Unique per recorder; 0 is never assigned.
  uint64_t parent_id = 0;  // 0 when the span is a root on its thread.
  uint32_t thread_ordinal = 0;
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  // Optional key=value annotations, exported as the event's "args".
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // The process-wide recorder all library Spans attach to. Disabled
  // until a sink enables it (e.g. mergepurge_cli --trace-out=...).
  static TraceRecorder& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Microseconds since the recorder epoch.
  uint64_t NowMicros() const { return epoch_.ElapsedMicros(); }

  // Appends a finished span. Thread-safe.
  void Record(TraceSpan span);

  // Copies out all recorded spans (ordered by completion time per thread).
  std::vector<TraceSpan> Spans() const;

  size_t span_count() const;

  // Drops all spans and restarts the epoch. Not thread-safe with respect
  // to open Spans — call only between runs.
  void Clear();

  // {"traceEvents":[...], "displayTimeUnit":"ms"} per the Chrome
  // trace-event format.
  JsonValue ToChromeJson() const;

  // Serializes ToChromeJson() to `path`.
  Status ExportChromeJson(const std::string& path) const;

  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  Timer epoch_;
  mutable Mutex mu_{lockrank::kTrace};
  std::vector<TraceSpan> spans_ MERGEPURGE_GUARDED_BY(mu_);
};

// RAII handle for one span. Construction opens it (if the recorder is
// enabled), destruction records it. Must be closed on the thread that
// opened it, in LIFO order per thread — scope-bound usage guarantees
// both.
class Span {
 public:
  Span(TraceRecorder& recorder, std::string_view name);

  // Convenience: attaches to TraceRecorder::Global().
  explicit Span(std::string_view name);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span();

  // Annotates the span; shows up under "args" in the trace viewer.
  // No-op when the recorder was disabled at construction.
  void AddArg(std::string_view key, std::string value);
  void AddArg(std::string_view key, uint64_t value);

  bool active() const { return active_; }

 private:
  TraceRecorder* recorder_;
  bool active_;
  TraceSpan span_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_TRACE_H_
