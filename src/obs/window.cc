#include "obs/window.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace mergepurge {

namespace {

// Bucketwise histogram diff; falls back to `newer` whole when the two
// snapshots are not diffable (bounds changed, or a bucket went
// backwards — both mean a reset happened in between).
HistogramSnapshot DiffHistograms(const HistogramSnapshot& older,
                                 const HistogramSnapshot& newer) {
  if (older.bounds != newer.bounds ||
      older.counts.size() != newer.counts.size() ||
      older.count > newer.count) {
    return newer;
  }
  HistogramSnapshot diff;
  diff.bounds = newer.bounds;
  diff.counts.reserve(newer.counts.size());
  for (size_t i = 0; i < newer.counts.size(); ++i) {
    if (older.counts[i] > newer.counts[i]) return newer;
    diff.counts.push_back(newer.counts[i] - older.counts[i]);
  }
  diff.count = newer.count - older.count;
  // Sums are accumulated doubles; clamp the tiny negative a concurrent
  // reader can observe between the bucket and sum updates.
  diff.sum = std::max(0.0, newer.sum - older.sum);
  return diff;
}

}  // namespace

MetricsSnapshot DiffSnapshots(const MetricsSnapshot& older,
                              const MetricsSnapshot& newer) {
  MetricsSnapshot diff;
  for (const auto& [name, value] : newer.counters) {
    auto it = older.counters.find(name);
    uint64_t before = it == older.counters.end() ? 0 : it->second;
    diff.counters[name] = before > value ? value : value - before;
  }
  diff.gauges = newer.gauges;
  for (const auto& [name, histogram] : newer.histograms) {
    auto it = older.histograms.find(name);
    diff.histograms[name] = it == older.histograms.end()
                                ? histogram
                                : DiffHistograms(it->second, histogram);
  }
  return diff;
}

double HistogramQuantile(const HistogramSnapshot& histogram, double q) {
  if (histogram.count == 0 || histogram.counts.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(histogram.count);
  double cumulative = 0.0;
  for (size_t i = 0; i < histogram.counts.size(); ++i) {
    double in_bucket = static_cast<double>(histogram.counts[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= histogram.bounds.size()) {
      // Overflow bucket: unbounded above, report the last finite bound.
      return histogram.bounds.back();
    }
    double lower = i == 0 ? 0.0 : histogram.bounds[i - 1];
    double upper = histogram.bounds[i];
    double fraction = in_bucket == 0.0
                          ? 0.0
                          : std::clamp((target - cumulative) / in_bucket,
                                       0.0, 1.0);
    if (lower > 0.0 && upper > lower) {
      // Geometric interpolation matches the log-spaced bucket scale.
      return lower * std::pow(upper / lower, fraction);
    }
    return lower + fraction * (upper - lower);
  }
  return histogram.bounds.back();
}

SnapshotRing::SnapshotRing(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SnapshotRing::Push(double at_seconds, MetricsSnapshot snapshot) {
  MutexLock lock(mu_);
  if (!samples_.empty() && at_seconds < samples_.back().at_seconds) return;
  samples_.push_back(Sample{at_seconds, std::move(snapshot)});
  while (samples_.size() > capacity_) samples_.pop_front();
}

SnapshotWindow SnapshotRing::Over(double window_seconds) const {
  MutexLock lock(mu_);
  SnapshotWindow window;
  if (samples_.size() < 2) return window;
  const Sample& newest = samples_.back();
  // Oldest sample still inside the window; there is always at least one
  // candidate (the sample just before newest) when spans are short.
  const Sample* oldest = nullptr;
  for (const Sample& sample : samples_) {
    if (newest.at_seconds - sample.at_seconds <= window_seconds) {
      oldest = &sample;
      break;
    }
  }
  if (oldest == nullptr || oldest == &newest) return window;
  window.seconds = newest.at_seconds - oldest->at_seconds;
  if (window.seconds <= 0.0) return window;
  window.valid = true;
  window.delta = DiffSnapshots(oldest->snapshot, newest.snapshot);
  return window;
}

size_t SnapshotRing::size() const {
  MutexLock lock(mu_);
  return samples_.size();
}

}  // namespace mergepurge
