// Windowed-rate support for live introspection: diff two metric
// snapshots, estimate quantiles from histogram buckets, and keep a small
// ring of timestamped snapshots so a live service can answer "what
// happened over the last 10 seconds" instead of only "since boot".
//
// The ring is fed opportunistically (the server pushes a snapshot on
// every stats request, the loadgen on every progress tick), so windows
// are approximate by design: Over(w) diffs the newest sample against the
// oldest sample still inside the window and reports the actual span
// covered. Counter resets (a test calling MetricsRegistry::Reset, a
// restarted process feeding the same ring) are detected per metric and
// degrade to the newer absolute value rather than an absurd negative
// rate.

#ifndef MERGEPURGE_OBS_WINDOW_H_
#define MERGEPURGE_OBS_WINDOW_H_

#include <cstddef>
#include <deque>

#include "obs/metrics.h"
#include "util/sync.h"

namespace mergepurge {

// newer - older, per metric. Counters subtract; a counter that went
// backwards (reset between the two snapshots) contributes its newer
// value, as if the older snapshot were zero. Gauges are instantaneous,
// so the newer value passes through unchanged. Histograms diff
// bucketwise when the bounds match and no bucket went backwards;
// otherwise (re-registration with different bounds, or a reset) the
// newer histogram passes through whole. Metrics present only in `newer`
// pass through; metrics present only in `older` are dropped.
MetricsSnapshot DiffSnapshots(const MetricsSnapshot& older,
                              const MetricsSnapshot& newer);

// Quantile estimate from bucket counts, q in [0, 1]. Interpolates
// within the selected bucket — geometrically when the bucket's bounds
// are positive (matching the log-spaced LatencyBounds scale), linearly
// otherwise. The overflow bucket has no upper bound, so a rank landing
// there reports the last finite bound (a floor, not an estimate).
// Returns 0 for an empty histogram.
double HistogramQuantile(const HistogramSnapshot& histogram, double q);

// The result of SnapshotRing::Over: the change across the window and
// the wall-clock span it actually covers. `valid` is false until the
// ring holds two samples a nonzero interval apart, so callers divide by
// `seconds` only when there is a real window to rate over.
struct SnapshotWindow {
  bool valid = false;
  double seconds = 0.0;
  MetricsSnapshot delta;
};

// A bounded ring of timestamped metric snapshots. Thread-safe; Push and
// Over take an internal lock, which is fine because both run on the
// stats/admin path, never on a request hot path.
class SnapshotRing {
 public:
  explicit SnapshotRing(size_t capacity = 16);

  // Appends a sample. `at_seconds` must be monotonic (steady-clock
  // seconds); a sample older than the newest already held is ignored.
  // When full, the oldest sample is dropped.
  void Push(double at_seconds, MetricsSnapshot snapshot);

  // Diffs the newest sample against the oldest sample at most
  // `window_seconds` older than it.
  SnapshotWindow Over(double window_seconds) const;

  size_t size() const;

 private:
  struct Sample {
    double at_seconds;
    MetricsSnapshot snapshot;
  };

  const size_t capacity_;
  mutable Mutex mu_{lockrank::kSnapshotRing};
  std::deque<Sample> samples_ MERGEPURGE_GUARDED_BY(mu_);
};

}  // namespace mergepurge

#endif  // MERGEPURGE_OBS_WINDOW_H_
