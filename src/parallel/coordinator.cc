#include "parallel/coordinator.h"

#include <algorithm>

namespace mergepurge {

std::vector<Fragment> MakeOverlappingFragments(size_t n, size_t p,
                                               size_t w) {
  std::vector<Fragment> fragments;
  if (n == 0 || p == 0) return fragments;
  if (p > n) p = n;
  const size_t overlap = w > 0 ? w - 1 : 0;

  // Distribute n positions as evenly as possible, then extend each
  // fragment's start backwards by the replicated band.
  size_t base = n / p;
  size_t extra = n % p;
  size_t cursor = 0;
  for (size_t i = 0; i < p; ++i) {
    size_t length = base + (i < extra ? 1 : 0);
    if (length == 0) break;
    Fragment fragment;
    fragment.begin = cursor >= overlap ? cursor - overlap : 0;
    fragment.end = cursor + length;
    fragments.push_back(fragment);
    cursor += length;
  }
  return fragments;
}

std::vector<std::vector<Fragment>> MakeBlockCyclicFragments(size_t n,
                                                            size_t p,
                                                            size_t m,
                                                            size_t w) {
  std::vector<std::vector<Fragment>> per_site(p == 0 ? 1 : p);
  if (n == 0) return per_site;
  const size_t overlap = w > 0 ? w - 1 : 0;
  // Blocks must hold at least two bands, or the fresh regions would not
  // tile the input and boundary pairs would be lost.
  if (m < 2 * overlap) m = 2 * overlap;
  if (m == 0) m = 1;

  // Block k covers [k*stride, k*stride + m): each block replicates the
  // last w-1 records of its predecessor ("The CP stores the last w-1 of
  // the block sent to site 1 and reads M-(w-1) records from disk, for a
  // total of M records").
  const size_t stride = m > overlap ? m - overlap : 1;
  size_t site = 0;
  for (size_t begin = 0;; begin += stride) {
    Fragment block;
    block.begin = begin;
    block.end = std::min(n, begin + m);
    per_site[site % per_site.size()].push_back(block);
    ++site;
    if (block.end >= n) break;
  }
  return per_site;
}

}  // namespace mergepurge
