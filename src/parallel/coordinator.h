// Fragmentation of a sorted record list for parallel window scanning
// (paper §4.1, figure 5): processor i's fragment replicates the last w-1
// records of processor i-1's fragment, so the fragmentation is invisible
// to the window scan — the union of per-fragment scans equals the global
// scan exactly (tested in tests/parallel_test.cc).

#ifndef MERGEPURGE_PARALLEL_COORDINATOR_H_
#define MERGEPURGE_PARALLEL_COORDINATOR_H_

#include <cstddef>
#include <vector>

namespace mergepurge {

// Half-open range [begin, end) of positions in the sorted order. `begin`
// already includes the replicated band from the previous fragment.
struct Fragment {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

// Splits n positions into at most p fragments of near-equal size, each
// extended backwards by w-1 replicated positions (except the first).
// Returns fewer than p fragments when n is too small to populate them.
std::vector<Fragment> MakeOverlappingFragments(size_t n, size_t p, size_t w);

// The paper's memory-bounded variant: the coordinator streams blocks of at
// most m records (again overlapping by w-1) and deals them round-robin to
// p sites; site s processes blocks s, s+p, s+2p, ... Returns the per-site
// block lists. m is clamped to at least 2*(w-1) so the fresh regions tile
// the input (scanning the blocks independently then reproduces the global
// window scan exactly).
std::vector<std::vector<Fragment>> MakeBlockCyclicFragments(size_t n,
                                                            size_t p,
                                                            size_t m,
                                                            size_t w);

}  // namespace mergepurge

#endif  // MERGEPURGE_PARALLEL_COORDINATOR_H_
