#include "parallel/cost_model.h"

#include <algorithm>
#include <cmath>

namespace mergepurge {

namespace {

double Log2N(size_t n) {
  return n > 1 ? std::log2(static_cast<double>(n)) : 1.0;
}

}  // namespace

SerialCostModel SerialCostModel::Fit(const PassResult& pass, size_t n) {
  SerialCostModel model;
  const double nd = static_cast<double>(n);
  if (n > 1 && pass.sort_seconds > 0.0) {
    // Sorting performs ~N log2 N comparisons; include key creation in the
    // sort phase as the paper does ("the creation of the keys was
    // integrated into the sorting phase").
    model.c = (pass.sort_seconds + pass.create_keys_seconds) /
              (nd * Log2N(n));
  }
  if (pass.comparisons > 0 && pass.scan_seconds > 0.0 && model.c > 0.0) {
    double scan_cost_per_comparison =
        pass.scan_seconds / static_cast<double>(pass.comparisons);
    model.alpha = std::max(1.0, scan_cost_per_comparison / model.c);
  }
  return model;
}

double SerialCostModel::SinglePassSeconds(size_t n, size_t window) const {
  const double nd = static_cast<double>(n);
  return c * nd * Log2N(n) + alpha * c * static_cast<double>(window) * nd +
         closure_sp_seconds;
}

double SerialCostModel::MultiPassSeconds(size_t n, size_t window,
                                         size_t passes) const {
  const double nd = static_cast<double>(n);
  const double r = static_cast<double>(passes);
  return c * r * nd * Log2N(n) +
         alpha * c * r * static_cast<double>(window) * nd +
         closure_mp_seconds;
}

double SerialCostModel::CrossoverWindow(size_t n, size_t w,
                                        size_t passes) const {
  const double nd = static_cast<double>(n);
  const double r = static_cast<double>(passes);
  double crossover = (r - 1.0) / alpha * Log2N(n) +
                     r * static_cast<double>(w);
  if (c > 0.0 && n > 0) {
    crossover += (r - 1.0) / (alpha * c * nd) * closure_sp_seconds +
                 1.0 / (alpha * c * nd) * closure_mp_seconds;
  }
  return crossover;
}

ClusterModelParams CalibrateLikePaper(const SerialCostModel& fitted,
                                      size_t n, size_t window,
                                      double imbalance) {
  ClusterModelParams params;
  params.c = fitted.c;
  params.alpha = fitted.alpha;
  params.imbalance = imbalance;
  // Parallelizable per-record work of one pass at this window.
  double per_record = fitted.c * Log2N(n) +
                      fitted.alpha * fitted.c * static_cast<double>(window);
  params.key_seconds_per_record = 0.01 * per_record;
  params.io_seconds_per_record = 0.093 * per_record;
  params.merge_seconds_per_record = 0.002 * per_record;
  return params;
}

double SimulatedCluster::SnmPassSeconds(size_t n, size_t window,
                                        size_t processors) const {
  if (processors == 0) processors = 1;
  const double nd = static_cast<double>(n);
  const double p = static_cast<double>(processors);
  const double local = nd / p;

  // Coordinator reads and round-robins the database (serial), local sorts
  // run in parallel, the coordinator P-way merges the sorted fragments
  // (serial), then the banded window scan runs in parallel.
  double broadcast = params_.io_seconds_per_record * nd;
  double keying = params_.key_seconds_per_record * local;
  double local_sort = params_.c * local * Log2N(static_cast<size_t>(local));
  double merge =
      processors > 1 ? params_.merge_seconds_per_record * nd : 0.0;
  double scan =
      params_.alpha * params_.c * static_cast<double>(window) * local;
  return broadcast + keying + local_sort + merge + scan;
}

double SimulatedCluster::ClusteringPassSeconds(
    size_t n, size_t window, size_t processors,
    size_t clusters_per_processor) const {
  if (processors == 0) processors = 1;
  if (clusters_per_processor == 0) clusters_per_processor = 1;
  const double nd = static_cast<double>(n);
  const double p = static_cast<double>(processors);
  const double local = nd / p;
  const double cluster_records =
      std::max(1.0, local / static_cast<double>(clusters_per_processor));

  // Coordinator clusters and distributes (serial); workers sort each
  // cluster (smaller logs than a global sort — the method's advantage) and
  // scan; no coordinator merge is needed. LPT imbalance stretches the
  // parallel portion.
  double distribute = params_.io_seconds_per_record * nd;
  double keying = params_.key_seconds_per_record * local;
  double local_sort = params_.c * local *
                      Log2N(static_cast<size_t>(cluster_records));
  double scan =
      params_.alpha * params_.c * static_cast<double>(window) * local;
  return distribute + (keying + local_sort + scan) * params_.imbalance;
}

double SimulatedCluster::MultiPassSeconds(double slowest_pass_seconds,
                                          double closure_seconds) const {
  return slowest_pass_seconds + closure_seconds;
}

}  // namespace mergepurge
