// Analytic / simulated timing models.
//
// Two models live here:
//
// 1. SerialCostModel — the paper's §3.5 analysis:
//      T_mp = c r N log N + alpha c r w N + T_cl
//      T_sp = c N log N + alpha c W N + T_cl
//    with the crossover window W above which the multi-pass approach
//    dominates a single pass:
//      W > (r-1)/alpha * log N + r w
//          + (r-1)/(alpha c N) T_cl_sp + 1/(alpha c N) T_cl_mp
//    The constants c (sort comparison cost) and alpha (window comparison /
//    sort comparison cost ratio) are fitted from a measured serial pass.
//
// 2. SimulatedCluster — a discrete shared-nothing cluster model for the
//    parallel experiments (paper §4, figure 6). The host machine has one
//    core, so wall-clock speedup cannot be measured; instead the model is
//    calibrated from measured serial phase costs and composes them the way
//    the paper's HP-cluster implementation does: a serial coordinator
//    broadcast, parallel local sorts, a P-way merge at the coordinator,
//    and parallel window scans. This reproduces figure 6's sublinear
//    speedup shape. Functional correctness of the parallel algorithms is
//    established separately by the thread-based executors (parallel_snm,
//    parallel_clustering), which produce pair sets identical to the serial
//    runs.

#ifndef MERGEPURGE_PARALLEL_COST_MODEL_H_
#define MERGEPURGE_PARALLEL_COST_MODEL_H_

#include <cstddef>

#include "core/sorted_neighborhood.h"

namespace mergepurge {

struct SerialCostModel {
  double c = 1.2e-5;    // Seconds per sort comparison (paper: ~1.2e-5).
  double alpha = 6.0;   // Window-scan comparison cost / sort cost (>= 1).
  double closure_sp_seconds = 0.0;  // T_cl of a single pass.
  double closure_mp_seconds = 0.0;  // T_cl of the multi-pass closure.

  // Fits c and alpha from a measured pass: c from sort time / (N log N),
  // alpha from scan-time-per-comparison / c.
  static SerialCostModel Fit(const PassResult& pass, size_t n);

  // T_sp for window W over N records.
  double SinglePassSeconds(size_t n, size_t window) const;

  // T_mp for r passes of window w over N records.
  double MultiPassSeconds(size_t n, size_t window, size_t passes) const;

  // The crossover W: the single-pass window above which the multi-pass
  // approach (r passes, window w) is faster for the same budget.
  double CrossoverWindow(size_t n, size_t w, size_t passes) const;
};

struct ClusterModelParams {
  // Coordinator ingest + send cost per record (the serial broadcast term
  // that makes figure 6's speedup sublinear: "The obvious overhead is paid
  // in the process of reading and broadcasting of data to all processors").
  // The default reflects a 1995-era coordinator + FDDI network relative to
  // the compute constants below.
  double io_seconds_per_record = 1.0e-4;

  // Coordinator P-way merge cost per record (sorted-neighborhood only).
  double merge_seconds_per_record = 2.0e-6;

  // Per-record key extraction cost.
  double key_seconds_per_record = 1.0e-6;

  // Fitted sort comparison cost (c) and scan/sort ratio (alpha).
  double c = 1.2e-5;
  double alpha = 6.0;

  // Observed LPT imbalance factor for the clustering method (max load /
  // average load; 1.0 = perfect).
  double imbalance = 1.05;
};

// Builds cluster-model parameters from a fitted serial model, scaling the
// coordinator I/O and merge constants so their share of per-record work
// matches the paper's HP-cluster setting (~9.3% broadcast, ~0.2% merge of
// the per-record serial work at w=10, the ratio implied by figure 6).
// This keeps the figure-6 *shape* — sublinear speedup with the broadcast
// as the serial bottleneck — independent of how much faster the host CPU
// is than a 1995 workstation.
ClusterModelParams CalibrateLikePaper(const SerialCostModel& fitted,
                                      size_t n, size_t window,
                                      double imbalance);

class SimulatedCluster {
 public:
  explicit SimulatedCluster(ClusterModelParams params) : params_(params) {}

  const ClusterModelParams& params() const { return params_; }

  // Modeled wall time of one parallel sorted-neighborhood pass on
  // `processors` machines (paper figure 6(a) series).
  double SnmPassSeconds(size_t n, size_t window, size_t processors) const;

  // Modeled wall time of one parallel clustering pass with
  // clusters_per_processor clusters per machine (figure 6(b) series).
  double ClusteringPassSeconds(size_t n, size_t window, size_t processors,
                               size_t clusters_per_processor) const;

  // Multi-pass estimate: "the maximum time taken by any independent run
  // plus the time to compute the closure" (§4.1) — the r runs execute
  // concurrently on r*P processors.
  double MultiPassSeconds(double slowest_pass_seconds,
                          double closure_seconds) const;

 private:
  ClusterModelParams params_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_PARALLEL_COST_MODEL_H_
