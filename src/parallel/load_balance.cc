#include "parallel/load_balance.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

namespace mergepurge {

LoadBalanceResult LptAssign(const std::vector<uint64_t>& job_sizes,
                            size_t processors) {
  LoadBalanceResult result;
  if (processors == 0) processors = 1;
  result.assignment.assign(job_sizes.size(), 0);
  result.loads.assign(processors, 0);

  // Jobs in descending size order.
  std::vector<size_t> order(job_sizes.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&job_sizes](size_t a, size_t b) {
    if (job_sizes[a] != job_sizes[b]) return job_sizes[a] > job_sizes[b];
    return a < b;
  });

  // Min-heap of (load, processor).
  using HeapItem = std::pair<uint64_t, uint32_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (uint32_t p = 0; p < processors; ++p) heap.emplace(0, p);

  for (size_t job : order) {
    auto [load, p] = heap.top();
    heap.pop();
    result.assignment[job] = p;
    result.loads[p] = load + job_sizes[job];
    heap.emplace(result.loads[p], p);
  }

  uint64_t total =
      std::accumulate(result.loads.begin(), result.loads.end(), uint64_t{0});
  uint64_t max_load =
      *std::max_element(result.loads.begin(), result.loads.end());
  double average =
      static_cast<double>(total) / static_cast<double>(processors);
  result.imbalance =
      average > 0.0 ? static_cast<double>(max_load) / average : 1.0;
  return result;
}

}  // namespace mergepurge
