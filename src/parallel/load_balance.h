// LPT (longest processing time first) load balancing (paper §4.2, citing
// Graham '69): "move the largest job in an overloaded processor to the
// most underloaded processor, and repeat until a 'well' balanced load is
// obtained." The classical greedy form — sort jobs by size descending and
// always assign to the least-loaded processor — achieves the same 4/3
// makespan bound and is what we implement.

#ifndef MERGEPURGE_PARALLEL_LOAD_BALANCE_H_
#define MERGEPURGE_PARALLEL_LOAD_BALANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mergepurge {

struct LoadBalanceResult {
  // assignment[j] = processor of job j.
  std::vector<uint32_t> assignment;
  // Final per-processor loads.
  std::vector<uint64_t> loads;
  // max load / average load (1.0 = perfect balance).
  double imbalance = 1.0;
};

// Assigns jobs (with the given sizes) to `processors` machines via LPT.
// processors must be >= 1.
LoadBalanceResult LptAssign(const std::vector<uint64_t>& job_sizes,
                            size_t processors);

}  // namespace mergepurge

#endif  // MERGEPURGE_PARALLEL_LOAD_BALANCE_H_
