#include "parallel/parallel_clustering.h"

#include <algorithm>

#include "cluster/partitioner.h"
#include "core/window_scanner.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/timer.h"

namespace mergepurge {

ParallelClustering::ParallelClustering(size_t num_processors,
                                       ClusteringOptions options,
                                       ResilientOptions resilience)
    : num_processors_(num_processors == 0 ? 1 : num_processors),
      options_(options),
      resilience_(resilience) {
  resilience_.num_workers = num_processors_;
}

Result<ParallelRunResult> ParallelClustering::Run(
    const Dataset& dataset, const KeySpec& key,
    const TheoryFactory& theory_factory) const {
  if (options_.window < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  KeyBuilder full_builder(key);
  MERGEPURGE_RETURN_NOT_OK(full_builder.Validate(dataset.schema()));

  static LatencyHistogram* const scan_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kSnmScanUs);
  static Counter* const passes_counter =
      MetricsRegistry::Global().GetCounter(metric_names::kSnmPasses);

  Span run_span("parallel-clustering");
  run_span.AddArg("key", key.name);
  run_span.AddArg("processors", static_cast<uint64_t>(num_processors_));

  ParallelRunResult result;
  if (dataset.empty()) return result;
  Timer total;

  // Coordinator: extract fixed keys and range-partition into C*P clusters.
  Timer phase;
  const size_t total_clusters =
      std::max<size_t>(1, options_.num_clusters * num_processors_);
  const KeySpec fixed_spec = key.FixedWidth(options_.fixed_key_prefix);
  KeyBuilder fixed_builder(fixed_spec);
  std::vector<std::string> cluster_keys = fixed_builder.BuildKeys(dataset);

  Rng rng(options_.seed);
  Histogram histogram =
      BuildHistogram(cluster_keys, options_.histogram_depth,
                     options_.histogram_sample, &rng);
  Result<KeyPartitioner> partitioner =
      KeyPartitioner::FromHistogram(histogram, total_clusters);
  if (!partitioner.ok()) return partitioner.status();

  std::vector<std::vector<TupleId>> clusters(partitioner->num_clusters());
  for (size_t t = 0; t < dataset.size(); ++t) {
    clusters[partitioner->ClusterOf(cluster_keys[t])].push_back(
        static_cast<TupleId>(t));
  }
  result.cluster_seconds = phase.ElapsedSeconds();

  // Static load balancing: LPT on cluster sizes ("It then redistributes
  // the clusters among processors using a longest processing time first
  // strategy").
  std::vector<uint64_t> sizes;
  sizes.reserve(clusters.size());
  for (const auto& cluster : clusters) sizes.push_back(cluster.size());
  last_balance_ = LptAssign(sizes, num_processors_);

  // Workers: sort + window scan each assigned cluster. One retryable task
  // per non-trivial cluster; the LPT assignment seeds each task's initial
  // worker, and the runner reassigns on repeated failure. Attempts sort a
  // private copy of the cluster so concurrent speculative re-executions
  // never race on shared state.
  phase.Restart();
  result.worker_busy_seconds.assign(num_processors_, 0.0);
  std::vector<ResilientTask> tasks;
  std::vector<size_t> initial_workers;
  for (size_t c = 0; c < clusters.size(); ++c) {
    if (clusters[c].size() < 2) continue;
    initial_workers.push_back(last_balance_.assignment[c]);
    const std::vector<TupleId>* cluster = &clusters[c];
    tasks.push_back([&, cluster](const AttemptContext& ctx) -> Status {
      MERGEPURGE_RETURN_NOT_OK(
          FaultInjector::Global().OnPoint(fault_points::kClusterSnm));
      Timer busy;
      std::unique_ptr<EquationalTheory> theory = theory_factory();
      WindowScanner scanner(options_.window);
      PairSet local_pairs;
      std::vector<TupleId> sorted = *cluster;
      std::sort(sorted.begin(), sorted.end(),
                [&cluster_keys](TupleId a, TupleId b) {
                  int cmp = cluster_keys[a].compare(cluster_keys[b]);
                  if (cmp != 0) return cmp < 0;
                  return a < b;
                });
      ScanStats stats = scanner.Scan(dataset, sorted, *theory, &local_pairs);
      double busy_seconds = busy.ElapsedSeconds();
      // Metrics flush rides the commit: an attempt that loses the
      // exactly-once race contributes nothing to the global registry.
      ctx.Commit([&] {
        result.pairs.Merge(local_pairs);
        result.comparisons += stats.comparisons;
        result.worker_busy_seconds[ctx.worker] += busy_seconds;
        FlushScanStats(stats);
        theory->FlushMetrics();
      });
      return Status::OK();
    });
  }

  ResilientRunner runner(resilience_);
  ResilientReport report = runner.Run(tasks, initial_workers);
  result.retries = report.retries;
  result.speculations = report.speculations;
  if (!report.status.ok()) return report.status;

  result.scan_seconds = phase.ElapsedSeconds();
  scan_us->Record(static_cast<double>(phase.ElapsedMicros()));
  passes_counter->Increment();
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
