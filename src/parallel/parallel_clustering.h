// Parallel clustering method (paper §4.2): the coordinator range-partitions
// records into C clusters per processor via the key-prefix histogram,
// clusters are LPT load-balanced across workers, and each worker sorts and
// window-scans its clusters independently.

#ifndef MERGEPURGE_PARALLEL_PARALLEL_CLUSTERING_H_
#define MERGEPURGE_PARALLEL_PARALLEL_CLUSTERING_H_

#include "core/clustering_method.h"
#include "parallel/load_balance.h"
#include "parallel/parallel_snm.h"
#include "record/dataset.h"
#include "util/status.h"

namespace mergepurge {

class ParallelClustering {
 public:
  // num_processors workers; options.num_clusters is interpreted as
  // clusters PER PROCESSOR (the paper used 100 clusters per processor).
  // `resilience` tunes retry/backoff/deadline behaviour for lost or slow
  // cluster scans (num_workers is overridden with num_processors).
  ParallelClustering(size_t num_processors, ClusteringOptions options,
                     ResilientOptions resilience = ResilientOptions());

  Result<ParallelRunResult> Run(const Dataset& dataset, const KeySpec& key,
                                const TheoryFactory& theory_factory) const;

  // Load-balance report of the most recent Run.
  const LoadBalanceResult& last_balance() const { return last_balance_; }

 private:
  size_t num_processors_;
  ClusteringOptions options_;
  ResilientOptions resilience_;
  mutable LoadBalanceResult last_balance_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_PARALLEL_PARALLEL_CLUSTERING_H_
