#include "parallel/parallel_snm.h"

#include <mutex>

#include "core/sorted_neighborhood.h"
#include "core/window_scanner.h"
#include "parallel/coordinator.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mergepurge {

ParallelSnm::ParallelSnm(size_t num_processors, size_t window,
                         size_t block_records)
    : num_processors_(num_processors == 0 ? 1 : num_processors),
      window_(window),
      block_records_(block_records) {}

Result<ParallelRunResult> ParallelSnm::Run(
    const Dataset& dataset, const KeySpec& key,
    const TheoryFactory& theory_factory) const {
  if (window_ < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  KeyBuilder builder(key);
  MERGEPURGE_RETURN_NOT_OK(builder.Validate(dataset.schema()));

  ParallelRunResult result;
  Timer total;

  // Sort phase. (Serial here; the paper's distributed sort-and-P-way-join
  // is modeled in the cost model — on one machine a shared sort is both
  // simpler and faster than simulating the exchange.)
  Timer phase;
  std::vector<TupleId> order = SortedNeighborhood::SortByKey(dataset, key);
  result.sort_seconds = phase.ElapsedSeconds();

  // Merge phase: per-site work lists of banded fragments — either one
  // large fragment per processor, or the coordinator's block-cyclic deal.
  phase.Restart();
  std::vector<std::vector<Fragment>> per_site;
  if (block_records_ > 0) {
    per_site = MakeBlockCyclicFragments(order.size(), num_processors_,
                                        block_records_, window_);
  } else {
    for (const Fragment& f :
         MakeOverlappingFragments(order.size(), num_processors_, window_)) {
      per_site.push_back({f});
    }
  }

  std::mutex merge_mu;
  result.worker_busy_seconds.assign(per_site.size(), 0.0);
  {
    ThreadPool pool(num_processors_);
    for (size_t site = 0; site < per_site.size(); ++site) {
      pool.Submit([&, site] {
        Timer busy;
        std::unique_ptr<EquationalTheory> theory = theory_factory();
        WindowScanner scanner(window_);
        PairSet local_pairs;
        uint64_t comparisons = 0;
        for (const Fragment& fragment : per_site[site]) {
          ScanStats stats =
              scanner.ScanRange(dataset, order, fragment.begin,
                                fragment.end, *theory, &local_pairs);
          comparisons += stats.comparisons;
        }
        double busy_seconds = busy.ElapsedSeconds();
        std::lock_guard<std::mutex> lock(merge_mu);
        result.pairs.Merge(local_pairs);
        result.comparisons += comparisons;
        result.worker_busy_seconds[site] = busy_seconds;
      });
    }
    pool.Wait();
  }
  result.scan_seconds = phase.ElapsedSeconds();
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
