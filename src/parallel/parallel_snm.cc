#include "parallel/parallel_snm.h"

#include "core/sorted_neighborhood.h"
#include "core/window_scanner.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/coordinator.h"
#include "util/fault_injector.h"
#include "util/timer.h"

namespace mergepurge {

ParallelSnm::ParallelSnm(size_t num_processors, size_t window,
                         size_t block_records, ResilientOptions resilience)
    : num_processors_(num_processors == 0 ? 1 : num_processors),
      window_(window),
      block_records_(block_records),
      resilience_(resilience) {
  resilience_.num_workers = num_processors_;
}

Result<ParallelRunResult> ParallelSnm::Run(
    const Dataset& dataset, const KeySpec& key,
    const TheoryFactory& theory_factory) const {
  if (window_ < 2) {
    return Status::InvalidArgument("window must be >= 2");
  }
  KeyBuilder builder(key);
  MERGEPURGE_RETURN_NOT_OK(builder.Validate(dataset.schema()));

  static LatencyHistogram* const sort_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kSnmSortUs);
  static LatencyHistogram* const scan_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kSnmScanUs);
  static Counter* const passes_counter =
      MetricsRegistry::Global().GetCounter(metric_names::kSnmPasses);

  Span run_span("parallel-snm");
  run_span.AddArg("key", key.name);
  run_span.AddArg("processors", static_cast<uint64_t>(num_processors_));

  ParallelRunResult result;
  Timer total;

  // Sort phase. (Serial here; the paper's distributed sort-and-P-way-join
  // is modeled in the cost model — on one machine a shared sort is both
  // simpler and faster than simulating the exchange.)
  Timer phase;
  std::vector<TupleId> order;
  {
    Span span("sort");
    order = SortedNeighborhood::SortByKey(dataset, key);
  }
  result.sort_seconds = phase.ElapsedSeconds();
  sort_us->Record(static_cast<double>(phase.ElapsedMicros()));

  // Merge phase: banded fragments — either one large fragment per
  // processor, or the coordinator's block-cyclic deal. Each fragment is
  // one retryable task; a fragment scan is idempotent (reads the shared
  // sorted order, writes only task-local state until commit), so the
  // runner may re-execute it freely on any worker.
  phase.Restart();
  std::vector<Fragment> fragments;
  if (block_records_ > 0) {
    for (const std::vector<Fragment>& site :
         MakeBlockCyclicFragments(order.size(), num_processors_,
                                  block_records_, window_)) {
      fragments.insert(fragments.end(), site.begin(), site.end());
    }
  } else {
    fragments =
        MakeOverlappingFragments(order.size(), num_processors_, window_);
  }

  result.worker_busy_seconds.assign(num_processors_, 0.0);
  std::vector<ResilientTask> tasks;
  tasks.reserve(fragments.size());
  for (const Fragment& fragment : fragments) {
    tasks.push_back([&, fragment](const AttemptContext& ctx) -> Status {
      MERGEPURGE_RETURN_NOT_OK(
          FaultInjector::Global().OnPoint(fault_points::kFragmentScan));
      Timer busy;
      Span span("fragment-scan");
      span.AddArg("begin", static_cast<uint64_t>(fragment.begin));
      span.AddArg("end", static_cast<uint64_t>(fragment.end));
      std::unique_ptr<EquationalTheory> theory = theory_factory();
      WindowScanner scanner(window_);
      PairSet local_pairs;
      ScanStats stats = scanner.ScanRange(dataset, order, fragment.begin,
                                          fragment.end, *theory,
                                          &local_pairs);
      double busy_seconds = busy.ElapsedSeconds();
      // Metrics flush rides the commit: an attempt that loses the
      // exactly-once race contributes nothing to the global registry.
      ctx.Commit([&] {
        result.pairs.Merge(local_pairs);
        result.comparisons += stats.comparisons;
        result.worker_busy_seconds[ctx.worker] += busy_seconds;
        FlushScanStats(stats);
        theory->FlushMetrics();
      });
      return Status::OK();
    });
  }

  ResilientRunner runner(resilience_);
  ResilientReport report = runner.Run(tasks);
  result.retries = report.retries;
  result.speculations = report.speculations;
  if (!report.status.ok()) return report.status;

  result.scan_seconds = phase.ElapsedSeconds();
  scan_us->Record(static_cast<double>(phase.ElapsedMicros()));
  passes_counter->Increment();
  result.total_seconds = total.ElapsedSeconds();
  return result;
}

}  // namespace mergepurge
