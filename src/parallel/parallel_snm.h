// Parallel sorted-neighborhood method (paper §4.1): sort, fragment the
// sorted list with w-1 replicated bands, and window-scan the fragments on
// worker threads. Produces exactly the same pair set as the serial method
// (the bands make the fragmentation invisible).

#ifndef MERGEPURGE_PARALLEL_PARALLEL_SNM_H_
#define MERGEPURGE_PARALLEL_PARALLEL_SNM_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/pair_set.h"
#include "keys/key_builder.h"
#include "parallel/resilient_runner.h"
#include "record/dataset.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

// Each worker thread needs its own theory instance (statistics counters are
// not synchronized); the factory provides them.
using TheoryFactory =
    std::function<std::unique_ptr<EquationalTheory>()>;

struct ParallelRunResult {
  PairSet pairs;
  uint64_t comparisons = 0;
  double sort_seconds = 0.0;
  double cluster_seconds = 0.0;  // Clustering variant only.
  double scan_seconds = 0.0;     // Wall time of the parallel scan phase.
  double total_seconds = 0.0;
  // Per-worker busy time in the scan phase (for load-balance reporting).
  std::vector<double> worker_busy_seconds;
  // Fault-tolerance accounting (see ResilientRunner): re-attempts after
  // task failures and speculative straggler re-executions.
  uint64_t retries = 0;
  uint64_t speculations = 0;
};

class ParallelSnm {
 public:
  // num_processors worker threads; window as in the serial method.
  // block_records > 0 selects the paper's memory-bounded block-cyclic
  // distribution (§4.1: the coordinator streams blocks of M records,
  // overlapping by w-1, round-robin to the sites); 0 selects one large
  // banded fragment per processor. Both produce the serial pair set.
  // `resilience` tunes retry/backoff/deadline behaviour for lost or slow
  // fragment scans (num_workers is overridden with num_processors).
  ParallelSnm(size_t num_processors, size_t window, size_t block_records = 0,
              ResilientOptions resilience = ResilientOptions());

  // Runs the parallel pass. When fragment scans keep failing past the
  // retry budget, returns a PartialFailure status naming the unprocessed
  // fragments (no partial pair set is returned: a missing fragment would
  // silently corrupt the downstream closure).
  Result<ParallelRunResult> Run(const Dataset& dataset, const KeySpec& key,
                                const TheoryFactory& theory_factory) const;

 private:
  size_t num_processors_;
  size_t window_;
  size_t block_records_;
  ResilientOptions resilience_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_PARALLEL_PARALLEL_SNM_H_
