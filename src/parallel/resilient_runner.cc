#include "parallel/resilient_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/sync.h"
#include "util/thread_pool.h"

namespace mergepurge {

using Clock = std::chrono::steady_clock;

struct ResilientRunner::TaskState {
  size_t attempts_started = 0;
  size_t active_attempts = 0;
  size_t initial_worker = 0;
  size_t final_worker = 0;
  bool committed = false;
  bool exhausted = false;
  bool speculated = false;
  Status last_error;
  Rng jitter{1};
  Clock::time_point active_start;

  bool terminal() const { return committed || exhausted; }
};

struct ResilientRunner::RunContext {
  explicit RunContext(size_t num_workers) : pool(num_workers) {}

  Mutex mu{lockrank::kResilientRun};
  CondVar cv;
  // Set once before any attempt is submitted, then read-only.
  const std::vector<ResilientTask>* tasks = nullptr;
  std::vector<TaskState> states MERGEPURGE_GUARDED_BY(mu);
  size_t terminal_count MERGEPURGE_GUARDED_BY(mu) = 0;
  uint64_t retries MERGEPURGE_GUARDED_BY(mu) = 0;
  uint64_t speculations MERGEPURGE_GUARDED_BY(mu) = 0;
  ThreadPool pool;  // Last member: destroyed first, before states.
};

ResilientRunner::ResilientRunner(ResilientOptions options)
    : options_(options) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_attempts_per_worker == 0) {
    options_.max_attempts_per_worker = 1;
  }
  if (options_.max_workers_per_task == 0) options_.max_workers_per_task = 1;
  options_.max_workers_per_task =
      std::min(options_.max_workers_per_task, options_.num_workers);
}

bool AttemptContext::Commit(const std::function<void()>& apply) const {
  return runner->CommitTask(task_index, worker, apply);
}

ResilientReport ResilientRunner::Run(
    const std::vector<ResilientTask>& tasks,
    const std::vector<size_t>& initial_workers) {
  ResilientReport report;
  if (tasks.empty()) {
    report.status = Status::OK();
    return report;
  }

  Span run_span("resilient-run");
  run_span.AddArg("tasks", static_cast<uint64_t>(tasks.size()));
  run_span.AddArg("workers", static_cast<uint64_t>(options_.num_workers));

  RunContext run(options_.num_workers);
  run.tasks = &tasks;
  run_ = &run;

  std::vector<size_t> first_workers(tasks.size());
  {
    MutexLock lock(run.mu);
    run.states.resize(tasks.size());
    for (size_t i = 0; i < tasks.size(); ++i) {
      TaskState& state = run.states[i];
      state.initial_worker = i < initial_workers.size()
                                 ? initial_workers[i] % options_.num_workers
                                 : i % options_.num_workers;
      state.jitter =
          Rng(options_.jitter_seed ^ (0x9e3779b97f4a7c15ull * (i + 1)));
      first_workers[i] = state.initial_worker;
    }
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    StartAttempt(i, 1, first_workers[i], /*speculative=*/false);
  }

  // Wait for every task to commit or exhaust; with a deadline configured,
  // wake periodically to launch speculative copies of stragglers.
  {
    MutexLock lock(run.mu);
    const bool monitor = options_.task_deadline_ms > 0;
    const auto poll = std::chrono::milliseconds(
        monitor ? std::max(1, options_.task_deadline_ms / 4) : 1000);
    while (run.terminal_count < tasks.size()) {
      run.cv.WaitFor(run.mu, poll);
      if (!monitor) continue;
      const auto now = Clock::now();
      const size_t budget =
          options_.max_attempts_per_worker * options_.max_workers_per_task;
      for (size_t i = 0; i < run.states.size(); ++i) {
        TaskState& state = run.states[i];
        if (state.terminal() || state.speculated ||
            state.active_attempts == 0 || state.attempts_started >= budget) {
          continue;
        }
        auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                       now - state.active_start)
                       .count();
        if (age < options_.task_deadline_ms) continue;
        state.speculated = true;
        ++run.speculations;
        size_t next_attempt = state.attempts_started + 1;
        size_t worker_slot =
            (next_attempt - 1) / options_.max_attempts_per_worker;
        size_t worker = (state.initial_worker + worker_slot + 1) %
                        options_.num_workers;
        lock.Unlock();
        StartAttempt(i, next_attempt, worker, /*speculative=*/true);
        lock.Lock();
      }
    }
  }

  // Drain straggler attempts before collecting outcomes: every task is
  // terminal, so leftover attempts belong to already-committed tasks and
  // their commits are refused by the committed flag (exactly-once).
  run.pool.Wait();

  {
    MutexLock lock(run.mu);
    report.outcomes.resize(run.states.size());
    for (size_t i = 0; i < run.states.size(); ++i) {
      const TaskState& state = run.states[i];
      TaskOutcome& outcome = report.outcomes[i];
      outcome.attempts = state.attempts_started;
      outcome.final_worker = state.final_worker;
      outcome.committed = state.committed;
      outcome.speculated = state.speculated;
      outcome.last_error = state.last_error;
      if (!state.committed) report.unprocessed.push_back(i);
    }
    report.retries = run.retries;
    report.speculations = run.speculations;
  }
  run_ = nullptr;

  // One flush per Run: attempt bookkeeping is exact here (pool drained).
  {
    MetricsRegistry& registry = MetricsRegistry::Global();
    static Counter* const retries =
        registry.GetCounter(metric_names::kResilientRetries);
    static Counter* const speculations =
        registry.GetCounter(metric_names::kResilientSpeculations);
    static Counter* const exhausted =
        registry.GetCounter(metric_names::kResilientExhausted);
    static Counter* const parallel_tasks =
        registry.GetCounter(metric_names::kParallelTasks);
    retries->Add(report.retries);
    speculations->Add(report.speculations);
    exhausted->Add(static_cast<uint64_t>(report.unprocessed.size()));

    std::vector<uint64_t> per_worker(options_.num_workers, 0);
    uint64_t committed = 0;
    for (const TaskOutcome& outcome : report.outcomes) {
      if (!outcome.committed) continue;
      ++committed;
      if (outcome.final_worker < per_worker.size()) {
        ++per_worker[outcome.final_worker];
      }
    }
    parallel_tasks->Add(committed);
    for (size_t w = 0; w < per_worker.size(); ++w) {
      if (per_worker[w] == 0) continue;
      registry
          .GetCounter(std::string(metric_names::kParallelWorkerTasksPrefix) +
                      std::to_string(w))
          ->Add(per_worker[w]);
    }
  }

  if (report.unprocessed.empty()) {
    report.status = Status::OK();
  } else {
    std::string list;
    for (size_t index : report.unprocessed) {
      if (!list.empty()) list += ",";
      list += std::to_string(index);
    }
    report.status = Status::PartialFailure(StringPrintf(
        "%zu of %zu tasks unprocessed after retries: [%s]",
        report.unprocessed.size(), report.outcomes.size(), list.c_str()));
  }
  return report;
}

void ResilientRunner::StartAttempt(size_t task_index, size_t attempt,
                                   size_t worker, bool speculative) {
  RunContext& run = *run_;
  int delay_ms = 0;
  {
    MutexLock lock(run.mu);
    TaskState& state = run.states[task_index];
    ++state.attempts_started;
    ++state.active_attempts;
    if (attempt > 1 && !speculative) {
      delay_ms = BackoffDelayMs(state, attempt);
    }
  }
  const Clock::time_point submitted = Clock::now();
  run.pool.Submit([this, task_index, attempt, worker, delay_ms, submitted] {
    // Queue wait: submission until a pool thread picks the attempt up
    // (before any backoff sleep, which is intentional delay, not queueing).
    static LatencyHistogram* const queue_wait_us =
        MetricsRegistry::Global().GetHistogram(
            metric_names::kResilientQueueWaitUs);
    queue_wait_us->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              submitted)
            .count()));
    ExecuteAttempt(task_index, attempt, worker, delay_ms);
  });
}

void ResilientRunner::ExecuteAttempt(size_t task_index, size_t attempt,
                                     size_t worker, int delay_ms) {
  RunContext& run = *run_;
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }

  {
    MutexLock lock(run.mu);
    TaskState& state = run.states[task_index];
    if (state.committed) {
      // A concurrent (speculative) attempt already won; skip the work.
      --state.active_attempts;
      run.cv.NotifyAll();
      return;
    }
    state.active_start = Clock::now();
  }

  AttemptContext context;
  context.task_index = task_index;
  context.attempt = attempt;
  context.worker = worker;
  context.runner = this;
  Status status = (*run.tasks)[task_index](context);

  MutexLock lock(run.mu);
  TaskState& state = run.states[task_index];
  --state.active_attempts;
  if (status.ok()) {
    // OK means the attempt ran to completion; Commit() (if the task has
    // side effects) already published them exactly once.
    if (!state.committed) {
      state.committed = true;
      state.final_worker = worker;
      ++run.terminal_count;
    }
    run.cv.NotifyAll();
    return;
  }

  state.last_error = status;
  if (state.committed) {
    // A different attempt already succeeded; nothing to do.
    run.cv.NotifyAll();
    return;
  }

  const size_t budget =
      options_.max_attempts_per_worker * options_.max_workers_per_task;
  if (state.attempts_started < budget) {
    size_t next_attempt = state.attempts_started + 1;
    size_t worker_slot =
        (next_attempt - 1) / options_.max_attempts_per_worker;
    size_t next_worker =
        (state.initial_worker + worker_slot) % options_.num_workers;
    ++run.retries;
    lock.Unlock();
    StartAttempt(task_index, next_attempt, next_worker,
                 /*speculative=*/false);
    return;
  }
  if (state.active_attempts == 0) {
    state.exhausted = true;
    state.final_worker = worker;
    ++run.terminal_count;
  }
  run.cv.NotifyAll();
}

int ResilientRunner::BackoffDelayMs(TaskState& state, size_t attempt) {
  // Delay before attempt k (k >= 2): min(base * mult^(k-2), cap) plus
  // deterministic per-task jitter in [0, base) to de-synchronize retries.
  double delay =
      static_cast<double>(options_.backoff_base_ms) *
      std::pow(options_.backoff_multiplier, static_cast<double>(attempt - 2));
  delay = std::min(delay, static_cast<double>(options_.backoff_cap_ms));
  uint64_t jitter = state.jitter.NextBounded(
      static_cast<uint64_t>(std::max(1, options_.backoff_base_ms)));
  return static_cast<int>(delay) + static_cast<int>(jitter);
}

bool ResilientRunner::CommitTask(size_t task_index, size_t worker,
                                 const std::function<void()>& apply) {
  RunContext& run = *run_;
  MutexLock lock(run.mu);
  TaskState& state = run.states[task_index];
  if (state.committed) return false;
  // Commits from different tasks are serialized by run.mu, so `apply` may
  // merge into shared aggregates without extra locking.
  apply();
  state.committed = true;
  state.final_worker = worker;
  ++run.terminal_count;
  run.cv.NotifyAll();
  return true;
}

}  // namespace mergepurge
