// ResilientRunner: fault-tolerant task execution for the shared-nothing
// executors. The paper's §4 coordinator deals fragments to sites and
// assumes every site finishes; a lost task would silently lose pairs and
// corrupt the transitive closure. The runner closes that gap:
//
//   * every attempt returns a Status (captured, never thrown away);
//   * failed tasks are retried on their assigned worker with capped
//     exponential backoff + deterministic jitter;
//   * after max_attempts_per_worker failures the task is reassigned to a
//     different (virtual) worker, up to max_workers_per_task sites;
//   * a per-task deadline triggers speculative re-execution of stragglers
//     on another worker; the first completed attempt wins. This is safe
//     for merge/purge work because fragment scans are idempotent and
//     PairSet union is order-independent — duplicate execution changes
//     nothing, and the commit protocol below makes the side effects
//     exactly-once anyway;
//   * when all retries are exhausted the run reports a PartialFailure
//     Status naming the exact set of unprocessed tasks, so callers can
//     re-deal just those fragments.
//
// Commit protocol: an attempt buffers its results locally and publishes
// them through AttemptContext::Commit(apply). Commit runs `apply` at most
// once per task across all (possibly concurrent, speculative) attempts, so
// counters like `comparisons` are not double-counted.

#ifndef MERGEPURGE_PARALLEL_RESILIENT_RUNNER_H_
#define MERGEPURGE_PARALLEL_RESILIENT_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.h"

namespace mergepurge {

struct ResilientOptions {
  // Virtual worker count == thread count of the underlying pool.
  size_t num_workers = 1;

  // Attempts allowed on each worker a task lands on (>= 1).
  size_t max_attempts_per_worker = 2;

  // Distinct workers a task may be assigned to (>= 1). Total attempt
  // budget per task = max_attempts_per_worker * max_workers_per_task.
  size_t max_workers_per_task = 2;

  // Retry backoff: delay before attempt k (k >= 2) is
  //   min(base * multiplier^(k-2), cap) + jitter in [0, base)
  // drawn from a deterministic per-task stream seeded by jitter_seed.
  int backoff_base_ms = 1;
  double backoff_multiplier = 2.0;
  int backoff_cap_ms = 50;
  uint64_t jitter_seed = 0x5eed;

  // Straggler deadline: if > 0 and an attempt has not completed within
  // this many ms, one speculative copy is started on another worker.
  int task_deadline_ms = 0;
};

// Passed to each attempt.
class ResilientRunner;
struct AttemptContext {
  size_t task_index = 0;
  size_t attempt = 1;    // 1-based, across workers.
  size_t worker = 0;     // Virtual worker (site) id.

  // Publishes the attempt's buffered results. Runs `apply` iff no other
  // attempt of this task has committed yet; returns whether `apply` ran.
  bool Commit(const std::function<void()>& apply) const;

  ResilientRunner* runner = nullptr;
};

// An attempt body: returns OK on success. Must be idempotent and safe to
// run concurrently with a speculative copy of itself.
using ResilientTask = std::function<Status(const AttemptContext&)>;

struct TaskOutcome {
  size_t attempts = 0;        // Attempts actually started.
  size_t final_worker = 0;    // Worker of the committed/last attempt.
  bool committed = false;
  bool speculated = false;    // A speculative copy was launched.
  Status last_error;          // Most recent non-OK attempt status.
};

struct ResilientReport {
  std::vector<TaskOutcome> outcomes;
  std::vector<size_t> unprocessed;  // Task indices that never committed.
  uint64_t retries = 0;             // Re-attempts after failures.
  uint64_t speculations = 0;        // Straggler re-executions launched.

  // OK when every task committed; otherwise PartialFailure naming the
  // unprocessed task indices.
  Status status;
};

class ResilientRunner {
 public:
  explicit ResilientRunner(ResilientOptions options);

  // Runs all tasks to completion (or retry exhaustion). Blocking; the
  // runner owns a ThreadPool of options.num_workers threads for the call.
  // `initial_workers` optionally assigns each task's starting (virtual)
  // worker — e.g. the LPT assignment of the clustering coordinator; when
  // empty, tasks are dealt round-robin. Reassignment after repeated
  // failure rotates from the initial worker.
  ResilientReport Run(const std::vector<ResilientTask>& tasks,
                      const std::vector<size_t>& initial_workers = {});

 private:
  friend struct AttemptContext;
  struct TaskState;

  void StartAttempt(size_t task_index, size_t attempt, size_t worker,
                    bool speculative);
  void ExecuteAttempt(size_t task_index, size_t attempt, size_t worker,
                      int delay_ms);
  bool CommitTask(size_t task_index, size_t worker,
                  const std::function<void()>& apply);
  int BackoffDelayMs(TaskState& state, size_t attempt);

  ResilientOptions options_;

  // Valid only during Run().
  struct RunContext;
  RunContext* run_ = nullptr;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_PARALLEL_RESILIENT_RUNNER_H_
