#include "record/dataset.h"

namespace mergepurge {

TupleId Dataset::Append(Record record) {
  records_.push_back(std::move(record));
  return static_cast<TupleId>(records_.size() - 1);
}

Status Dataset::Concatenate(const Dataset& other) {
  if (!(schema_ == other.schema())) {
    return Status::InvalidArgument(
        "cannot concatenate datasets with different schemas");
  }
  records_.reserve(records_.size() + other.size());
  for (const Record& r : other.records()) records_.push_back(r);
  return Status::OK();
}

}  // namespace mergepurge
