// Dataset: an ordered collection of records with stable tuple ids and an
// associated schema. This is the unit the merge/purge methods operate on;
// it corresponds to the paper's "one sequential list of N records" formed
// by concatenating the input databases.

#ifndef MERGEPURGE_RECORD_DATASET_H_
#define MERGEPURGE_RECORD_DATASET_H_

#include <string>
#include <vector>

#include "record/record.h"
#include "record/schema.h"
#include "util/status.h"

namespace mergepurge {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // Appends a record and returns its tuple id (== index).
  TupleId Append(Record record);

  const Record& record(TupleId id) const { return records_[id]; }
  Record& mutable_record(TupleId id) { return records_[id]; }

  const std::vector<Record>& records() const { return records_; }

  // Concatenates another dataset (schemas must match), as in the paper's
  // first step: "we first concatenate them into one sequential list".
  // Tuple ids of `other` are shifted by the current size.
  Status Concatenate(const Dataset& other);

  void Reserve(size_t n) { records_.reserve(n); }
  void Clear() { records_.clear(); }

 private:
  Schema schema_;
  std::vector<Record> records_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_RECORD_DATASET_H_
