#include "record/record.h"

namespace mergepurge {

std::string Record::DebugString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += '|';
    out += fields_[i];
  }
  return out;
}

}  // namespace mergepurge
