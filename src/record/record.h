// Record: one tuple of string fields plus its tuple id.
//
// Fields are stored as owned strings; the domain (mailing-list records) is
// short ASCII strings where SSO makes per-field std::string storage compact.
// Tuple ids are assigned by the Dataset at append time and are stable for
// the lifetime of the dataset; all pair output (PairSet, closure) is in
// terms of tuple ids, matching the paper's "pairs of tuple id's, each at
// most 30 bits".

#ifndef MERGEPURGE_RECORD_RECORD_H_
#define MERGEPURGE_RECORD_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "record/schema.h"

namespace mergepurge {

using TupleId = uint32_t;

inline constexpr TupleId kInvalidTupleId = static_cast<TupleId>(-1);

class Record {
 public:
  Record() = default;
  explicit Record(std::vector<std::string> fields)
      : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }

  // Returns the field value, or an empty view if the field is absent
  // (records may have trailing empty fields, per the paper's "some of which
  // can be empty").
  std::string_view field(FieldId id) const {
    return id < fields_.size() ? std::string_view(fields_[id])
                               : std::string_view();
  }

  void set_field(FieldId id, std::string value) {
    if (id >= fields_.size()) fields_.resize(id + 1);
    fields_[id] = std::move(value);
  }

  const std::vector<std::string>& fields() const { return fields_; }
  std::vector<std::string>& mutable_fields() { return fields_; }

  bool operator==(const Record& other) const {
    return fields_ == other.fields_;
  }

  // Renders as pipe-separated fields, for debugging and test failure output.
  std::string DebugString() const;

 private:
  std::vector<std::string> fields_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_RECORD_RECORD_H_
