#include "record/schema.h"

#include <utility>

#include "util/string_util.h"

namespace mergepurge {

Schema::Schema(std::vector<std::string> field_names)
    : field_names_(std::move(field_names)) {}

FieldId Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < field_names_.size(); ++i) {
    if (field_names_[i] == name) return i;
  }
  return kInvalidField;
}

Result<FieldId> Schema::RequireField(std::string_view name) const {
  FieldId id = FieldIndex(name);
  if (id == kInvalidField) {
    return Status::NotFound(
        StringPrintf("schema has no field named '%.*s'",
                     static_cast<int>(name.size()), name.data()));
  }
  return id;
}

namespace employee {

Schema MakeSchema() {
  return Schema({"ssn", "first_name", "initial", "last_name", "address",
                 "apartment", "city", "state", "zip"});
}

}  // namespace employee

}  // namespace mergepurge
