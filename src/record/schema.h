// Schema: named, ordered fields of a record source.
//
// The merge/purge engine is schema-generic: key specs, rules and the
// generator all address fields by index resolved through a Schema. The
// paper's pedagogical "employee" schema (ssn, name, address fields) is
// provided as a standard instance.

#ifndef MERGEPURGE_RECORD_SCHEMA_H_
#define MERGEPURGE_RECORD_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mergepurge {

// Index of a field within a schema / record.
using FieldId = size_t;

inline constexpr FieldId kInvalidField = static_cast<FieldId>(-1);

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> field_names);

  size_t num_fields() const { return field_names_.size(); }
  const std::string& field_name(FieldId id) const { return field_names_[id]; }
  const std::vector<std::string>& field_names() const { return field_names_; }

  // Returns kInvalidField if no field has this name (case-sensitive).
  FieldId FieldIndex(std::string_view name) const;

  // Like FieldIndex but returns an error naming the missing field.
  Result<FieldId> RequireField(std::string_view name) const;

  bool operator==(const Schema& other) const {
    return field_names_ == other.field_names_;
  }

 private:
  std::vector<std::string> field_names_;
};

// The employee schema used throughout the paper's experiments:
// ssn, first_name, initial, last_name, address, apartment, city, state, zip.
namespace employee {

inline constexpr FieldId kSsn = 0;
inline constexpr FieldId kFirstName = 1;
inline constexpr FieldId kInitial = 2;
inline constexpr FieldId kLastName = 3;
inline constexpr FieldId kAddress = 4;
inline constexpr FieldId kApartment = 5;
inline constexpr FieldId kCity = 6;
inline constexpr FieldId kState = 7;
inline constexpr FieldId kZip = 8;
inline constexpr size_t kNumFields = 9;

// Returns the canonical employee schema (a fresh copy).
Schema MakeSchema();

}  // namespace employee

}  // namespace mergepurge

#endif  // MERGEPURGE_RECORD_SCHEMA_H_
