#include "rules/analysis/analyzer.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <optional>
#include <set>
#include <utility>

#include "core/purge_policy.h"
#include "rules/ast_util.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "util/string_util.h"

namespace mergepurge {

namespace {

using rules_internal::FindFunction;
using rules_internal::FuncSignature;
using rules_internal::NumericRange;
using rules_internal::Value;
using rules_internal::ValueType;

// --- Suppressions -----------------------------------------------------------

bool LineAllows(const AnalyzerOptions& options, int line,
                const std::string& id) {
  auto it = options.allows.find(line);
  if (it == options.allows.end()) return false;
  return std::find(it->second.begin(), it->second.end(), id) !=
         it->second.end();
}

// Routes a finding to the report, honoring `# rulecheck: allow(...)`
// comments on either the finding's own line or its owning construct's line.
void Emit(const AnalyzerOptions& options, int owner_line, Diagnostic d,
          AnalysisReport* report) {
  if (LineAllows(options, d.line, d.id) ||
      LineAllows(options, owner_line, d.id)) {
    report->AddSuppressed();
    return;
  }
  report->Add(std::move(d));
}

// --- Constant evaluation (shared by blank-merge and constant-comparison) ---

// Evaluates an expression with every field reference replaced by
// `blank_fields` semantics (all fields read as ""). Returns nullopt for
// programs the compiler would reject anyway (unknown function, arity or
// argument-type mismatch) — the analyzer never guesses there.
std::optional<Value> EvalExprBlank(const Expr& expr) {
  Value out;
  switch (expr.kind) {
    case ExprKind::kStringLiteral:
      out.type = ValueType::kString;
      out.s = expr.string_value;
      return out;
    case ExprKind::kNumberLiteral:
      out.type = ValueType::kNumber;
      out.n = expr.number_value;
      return out;
    case ExprKind::kFieldRef:
      out.type = ValueType::kString;
      return out;  // Every field of a blank record is "".
    case ExprKind::kFuncCall:
      break;
  }
  const FuncSignature* signature = FindFunction(expr.func_name);
  if (signature == nullptr ||
      expr.args.size() != signature->arg_types.size()) {
    return std::nullopt;
  }
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (size_t i = 0; i < expr.args.size(); ++i) {
    std::optional<Value> arg = EvalExprBlank(*expr.args[i]);
    if (!arg.has_value() || arg->type != signature->arg_types[i]) {
      return std::nullopt;
    }
    args.push_back(std::move(*arg));
  }
  return rules_internal::EvalBuiltin(signature->id, signature->return_type,
                                     args);
}

std::optional<bool> EvalCompareBlank(const BoolExpr& node) {
  std::optional<Value> lhs = EvalExprBlank(*node.lhs);
  std::optional<Value> rhs = EvalExprBlank(*node.rhs);
  if (!lhs.has_value() || !rhs.has_value() || lhs->type != rhs->type) {
    return std::nullopt;
  }
  if (lhs->type == ValueType::kBool && node.op != CompareOp::kEq &&
      node.op != CompareOp::kNe) {
    return std::nullopt;
  }
  return rules_internal::CompareValues(node.op, *lhs, *rhs);
}

// Three-valued evaluation of a condition on two all-blank records: nullopt
// means "cannot decide" (only possible for ill-typed programs).
std::optional<bool> EvalBoolBlank(const BoolExpr& node) {
  switch (node.kind) {
    case BoolKind::kAnd: {
      bool unknown = false;
      for (const std::unique_ptr<BoolExpr>& child : node.children) {
        std::optional<bool> v = EvalBoolBlank(*child);
        if (!v.has_value()) {
          unknown = true;
        } else if (!*v) {
          return false;
        }
      }
      if (unknown) return std::nullopt;
      return true;
    }
    case BoolKind::kOr: {
      bool unknown = false;
      for (const std::unique_ptr<BoolExpr>& child : node.children) {
        std::optional<bool> v = EvalBoolBlank(*child);
        if (!v.has_value()) {
          unknown = true;
        } else if (*v) {
          return true;
        }
      }
      if (unknown) return std::nullopt;
      return false;
    }
    case BoolKind::kNot: {
      std::optional<bool> v = EvalBoolBlank(*node.children[0]);
      if (!v.has_value()) return std::nullopt;
      return !*v;
    }
    case BoolKind::kCompare:
      return EvalCompareBlank(node);
    case BoolKind::kBare: {
      std::optional<Value> v = EvalExprBlank(*node.lhs);
      if (!v.has_value() || v->type != ValueType::kBool) return std::nullopt;
      return v->b;
    }
  }
  return std::nullopt;
}

bool HasFieldRef(const Expr& expr) {
  if (expr.kind == ExprKind::kFieldRef) return true;
  for (const std::unique_ptr<Expr>& arg : expr.args) {
    if (HasFieldRef(*arg)) return true;
  }
  return false;
}

// --- Interval analysis ------------------------------------------------------

// Output range of a numeric expression, when one is statically known.
std::optional<NumericRange> RangeOf(const Expr& expr) {
  if (expr.kind == ExprKind::kNumberLiteral) {
    return NumericRange{expr.number_value, expr.number_value};
  }
  if (expr.kind == ExprKind::kFuncCall) {
    const FuncSignature* signature = FindFunction(expr.func_name);
    if (signature != nullptr &&
        signature->return_type == ValueType::kNumber) {
      return signature->range;
    }
  }
  return std::nullopt;
}

CompareOp Negate(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  return CompareOp::kEq;
}

// True when `a op b` holds for every a in [a.lo,a.hi], b in [b.lo,b.hi].
bool AlwaysTrue(CompareOp op, const NumericRange& a, const NumericRange& b) {
  switch (op) {
    case CompareOp::kLt:
      return a.hi < b.lo;
    case CompareOp::kLe:
      return a.hi <= b.lo;
    case CompareOp::kGt:
      return a.lo > b.hi;
    case CompareOp::kGe:
      return a.lo >= b.hi;
    case CompareOp::kEq:
      return a.lo == a.hi && b.lo == b.hi && a.lo == b.lo;
    case CompareOp::kNe:
      return a.hi < b.lo || b.hi < a.lo;
  }
  return false;
}

bool AlwaysFalse(CompareOp op, const NumericRange& a, const NumericRange& b) {
  return AlwaysTrue(Negate(op), a, b);
}

const char* OpText(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string DescribeRange(const NumericRange& range) {
  if (range.lo == range.hi) return StringPrintf("%g", range.lo);
  if (range.hi == std::numeric_limits<double>::infinity()) {
    return StringPrintf("[%g, inf)", range.lo);
  }
  return StringPrintf("[%g, %g]", range.lo, range.hi);
}

// Per-comparison lints: constant-comparison, then self-comparison and
// interval contradiction/tautology.
void CheckComparisonLeaf(const BoolExpr& node, const Rule& rule,
                         const AnalyzerOptions& options,
                         AnalysisReport* report) {
  // A leaf that reads neither record is decided before any data arrives.
  if (!HasFieldRef(*node.lhs) && !HasFieldRef(*node.rhs)) {
    std::optional<bool> value = EvalCompareBlank(node);
    if (value.has_value()) {
      Emit(options, rule.source_line,
           {"constant-comparison", LintSeverity::kWarning, node.source_line,
            rule.name,
            StringPrintf("comparison reads neither record and is always %s",
                         *value ? "true" : "false"),
            "drop the comparison, or compare against a field of r1/r2"},
           report);
    }
    return;
  }

  // Identical canonical operands: `x == x` and friends.
  if (CanonicalPrint(*node.lhs) == CanonicalPrint(*node.rhs)) {
    bool always = node.op == CompareOp::kEq || node.op == CompareOp::kLe ||
                  node.op == CompareOp::kGe;
    Emit(options, rule.source_line,
         {always ? "tautological-condition" : "unsatisfiable-condition",
          LintSeverity::kWarning, node.source_line, rule.name,
          StringPrintf("both sides of '%s' are the same expression, so the "
                       "comparison is always %s",
                       OpText(node.op), always ? "true" : "false"),
          "compare r1's field against r2's, not against itself"},
         report);
    return;
  }

  std::optional<NumericRange> lhs = RangeOf(*node.lhs);
  std::optional<NumericRange> rhs = RangeOf(*node.rhs);
  if (!lhs.has_value() || !rhs.has_value()) return;
  if (AlwaysTrue(node.op, *lhs, *rhs)) {
    Emit(options, rule.source_line,
         {"tautological-condition", LintSeverity::kWarning, node.source_line,
          rule.name,
          StringPrintf("always true: left side ranges over %s, right side "
                       "over %s",
                       DescribeRange(*lhs).c_str(),
                       DescribeRange(*rhs).c_str()),
          "the threshold is outside the function's output range"},
         report);
  } else if (AlwaysFalse(node.op, *lhs, *rhs)) {
    Emit(options, rule.source_line,
         {"unsatisfiable-condition", LintSeverity::kWarning,
          node.source_line, rule.name,
          StringPrintf("never true: left side ranges over %s, right side "
                       "over %s",
                       DescribeRange(*lhs).c_str(),
                       DescribeRange(*rhs).c_str()),
          "the threshold is outside the function's output range"},
         report);
  }
}

void CheckConditionTree(const BoolExpr& node, const Rule& rule,
                        const AnalyzerOptions& options,
                        AnalysisReport* report) {
  switch (node.kind) {
    case BoolKind::kAnd:
    case BoolKind::kOr:
    case BoolKind::kNot:
      for (const std::unique_ptr<BoolExpr>& child : node.children) {
        CheckConditionTree(*child, rule, options, report);
      }
      return;
    case BoolKind::kCompare:
      CheckComparisonLeaf(node, rule, options, report);
      return;
    case BoolKind::kBare:
      if (!HasFieldRef(*node.lhs)) {
        std::optional<Value> value = EvalExprBlank(*node.lhs);
        if (value.has_value() && value->type == ValueType::kBool) {
          Emit(options, rule.source_line,
               {"constant-comparison", LintSeverity::kWarning,
                node.source_line, rule.name,
                StringPrintf(
                    "condition reads neither record and is always %s",
                    value->b ? "true" : "false"),
                "drop the condition, or apply it to a field of r1/r2"},
               report);
        }
      }
      return;
  }
}

// --- Subsumption ------------------------------------------------------------

// True when `print` is exactly a canonical number literal.
bool ParseNumberPrint(const std::string& print, double* out) {
  if (print.empty()) return false;
  char* end = nullptr;
  double value = std::strtod(print.c_str(), &end);
  if (end != print.c_str() + print.size()) return false;
  *out = value;
  return true;
}

// A conjunct of the form expr-vs-number-literal, in solved form.
struct ThresholdAtom {
  enum Kind { kLower, kUpper, kPoint } kind = kPoint;  // e > k, e < k, e == k
  std::string expr;  // canonical print of the non-literal side
  double k = 0.0;
  bool strict = false;  // meaningful for kLower / kUpper
};

std::optional<ThresholdAtom> AtomOf(const LeafConjunct& conjunct) {
  if (!conjunct.is_compare) return std::nullopt;
  double lhs_k = 0.0;
  double rhs_k = 0.0;
  bool lhs_num = ParseNumberPrint(conjunct.lhs_print, &lhs_k);
  bool rhs_num = ParseNumberPrint(conjunct.rhs_print, &rhs_k);
  if (lhs_num == rhs_num) return std::nullopt;  // zero or two literals
  ThresholdAtom atom;
  switch (conjunct.op) {  // canonical: only kEq / kNe / kLt / kLe occur
    case CompareOp::kLt:
    case CompareOp::kLe:
      atom.strict = conjunct.op == CompareOp::kLt;
      if (lhs_num) {  // k < e  =>  lower bound on e
        atom.kind = ThresholdAtom::kLower;
        atom.expr = conjunct.rhs_print;
        atom.k = lhs_k;
      } else {  // e < k  =>  upper bound on e
        atom.kind = ThresholdAtom::kUpper;
        atom.expr = conjunct.lhs_print;
        atom.k = rhs_k;
      }
      return atom;
    case CompareOp::kEq:
      atom.kind = ThresholdAtom::kPoint;
      atom.expr = lhs_num ? conjunct.rhs_print : conjunct.lhs_print;
      atom.k = lhs_num ? lhs_k : rhs_k;
      return atom;
    default:
      return std::nullopt;
  }
}

bool AtomImplies(const ThresholdAtom& c, const ThresholdAtom& a) {
  if (c.expr != a.expr) return false;
  switch (a.kind) {
    case ThresholdAtom::kLower:  // a: e > k (strict) or e >= k
      if (c.kind == ThresholdAtom::kLower) {
        return c.k > a.k || (c.k == a.k && (c.strict || !a.strict));
      }
      if (c.kind == ThresholdAtom::kPoint) {
        return a.strict ? c.k > a.k : c.k >= a.k;
      }
      return false;
    case ThresholdAtom::kUpper:
      if (c.kind == ThresholdAtom::kUpper) {
        return c.k < a.k || (c.k == a.k && (c.strict || !a.strict));
      }
      if (c.kind == ThresholdAtom::kPoint) {
        return a.strict ? c.k < a.k : c.k <= a.k;
      }
      return false;
    case ThresholdAtom::kPoint:
      return c.kind == ThresholdAtom::kPoint && c.k == a.k;
  }
  return false;
}

// True when conjunct `c` logically implies conjunct `a`: identical prints,
// or both are thresholds on the same expression and c's is at least as
// tight.
bool ConjunctImplies(const LeafConjunct& c, const LeafConjunct& a) {
  if (c.print == a.print) return true;
  std::optional<ThresholdAtom> c_atom = AtomOf(c);
  std::optional<ThresholdAtom> a_atom = AtomOf(a);
  if (!c_atom.has_value() || !a_atom.has_value()) return false;
  return AtomImplies(*c_atom, *a_atom);
}

using Dnf = std::vector<std::vector<LeafConjunct>>;

// True when condition B implies condition A: every disjunct of B entails
// some disjunct of A (all of that disjunct's conjuncts are implied).
bool ConditionImplies(const Dnf& b, const Dnf& a) {
  for (const std::vector<LeafConjunct>& d : b) {
    bool entailed = false;
    for (const std::vector<LeafConjunct>& e : a) {
      bool all = true;
      for (const LeafConjunct& want : e) {
        bool found = false;
        for (const LeafConjunct& have : d) {
          if (ConjunctImplies(have, want)) {
            found = true;
            break;
          }
        }
        if (!found) {
          all = false;
          break;
        }
      }
      if (all) {
        entailed = true;
        break;
      }
    }
    if (!entailed) return false;
  }
  return true;
}

// --- Per-lint drivers -------------------------------------------------------

void CheckSymmetry(const RuleProgramAst& ast, const AnalyzerOptions& options,
                   AnalysisReport* report) {
  for (const Rule& rule : ast.rules) {
    if (IsSymmetric(*rule.condition)) continue;
    Emit(options, rule.source_line,
         {"asymmetric-rule", LintSeverity::kWarning, rule.source_line,
          rule.name,
          "condition is not invariant under swapping r1 and r2, so whether "
          "a pair matches depends on record order within a window",
          "make every conjunct symmetric, e.g. guard both records "
          "('not empty(r1.f) and not empty(r2.f)') or compare both "
          "directions"},
         report);
  }
}

void CheckBlankMerge(const RuleProgramAst& ast, const AnalyzerOptions& options,
                     AnalysisReport* report) {
  for (const Rule& rule : ast.rules) {
    std::optional<bool> fires = EvalBoolBlank(*rule.condition);
    if (!fires.has_value() || !*fires) continue;
    Emit(options, rule.source_line,
         {"blank-merge", LintSeverity::kError, rule.source_line, rule.name,
          "condition holds for two records whose fields are all empty; "
          "under transitive closure this rule folds every blank-keyed "
          "record into one giant cluster",
          "add 'and not empty(r1.<field>)' for at least one field the rule "
          "relies on (similarity(\"\", \"\") is 1.0, so thresholds alone do "
          "not protect you)"},
         report);
  }
}

void CheckConditions(const RuleProgramAst& ast, const AnalyzerOptions& options,
                     AnalysisReport* report) {
  for (const Rule& rule : ast.rules) {
    CheckConditionTree(*rule.condition, rule, options, report);
  }
}

void CheckDuplicatesAndSubsumption(const RuleProgramAst& ast,
                                   const AnalyzerOptions& options,
                                   AnalysisReport* report) {
  std::vector<std::string> prints;
  std::vector<Dnf> dnfs;
  prints.reserve(ast.rules.size());
  dnfs.reserve(ast.rules.size());
  for (const Rule& rule : ast.rules) {
    prints.push_back(CanonicalPrint(*rule.condition));
    dnfs.push_back(DisjunctiveLeafPrints(*rule.condition));
  }
  for (size_t i = 0; i < ast.rules.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (prints[i] == prints[j]) {
        Emit(options, ast.rules[i].source_line,
             {"duplicate-rule", LintSeverity::kWarning,
              ast.rules[i].source_line, ast.rules[i].name,
              StringPrintf("condition is identical to rule '%s' (line %d); "
                           "this rule can never be the first to fire",
                           ast.rules[j].name.c_str(),
                           ast.rules[j].source_line),
              "delete one of the two rules"},
             report);
        break;
      }
      if (ConditionImplies(dnfs[i], dnfs[j])) {
        Emit(options, ast.rules[i].source_line,
             {"subsumed-rule", LintSeverity::kWarning,
              ast.rules[i].source_line, ast.rules[i].name,
              StringPrintf("every pair this rule matches is already "
                           "matched by the earlier rule '%s' (line %d)",
                           ast.rules[j].name.c_str(),
                           ast.rules[j].source_line),
              "delete this rule, or loosen its thresholds if it was meant "
              "to match more pairs"},
             report);
        break;
      }
    }
  }
}

void CheckRuleNames(const RuleProgramAst& ast, const AnalyzerOptions& options,
                    AnalysisReport* report) {
  for (size_t i = 0; i < ast.rules.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (ast.rules[i].name != ast.rules[j].name) continue;
      Emit(options, ast.rules[i].source_line,
           {"duplicate-rule-name", LintSeverity::kWarning,
            ast.rules[i].source_line, ast.rules[i].name,
            StringPrintf("rule name already used at line %d; per-rule fire "
                         "metrics for the two rules are indistinguishable",
                         ast.rules[j].source_line),
            "rename one of the rules"},
           report);
      break;
    }
  }
}

void CheckMergeDirectives(const RuleProgramAst& ast,
                          const AnalyzerOptions& options,
                          AnalysisReport* report) {
  for (size_t i = 0; i < ast.merge_directives.size(); ++i) {
    const MergeDirective& directive = ast.merge_directives[i];
    if (!MergeStrategyFromName(directive.strategy_name).ok()) {
      Emit(options, directive.source_line,
           {"unknown-merge-strategy", LintSeverity::kError,
            directive.source_line, "",
            StringPrintf("'%s' is not a merge strategy",
                         directive.strategy_name.c_str()),
            "see core/purge_policy.h for the strategy names"},
           report);
    }
    for (size_t j = 0; j < i; ++j) {
      if (ast.merge_directives[j].field_name != directive.field_name) {
        continue;
      }
      Emit(options, directive.source_line,
           {"duplicate-merge-directive", LintSeverity::kWarning,
            directive.source_line, "",
            StringPrintf("field '%s' already has a merge directive at line "
                         "%d; the later directive wins silently",
                         directive.field_name.c_str(),
                         ast.merge_directives[j].source_line),
            "keep a single directive per field"},
           report);
      break;
    }
  }
}

// --- Window coverage --------------------------------------------------------

void CollectFieldRefs(const Expr& expr, std::set<std::string>* r1,
                      std::set<std::string>* r2) {
  if (expr.kind == ExprKind::kFieldRef) {
    (expr.record_index == 1 ? r1 : r2)->insert(expr.field_name);
  }
  for (const std::unique_ptr<Expr>& arg : expr.args) {
    CollectFieldRefs(*arg, r1, r2);
  }
}

std::set<std::string> Intersect(const std::set<std::string>& a,
                                const std::set<std::string>& b) {
  std::set<std::string> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

// The fields a satisfying pair must "agree" on, under-approximated
// syntactically: a leaf ties field f when it reads BOTH r1.f and r2.f
// (equality, similarity, damerau, ... — any two-sided read counts, since
// keys only need matching records to sort NEAR each other, not equal).
// Conjunction ties the union of its children, disjunction only what every
// branch ties, and negation conservatively ties nothing.
std::set<std::string> TiedFields(const BoolExpr& node) {
  switch (node.kind) {
    case BoolKind::kAnd: {
      std::set<std::string> tied;
      for (const std::unique_ptr<BoolExpr>& child : node.children) {
        std::set<std::string> t = TiedFields(*child);
        tied.insert(t.begin(), t.end());
      }
      return tied;
    }
    case BoolKind::kOr: {
      std::set<std::string> tied;
      bool first = true;
      for (const std::unique_ptr<BoolExpr>& child : node.children) {
        std::set<std::string> t = TiedFields(*child);
        tied = first ? std::move(t) : Intersect(tied, t);
        first = false;
        if (tied.empty()) break;
      }
      return tied;
    }
    case BoolKind::kNot:
      return {};
    case BoolKind::kCompare:
    case BoolKind::kBare: {
      std::set<std::string> r1;
      std::set<std::string> r2;
      CollectFieldRefs(*node.lhs, &r1, &r2);
      if (node.rhs != nullptr) CollectFieldRefs(*node.rhs, &r1, &r2);
      return Intersect(r1, r2);
    }
  }
  return {};
}

std::string JoinSet(const std::set<std::string>& fields) {
  std::string out;
  for (const std::string& f : fields) {
    if (!out.empty()) out += ", ";
    out += f;
  }
  return out;
}

// window-coverage: every pair a rule matches must agree on at least one
// field some pass sorts on, or the sorted-neighborhood windows never
// bring the pair together and the rule is dead weight (paper §2.2: "keys
// should be chosen so that similar and matching records should have
// nearly equal key values").
void CheckWindowCoverage(const RuleProgramAst& ast,
                         const AnalyzerOptions& options,
                         AnalysisReport* report) {
  if (options.passes.empty()) return;
  std::string pass_text;
  for (const PassKeyFields& pass : options.passes) {
    if (!pass_text.empty()) pass_text += "; ";
    pass_text += pass.name.empty() ? "pass" : pass.name;
    pass_text += " sorts on ";
    for (size_t i = 0; i < pass.fields.size(); ++i) {
      if (i > 0) pass_text += "+";
      pass_text += pass.fields[i];
    }
  }
  for (const Rule& rule : ast.rules) {
    std::set<std::string> tied = TiedFields(*rule.condition);
    bool covered = false;
    for (const PassKeyFields& pass : options.passes) {
      for (const std::string& field : pass.fields) {
        if (tied.count(field) > 0) {
          covered = true;
          break;
        }
      }
      if (covered) break;
    }
    if (covered) continue;
    std::string tied_text =
        tied.empty() ? "ties no field between r1 and r2"
                     : StringPrintf("only ties %s", JoinSet(tied).c_str());
    Emit(options, rule.source_line,
         {"window-coverage", LintSeverity::kWarning, rule.source_line,
          rule.name,
          StringPrintf("no configured sort pass can bring this rule's "
                       "pairs into one window: the condition %s, but %s",
                       tied_text.c_str(), pass_text.c_str()),
          "add a pass whose key leads with a field the rule ties, or make "
          "the condition require agreement on an already-keyed field"},
         report);
  }
}

}  // namespace

std::map<int, std::vector<std::string>> ExtractSuppressions(
    std::string_view source) {
  std::map<int, std::vector<std::string>> allows;
  std::vector<std::string> pending;
  int line_number = 0;
  size_t start = 0;
  while (start <= source.size()) {
    size_t end = source.find('\n', start);
    if (end == std::string_view::npos) end = source.size();
    std::string_view line = source.substr(start, end - start);
    ++line_number;
    start = end + 1;

    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) continue;  // blank: keep pending
    if (line[first] != '#') {
      // A code line: pending allows attach here.
      if (!pending.empty()) {
        std::vector<std::string>& slot = allows[line_number];
        slot.insert(slot.end(), pending.begin(), pending.end());
        pending.clear();
      }
      continue;
    }
    constexpr std::string_view kMarker = "rulecheck:";
    size_t marker = line.find(kMarker, first);
    if (marker == std::string_view::npos) continue;
    size_t open = line.find("allow(", marker + kMarker.size());
    if (open == std::string_view::npos) continue;
    size_t close = line.find(')', open);
    if (close == std::string_view::npos) continue;
    std::string_view ids = line.substr(open + 6, close - open - 6);
    size_t pos = 0;
    while (pos <= ids.size()) {
      size_t comma = ids.find(',', pos);
      if (comma == std::string_view::npos) comma = ids.size();
      std::string_view id = ids.substr(pos, comma - pos);
      size_t id_start = id.find_first_not_of(" \t");
      if (id_start != std::string_view::npos) {
        size_t id_end = id.find_last_not_of(" \t");
        pending.emplace_back(id.substr(id_start, id_end - id_start + 1));
      }
      pos = comma + 1;
    }
  }
  return allows;
}

AnalysisReport AnalyzeRuleProgram(const RuleProgramAst& ast,
                                  const AnalyzerOptions& options) {
  AnalysisReport report;
  report.SetProgramShape(ast.rules.size(), ast.merge_directives.size());
  CheckBlankMerge(ast, options, &report);
  CheckSymmetry(ast, options, &report);
  CheckConditions(ast, options, &report);
  CheckDuplicatesAndSubsumption(ast, options, &report);
  CheckRuleNames(ast, options, &report);
  CheckMergeDirectives(ast, options, &report);
  CheckWindowCoverage(ast, options, &report);
  return report;
}

AnalysisReport AnalyzeRuleSource(std::string_view source) {
  return AnalyzeRuleSource(source, AnalyzerOptions{});
}

AnalysisReport AnalyzeRuleSource(std::string_view source,
                                 AnalyzerOptions options) {
  Result<RuleProgramAst> ast = ParseRuleProgram(source);
  if (!ast.ok()) {
    AnalysisReport report;
    report.Add({"parse-error", LintSeverity::kError, 0, "",
                ast.status().message(), ""});
    return report;
  }
  options.allows = ExtractSuppressions(source);
  return AnalyzeRuleProgram(*ast, options);
}

}  // namespace mergepurge
