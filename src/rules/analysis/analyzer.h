// Static analyzer for rule-language theories ("rulecheck"). Operates on
// the parsed AST (no schema needed), so it can vet a theory before any
// data exists. Every lint is cataloged in docs/rule_lints.md; the ids it
// can emit:
//
//   parse-error                error    source does not parse
//   blank-merge                error    rule fires on two all-blank records
//   unknown-merge-strategy     error    merge directive names no strategy
//   asymmetric-rule            warning  condition not invariant under r1/r2
//   unsatisfiable-condition    warning  comparison can never hold
//   tautological-condition     warning  comparison always holds
//   constant-comparison        warning  condition ignores both records
//   duplicate-rule             warning  same condition as an earlier rule
//   subsumed-rule              warning  implied by an earlier rule
//   duplicate-rule-name        warning  rule name reused
//   duplicate-merge-directive  warning  field merged twice
//   window-coverage            warning  no sort pass windows the rule's pairs
//
// Findings can be silenced in the source with a comment on the line(s)
// directly above the construct:
//
//   # rulecheck: allow(blank-merge)
//   rule identical-records: ...
//
// The analyzer is conservative: everything it flags as an error is a real
// property of the theory (blank-merge is decided by constant evaluation
// with the same built-in evaluator the interpreter uses), while warnings
// use normal forms that can miss — but never invent — equivalences.

#ifndef MERGEPURGE_RULES_ANALYSIS_ANALYZER_H_
#define MERGEPURGE_RULES_ANALYSIS_ANALYZER_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "rules/analysis/diagnostics.h"
#include "rules/ast.h"

namespace mergepurge {

// One sorted-neighborhood pass, reduced to the record fields its sort key
// reads (principal field first). Input to the window-coverage lint: a rule
// whose condition ties none of any pass's fields matches pairs that no
// pass sorts near each other.
struct PassKeyFields {
  std::string name;                 // e.g. "last-name"
  std::vector<std::string> fields;  // field names, key order
};

struct AnalyzerOptions {
  // Source line -> lint ids allowed at that line, usually built by
  // ExtractSuppressions. A finding is suppressed when its own line or its
  // owning rule/directive's line allows its id.
  std::map<int, std::vector<std::string>> allows;

  // The sort passes the theory will run under, for the window-coverage
  // lint. Empty (the default) disables that lint: without knowing the
  // keys, coverage cannot be judged.
  std::vector<PassKeyFields> passes;
};

// Scans raw source for `# rulecheck: allow(id[, id...])` comments. Each
// comment attaches to the next non-blank, non-comment line; consecutive
// allow comments accumulate onto that same line.
std::map<int, std::vector<std::string>> ExtractSuppressions(
    std::string_view source);

// Runs every lint over a parsed program.
AnalysisReport AnalyzeRuleProgram(const RuleProgramAst& ast,
                                  const AnalyzerOptions& options = {});

// Parses and analyzes `source`, honoring its suppression comments. A parse
// failure yields a report with a single parse-error diagnostic instead of
// a Status, so callers always have something to render. The second form
// carries caller options (e.g. passes for window-coverage); its `allows`
// are replaced by the suppressions extracted from `source`.
AnalysisReport AnalyzeRuleSource(std::string_view source);
AnalysisReport AnalyzeRuleSource(std::string_view source,
                                 AnalyzerOptions options);

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_ANALYSIS_ANALYZER_H_
