#include "rules/analysis/diagnostics.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace mergepurge {

const char* LintSeverityName(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kNote:
      return "note";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "unknown";
}

void AnalysisReport::Add(Diagnostic diagnostic) {
  diagnostics_.push_back(std::move(diagnostic));
}

size_t AnalysisReport::CountAtSeverity(LintSeverity severity) const {
  return static_cast<size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

void AnalysisReport::SetProgramShape(size_t rules, size_t merge_directives) {
  rule_count_ = rules;
  directive_count_ = merge_directives;
}

std::string AnalysisReport::ToText(std::string_view source_name) const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += StringPrintf("%.*s:%d: %s: [%s]",
                        static_cast<int>(source_name.size()),
                        source_name.data(), d.line,
                        LintSeverityName(d.severity), d.id.c_str());
    if (!d.rule_name.empty()) out += " rule '" + d.rule_name + "':";
    out += " " + d.message + "\n";
    if (!d.hint.empty()) out += "    hint: " + d.hint + "\n";
  }
  out += StringPrintf(
      "%.*s: %zu rule(s), %zu merge directive(s): "
      "%zu error(s), %zu warning(s), %zu note(s), %zu suppressed\n",
      static_cast<int>(source_name.size()), source_name.data(), rule_count_,
      directive_count_, CountAtSeverity(LintSeverity::kError),
      CountAtSeverity(LintSeverity::kWarning),
      CountAtSeverity(LintSeverity::kNote), suppressed_count_);
  return out;
}

JsonValue AnalysisReport::ToJson(std::string_view source_name) const {
  JsonValue doc = JsonValue::Object();
  doc.Set("tool", JsonValue("rulecheck"));
  doc.Set("source", JsonValue(source_name));

  JsonValue outcome = JsonValue::Object();
  outcome.Set("ok", JsonValue(!HasErrors()));
  outcome.Set("detail",
              JsonValue(HasErrors() ? "theory has lint errors"
                                    : "no lint errors"));
  doc.Set("outcome", std::move(outcome));

  JsonValue program = JsonValue::Object();
  program.Set("rules", JsonValue(static_cast<uint64_t>(rule_count_)));
  program.Set("merge_directives",
              JsonValue(static_cast<uint64_t>(directive_count_)));
  doc.Set("program", std::move(program));

  JsonValue counts = JsonValue::Object();
  counts.Set("error", JsonValue(static_cast<uint64_t>(
                          CountAtSeverity(LintSeverity::kError))));
  counts.Set("warning", JsonValue(static_cast<uint64_t>(
                            CountAtSeverity(LintSeverity::kWarning))));
  counts.Set("note", JsonValue(static_cast<uint64_t>(
                         CountAtSeverity(LintSeverity::kNote))));
  counts.Set("suppressed",
             JsonValue(static_cast<uint64_t>(suppressed_count_)));
  doc.Set("counts", std::move(counts));

  JsonValue findings = JsonValue::Array();
  for (const Diagnostic& d : diagnostics_) {
    JsonValue entry = JsonValue::Object();
    entry.Set("id", JsonValue(d.id));
    entry.Set("severity", JsonValue(LintSeverityName(d.severity)));
    entry.Set("line", JsonValue(static_cast<int64_t>(d.line)));
    if (!d.rule_name.empty()) entry.Set("rule", JsonValue(d.rule_name));
    entry.Set("message", JsonValue(d.message));
    if (!d.hint.empty()) entry.Set("hint", JsonValue(d.hint));
    findings.Append(std::move(entry));
  }
  doc.Set("diagnostics", std::move(findings));
  return doc;
}

}  // namespace mergepurge
