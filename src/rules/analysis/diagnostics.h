// Diagnostics for the rule-theory static analyzer (docs/rule_lints.md
// catalogs every lint id). A diagnostic names the lint, the severity, the
// offending rule and source line, and a fix hint; AnalysisReport renders a
// batch as compiler-style text or as a machine-readable JSON document
// (validated in CI by tools/validate_report).

#ifndef MERGEPURGE_RULES_ANALYSIS_DIAGNOSTICS_H_
#define MERGEPURGE_RULES_ANALYSIS_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace mergepurge {

enum class LintSeverity { kNote, kWarning, kError };

// "note" / "warning" / "error".
const char* LintSeverityName(LintSeverity severity);

struct Diagnostic {
  std::string id;          // lint id, e.g. "blank-merge"
  LintSeverity severity = LintSeverity::kWarning;
  int line = 0;            // 1-based source line (0 when unknown)
  std::string rule_name;   // "" for directive / program-level findings
  std::string message;     // what is wrong
  std::string hint;        // how to fix it ("" when there is no short fix)
};

class AnalysisReport {
 public:
  void Add(Diagnostic diagnostic);
  // Records a finding silenced by a `# rulecheck: allow(...)` comment.
  void AddSuppressed() { ++suppressed_count_; }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  size_t suppressed_count() const { return suppressed_count_; }
  size_t CountAtSeverity(LintSeverity severity) const;
  bool HasErrors() const {
    return CountAtSeverity(LintSeverity::kError) > 0;
  }
  bool empty() const { return diagnostics_.empty(); }

  // Analyzed-program shape, for the report header.
  void SetProgramShape(size_t rules, size_t merge_directives);
  size_t rule_count() const { return rule_count_; }

  // Compiler-style text, one finding per line plus an indented hint:
  //   <source>:12: warning: [asymmetric-rule] rule 'x': <message>
  std::string ToText(std::string_view source_name) const;

  // Machine-readable document (schema in docs/rule_lints.md).
  JsonValue ToJson(std::string_view source_name) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t suppressed_count_ = 0;
  size_t rule_count_ = 0;
  size_t directive_count_ = 0;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_ANALYSIS_DIAGNOSTICS_H_
