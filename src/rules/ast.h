// Abstract syntax tree for the merge/purge rule language.
//
// The language mirrors the structure of the paper's OPS5 rule base: a
// program is an ordered list of rules; each rule has a boolean condition
// over the two records under comparison (r1, r2); a pair matches when ANY
// rule's condition holds (rules are disjuncts, as in a production system
// where any rule may fire).
//
//   rule same-ssn-similar-name:
//     if r1.ssn == r2.ssn
//     and similarity(r1.last_name, r2.last_name) >= 0.8
//     then match
//
// Conditions support and / or / not with the usual precedence (not > and >
// or) and parentheses. Leaf conditions are comparisons (`expr op expr`) or
// bare boolean expressions (`sounds_like(...)`). Value expressions are
// strings, numbers or booleans; built-in functions expose the distance
// library (similarity, edit_distance, soundex, ...).

#ifndef MERGEPURGE_RULES_AST_H_
#define MERGEPURGE_RULES_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "record/schema.h"

namespace mergepurge {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

enum class ExprKind {
  kStringLiteral,
  kNumberLiteral,
  kFieldRef,  // r1.field or r2.field
  kFuncCall,
};

struct Expr {
  ExprKind kind;
  // Source line of the first token of this expression (1-based; 0 for
  // synthesized nodes). The static analyzer anchors diagnostics here.
  int source_line = 0;

  // kStringLiteral.
  std::string string_value;
  // kNumberLiteral.
  double number_value = 0.0;
  // kFieldRef: which record (1 or 2) and the field name; the field id is
  // resolved at bind time.
  int record_index = 0;
  std::string field_name;
  // kFuncCall.
  std::string func_name;
  std::vector<std::unique_ptr<Expr>> args;
};

enum class BoolKind {
  kAnd,
  kOr,
  kNot,
  kCompare,  // lhs op rhs
  kBare,     // boolean-valued expression
};

struct BoolExpr {
  BoolKind kind;
  // Source line of the first token of this condition (1-based; 0 for
  // synthesized nodes).
  int source_line = 0;
  // kAnd / kOr: two or more children. kNot: one child.
  std::vector<std::unique_ptr<BoolExpr>> children;
  // kCompare / kBare.
  std::unique_ptr<Expr> lhs;
  CompareOp op = CompareOp::kEq;
  std::unique_ptr<Expr> rhs;  // kCompare only.
};

struct Rule {
  std::string name;
  std::unique_ptr<BoolExpr> condition;
  int source_line = 0;
};

// A purge-phase directive: `merge <field>: prefer <strategy>` (paper §5's
// data-directed projections; see core/purge_policy.h for the strategies).
struct MergeDirective {
  std::string field_name;
  std::string strategy_name;
  int source_line = 0;
};

struct RuleProgramAst {
  std::vector<Rule> rules;
  std::vector<MergeDirective> merge_directives;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_AST_H_
