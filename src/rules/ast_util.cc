#include "rules/ast_util.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "rules/builtins.h"
#include "util/string_util.h"

namespace mergepurge {

std::unique_ptr<Expr> CloneExpr(const Expr& expr) {
  auto out = std::make_unique<Expr>();
  out->kind = expr.kind;
  out->source_line = expr.source_line;
  out->string_value = expr.string_value;
  out->number_value = expr.number_value;
  out->record_index = expr.record_index;
  out->field_name = expr.field_name;
  out->func_name = expr.func_name;
  out->args.reserve(expr.args.size());
  for (const std::unique_ptr<Expr>& arg : expr.args) {
    out->args.push_back(CloneExpr(*arg));
  }
  return out;
}

std::unique_ptr<BoolExpr> CloneBool(const BoolExpr& node) {
  auto out = std::make_unique<BoolExpr>();
  out->kind = node.kind;
  out->source_line = node.source_line;
  out->op = node.op;
  if (node.lhs != nullptr) out->lhs = CloneExpr(*node.lhs);
  if (node.rhs != nullptr) out->rhs = CloneExpr(*node.rhs);
  out->children.reserve(node.children.size());
  for (const std::unique_ptr<BoolExpr>& child : node.children) {
    out->children.push_back(CloneBool(*child));
  }
  return out;
}

void SwapRecordIndices(Expr* expr) {
  if (expr->kind == ExprKind::kFieldRef) {
    expr->record_index = expr->record_index == 1 ? 2 : 1;
  }
  for (std::unique_ptr<Expr>& arg : expr->args) SwapRecordIndices(arg.get());
}

void SwapRecordIndices(BoolExpr* node) {
  if (node->lhs != nullptr) SwapRecordIndices(node->lhs.get());
  if (node->rhs != nullptr) SwapRecordIndices(node->rhs.get());
  for (std::unique_ptr<BoolExpr>& child : node->children) {
    SwapRecordIndices(child.get());
  }
}

namespace {

// Congruence substitutions: canonical print -> representative print.
// Conditions are small (tens of nodes), so a flat vector beats a map.
using Subst = std::vector<std::pair<std::string, std::string>>;

std::string ApplySubst(std::string print, const Subst& subst) {
  for (const auto& [from, to] : subst) {
    if (print == from) return to;
  }
  return print;
}

std::string PrintExpr(const Expr& expr, const Subst& subst) {
  std::string out;
  switch (expr.kind) {
    case ExprKind::kStringLiteral:
      out = "\"" + expr.string_value + "\"";
      break;
    case ExprKind::kNumberLiteral:
      out = StringPrintf("%.17g", expr.number_value);
      break;
    case ExprKind::kFieldRef:
      out = (expr.record_index == 1 ? "r1." : "r2.") + expr.field_name;
      break;
    case ExprKind::kFuncCall: {
      std::vector<std::string> args;
      args.reserve(expr.args.size());
      for (const std::unique_ptr<Expr>& arg : expr.args) {
        args.push_back(PrintExpr(*arg, subst));
      }
      // Sort the two string arguments of a symmetric built-in; on arity
      // mismatch (program would not compile) print as written.
      const rules_internal::FuncSignature* signature =
          rules_internal::FindFunction(expr.func_name);
      if (signature != nullptr && signature->symmetric &&
          expr.args.size() == signature->arg_types.size()) {
        int first = -1;
        int second = -1;
        for (size_t i = 0; i < signature->arg_types.size(); ++i) {
          if (signature->arg_types[i] != rules_internal::ValueType::kString) {
            continue;
          }
          (first < 0 ? first : second) = static_cast<int>(i);
        }
        if (first >= 0 && second >= 0 && args[first] > args[second]) {
          std::swap(args[first], args[second]);
        }
      }
      out = expr.func_name + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ",";
        out += args[i];
      }
      out += ")";
      break;
    }
  }
  return ApplySubst(std::move(out), subst);
}

std::string PrintBool(const BoolExpr& node, const Subst& subst);

// Gathers the transitive non-`and` leaves (conjuncts) of an `and` subtree.
void FlattenAnd(const BoolExpr& node, std::vector<const BoolExpr*>* out) {
  if (node.kind == BoolKind::kAnd) {
    for (const std::unique_ptr<BoolExpr>& child : node.children) {
      FlattenAnd(*child, out);
    }
    return;
  }
  out->push_back(&node);
}

void FlattenOr(const BoolExpr& node, std::vector<const BoolExpr*>* out) {
  if (node.kind == BoolKind::kOr) {
    for (const std::unique_ptr<BoolExpr>& child : node.children) {
      FlattenOr(*child, out);
    }
    return;
  }
  out->push_back(&node);
}

// If `leaf` is an equality between an expression and its r1/r2 mirror,
// returns the substitution (larger print -> smaller print) it licenses
// within its conjunction.
std::optional<std::pair<std::string, std::string>> MirrorEqualityMapping(
    const BoolExpr& leaf, const Subst& inherited) {
  if (leaf.kind != BoolKind::kCompare || leaf.op != CompareOp::kEq ||
      leaf.lhs == nullptr || leaf.rhs == nullptr) {
    return std::nullopt;
  }
  std::string lhs_print = PrintExpr(*leaf.lhs, inherited);
  std::string rhs_print = PrintExpr(*leaf.rhs, inherited);
  if (lhs_print == rhs_print) return std::nullopt;
  std::unique_ptr<Expr> mirrored = CloneExpr(*leaf.lhs);
  SwapRecordIndices(mirrored.get());
  if (PrintExpr(*mirrored, inherited) != rhs_print) return std::nullopt;
  if (lhs_print < rhs_print) {
    return std::make_pair(std::move(rhs_print), std::move(lhs_print));
  }
  return std::make_pair(std::move(lhs_print), std::move(rhs_print));
}

// Per-conjunct substitutions for a conjunction: conjunct i is printed with
// every mapping its siblings license, but not its own (so the equality
// itself keeps both sides and stays distinct from a self-comparison).
std::vector<Subst> ConjunctSubsts(const std::vector<const BoolExpr*>& leaves,
                                  const Subst& inherited) {
  std::vector<std::optional<std::pair<std::string, std::string>>> own;
  own.reserve(leaves.size());
  for (const BoolExpr* leaf : leaves) {
    own.push_back(MirrorEqualityMapping(*leaf, inherited));
  }
  std::vector<Subst> per_leaf(leaves.size());
  for (size_t i = 0; i < leaves.size(); ++i) {
    Subst subst = inherited;
    for (size_t j = 0; j < leaves.size(); ++j) {
      if (j != i && own[j].has_value()) subst.push_back(*own[j]);
    }
    per_leaf[i] = std::move(subst);
  }
  return per_leaf;
}

// Canonical orientation of a comparison: sides of > / >= flipped so the
// op is < / <=, operands of == / != sorted.
struct CompareParts {
  std::string lhs;
  CompareOp op = CompareOp::kEq;
  std::string rhs;
};

CompareParts CanonicalCompareParts(const BoolExpr& node,
                                   const Subst& subst) {
  CompareParts parts;
  parts.lhs = PrintExpr(*node.lhs, subst);
  parts.rhs = PrintExpr(*node.rhs, subst);
  parts.op = node.op;
  if (parts.op == CompareOp::kGt) {
    std::swap(parts.lhs, parts.rhs);
    parts.op = CompareOp::kLt;
  } else if (parts.op == CompareOp::kGe) {
    std::swap(parts.lhs, parts.rhs);
    parts.op = CompareOp::kLe;
  }
  if ((parts.op == CompareOp::kEq || parts.op == CompareOp::kNe) &&
      parts.lhs > parts.rhs) {
    std::swap(parts.lhs, parts.rhs);
  }
  return parts;
}

std::string PrintCompare(const BoolExpr& node, const Subst& subst) {
  CompareParts parts = CanonicalCompareParts(node, subst);
  const char* op_text = parts.op == CompareOp::kEq   ? "=="
                        : parts.op == CompareOp::kNe ? "!="
                        : parts.op == CompareOp::kLt ? "<"
                                                     : "<=";
  return "(" + parts.lhs + op_text + parts.rhs + ")";
}

std::string JoinSorted(std::vector<std::string> parts, char sep) {
  std::sort(parts.begin(), parts.end());
  std::string out = "(";
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  out += ")";
  return out;
}

std::string PrintBool(const BoolExpr& node, const Subst& subst) {
  switch (node.kind) {
    case BoolKind::kAnd: {
      std::vector<const BoolExpr*> leaves;
      FlattenAnd(node, &leaves);
      std::vector<Subst> per_leaf = ConjunctSubsts(leaves, subst);
      std::vector<std::string> parts;
      parts.reserve(leaves.size());
      for (size_t i = 0; i < leaves.size(); ++i) {
        parts.push_back(PrintBool(*leaves[i], per_leaf[i]));
      }
      return JoinSorted(std::move(parts), '&');
    }
    case BoolKind::kOr: {
      std::vector<const BoolExpr*> branches;
      FlattenOr(node, &branches);
      std::vector<std::string> parts;
      parts.reserve(branches.size());
      for (const BoolExpr* branch : branches) {
        parts.push_back(PrintBool(*branch, subst));
      }
      return JoinSorted(std::move(parts), '|');
    }
    case BoolKind::kNot:
      return "!" + PrintBool(*node.children[0], subst);
    case BoolKind::kCompare:
      return PrintCompare(node, subst);
    case BoolKind::kBare:
      return PrintExpr(*node.lhs, subst);
  }
  return "";
}

}  // namespace

std::string CanonicalPrint(const Expr& expr) { return PrintExpr(expr, {}); }

std::string CanonicalPrint(const BoolExpr& node) {
  return PrintBool(node, {});
}

bool IsSymmetric(const BoolExpr& condition) {
  std::unique_ptr<BoolExpr> swapped = CloneBool(condition);
  SwapRecordIndices(swapped.get());
  return CanonicalPrint(condition) == CanonicalPrint(*swapped);
}

std::vector<std::vector<LeafConjunct>> DisjunctiveLeafPrints(
    const BoolExpr& condition) {
  std::vector<const BoolExpr*> branches;
  FlattenOr(condition, &branches);
  std::vector<std::vector<LeafConjunct>> out;
  out.reserve(branches.size());
  for (const BoolExpr* branch : branches) {
    std::vector<const BoolExpr*> leaves;
    FlattenAnd(*branch, &leaves);
    std::vector<Subst> per_leaf = ConjunctSubsts(leaves, {});
    std::vector<LeafConjunct> conjuncts;
    conjuncts.reserve(leaves.size());
    for (size_t i = 0; i < leaves.size(); ++i) {
      LeafConjunct conjunct;
      conjunct.node = leaves[i];
      conjunct.print = PrintBool(*leaves[i], per_leaf[i]);
      if (leaves[i]->kind == BoolKind::kCompare) {
        CompareParts parts = CanonicalCompareParts(*leaves[i], per_leaf[i]);
        conjunct.is_compare = true;
        conjunct.op = parts.op;
        conjunct.lhs_print = std::move(parts.lhs);
        conjunct.rhs_print = std::move(parts.rhs);
      }
      conjuncts.push_back(std::move(conjunct));
    }
    out.push_back(std::move(conjuncts));
  }
  return out;
}

}  // namespace mergepurge
