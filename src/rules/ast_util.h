// AST utilities for the rule language: deep clone, r1/r2 swapping, and a
// canonical structural print used as a normal form by the static analyzer
// (rules/analysis/).
//
// The canonical print is designed so that two conditions with the same
// print are semantically equivalent (the converse does not hold — it is a
// conservative normal form):
//   * children of `and` / `or` are sorted, so conjunct/disjunct order is
//     irrelevant;
//   * comparisons are direction-canonicalized (`a > b` prints as `b < a`;
//     operands of `==` / `!=` are sorted);
//   * the two string arguments of symmetric built-ins (similarity,
//     sounds_like, ...) are sorted;
//   * within a conjunction, an equality between an expression and its
//     r1/r2 mirror (`r1.f == r2.f`, `digits(r1.m) == digits(r2.m)`)
//     licenses congruence rewriting: every other occurrence of either side
//     in that conjunction prints as the common representative. This is
//     what lets `r1.f == r2.f and not empty(r1.f)` compare equal to its
//     r1/r2-swapped form.

#ifndef MERGEPURGE_RULES_AST_UTIL_H_
#define MERGEPURGE_RULES_AST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "rules/ast.h"

namespace mergepurge {

// Deep copies (source lines included).
std::unique_ptr<Expr> CloneExpr(const Expr& expr);
std::unique_ptr<BoolExpr> CloneBool(const BoolExpr& node);

// Swaps every r1 field reference to r2 and vice versa, in place.
void SwapRecordIndices(Expr* expr);
void SwapRecordIndices(BoolExpr* node);

// Canonical structural prints (see file comment). Total functions: they
// never fail, even on ASTs that would not compile (unknown functions or
// fields print as written).
std::string CanonicalPrint(const Expr& expr);
std::string CanonicalPrint(const BoolExpr& node);

// True when the condition is invariant under swapping r1 and r2, judged
// by canonical-print equality of the condition and its swapped clone.
// Sound for positives (equal prints => symmetric); asymmetric-looking
// conditions may rarely be semantically symmetric in ways the normal form
// cannot see.
bool IsSymmetric(const BoolExpr& condition);

// The condition flattened to OR-of-AND form, one entry per disjunct, each
// a list of leaf conjuncts (any non-and/or node) with their canonical
// prints. Congruence substitutions from a disjunct's equalities are
// applied to its sibling conjuncts, so guard conjuncts compare equal
// across rules regardless of which record they name.
struct LeafConjunct {
  const BoolExpr* node = nullptr;
  std::string print;
  // For comparison leaves: the canonical orientation (op is kEq, kNe, kLt
  // or kLe after direction normalization) and the operand prints, so
  // consumers can reason about thresholds without re-deriving the
  // congruence substitutions.
  bool is_compare = false;
  CompareOp op = CompareOp::kEq;
  std::string lhs_print;
  std::string rhs_print;
};
std::vector<std::vector<LeafConjunct>> DisjunctiveLeafPrints(
    const BoolExpr& condition);

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_AST_UTIL_H_
