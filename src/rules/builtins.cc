#include "rules/builtins.h"

#include <limits>

#include "text/edit_distance.h"
#include "text/jaro_winkler.h"
#include "text/keyboard_distance.h"
#include "text/nicknames.h"
#include "text/phonetic.h"
#include "util/string_util.h"

namespace mergepurge {
namespace rules_internal {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr NumericRange kUnit{0.0, 1.0};
constexpr NumericRange kNonNegative{0.0, kInf};
}  // namespace

const std::vector<FuncSignature>& FunctionTable() {
  static const std::vector<FuncSignature>* table =
      new std::vector<FuncSignature>{
          {"similarity", FuncId::kSimilarity,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber,
           true, kUnit},
          {"edit_distance", FuncId::kEditDistance,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber,
           true, kNonNegative},
          {"damerau", FuncId::kDamerau,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber,
           true, kNonNegative},
          {"keyboard_similarity", FuncId::kKeyboardSimilarity,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber,
           true, kUnit},
          {"soundex", FuncId::kSoundex, {ValueType::kString},
           ValueType::kString},
          {"nysiis", FuncId::kNysiis, {ValueType::kString},
           ValueType::kString},
          {"sounds_like", FuncId::kSoundsLike,
           {ValueType::kString, ValueType::kString}, ValueType::kBool,
           true},
          {"nickname", FuncId::kNickname, {ValueType::kString},
           ValueType::kString},
          {"same_name", FuncId::kSameName,
           {ValueType::kString, ValueType::kString}, ValueType::kBool,
           true},
          {"initial_match", FuncId::kInitialMatch,
           {ValueType::kString, ValueType::kString}, ValueType::kBool,
           true},
          {"transposed", FuncId::kTransposed,
           {ValueType::kString, ValueType::kString}, ValueType::kBool,
           true},
          {"empty", FuncId::kEmpty, {ValueType::kString}, ValueType::kBool},
          {"length", FuncId::kLength, {ValueType::kString},
           ValueType::kNumber, false, kNonNegative},
          {"prefix", FuncId::kPrefix,
           {ValueType::kString, ValueType::kNumber}, ValueType::kString},
          {"digits", FuncId::kDigits, {ValueType::kString},
           ValueType::kString},
          {"street_number", FuncId::kStreetNumber, {ValueType::kString},
           ValueType::kString},
          {"hyphen_extended", FuncId::kHyphenExtended,
           {ValueType::kString, ValueType::kString}, ValueType::kBool,
           true},
          {"jaro_winkler", FuncId::kJaroWinkler,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber,
           true, kUnit},
          {"ngram_similarity", FuncId::kNgramSimilarity,
           {ValueType::kString, ValueType::kString, ValueType::kNumber},
           ValueType::kNumber, true, kUnit},
      };
  return *table;
}

const FuncSignature* FindFunction(std::string_view name) {
  for (const FuncSignature& candidate : FunctionTable()) {
    if (candidate.name == name) return &candidate;
  }
  return nullptr;
}

Value EvalBuiltin(FuncId func, ValueType return_type,
                  const std::vector<Value>& args) {
  Value out;
  out.type = return_type;
  switch (func) {
    case FuncId::kSimilarity:
      out.n = StringSimilarity(args[0].s, args[1].s);
      return out;
    case FuncId::kEditDistance:
      out.n = EditDistance(args[0].s, args[1].s);
      return out;
    case FuncId::kDamerau:
      out.n = DamerauDistance(args[0].s, args[1].s);
      return out;
    case FuncId::kKeyboardSimilarity:
      out.n = KeyboardSimilarity(args[0].s, args[1].s);
      return out;
    case FuncId::kSoundex:
      out.s = Soundex(args[0].s);
      return out;
    case FuncId::kNysiis:
      out.s = Nysiis(args[0].s);
      return out;
    case FuncId::kSoundsLike:
      out.b = SoundsAlikeSoundex(args[0].s, args[1].s);
      return out;
    case FuncId::kNickname:
      out.s = NicknameTable::Default().Canonicalize(args[0].s);
      return out;
    case FuncId::kSameName:
      out.b = NicknameTable::Default().SameCanonicalName(args[0].s,
                                                         args[1].s);
      return out;
    case FuncId::kInitialMatch: {
      const std::string& x = args[0].s;
      const std::string& y = args[1].s;
      if (x.empty() || y.empty()) {
        out.b = false;
      } else if (x == y) {
        out.b = true;
      } else {
        out.b = (x.size() == 1 && x[0] == y[0]) ||
                (y.size() == 1 && y[0] == x[0]);
      }
      return out;
    }
    case FuncId::kTransposed:
      out.b = !args[0].s.empty() && args[0].s != args[1].s &&
              DamerauDistance(args[0].s, args[1].s) == 1 &&
              EditDistance(args[0].s, args[1].s) == 2;
      return out;
    case FuncId::kEmpty:
      out.b = args[0].s.empty();
      return out;
    case FuncId::kLength:
      out.n = static_cast<double>(args[0].s.size());
      return out;
    case FuncId::kPrefix:
      out.s = std::string(Prefix(args[0].s, static_cast<size_t>(args[1].n)));
      return out;
    case FuncId::kDigits: {
      for (char c : args[0].s) {
        if (c >= '0' && c <= '9') out.s += c;
      }
      return out;
    }
    case FuncId::kStreetNumber: {
      // Leading digit run ("123 MAIN ST" -> "123").
      for (char c : args[0].s) {
        if (c < '0' || c > '9') break;
        out.s += c;
      }
      return out;
    }
    case FuncId::kJaroWinkler:
      out.n = JaroWinklerSimilarity(args[0].s, args[1].s);
      return out;
    case FuncId::kNgramSimilarity:
      out.n = NgramSimilarity(args[0].s, args[1].s,
                              static_cast<size_t>(args[2].n));
      return out;
    case FuncId::kHyphenExtended: {
      // One string extends the other by a new '-' or ' ' separated token.
      const std::string& x = args[0].s;
      const std::string& y = args[1].s;
      out.b = false;
      if (x.size() != y.size()) {
        const std::string& shorter = x.size() < y.size() ? x : y;
        const std::string& longer = x.size() < y.size() ? y : x;
        if (shorter.size() >= 4 &&
            longer.compare(0, shorter.size(), shorter) == 0) {
          char next = longer[shorter.size()];
          out.b = next == ' ' || next == '-';
        }
      }
      return out;
    }
  }
  return out;
}

bool CompareValues(CompareOp op, const Value& lhs, const Value& rhs) {
  int cmp;
  if (lhs.type == ValueType::kString) {
    cmp = lhs.s.compare(rhs.s);
  } else if (lhs.type == ValueType::kNumber) {
    cmp = lhs.n < rhs.n ? -1 : (lhs.n > rhs.n ? 1 : 0);
  } else {
    cmp = (lhs.b == rhs.b) ? 0 : (lhs.b ? 1 : -1);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace rules_internal
}  // namespace mergepurge
