// The rule language's built-in function table and evaluator, shared by the
// compiler/interpreter (rule_program.cc) and the static analyzer
// (rules/analysis/). Keeping one table and one evaluation switch means the
// analyzer's constant evaluation (e.g. the blank-record probe behind the
// blank-merge lint) can never drift from runtime semantics.

#ifndef MERGEPURGE_RULES_BUILTINS_H_
#define MERGEPURGE_RULES_BUILTINS_H_

#include <string>
#include <string_view>
#include <vector>

#include "rules/ast.h"

namespace mergepurge {
namespace rules_internal {

enum class ValueType { kString, kNumber, kBool };

enum class FuncId {
  kSimilarity,
  kEditDistance,
  kDamerau,
  kKeyboardSimilarity,
  kSoundex,
  kNysiis,
  kSoundsLike,
  kNickname,
  kSameName,
  kInitialMatch,
  kTransposed,
  kEmpty,
  kLength,
  kPrefix,
  kDigits,
  kStreetNumber,
  kHyphenExtended,
  kJaroWinkler,
  kNgramSimilarity,
};

// Output range of a number-returning built-in; both bounds attainable
// except hi == infinity (unbounded distances / lengths).
struct NumericRange {
  double lo = 0.0;
  double hi = 0.0;
};

struct FuncSignature {
  const char* name;
  FuncId id;
  std::vector<ValueType> arg_types;
  ValueType return_type;
  // True when swapping the function's two string arguments cannot change
  // the result (the analyzer's symmetry normalization sorts such args).
  bool symmetric = false;
  // Valid when return_type == kNumber.
  NumericRange range;
};

const std::vector<FuncSignature>& FunctionTable();

// Lookup by source name; nullptr when unknown.
const FuncSignature* FindFunction(std::string_view name);

// A runtime value (also the analyzer's constant-evaluation domain).
struct Value {
  ValueType type = ValueType::kBool;
  std::string s;
  double n = 0.0;
  bool b = false;
};

// Evaluates a built-in on fully evaluated arguments. `args` must match the
// signature's arity and types (the compiler guarantees this; the analyzer
// checks before calling).
Value EvalBuiltin(FuncId func, ValueType return_type,
                  const std::vector<Value>& args);

// Evaluates `lhs op rhs`; both values must have the same type (booleans
// only support == and !=, which the compiler and analyzer both enforce).
bool CompareValues(CompareOp op, const Value& lhs, const Value& rhs);

}  // namespace rules_internal
}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_BUILTINS_H_
