#include "rules/employee_rules_text.h"

namespace mergepurge {

namespace {

// Mirrors EmployeeTheory with default options: Damerau similarity,
// name threshold 0.80 (weak 0.70), address threshold 0.75, city 0.80,
// nickname table on, phonetic gate off. Rule order and names match
// EmployeeTheory::RuleName.
constexpr char kEmployeeRules[] = R"RULES(
# Equational theory for employee records (merge/purge).
# A pair of records is declared equivalent when ANY rule fires.

# Two byte-identical records are one entity even when every field is
# blank; this is the only rule allowed to merge all-blank records.
# rulecheck: allow(blank-merge)
rule identical-records:
  if r1.ssn == r2.ssn
  and r1.first_name == r2.first_name
  and r1.initial == r2.initial
  and r1.last_name == r2.last_name
  and r1.address == r2.address
  and r1.apartment == r2.apartment
  and r1.city == r2.city
  and r1.state == r2.state
  and r1.zip == r2.zip
  then match

rule exact-names-and-address:
  if r1.first_name == r2.first_name and not empty(r1.first_name)
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  and r1.address == r2.address and not empty(r1.address)
  and (empty(r1.apartment) or empty(r2.apartment)
       or r1.apartment == r2.apartment)
  then match

rule exact-ssn-and-names:
  if r1.ssn == r2.ssn and not empty(r1.ssn)
  and r1.first_name == r2.first_name and not empty(r1.first_name)
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  then match

rule ssn-names-similar:
  if r1.ssn == r2.ssn and not empty(r1.ssn)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.80
  then match

rule ssn-last-and-first-initial:
  if r1.ssn == r2.ssn and not empty(r1.ssn)
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  and initial_match(r1.first_name, r2.first_name)
  then match

rule ssn-nickname:
  if r1.ssn == r2.ssn and not empty(r1.ssn)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and same_name(r1.first_name, r2.first_name)
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.70
  then match

rule ssn-address:
  if r1.ssn == r2.ssn and not empty(r1.ssn)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  and (empty(r1.apartment) or empty(r2.apartment)
       or r1.apartment == r2.apartment)
  then match

rule ssn-location-last:
  if r1.ssn == r2.ssn and not empty(r1.ssn)
  and ((r1.zip == r2.zip and not empty(r1.zip))
       or (not empty(r1.city) and not empty(r2.city)
           and (r1.city == r2.city
                or similarity(r1.city, r2.city) >= 0.80)
           and r1.state == r2.state and not empty(r1.state)))
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.70
  then match

rule ssn-close-names:
  if not empty(r1.ssn) and not empty(r2.ssn)
  and damerau(r1.ssn, r2.ssn) <= 1
  and not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.80
  then match

rule ssn-close-address:
  if not empty(r1.ssn) and not empty(r2.ssn)
  and damerau(r1.ssn, r2.ssn) <= 1
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.80
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  then match

rule ssn-transposed-name-address:
  if transposed(r1.ssn, r2.ssn)
  and ((not empty(r1.first_name) and not empty(r2.first_name)
        and (same_name(r1.first_name, r2.first_name)
             or initial_match(r1.first_name, r2.first_name)
             or similarity(r1.first_name, r2.first_name) >= 0.80))
       or (not empty(r1.last_name) and not empty(r2.last_name)
           and similarity(r1.last_name, r2.last_name) >= 0.80))
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  then match

# The example rule from the paper (section 2.3): same last name, first
# names differ slightly, same address.
rule paper-example-rule:
  if r1.last_name == r2.last_name and not empty(r1.last_name)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  and r1.address == r2.address and not empty(r1.address)
  then match

rule names-exact-address-similar:
  if r1.first_name == r2.first_name and not empty(r1.first_name)
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  and (empty(r1.apartment) or empty(r2.apartment)
       or r1.apartment == r2.apartment)
  then match

rule names-similar-address-corroborated:
  if not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.80
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  and (empty(r1.apartment) or empty(r2.apartment)
       or r1.apartment == r2.apartment)
  and (empty(r1.zip) or empty(r2.zip)
       or damerau(r1.zip, r2.zip) <= 1
       or (not empty(r1.city) and not empty(r2.city)
           and (r1.city == r2.city
                or similarity(r1.city, r2.city) >= 0.80))
       or (r1.state == r2.state and not empty(r1.state)))
  and (empty(r1.ssn) or empty(r2.ssn) or damerau(r1.ssn, r2.ssn) <= 1)
  then match

rule nickname-last-address:
  if not empty(r1.first_name) and not empty(r2.first_name)
  and same_name(r1.first_name, r2.first_name)
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  then match

rule initials-address-location:
  if initial_match(r1.first_name, r2.first_name)
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  and r1.address == r2.address and not empty(r1.address)
  and ((r1.zip == r2.zip and not empty(r1.zip))
       or (not empty(r1.city) and not empty(r2.city)
           and (r1.city == r2.city
                or similarity(r1.city, r2.city) >= 0.80)
           and r1.state == r2.state and not empty(r1.state)))
  then match

rule last-transposed-address:
  if transposed(r1.last_name, r2.last_name)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  then match

rule first-transposed-address:
  if transposed(r1.first_name, r2.first_name)
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.80
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  then match

rule missing-first-address:
  if ((empty(r1.first_name) and not empty(r2.first_name))
      or (not empty(r1.first_name) and empty(r2.first_name)))
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  and r1.address == r2.address and not empty(r1.address)
  and (empty(r1.apartment) or empty(r2.apartment)
       or r1.apartment == r2.apartment)
  and ((r1.zip == r2.zip and not empty(r1.zip))
       or (not empty(r1.city) and not empty(r2.city)
           and (r1.city == r2.city
                or similarity(r1.city, r2.city) >= 0.80)
           and r1.state == r2.state and not empty(r1.state)))
  then match

rule hyphenated-last-address:
  if hyphen_extended(r1.last_name, r2.last_name)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  then match

rule street-number-zip:
  if street_number(r1.address) == street_number(r2.address)
  and not empty(street_number(r1.address))
  and r1.zip == r2.zip and not empty(r1.zip)
  and r1.last_name == r2.last_name and not empty(r1.last_name)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  then match

rule phonetic-names-address:
  if sounds_like(r1.last_name, r2.last_name)
  and sounds_like(r1.first_name, r2.first_name)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  and ((r1.zip == r2.zip and not empty(r1.zip))
       or (not empty(r1.city) and not empty(r2.city)
           and (r1.city == r2.city
                or similarity(r1.city, r2.city) >= 0.80)
           and r1.state == r2.state and not empty(r1.state)))
  then match

# Marriage / alias: the surname may be completely different; everything
# else must line up exactly.
rule last-name-changed:
  if r1.first_name == r2.first_name and not empty(r1.first_name)
  and r1.address == r2.address and not empty(r1.address)
  and r1.apartment == r2.apartment and not empty(r1.apartment)
  and r1.zip == r2.zip and not empty(r1.zip)
  then match

rule names-zip-address:
  if r1.last_name == r2.last_name and not empty(r1.last_name)
  and not empty(r1.first_name) and not empty(r2.first_name)
  and (same_name(r1.first_name, r2.first_name)
       or initial_match(r1.first_name, r2.first_name)
       or similarity(r1.first_name, r2.first_name) >= 0.80)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.address, r2.address) >= 0.75
  and r1.zip == r2.zip and not empty(r1.zip)
  then match

rule apartment-corroborated:
  if r1.address == r2.address and not empty(r1.address)
  and r1.apartment == r2.apartment and not empty(r1.apartment)
  and not empty(r1.last_name) and not empty(r2.last_name)
  and similarity(r1.last_name, r2.last_name) >= 0.70
  and ((r1.zip == r2.zip and not empty(r1.zip))
       or (not empty(r1.city) and not empty(r2.city)
           and (r1.city == r2.city
                or similarity(r1.city, r2.city) >= 0.80)
           and r1.state == r2.state and not empty(r1.state)))
  and ((not empty(r1.first_name) and not empty(r2.first_name)
        and (same_name(r1.first_name, r2.first_name)
             or initial_match(r1.first_name, r2.first_name)
             or similarity(r1.first_name, r2.first_name) >= 0.80))
       or (empty(r1.first_name) and not empty(r2.first_name))
       or (not empty(r1.first_name) and empty(r2.first_name)))
  then match

# Approximation of EmployeeTheory's weighted aggregate-similarity rule
# (the rule language has no arithmetic; the conjunction below demands the
# same kind of across-the-board agreement). The not-empty guards are
# load-bearing: similarity("", "") is 1.0, so without them this rule
# would merge every pair of blank-keyed records (caught by rulecheck's
# blank-merge lint).
rule aggregate-similarity:
  if not empty(r1.last_name) and not empty(r2.last_name)
  and not empty(r1.address) and not empty(r2.address)
  and similarity(r1.ssn, r2.ssn) >= 0.85
  and similarity(r1.last_name, r2.last_name) >= 0.85
  and similarity(r1.first_name, r2.first_name) >= 0.80
  and similarity(r1.address, r2.address) >= 0.80
  and (empty(r1.ssn) or empty(r2.ssn) or damerau(r1.ssn, r2.ssn) <= 1)
  then match
)RULES";

}  // namespace

std::string_view EmployeeRulesText() { return kEmployeeRules; }

}  // namespace mergepurge
