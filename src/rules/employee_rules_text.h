// The employee equational theory expressed in the declarative rule
// language — the analogue of the paper's original OPS5 rule program. Rules
// 0..24 mirror EmployeeTheory (default options) exactly; rule 25
// approximates the weighted aggregate-similarity rule (the DSL has no
// arithmetic). tests/rules_equivalence_test.cc verifies the mirror.

#ifndef MERGEPURGE_RULES_EMPLOYEE_RULES_TEXT_H_
#define MERGEPURGE_RULES_EMPLOYEE_RULES_TEXT_H_

#include <string_view>

namespace mergepurge {

// Returns the rule-language source of the employee theory (26 rules).
std::string_view EmployeeRulesText();

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_EMPLOYEE_RULES_TEXT_H_
