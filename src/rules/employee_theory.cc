#include "rules/employee_theory.h"

#include <algorithm>
#include <array>
#include <optional>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "record/schema.h"
#include "text/edit_distance.h"
#include "text/keyboard_distance.h"
#include "text/nicknames.h"
#include "text/phonetic.h"

namespace mergepurge {

namespace {

constexpr std::array<std::string_view, EmployeeTheory::kNumRules> kRuleNames =
    {
        "identical-records",
        "exact-names-and-address",
        "exact-ssn-and-names",
        "ssn-names-similar",
        "ssn-last-and-first-initial",
        "ssn-nickname",
        "ssn-address",
        "ssn-location-last",
        "ssn-close-names",
        "ssn-close-address",
        "ssn-transposed-name-address",
        "paper-example-rule",
        "names-exact-address-similar",
        "names-similar-address-corroborated",
        "nickname-last-address",
        "initials-address-location",
        "last-transposed-address",
        "first-transposed-address",
        "missing-first-address",
        "hyphenated-last-address",
        "street-number-zip",
        "phonetic-names-address",
        "last-name-changed",
        "names-zip-address",
        "apartment-corroborated",
        "aggregate-similarity",
};

// True if one string is a hyphen-extended or concatenated form of the other
// (e.g. SMITH vs SMITH JONES after normalization), with a minimum shared
// prefix so short accidental prefixes do not fire.
bool HyphenatedExtension(std::string_view x, std::string_view y) {
  if (x.size() == y.size()) return false;
  std::string_view shorter = x.size() < y.size() ? x : y;
  std::string_view longer = x.size() < y.size() ? y : x;
  if (shorter.size() < 4) return false;
  if (longer.substr(0, shorter.size()) != shorter) return false;
  // The extension must start a new token.
  char next = longer[shorter.size()];
  return next == ' ' || next == '-';
}

// Leading digit run of an address ("123 MAIN ST" -> "123").
std::string_view StreetNumber(std::string_view address) {
  size_t i = 0;
  while (i < address.size() && address[i] >= '0' && address[i] <= '9') ++i;
  return address.substr(0, i);
}

}  // namespace

EmployeeTheory::EmployeeTheory(EmployeeTheoryOptions options)
    : options_(options) {}

std::string_view EmployeeTheory::RuleName(size_t index) {
  return kRuleNames[index];
}

void EmployeeTheory::FlushMetrics() const {
  // Counter handles resolved once per process; the names are stable.
  static const std::array<Counter*, kNumRules>& fired = [] {
    static std::array<Counter*, kNumRules> counters;
    for (size_t i = 0; i < kNumRules; ++i) {
      counters[i] = MetricsRegistry::Global().GetCounter(
          std::string(metric_names::kRulesFiredPrefix) +
          std::string(kRuleNames[i]));
    }
    return counters;
  }();
  static Counter* const distance_calls =
      MetricsRegistry::Global().GetCounter(metric_names::kRulesDistanceCalls);
  static Counter* const early_exits =
      MetricsRegistry::Global().GetCounter(metric_names::kRulesEarlyExits);

  for (size_t i = 0; i < kNumRules; ++i) {
    if (fire_counts_[i] != 0) fired[i]->Add(fire_counts_[i]);
  }
  distance_calls->Add(distance_calls_);
  early_exits->Add(distance_early_exits_);
  fire_counts_.fill(0);
  distance_calls_ = 0;
  distance_early_exits_ = 0;
}

double EmployeeTheory::Similarity(std::string_view x,
                                  std::string_view y) const {
  ++distance_calls_;
  size_t longest = std::max(x.size(), y.size());
  if (longest == 0) return 1.0;
  switch (options_.distance) {
    case EmployeeTheoryOptions::Distance::kEdit:
      return 1.0 -
             static_cast<double>(EditDistance(x, y)) /
                 static_cast<double>(longest);
    case EmployeeTheoryOptions::Distance::kDamerau:
      return 1.0 -
             static_cast<double>(DamerauDistance(x, y)) /
                 static_cast<double>(longest);
    case EmployeeTheoryOptions::Distance::kKeyboard:
      return KeyboardSimilarity(x, y);
  }
  return 0.0;
}

bool EmployeeTheory::SimilarityAtLeast(std::string_view x,
                                       std::string_view y,
                                       double threshold) const {
  size_t longest = std::max(x.size(), y.size());
  if (longest == 0) return 1.0 >= threshold;
  if (options_.distance == EmployeeTheoryOptions::Distance::kKeyboard) {
    // Keyboard distance has fractional costs; no bounded variant.
    return Similarity(x, y) >= threshold;
  }
  ++distance_calls_;

  // Largest integer distance d with (1.0 - d/L) >= threshold, found by
  // evaluating the SAME floating-point expression Similarity() uses so
  // the decision boundary is bit-identical.
  const double length = static_cast<double>(longest);
  int max_distance =
      static_cast<int>((1.0 - threshold) * length);
  while (1.0 - static_cast<double>(max_distance + 1) / length >=
         threshold) {
    ++max_distance;
  }
  while (max_distance >= 0 &&
         1.0 - static_cast<double>(max_distance) / length < threshold) {
    --max_distance;
  }
  if (max_distance < 0) {
    // Length difference alone rules the pair out; no cells computed.
    ++distance_early_exits_;
    return false;
  }

  int distance =
      options_.distance == EmployeeTheoryOptions::Distance::kEdit
          ? BoundedEditDistance(x, y, max_distance)
          : BoundedDamerauDistance(x, y, max_distance);
  if (distance > max_distance) ++distance_early_exits_;
  return distance <= max_distance;
}

namespace {

// Lazily evaluated pair context: each predicate is computed at most once
// per comparison. The theory's rules read these; the expensive distance
// computations only run for the rules actually reached.
class PairContext {
 public:
  PairContext(const Record& a, const Record& b, const EmployeeTheory& theory,
              const EmployeeTheoryOptions& options)
      : a_(a), b_(b), theory_(theory), options_(options) {}

  std::string_view f1(FieldId f) const { return a_.field(f); }
  std::string_view f2(FieldId f) const { return b_.field(f); }

  bool FieldEq(FieldId f) const { return f1(f) == f2(f) && !f1(f).empty(); }

  // --- SSN evidence. ---
  bool SsnEq() const { return FieldEq(employee::kSsn); }
  bool SsnClose() const {
    Lazy(&ssn_close_, [this] {
      std::string_view x = f1(employee::kSsn);
      std::string_view y = f2(employee::kSsn);
      return !x.empty() && !y.empty() &&
             BoundedDamerauDistance(x, y, 1) <= 1;
    });
    return *ssn_close_;
  }
  bool SsnTransposed() const {
    std::string_view x = f1(employee::kSsn);
    std::string_view y = f2(employee::kSsn);
    return !x.empty() && x != y && x.size() == y.size() &&
           DamerauDistance(x, y) == 1 && EditDistance(x, y) == 2;
  }
  // SSNs do not contradict each other: equal, close, or one missing.
  bool SsnCompatible() const {
    return f1(employee::kSsn).empty() || f2(employee::kSsn).empty() ||
           SsnClose();
  }

  // --- Name evidence. ---
  bool FirstEq() const { return FieldEq(employee::kFirstName); }
  bool LastEq() const { return FieldEq(employee::kLastName); }

  bool SameCanonicalFirst() const {
    if (!options_.use_nicknames) return false;
    std::string_view x = f1(employee::kFirstName);
    std::string_view y = f2(employee::kFirstName);
    if (x.empty() || y.empty()) return false;
    return NicknameTable::Default().SameCanonicalName(x, y);
  }

  bool FirstInitialMatch() const {
    std::string_view x = f1(employee::kFirstName);
    std::string_view y = f2(employee::kFirstName);
    if (x.empty() || y.empty()) return false;
    if (x == y) return true;
    return (x.size() == 1 && x[0] == y[0]) ||
           (y.size() == 1 && y[0] == x[0]);
  }

  // Thresholded similarity over a (possibly empty) name field pair; empty
  // fields never pass (matching Similarity()'s callers historically
  // mapping empty -> 0 similarity).
  bool FieldSimilarAtLeast(FieldId f, double threshold) const {
    std::string_view x = f1(f);
    std::string_view y = f2(f);
    if (x.empty() || y.empty()) return false;
    return theory_.SimilarityAtLeast(x, y, threshold);
  }

  bool FirstSimilar() const {
    Lazy(&first_similar_, [this] {
      if (f1(employee::kFirstName).empty() ||
          f2(employee::kFirstName).empty()) {
        return false;
      }
      return SameCanonicalFirst() || FirstInitialMatch() ||
             FieldSimilarAtLeast(employee::kFirstName,
                                 options_.name_threshold);
    });
    return *first_similar_;
  }
  bool LastSimilar() const {
    Lazy(&last_similar_, [this] {
      return FieldSimilarAtLeast(employee::kLastName,
                                 options_.name_threshold);
    });
    return *last_similar_;
  }
  // A slightly looser surname test used where other evidence is strong.
  bool LastWeaklySimilar() const {
    Lazy(&last_weakly_similar_, [this] {
      return FieldSimilarAtLeast(employee::kLastName,
                                 options_.weak_name_threshold);
    });
    return *last_weakly_similar_;
  }
  bool BothNamesSimilar() const { return FirstSimilar() && LastSimilar(); }

  bool FirstMissingEither() const {
    return f1(employee::kFirstName).empty() !=
           f2(employee::kFirstName).empty();
  }

  bool LastTransposed() const {
    std::string_view x = f1(employee::kLastName);
    std::string_view y = f2(employee::kLastName);
    return !x.empty() && x != y && DamerauDistance(x, y) == 1 &&
           EditDistance(x, y) == 2;
  }
  bool FirstTransposed() const {
    std::string_view x = f1(employee::kFirstName);
    std::string_view y = f2(employee::kFirstName);
    return !x.empty() && x != y && DamerauDistance(x, y) == 1 &&
           EditDistance(x, y) == 2;
  }

  bool NamesSoundAlike() const {
    return SoundsAlikeSoundex(f1(employee::kLastName),
                              f2(employee::kLastName)) &&
           SoundsAlikeSoundex(f1(employee::kFirstName),
                              f2(employee::kFirstName));
  }

  // --- Address / location evidence. ---
  bool AddressEq() const { return FieldEq(employee::kAddress); }
  bool AddressSimilar() const {
    Lazy(&address_similar_, [this] {
      return FieldSimilarAtLeast(employee::kAddress,
                                 options_.address_threshold);
    });
    return *address_similar_;
  }
  bool ApartmentCompatible() const {
    std::string_view x = f1(employee::kApartment);
    std::string_view y = f2(employee::kApartment);
    return x.empty() || y.empty() || x == y;
  }
  bool ApartmentEqNonEmpty() const {
    return FieldEq(employee::kApartment);
  }
  bool StreetNumberEq() const {
    std::string_view x = StreetNumber(f1(employee::kAddress));
    std::string_view y = StreetNumber(f2(employee::kAddress));
    return !x.empty() && x == y;
  }

  bool CitySimilar() const {
    std::string_view x = f1(employee::kCity);
    std::string_view y = f2(employee::kCity);
    if (x.empty() || y.empty()) return false;
    if (x == y) return true;
    if (options_.strict_city) return false;
    return theory_.SimilarityAtLeast(x, y, options_.city_threshold);
  }
  bool StateEq() const { return FieldEq(employee::kState); }
  bool ZipEq() const { return FieldEq(employee::kZip); }
  bool ZipClose() const {
    std::string_view x = f1(employee::kZip);
    std::string_view y = f2(employee::kZip);
    return !x.empty() && !y.empty() && BoundedDamerauDistance(x, y, 1) <= 1;
  }
  bool LocationMatch() const {
    return ZipEq() || (CitySimilar() && StateEq());
  }
  bool LocationCompatible() const {
    // No strong contradiction: any of zip/city/state agrees loosely, or
    // location fields are absent.
    if (f1(employee::kZip).empty() || f2(employee::kZip).empty()) {
      return true;
    }
    return ZipClose() || CitySimilar() || StateEq();
  }

  // Weighted whole-record similarity for the aggregate rule. When the
  // running score provably cannot reach the 0.90 acceptance level any
  // more, the remaining (expensive) field similarities are skipped and a
  // value below the threshold is returned (only the >= 0.90 comparison is
  // observable; a conservative margin protects the boundary).
  double AggregateScore() const {
    struct WeightedField {
      FieldId field;
      double weight;
    };
    // Heaviest fields first so hopeless pairs exit earliest.
    static constexpr WeightedField kFields[] = {
        {employee::kSsn, 3.0},       {employee::kLastName, 3.0},
        {employee::kFirstName, 2.0}, {employee::kAddress, 2.0},
        {employee::kCity, 1.0},      {employee::kZip, 1.0},
    };
    double total_weight = 0.0;
    for (const WeightedField& wf : kFields) {
      if (!(f1(wf.field).empty() && f2(wf.field).empty())) {
        total_weight += wf.weight;
      }
    }
    if (total_weight <= 0.0) return 0.0;

    double score = 0.0;
    double remaining = total_weight;
    for (const WeightedField& wf : kFields) {
      std::string_view x = f1(wf.field);
      std::string_view y = f2(wf.field);
      if (x.empty() && y.empty()) continue;
      remaining -= wf.weight;
      score += wf.weight * theory_.Similarity(x, y);
      if ((score + remaining) / total_weight < 0.895) {
        return (score + remaining) / total_weight;  // Provably < 0.90.
      }
    }
    return score / total_weight;
  }

  bool PhoneticGatePasses() const {
    if (!options_.phonetic_gate) return true;
    return SoundsAlikeSoundex(f1(employee::kLastName),
                              f2(employee::kLastName));
  }

 private:
  template <typename T, typename F>
  static void Lazy(std::optional<T>* slot, F&& compute) {
    if (!slot->has_value()) *slot = compute();
  }

  const Record& a_;
  const Record& b_;
  const EmployeeTheory& theory_;
  const EmployeeTheoryOptions& options_;

  mutable std::optional<bool> ssn_close_;
  mutable std::optional<bool> first_similar_;
  mutable std::optional<bool> last_similar_;
  mutable std::optional<bool> last_weakly_similar_;
  mutable std::optional<bool> address_similar_;
};

}  // namespace

int EmployeeTheory::MatchingRule(const Record& a, const Record& b) const {
  ++comparison_count_;
  int rule = EvalRules(a, b);
  if (rule >= 0) ++fire_counts_[static_cast<size_t>(rule)];
  return rule;
}

int EmployeeTheory::EvalRules(const Record& a, const Record& b) const {
  const PairContext ctx(a, b, *this, options_);

  // Rules are checked most-specific first; the index returned matches
  // kRuleNames. A global phonetic gate (ablation option) can veto
  // name-similarity based rules.
  const bool gate = ctx.PhoneticGatePasses();

  // 0 identical-records.
  if (a == b) return 0;
  // 1 exact-names-and-address.
  if (ctx.FirstEq() && ctx.LastEq() && ctx.AddressEq() &&
      ctx.ApartmentCompatible()) {
    return 1;
  }
  // 2 exact-ssn-and-names.
  if (ctx.SsnEq() && ctx.FirstEq() && ctx.LastEq()) return 2;
  // 3 ssn-names-similar.
  if (gate && ctx.SsnEq() && ctx.BothNamesSimilar()) return 3;
  // 4 ssn-last-and-first-initial.
  if (ctx.SsnEq() && ctx.LastEq() && ctx.FirstInitialMatch()) return 4;
  // 5 ssn-nickname.
  if (gate && ctx.SsnEq() && ctx.SameCanonicalFirst() &&
      ctx.LastWeaklySimilar()) {
    return 5;
  }
  // 6 ssn-address.
  if (ctx.SsnEq() && ctx.AddressSimilar() && ctx.ApartmentCompatible()) {
    return 6;
  }
  // 7 ssn-location-last.
  if (gate && ctx.SsnEq() && ctx.LocationMatch() && ctx.LastWeaklySimilar()) {
    return 7;
  }
  // 8 ssn-close-names.
  if (gate && ctx.SsnClose() && ctx.BothNamesSimilar()) return 8;
  // 9 ssn-close-address.
  if (gate && ctx.SsnClose() && ctx.LastSimilar() && ctx.AddressSimilar()) {
    return 9;
  }
  // 10 ssn-transposed-name-address.
  if (ctx.SsnTransposed() && (ctx.FirstSimilar() || ctx.LastSimilar()) &&
      ctx.AddressSimilar()) {
    return 10;
  }
  // 11 paper-example-rule: "IF the last name of r1 equals the last name of
  // r2, AND the first names differ slightly, AND the address of r1 equals
  // the address of r2 THEN r1 is equivalent to r2".
  if (gate && ctx.LastEq() && ctx.FirstSimilar() && ctx.AddressEq()) {
    return 11;
  }
  // 12 names-exact-address-similar.
  if (ctx.FirstEq() && ctx.LastEq() && ctx.AddressSimilar() &&
      ctx.ApartmentCompatible()) {
    return 12;
  }
  // 13 names-similar-address-corroborated.
  if (gate && ctx.BothNamesSimilar() && ctx.AddressSimilar() &&
      ctx.ApartmentCompatible() && ctx.LocationCompatible() &&
      ctx.SsnCompatible()) {
    return 13;
  }
  // 14 nickname-last-address.
  if (gate && ctx.SameCanonicalFirst() && ctx.LastEq() &&
      ctx.AddressSimilar()) {
    return 14;
  }
  // 15 initials-address-location.
  if (ctx.FirstInitialMatch() && ctx.LastEq() && ctx.AddressEq() &&
      ctx.LocationMatch()) {
    return 15;
  }
  // 16 last-transposed-address.
  if (ctx.LastTransposed() && ctx.FirstSimilar() && ctx.AddressSimilar()) {
    return 16;
  }
  // 17 first-transposed-address.
  if (ctx.FirstTransposed() && ctx.LastSimilar() && ctx.AddressSimilar()) {
    return 17;
  }
  // 18 missing-first-address: one record lacks the first name entirely.
  if (ctx.FirstMissingEither() && ctx.LastEq() && ctx.AddressEq() &&
      ctx.ApartmentCompatible() && ctx.LocationMatch()) {
    return 18;
  }
  // 19 hyphenated-last-address: SMITH vs SMITH-JONES at the same address.
  if (HyphenatedExtension(a.field(employee::kLastName),
                          b.field(employee::kLastName)) &&
      ctx.FirstSimilar() && ctx.AddressSimilar()) {
    return 19;
  }
  // 20 street-number-zip: same street number and zip, names similar
  // (street name badly corrupted).
  if (gate && ctx.StreetNumberEq() && ctx.ZipEq() && ctx.LastEq() &&
      ctx.FirstSimilar()) {
    return 20;
  }
  // 21 phonetic-names-address. (Address similarity is memoized and almost
  // always false for non-matches, so it is checked before the Soundex
  // computations; conjunction order does not change the outcome.)
  if (ctx.AddressSimilar() && ctx.NamesSoundAlike() && ctx.LocationMatch()) {
    return 21;
  }
  // 22 last-name-changed: marriage / alias — surname may be completely
  // different, everything else must line up exactly.
  if (ctx.FirstEq() && ctx.AddressEq() && ctx.ApartmentEqNonEmpty() &&
      ctx.ZipEq()) {
    return 22;
  }
  // 23 names-zip-address: zip corroborates when city is corrupted.
  if (gate && ctx.LastEq() && ctx.FirstSimilar() && ctx.AddressSimilar() &&
      ctx.ZipEq()) {
    return 23;
  }
  // 24 apartment-corroborated: exact address + apartment with a weakly
  // similar surname — but the first names must not contradict (otherwise
  // every two-person household would merge).
  if (ctx.AddressEq() && ctx.ApartmentEqNonEmpty() &&
      ctx.LastWeaklySimilar() && ctx.LocationMatch() &&
      (ctx.FirstSimilar() || ctx.FirstMissingEither())) {
    return 24;
  }
  // 25 aggregate-similarity: high weighted whole-record similarity with no
  // SSN contradiction. The cheap SSN gate runs first: for the typical
  // non-matching pair it short-circuits the six field similarities.
  if (ctx.SsnCompatible() && ctx.AggregateScore() >= 0.90) return 25;

  return -1;
}

bool EmployeeTheory::Matches(const Record& a, const Record& b) const {
  return MatchingRule(a, b) >= 0;
}

}  // namespace mergepurge
