// EmployeeTheory: the 26-rule equational theory for employee records,
// hand-coded in C++ for speed — the analogue of the paper's OPS5 program
// "recoded directly in C" (§2.3, footnote 2).
//
// The rule base is ordered from most to least specific; a pair matches when
// any rule fires. Rules combine exact equality, thresholded typographical
// distance ("differ slightly"), nickname equivalence, phonetic codes,
// transposition detection and cross-field corroboration (address, city /
// state / zip, apartment). The distance function and thresholds are
// configurable for the ablation experiments; paper defaults are edit
// distance with the thresholds below (§2.3: "the outcome of the program did
// not vary much among the different distance functions").

#ifndef MERGEPURGE_RULES_EMPLOYEE_THEORY_H_
#define MERGEPURGE_RULES_EMPLOYEE_THEORY_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "rules/equational_theory.h"

namespace mergepurge {

struct EmployeeTheoryOptions {
  enum class Distance { kEdit, kDamerau, kKeyboard };

  Distance distance = Distance::kDamerau;

  // "Differ slightly" threshold for name fields (similarity in [0,1]).
  double name_threshold = 0.80;

  // Looser surname threshold used where other evidence is strong.
  double weak_name_threshold = 0.70;

  // Threshold for street-address similarity.
  double address_threshold = 0.75;

  // Threshold for city similarity.
  double city_threshold = 0.80;

  // Use the nickname table for first-name equivalence.
  bool use_nicknames = true;

  // Require names to sound alike (Soundex) before a distance comparison is
  // allowed to succeed; tightens the theory (ablation knob).
  bool phonetic_gate = false;

  // Require exact city equality instead of thresholded similarity — the
  // behaviour of exact-matching rule bases, under which city spelling
  // correction (paper §3.2) pays off. Ablation knob; default off.
  bool strict_city = false;
};

class EmployeeTheory final : public EquationalTheory {
 public:
  explicit EmployeeTheory(
      EmployeeTheoryOptions options = EmployeeTheoryOptions());

  bool Matches(const Record& a, const Record& b) const override;
  std::string name() const override { return "employee-theory"; }
  uint64_t comparison_count() const override { return comparison_count_; }
  void reset_comparison_count() override { comparison_count_ = 0; }

  // Adds per-rule firing counts (rules.fired.<rule-name>), distance-call
  // and early-exit counts to the global registry and zeroes the local
  // accumulators.
  void FlushMetrics() const override;

  // Index (0-based) of the rule that declared the pair equivalent, or -1.
  int MatchingRule(const Record& a, const Record& b) const;

  static constexpr size_t kNumRules = 26;

  // Name of rule `index` for reports; index < kNumRules.
  static std::string_view RuleName(size_t index);

  const EmployeeTheoryOptions& options() const { return options_; }

  // Normalized similarity in [0,1] under the configured distance function.
  // Exposed for the pair-context evaluation and for tests.
  double Similarity(std::string_view x, std::string_view y) const;

  // Exactly equivalent to Similarity(x, y) >= threshold (identical
  // floating-point boundary), but computed with a bounded early-exit
  // distance where the distance kind allows it — the hot path of the
  // window scan.
  bool SimilarityAtLeast(std::string_view x, std::string_view y,
                         double threshold) const;

 private:
  // The rule cascade itself (no counting); MatchingRule wraps it with the
  // instrumentation.
  int EvalRules(const Record& a, const Record& b) const;

  EmployeeTheoryOptions options_;
  mutable uint64_t comparison_count_ = 0;
  // Rule-level stats batched locally (instances are not shared across
  // threads) and drained by FlushMetrics().
  mutable std::array<uint64_t, kNumRules> fire_counts_{};
  mutable uint64_t distance_calls_ = 0;
  mutable uint64_t distance_early_exits_ = 0;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_EMPLOYEE_THEORY_H_
