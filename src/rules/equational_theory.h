// EquationalTheory: the record-equivalence predicate applied inside the
// merge window (paper §2.3). "The equality of two values ... is not
// specified as a 'simple' arithmetic predicate, but rather by a set of
// equational axioms that define equivalence, i.e., by an equational
// theory."
//
// Two implementations are provided:
//  * RuleProgram (rules/rule_program.h) — a declarative rule-language
//    interpreter, the analogue of the paper's OPS5 program;
//  * EmployeeTheory (rules/employee_theory.h) — the same 26-rule logic
//    hand-coded in C++, the analogue of the paper's "recoded the rules
//    directly in C to obtain speed-up".

#ifndef MERGEPURGE_RULES_EQUATIONAL_THEORY_H_
#define MERGEPURGE_RULES_EQUATIONAL_THEORY_H_

#include <string>

#include "record/record.h"

namespace mergepurge {

class EquationalTheory {
 public:
  virtual ~EquationalTheory() = default;

  // True when the theory declares the two records equivalent (the same
  // real-world entity). Must be symmetric; the window scanner presents
  // pairs in one order only.
  virtual bool Matches(const Record& a, const Record& b) const = 0;

  // Human-readable name for experiment reports.
  virtual std::string name() const = 0;

  // Number of Matches() invocations so far (the dominant cost of the merge
  // phase; used to fit the analytic model's alpha and c constants).
  virtual uint64_t comparison_count() const = 0;
  virtual void reset_comparison_count() = 0;

  // Adds this theory's accumulated rule-level statistics (rule firings,
  // distance calls, early exits) to the global MetricsRegistry and clears
  // the local accumulators. Theories batch stats in plain members —
  // instances are not shared across threads — and the pipeline flushes
  // at pass boundaries (serial) or task commit (parallel), so retried or
  // speculative executions that were abandoned never reach the registry.
  // Default: theory exposes no rule-level metrics.
  virtual void FlushMetrics() const {}
};

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_EQUATIONAL_THEORY_H_
