#include "rules/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace mergepurge {

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto error = [&line](const std::string& msg) {
    return Status::ParseError(StringPrintf("line %d: %s", line, msg.c_str()));
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(source[i])) ||
                       source[i] == '_' || source[i] == '-')) {
        ++i;
      }
      tokens.push_back({TokenKind::kIdentifier,
                        std::string(source.substr(start, i - start)), 0.0,
                        line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.')) {
        ++i;
      }
      std::string text(source.substr(start, i - start));
      tokens.push_back(
          {TokenKind::kNumber, text, std::strtod(text.c_str(), nullptr),
           line});
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      while (i < n && source[i] != '"') {
        if (source[i] == '\n') return error("unterminated string literal");
        text += source[i];
        ++i;
      }
      if (i == n) return error("unterminated string literal");
      ++i;  // Closing quote.
      tokens.push_back({TokenKind::kString, std::move(text), 0.0, line});
      continue;
    }
    switch (c) {
      case '.':
        tokens.push_back({TokenKind::kDot, ".", 0.0, line});
        ++i;
        continue;
      case ',':
        tokens.push_back({TokenKind::kComma, ",", 0.0, line});
        ++i;
        continue;
      case ':':
        tokens.push_back({TokenKind::kColon, ":", 0.0, line});
        ++i;
        continue;
      case '(':
        tokens.push_back({TokenKind::kLParen, "(", 0.0, line});
        ++i;
        continue;
      case ')':
        tokens.push_back({TokenKind::kRParen, ")", 0.0, line});
        ++i;
        continue;
      default:
        break;
    }
    // Operators.
    if (c == '=' || c == '!' || c == '<' || c == '>') {
      std::string op(1, c);
      if (i + 1 < n && source[i + 1] == '=') {
        op += '=';
        i += 2;
      } else {
        ++i;
      }
      if (op == "=" || op == "!") {
        return error("expected '" + op + "=' operator");
      }
      tokens.push_back({TokenKind::kOp, std::move(op), 0.0, line});
      continue;
    }
    return error(StringPrintf("unexpected character '%c'", c));
  }
  tokens.push_back({TokenKind::kEnd, "", 0.0, line});
  return tokens;
}

}  // namespace mergepurge
