// Tokenizer for the rule language. Line comments start with '#'.

#ifndef MERGEPURGE_RULES_LEXER_H_
#define MERGEPURGE_RULES_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mergepurge {

enum class TokenKind {
  kIdentifier,  // rule names, keywords, function names; '-' allowed inside.
  kNumber,
  kString,      // "double quoted"
  kDot,
  kComma,
  kColon,
  kLParen,
  kRParen,
  kOp,          // == != <= >= < >
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  double number = 0.0;
  int line = 0;
};

// Tokenizes the whole input; returns a ParseError with line info on any
// malformed token. The final token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_LEXER_H_
