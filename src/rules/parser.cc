#include "rules/parser.h"

#include <memory>
#include <utility>
#include <vector>

#include "rules/lexer.h"
#include "util/string_util.h"

namespace mergepurge {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<RuleProgramAst> ParseProgram() {
    RuleProgramAst program;
    while (!AtEnd()) {
      if (CheckIdent("merge")) {
        Result<MergeDirective> directive = ParseMergeDirective();
        if (!directive.ok()) return directive.status();
        program.merge_directives.push_back(std::move(*directive));
        continue;
      }
      Result<Rule> rule = ParseRule();
      if (!rule.ok()) return rule.status();
      program.rules.push_back(std::move(*rule));
    }
    if (program.rules.empty()) {
      return Status::ParseError("rule program contains no rules");
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool CheckIdent(std::string_view word) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == word;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("line %d: %s (near '%s')", Peek().line, msg.c_str(),
                     Peek().text.c_str()));
  }

  Status ExpectIdent(std::string_view word) {
    if (!CheckIdent(word)) {
      return Error(StringPrintf("expected '%.*s'",
                                static_cast<int>(word.size()), word.data()));
    }
    Advance();
    return Status::OK();
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Error(StringPrintf("expected %s", what));
    }
    Advance();
    return Status::OK();
  }

  // merge <field>: prefer <strategy>
  Result<MergeDirective> ParseMergeDirective() {
    MergeDirective directive;
    directive.source_line = Peek().line;
    MERGEPURGE_RETURN_NOT_OK(ExpectIdent("merge"));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected field name after 'merge'");
    }
    directive.field_name = Advance().text;
    MERGEPURGE_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
    MERGEPURGE_RETURN_NOT_OK(ExpectIdent("prefer"));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected merge strategy after 'prefer'");
    }
    directive.strategy_name = Advance().text;
    return directive;
  }

  Result<Rule> ParseRule() {
    Rule rule;
    rule.source_line = Peek().line;
    MERGEPURGE_RETURN_NOT_OK(ExpectIdent("rule"));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected rule name");
    }
    rule.name = Advance().text;
    MERGEPURGE_RETURN_NOT_OK(Expect(TokenKind::kColon, "':'"));
    MERGEPURGE_RETURN_NOT_OK(ExpectIdent("if"));

    Result<std::unique_ptr<BoolExpr>> condition = ParseOr();
    if (!condition.ok()) return condition.status();
    rule.condition = std::move(*condition);

    MERGEPURGE_RETURN_NOT_OK(ExpectIdent("then"));
    MERGEPURGE_RETURN_NOT_OK(ExpectIdent("match"));
    return rule;
  }

  // or-expr := and-expr ("or" and-expr)*
  Result<std::unique_ptr<BoolExpr>> ParseOr() {
    Result<std::unique_ptr<BoolExpr>> first = ParseAnd();
    if (!first.ok()) return first.status();
    if (!CheckIdent("or")) return first;

    auto node = std::make_unique<BoolExpr>();
    node->kind = BoolKind::kOr;
    node->source_line = (*first)->source_line;
    node->children.push_back(std::move(*first));
    while (CheckIdent("or")) {
      Advance();
      Result<std::unique_ptr<BoolExpr>> next = ParseAnd();
      if (!next.ok()) return next.status();
      node->children.push_back(std::move(*next));
    }
    return node;
  }

  // and-expr := unary ("and" unary)*
  Result<std::unique_ptr<BoolExpr>> ParseAnd() {
    Result<std::unique_ptr<BoolExpr>> first = ParseUnary();
    if (!first.ok()) return first.status();
    if (!CheckIdent("and")) return first;

    auto node = std::make_unique<BoolExpr>();
    node->kind = BoolKind::kAnd;
    node->source_line = (*first)->source_line;
    node->children.push_back(std::move(*first));
    while (CheckIdent("and")) {
      Advance();
      Result<std::unique_ptr<BoolExpr>> next = ParseUnary();
      if (!next.ok()) return next.status();
      node->children.push_back(std::move(*next));
    }
    return node;
  }

  // unary := "not" unary | "(" or-expr ")" | comparison
  Result<std::unique_ptr<BoolExpr>> ParseUnary() {
    if (CheckIdent("not")) {
      int line = Peek().line;
      Advance();
      Result<std::unique_ptr<BoolExpr>> child = ParseUnary();
      if (!child.ok()) return child.status();
      auto node = std::make_unique<BoolExpr>();
      node->kind = BoolKind::kNot;
      node->source_line = line;
      node->children.push_back(std::move(*child));
      return node;
    }
    if (Peek().kind == TokenKind::kLParen) {
      // A '(' here could open a grouped boolean expression; value
      // expressions only start with '(' after a function name, which
      // ParseExpr handles, so the grouping interpretation is unambiguous.
      Advance();
      Result<std::unique_ptr<BoolExpr>> inner = ParseOr();
      if (!inner.ok()) return inner.status();
      MERGEPURGE_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    return ParseComparison();
  }

  // comparison := expr (op expr)?
  Result<std::unique_ptr<BoolExpr>> ParseComparison() {
    Result<std::unique_ptr<Expr>> lhs = ParseExpr();
    if (!lhs.ok()) return lhs.status();

    auto node = std::make_unique<BoolExpr>();
    node->source_line = (*lhs)->source_line;
    node->lhs = std::move(*lhs);
    if (Peek().kind != TokenKind::kOp) {
      node->kind = BoolKind::kBare;
      return node;
    }

    node->kind = BoolKind::kCompare;
    const std::string& op = Advance().text;
    if (op == "==") {
      node->op = CompareOp::kEq;
    } else if (op == "!=") {
      node->op = CompareOp::kNe;
    } else if (op == "<") {
      node->op = CompareOp::kLt;
    } else if (op == "<=") {
      node->op = CompareOp::kLe;
    } else if (op == ">") {
      node->op = CompareOp::kGt;
    } else if (op == ">=") {
      node->op = CompareOp::kGe;
    } else {
      return Error("unknown operator '" + op + "'");
    }
    Result<std::unique_ptr<Expr>> rhs = ParseExpr();
    if (!rhs.ok()) return rhs.status();
    node->rhs = std::move(*rhs);
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseExpr() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kNumber: {
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kNumberLiteral;
        expr->source_line = token.line;
        expr->number_value = Advance().number;
        return expr;
      }
      case TokenKind::kString: {
        auto expr = std::make_unique<Expr>();
        expr->kind = ExprKind::kStringLiteral;
        expr->source_line = token.line;
        expr->string_value = Advance().text;
        return expr;
      }
      case TokenKind::kIdentifier:
        break;
      default:
        return Error("expected expression");
    }

    // r1.field / r2.field.
    if (token.text == "r1" || token.text == "r2") {
      int record_index = token.text == "r1" ? 1 : 2;
      int line = token.line;
      Advance();
      MERGEPURGE_RETURN_NOT_OK(Expect(TokenKind::kDot, "'.'"));
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected field name after '.'");
      }
      auto expr = std::make_unique<Expr>();
      expr->kind = ExprKind::kFieldRef;
      expr->source_line = line;
      expr->record_index = record_index;
      expr->field_name = Advance().text;
      return expr;
    }

    // Function call.
    int line = token.line;
    std::string name = Advance().text;
    MERGEPURGE_RETURN_NOT_OK(
        Expect(TokenKind::kLParen, "'(' after function name"));
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kFuncCall;
    expr->source_line = line;
    expr->func_name = std::move(name);
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        Result<std::unique_ptr<Expr>> arg = ParseExpr();
        if (!arg.ok()) return arg.status();
        expr->args.push_back(std::move(*arg));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    MERGEPURGE_RETURN_NOT_OK(Expect(TokenKind::kRParen, "')'"));
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<RuleProgramAst> ParseRuleProgram(std::string_view source) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.ParseProgram();
}

}  // namespace mergepurge
