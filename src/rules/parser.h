// Recursive-descent parser for the rule language (grammar in ast.h).

#ifndef MERGEPURGE_RULES_PARSER_H_
#define MERGEPURGE_RULES_PARSER_H_

#include <string_view>

#include "rules/ast.h"
#include "util/status.h"

namespace mergepurge {

// Parses a whole rule program. Field names are left unresolved (bound to a
// schema later by RuleProgram::Compile).
Result<RuleProgramAst> ParseRuleProgram(std::string_view source);

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_PARSER_H_
