#include "rules/rule_program.h"

#include <cassert>
#include <memory>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "rules/ast.h"
#include "rules/parser.h"
#include "text/edit_distance.h"
#include "text/jaro_winkler.h"
#include "text/keyboard_distance.h"
#include "text/nicknames.h"
#include "text/phonetic.h"
#include "util/string_util.h"

namespace mergepurge {

namespace rules_internal {

enum class ValueType { kString, kNumber, kBool };

enum class FuncId {
  kSimilarity,
  kEditDistance,
  kDamerau,
  kKeyboardSimilarity,
  kSoundex,
  kNysiis,
  kSoundsLike,
  kNickname,
  kSameName,
  kInitialMatch,
  kTransposed,
  kEmpty,
  kLength,
  kPrefix,
  kDigits,
  kStreetNumber,
  kHyphenExtended,
  kJaroWinkler,
  kNgramSimilarity,
};

struct FuncSignature {
  const char* name;
  FuncId id;
  std::vector<ValueType> arg_types;
  ValueType return_type;
};

const std::vector<FuncSignature>& FunctionTable() {
  static const std::vector<FuncSignature>* table =
      new std::vector<FuncSignature>{
          {"similarity", FuncId::kSimilarity,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber},
          {"edit_distance", FuncId::kEditDistance,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber},
          {"damerau", FuncId::kDamerau,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber},
          {"keyboard_similarity", FuncId::kKeyboardSimilarity,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber},
          {"soundex", FuncId::kSoundex, {ValueType::kString},
           ValueType::kString},
          {"nysiis", FuncId::kNysiis, {ValueType::kString},
           ValueType::kString},
          {"sounds_like", FuncId::kSoundsLike,
           {ValueType::kString, ValueType::kString}, ValueType::kBool},
          {"nickname", FuncId::kNickname, {ValueType::kString},
           ValueType::kString},
          {"same_name", FuncId::kSameName,
           {ValueType::kString, ValueType::kString}, ValueType::kBool},
          {"initial_match", FuncId::kInitialMatch,
           {ValueType::kString, ValueType::kString}, ValueType::kBool},
          {"transposed", FuncId::kTransposed,
           {ValueType::kString, ValueType::kString}, ValueType::kBool},
          {"empty", FuncId::kEmpty, {ValueType::kString}, ValueType::kBool},
          {"length", FuncId::kLength, {ValueType::kString},
           ValueType::kNumber},
          {"prefix", FuncId::kPrefix,
           {ValueType::kString, ValueType::kNumber}, ValueType::kString},
          {"digits", FuncId::kDigits, {ValueType::kString},
           ValueType::kString},
          {"street_number", FuncId::kStreetNumber, {ValueType::kString},
           ValueType::kString},
          {"hyphen_extended", FuncId::kHyphenExtended,
           {ValueType::kString, ValueType::kString}, ValueType::kBool},
          {"jaro_winkler", FuncId::kJaroWinkler,
           {ValueType::kString, ValueType::kString}, ValueType::kNumber},
          {"ngram_similarity", FuncId::kNgramSimilarity,
           {ValueType::kString, ValueType::kString, ValueType::kNumber},
           ValueType::kNumber},
      };
  return *table;
}

// Compiled value expression: fully resolved and statically typed.
struct CExpr {
  ExprKind kind = ExprKind::kNumberLiteral;
  ValueType type = ValueType::kNumber;
  // Literals.
  std::string string_value;
  double number_value = 0.0;
  // Field refs.
  int record_index = 0;
  FieldId field_id = kInvalidField;
  // Calls.
  FuncId func = FuncId::kEmpty;
  std::vector<CExpr> args;
};

// Compiled boolean expression.
struct CBool {
  BoolKind kind = BoolKind::kBare;
  std::vector<CBool> children;    // kAnd / kOr / kNot.
  CExpr lhs;                      // kCompare / kBare.
  CompareOp op = CompareOp::kEq;  // kCompare.
  CExpr rhs;                      // kCompare.
};

struct CRule {
  std::string name;
  CBool condition;
};

struct CompiledProgram {
  std::vector<CRule> rules;
  PurgePolicy purge_policy;
};

namespace {

struct Value {
  ValueType type = ValueType::kBool;
  std::string s;
  double n = 0.0;
  bool b = false;
};

std::string_view FieldOf(const Record& a, const Record& b,
                         const CExpr& expr) {
  return expr.record_index == 1 ? a.field(expr.field_id)
                                : b.field(expr.field_id);
}

Value Evaluate(const CExpr& expr, const Record& a, const Record& b) {
  Value out;
  out.type = expr.type;
  switch (expr.kind) {
    case ExprKind::kStringLiteral:
      out.s = expr.string_value;
      return out;
    case ExprKind::kNumberLiteral:
      out.n = expr.number_value;
      return out;
    case ExprKind::kFieldRef:
      out.s = std::string(FieldOf(a, b, expr));
      return out;
    case ExprKind::kFuncCall:
      break;
  }

  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const CExpr& arg : expr.args) args.push_back(Evaluate(arg, a, b));

  switch (expr.func) {
    case FuncId::kSimilarity:
      out.n = StringSimilarity(args[0].s, args[1].s);
      return out;
    case FuncId::kEditDistance:
      out.n = EditDistance(args[0].s, args[1].s);
      return out;
    case FuncId::kDamerau:
      out.n = DamerauDistance(args[0].s, args[1].s);
      return out;
    case FuncId::kKeyboardSimilarity:
      out.n = KeyboardSimilarity(args[0].s, args[1].s);
      return out;
    case FuncId::kSoundex:
      out.s = Soundex(args[0].s);
      return out;
    case FuncId::kNysiis:
      out.s = Nysiis(args[0].s);
      return out;
    case FuncId::kSoundsLike:
      out.b = SoundsAlikeSoundex(args[0].s, args[1].s);
      return out;
    case FuncId::kNickname:
      out.s = NicknameTable::Default().Canonicalize(args[0].s);
      return out;
    case FuncId::kSameName:
      out.b = NicknameTable::Default().SameCanonicalName(args[0].s,
                                                         args[1].s);
      return out;
    case FuncId::kInitialMatch: {
      const std::string& x = args[0].s;
      const std::string& y = args[1].s;
      if (x.empty() || y.empty()) {
        out.b = false;
      } else if (x == y) {
        out.b = true;
      } else {
        out.b = (x.size() == 1 && x[0] == y[0]) ||
                (y.size() == 1 && y[0] == x[0]);
      }
      return out;
    }
    case FuncId::kTransposed:
      out.b = !args[0].s.empty() && args[0].s != args[1].s &&
              DamerauDistance(args[0].s, args[1].s) == 1 &&
              EditDistance(args[0].s, args[1].s) == 2;
      return out;
    case FuncId::kEmpty:
      out.b = args[0].s.empty();
      return out;
    case FuncId::kLength:
      out.n = static_cast<double>(args[0].s.size());
      return out;
    case FuncId::kPrefix:
      out.s = std::string(Prefix(args[0].s, static_cast<size_t>(args[1].n)));
      return out;
    case FuncId::kDigits: {
      for (char c : args[0].s) {
        if (c >= '0' && c <= '9') out.s += c;
      }
      return out;
    }
    case FuncId::kStreetNumber: {
      // Leading digit run ("123 MAIN ST" -> "123").
      for (char c : args[0].s) {
        if (c < '0' || c > '9') break;
        out.s += c;
      }
      return out;
    }
    case FuncId::kJaroWinkler:
      out.n = JaroWinklerSimilarity(args[0].s, args[1].s);
      return out;
    case FuncId::kNgramSimilarity:
      out.n = NgramSimilarity(args[0].s, args[1].s,
                              static_cast<size_t>(args[2].n));
      return out;
    case FuncId::kHyphenExtended: {
      // One string extends the other by a new '-' or ' ' separated token.
      const std::string& x = args[0].s;
      const std::string& y = args[1].s;
      out.b = false;
      if (x.size() != y.size()) {
        const std::string& shorter = x.size() < y.size() ? x : y;
        const std::string& longer = x.size() < y.size() ? y : x;
        if (shorter.size() >= 4 &&
            longer.compare(0, shorter.size(), shorter) == 0) {
          char next = longer[shorter.size()];
          out.b = next == ' ' || next == '-';
        }
      }
      return out;
    }
  }
  return out;
}

bool Compare(CompareOp op, const Value& lhs, const Value& rhs) {
  int cmp;
  if (lhs.type == ValueType::kString) {
    cmp = lhs.s.compare(rhs.s);
  } else if (lhs.type == ValueType::kNumber) {
    cmp = lhs.n < rhs.n ? -1 : (lhs.n > rhs.n ? 1 : 0);
  } else {
    cmp = (lhs.b == rhs.b) ? 0 : (lhs.b ? 1 : -1);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

bool EvaluateBool(const CBool& node, const Record& a, const Record& b) {
  switch (node.kind) {
    case BoolKind::kAnd:
      for (const CBool& child : node.children) {
        if (!EvaluateBool(child, a, b)) return false;
      }
      return true;
    case BoolKind::kOr:
      for (const CBool& child : node.children) {
        if (EvaluateBool(child, a, b)) return true;
      }
      return false;
    case BoolKind::kNot:
      return !EvaluateBool(node.children[0], a, b);
    case BoolKind::kCompare: {
      Value lhs = Evaluate(node.lhs, a, b);
      Value rhs = Evaluate(node.rhs, a, b);
      return Compare(node.op, lhs, rhs);
    }
    case BoolKind::kBare:
      return Evaluate(node.lhs, a, b).b;
  }
  return false;
}

// --- Compilation (resolution + static type check). ---

Result<CExpr> CompileExpr(const Expr& expr, const Schema& schema) {
  CExpr out;
  out.kind = expr.kind;
  switch (expr.kind) {
    case ExprKind::kStringLiteral:
      out.type = ValueType::kString;
      out.string_value = expr.string_value;
      return out;
    case ExprKind::kNumberLiteral:
      out.type = ValueType::kNumber;
      out.number_value = expr.number_value;
      return out;
    case ExprKind::kFieldRef: {
      Result<FieldId> field = schema.RequireField(expr.field_name);
      if (!field.ok()) return field.status();
      out.type = ValueType::kString;
      out.record_index = expr.record_index;
      out.field_id = *field;
      return out;
    }
    case ExprKind::kFuncCall:
      break;
  }

  const FuncSignature* signature = nullptr;
  for (const FuncSignature& candidate : FunctionTable()) {
    if (candidate.name == expr.func_name) {
      signature = &candidate;
      break;
    }
  }
  if (signature == nullptr) {
    return Status::ParseError("unknown function '" + expr.func_name + "'");
  }
  if (expr.args.size() != signature->arg_types.size()) {
    return Status::ParseError(StringPrintf(
        "function '%s' takes %zu arguments, got %zu", expr.func_name.c_str(),
        signature->arg_types.size(), expr.args.size()));
  }
  out.type = signature->return_type;
  out.func = signature->id;
  for (size_t i = 0; i < expr.args.size(); ++i) {
    Result<CExpr> arg = CompileExpr(*expr.args[i], schema);
    if (!arg.ok()) return arg.status();
    if (arg->type != signature->arg_types[i]) {
      return Status::ParseError(
          StringPrintf("argument %zu of '%s' has the wrong type", i + 1,
                       expr.func_name.c_str()));
    }
    out.args.push_back(std::move(*arg));
  }
  return out;
}

Result<CBool> CompileBool(const BoolExpr& node, const Schema& schema,
                          const std::string& rule_name) {
  CBool out;
  out.kind = node.kind;
  switch (node.kind) {
    case BoolKind::kAnd:
    case BoolKind::kOr:
    case BoolKind::kNot:
      for (const std::unique_ptr<BoolExpr>& child : node.children) {
        Result<CBool> compiled = CompileBool(*child, schema, rule_name);
        if (!compiled.ok()) return compiled.status();
        out.children.push_back(std::move(*compiled));
      }
      return out;
    case BoolKind::kCompare: {
      Result<CExpr> lhs = CompileExpr(*node.lhs, schema);
      if (!lhs.ok()) return lhs.status();
      Result<CExpr> rhs = CompileExpr(*node.rhs, schema);
      if (!rhs.ok()) return rhs.status();
      if (lhs->type != rhs->type) {
        return Status::ParseError("rule '" + rule_name +
                                  "': comparison between different types");
      }
      if (lhs->type == ValueType::kBool &&
          !(node.op == CompareOp::kEq || node.op == CompareOp::kNe)) {
        return Status::ParseError("rule '" + rule_name +
                                  "': booleans only support == and !=");
      }
      out.lhs = std::move(*lhs);
      out.op = node.op;
      out.rhs = std::move(*rhs);
      return out;
    }
    case BoolKind::kBare: {
      Result<CExpr> lhs = CompileExpr(*node.lhs, schema);
      if (!lhs.ok()) return lhs.status();
      if (lhs->type != ValueType::kBool) {
        return Status::ParseError(
            "rule '" + rule_name +
            "': bare condition must be boolean-valued");
      }
      out.lhs = std::move(*lhs);
      return out;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

}  // namespace rules_internal

using rules_internal::CompiledProgram;

Result<RuleProgram> RuleProgram::Compile(std::string_view source,
                                         const Schema& schema) {
  Result<RuleProgramAst> ast = ParseRuleProgram(source);
  if (!ast.ok()) return ast.status();

  auto program = std::make_shared<CompiledProgram>();
  for (const MergeDirective& directive : ast->merge_directives) {
    Result<FieldId> field = schema.RequireField(directive.field_name);
    if (!field.ok()) return field.status();
    Result<MergeStrategy> strategy =
        MergeStrategyFromName(directive.strategy_name);
    if (!strategy.ok()) return strategy.status();
    program->purge_policy.Set(*field, *strategy);
  }
  program->rules.reserve(ast->rules.size());
  for (const Rule& rule : ast->rules) {
    rules_internal::CRule compiled_rule;
    compiled_rule.name = rule.name;
    Result<rules_internal::CBool> condition =
        rules_internal::CompileBool(*rule.condition, schema, rule.name);
    if (!condition.ok()) return condition.status();
    compiled_rule.condition = std::move(*condition);
    program->rules.push_back(std::move(compiled_rule));
  }
  return RuleProgram(std::move(program));
}

RuleProgram::RuleProgram(
    std::shared_ptr<const rules_internal::CompiledProgram> program)
    : program_(std::move(program)),
      rule_fire_counts_(program_->rules.size(), 0),
      flushed_fire_counts_(program_->rules.size(), 0) {}

RuleProgram::RuleProgram(const RuleProgram& other)
    : program_(other.program_),
      rule_fire_counts_(program_->rules.size(), 0),
      flushed_fire_counts_(program_->rules.size(), 0) {}

RuleProgram& RuleProgram::operator=(const RuleProgram& other) {
  program_ = other.program_;
  comparison_count_ = 0;
  rule_fire_counts_.assign(program_->rules.size(), 0);
  flushed_fire_counts_.assign(program_->rules.size(), 0);
  return *this;
}

void RuleProgram::FlushMetrics() const {
  // Rule names vary per program, so handles cannot be cached in statics;
  // flushes happen once per pass/commit, not per comparison.
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (size_t i = 0; i < rule_fire_counts_.size(); ++i) {
    uint64_t delta = rule_fire_counts_[i] - flushed_fire_counts_[i];
    if (delta == 0) continue;
    registry
        .GetCounter(std::string(metric_names::kRulesFiredPrefix) +
                    program_->rules[i].name)
        ->Add(delta);
    flushed_fire_counts_[i] = rule_fire_counts_[i];
  }
}

RuleProgram::~RuleProgram() = default;

int RuleProgram::MatchingRule(const Record& a, const Record& b) const {
  ++comparison_count_;
  for (size_t i = 0; i < program_->rules.size(); ++i) {
    if (rules_internal::EvaluateBool(program_->rules[i].condition, a, b)) {
      ++rule_fire_counts_[i];
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool RuleProgram::Matches(const Record& a, const Record& b) const {
  return MatchingRule(a, b) >= 0;
}

size_t RuleProgram::num_rules() const { return program_->rules.size(); }

const std::string& RuleProgram::rule_name(size_t index) const {
  return program_->rules[index].name;
}

const PurgePolicy& RuleProgram::purge_policy() const {
  return program_->purge_policy;
}

}  // namespace mergepurge
