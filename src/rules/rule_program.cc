#include "rules/rule_program.h"

#include <cassert>
#include <memory>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "rules/analysis/analyzer.h"
#include "rules/ast.h"
#include "rules/builtins.h"
#include "rules/parser.h"
#include "util/string_util.h"

namespace mergepurge {

namespace rules_internal {

// Compiled value expression: fully resolved and statically typed.
struct CExpr {
  ExprKind kind = ExprKind::kNumberLiteral;
  ValueType type = ValueType::kNumber;
  // Literals.
  std::string string_value;
  double number_value = 0.0;
  // Field refs.
  int record_index = 0;
  FieldId field_id = kInvalidField;
  // Calls.
  FuncId func = FuncId::kEmpty;
  std::vector<CExpr> args;
};

// Compiled boolean expression.
struct CBool {
  BoolKind kind = BoolKind::kBare;
  std::vector<CBool> children;    // kAnd / kOr / kNot.
  CExpr lhs;                      // kCompare / kBare.
  CompareOp op = CompareOp::kEq;  // kCompare.
  CExpr rhs;                      // kCompare.
};

struct CRule {
  std::string name;
  CBool condition;
};

struct CompiledProgram {
  std::vector<CRule> rules;
  PurgePolicy purge_policy;
};

namespace {

std::string_view FieldOf(const Record& a, const Record& b,
                         const CExpr& expr) {
  return expr.record_index == 1 ? a.field(expr.field_id)
                                : b.field(expr.field_id);
}

Value Evaluate(const CExpr& expr, const Record& a, const Record& b) {
  Value out;
  out.type = expr.type;
  switch (expr.kind) {
    case ExprKind::kStringLiteral:
      out.s = expr.string_value;
      return out;
    case ExprKind::kNumberLiteral:
      out.n = expr.number_value;
      return out;
    case ExprKind::kFieldRef:
      out.s = std::string(FieldOf(a, b, expr));
      return out;
    case ExprKind::kFuncCall:
      break;
  }

  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const CExpr& arg : expr.args) args.push_back(Evaluate(arg, a, b));
  return EvalBuiltin(expr.func, expr.type, args);
}

bool EvaluateBool(const CBool& node, const Record& a, const Record& b) {
  switch (node.kind) {
    case BoolKind::kAnd:
      for (const CBool& child : node.children) {
        if (!EvaluateBool(child, a, b)) return false;
      }
      return true;
    case BoolKind::kOr:
      for (const CBool& child : node.children) {
        if (EvaluateBool(child, a, b)) return true;
      }
      return false;
    case BoolKind::kNot:
      return !EvaluateBool(node.children[0], a, b);
    case BoolKind::kCompare: {
      Value lhs = Evaluate(node.lhs, a, b);
      Value rhs = Evaluate(node.rhs, a, b);
      return CompareValues(node.op, lhs, rhs);
    }
    case BoolKind::kBare:
      return Evaluate(node.lhs, a, b).b;
  }
  return false;
}

// --- Compilation (resolution + static type check). ---

Result<CExpr> CompileExpr(const Expr& expr, const Schema& schema) {
  CExpr out;
  out.kind = expr.kind;
  switch (expr.kind) {
    case ExprKind::kStringLiteral:
      out.type = ValueType::kString;
      out.string_value = expr.string_value;
      return out;
    case ExprKind::kNumberLiteral:
      out.type = ValueType::kNumber;
      out.number_value = expr.number_value;
      return out;
    case ExprKind::kFieldRef: {
      Result<FieldId> field = schema.RequireField(expr.field_name);
      if (!field.ok()) return field.status();
      out.type = ValueType::kString;
      out.record_index = expr.record_index;
      out.field_id = *field;
      return out;
    }
    case ExprKind::kFuncCall:
      break;
  }

  const FuncSignature* signature = FindFunction(expr.func_name);
  if (signature == nullptr) {
    return Status::ParseError("unknown function '" + expr.func_name + "'");
  }
  if (expr.args.size() != signature->arg_types.size()) {
    return Status::ParseError(StringPrintf(
        "function '%s' takes %zu arguments, got %zu", expr.func_name.c_str(),
        signature->arg_types.size(), expr.args.size()));
  }
  out.type = signature->return_type;
  out.func = signature->id;
  for (size_t i = 0; i < expr.args.size(); ++i) {
    Result<CExpr> arg = CompileExpr(*expr.args[i], schema);
    if (!arg.ok()) return arg.status();
    if (arg->type != signature->arg_types[i]) {
      return Status::ParseError(
          StringPrintf("argument %zu of '%s' has the wrong type", i + 1,
                       expr.func_name.c_str()));
    }
    out.args.push_back(std::move(*arg));
  }
  return out;
}

Result<CBool> CompileBool(const BoolExpr& node, const Schema& schema,
                          const std::string& rule_name) {
  CBool out;
  out.kind = node.kind;
  switch (node.kind) {
    case BoolKind::kAnd:
    case BoolKind::kOr:
    case BoolKind::kNot:
      for (const std::unique_ptr<BoolExpr>& child : node.children) {
        Result<CBool> compiled = CompileBool(*child, schema, rule_name);
        if (!compiled.ok()) return compiled.status();
        out.children.push_back(std::move(*compiled));
      }
      return out;
    case BoolKind::kCompare: {
      Result<CExpr> lhs = CompileExpr(*node.lhs, schema);
      if (!lhs.ok()) return lhs.status();
      Result<CExpr> rhs = CompileExpr(*node.rhs, schema);
      if (!rhs.ok()) return rhs.status();
      if (lhs->type != rhs->type) {
        return Status::ParseError("rule '" + rule_name +
                                  "': comparison between different types");
      }
      if (lhs->type == ValueType::kBool &&
          !(node.op == CompareOp::kEq || node.op == CompareOp::kNe)) {
        return Status::ParseError("rule '" + rule_name +
                                  "': booleans only support == and !=");
      }
      out.lhs = std::move(*lhs);
      out.op = node.op;
      out.rhs = std::move(*rhs);
      return out;
    }
    case BoolKind::kBare: {
      Result<CExpr> lhs = CompileExpr(*node.lhs, schema);
      if (!lhs.ok()) return lhs.status();
      if (lhs->type != ValueType::kBool) {
        return Status::ParseError(
            "rule '" + rule_name +
            "': bare condition must be boolean-valued");
      }
      out.lhs = std::move(*lhs);
      return out;
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

}  // namespace rules_internal

using rules_internal::CompiledProgram;

Result<RuleProgram> RuleProgram::Compile(std::string_view source,
                                         const Schema& schema) {
  return Compile(source, schema, nullptr);
}

Result<RuleProgram> RuleProgram::Compile(std::string_view source,
                                         const Schema& schema,
                                         AnalysisReport* analysis) {
  Result<RuleProgramAst> ast = ParseRuleProgram(source);
  if (!ast.ok()) return ast.status();

  if (analysis != nullptr) {
    AnalyzerOptions options;
    options.allows = ExtractSuppressions(source);
    *analysis = AnalyzeRuleProgram(*ast, options);
  }

  auto program = std::make_shared<CompiledProgram>();
  for (const MergeDirective& directive : ast->merge_directives) {
    Result<FieldId> field = schema.RequireField(directive.field_name);
    if (!field.ok()) return field.status();
    Result<MergeStrategy> strategy =
        MergeStrategyFromName(directive.strategy_name);
    if (!strategy.ok()) return strategy.status();
    program->purge_policy.Set(*field, *strategy);
  }
  program->rules.reserve(ast->rules.size());
  for (const Rule& rule : ast->rules) {
    rules_internal::CRule compiled_rule;
    compiled_rule.name = rule.name;
    Result<rules_internal::CBool> condition =
        rules_internal::CompileBool(*rule.condition, schema, rule.name);
    if (!condition.ok()) return condition.status();
    compiled_rule.condition = std::move(*condition);
    program->rules.push_back(std::move(compiled_rule));
  }
  return RuleProgram(std::move(program));
}

RuleProgram::RuleProgram(
    std::shared_ptr<const rules_internal::CompiledProgram> program)
    : program_(std::move(program)),
      rule_fire_counts_(program_->rules.size(), 0),
      flushed_fire_counts_(program_->rules.size(), 0) {}

RuleProgram::RuleProgram(const RuleProgram& other)
    : program_(other.program_),
      rule_fire_counts_(program_->rules.size(), 0),
      flushed_fire_counts_(program_->rules.size(), 0) {}

RuleProgram& RuleProgram::operator=(const RuleProgram& other) {
  program_ = other.program_;
  comparison_count_ = 0;
  rule_fire_counts_.assign(program_->rules.size(), 0);
  flushed_fire_counts_.assign(program_->rules.size(), 0);
  return *this;
}

void RuleProgram::FlushMetrics() const {
  // Rule names vary per program, so handles cannot be cached in statics;
  // flushes happen once per pass/commit, not per comparison.
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (size_t i = 0; i < rule_fire_counts_.size(); ++i) {
    uint64_t delta = rule_fire_counts_[i] - flushed_fire_counts_[i];
    if (delta == 0) continue;
    registry
        .GetCounter(std::string(metric_names::kRulesFiredPrefix) +
                    program_->rules[i].name)
        ->Add(delta);
    flushed_fire_counts_[i] = rule_fire_counts_[i];
  }
}

RuleProgram::~RuleProgram() = default;

int RuleProgram::MatchingRule(const Record& a, const Record& b) const {
  ++comparison_count_;
  for (size_t i = 0; i < program_->rules.size(); ++i) {
    if (rules_internal::EvaluateBool(program_->rules[i].condition, a, b)) {
      ++rule_fire_counts_[i];
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool RuleProgram::Matches(const Record& a, const Record& b) const {
  return MatchingRule(a, b) >= 0;
}

size_t RuleProgram::num_rules() const { return program_->rules.size(); }

const std::string& RuleProgram::rule_name(size_t index) const {
  return program_->rules[index].name;
}

const PurgePolicy& RuleProgram::purge_policy() const {
  return program_->purge_policy;
}

}  // namespace mergepurge
