// RuleProgram: compiles rule-language source against a schema into an
// executable equational theory (the analogue of the paper's OPS5 program).
//
// Compilation performs name resolution (field refs against the schema,
// function names against the built-in table) and full static type checking,
// so evaluation is exception-free and cannot fail at run time.
//
// Built-in functions:
//   similarity(s, s) -> number     Damerau similarity in [0,1]
//   edit_distance(s, s) -> number  Levenshtein distance
//   damerau(s, s) -> number        Damerau (OSA) distance
//   keyboard_similarity(s, s) -> number
//   soundex(s) -> string
//   nysiis(s) -> string
//   sounds_like(s, s) -> bool      non-empty equal Soundex codes
//   nickname(s) -> string          canonical name via the nickname table
//   same_name(s, s) -> bool        nickname-aware name equality
//   initial_match(s, s) -> bool    equal, or one is the initial of the other
//   transposed(s, s) -> bool       equal up to one adjacent transposition
//   empty(s) -> bool
//   length(s) -> number
//   prefix(s, n) -> string
//   digits(s) -> string

#ifndef MERGEPURGE_RULES_RULE_PROGRAM_H_
#define MERGEPURGE_RULES_RULE_PROGRAM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/purge_policy.h"
#include "record/schema.h"
#include "rules/equational_theory.h"
#include "util/status.h"

namespace mergepurge {

class AnalysisReport;

namespace rules_internal {
struct CompiledProgram;
}  // namespace rules_internal

class RuleProgram final : public EquationalTheory {
 public:
  // Parses, resolves and type-checks `source` against `schema`.
  static Result<RuleProgram> Compile(std::string_view source,
                                     const Schema& schema);

  // Same, and additionally runs the static analyzer (rules/analysis/) over
  // the parsed program, honoring the source's `# rulecheck: allow(...)`
  // comments. Lint findings never fail compilation — `analysis` is filled
  // even on a compile error, and callers decide how strict to be (the
  // CLIs' --rules-check preflight treats lint errors as fatal).
  static Result<RuleProgram> Compile(std::string_view source,
                                     const Schema& schema,
                                     AnalysisReport* analysis);

  // Copies share the immutable compiled program; each copy has its own
  // statistics counters (use one copy per worker thread).
  RuleProgram(const RuleProgram& other);
  RuleProgram& operator=(const RuleProgram& other);
  ~RuleProgram() override;

  bool Matches(const Record& a, const Record& b) const override;
  std::string name() const override { return "rule-program"; }
  uint64_t comparison_count() const override { return comparison_count_; }
  void reset_comparison_count() override { comparison_count_ = 0; }

  // Index of the first rule whose conditions all hold, or -1. Also updates
  // the per-rule fire counters.
  int MatchingRule(const Record& a, const Record& b) const;

  size_t num_rules() const;
  const std::string& rule_name(size_t index) const;

  // How many times each rule has fired (same indexing as rule_name).
  const std::vector<uint64_t>& rule_fire_counts() const {
    return rule_fire_counts_;
  }

  // Adds rule firings since the previous flush to the global registry as
  // rules.fired.<rule-name>. rule_fire_counts() is cumulative and is NOT
  // reset — a high-water mirror tracks what was already flushed.
  void FlushMetrics() const override;

  // The purge policy assembled from the program's `merge <field>: prefer
  // <strategy>` directives (fields without a directive keep the default).
  const PurgePolicy& purge_policy() const;

 private:
  explicit RuleProgram(
      std::shared_ptr<const rules_internal::CompiledProgram> program);

  std::shared_ptr<const rules_internal::CompiledProgram> program_;
  mutable uint64_t comparison_count_ = 0;
  mutable std::vector<uint64_t> rule_fire_counts_;
  // Per-rule counts already flushed to the registry (see FlushMetrics).
  mutable std::vector<uint64_t> flushed_fire_counts_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_RULES_RULE_PROGRAM_H_
