#include "service/batcher.h"

#include <algorithm>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace mergepurge {

UpsertBatcher::UpsertBatcher(BatcherOptions options, CommitFn commit)
    : options_(options), commit_(std::move(commit)) {
  if (options_.max_batch_records == 0) options_.max_batch_records = 1;
  writer_ = std::thread([this] { WriterLoop(); });
}

UpsertBatcher::~UpsertBatcher() { Drain(); }

std::future<Result<UpsertSlice>> UpsertBatcher::Submit(
    std::vector<Record> records) {
  PendingUpsert pending;
  pending.records = std::move(records);
  pending.enqueued_at = std::chrono::steady_clock::now();
  std::future<Result<UpsertSlice>> future = pending.promise.get_future();
  {
    MutexLock lock(mu_);
    if (stop_) {
      pending.promise.set_value(
          Status::InvalidArgument("batcher is draining"));
      return future;
    }
    pending_records_ += pending.records.size();
    pending_.push_back(std::move(pending));
  }
  pending_cv_.NotifyAll();
  return future;
}

void UpsertBatcher::Drain() {
  {
    MutexLock lock(mu_);
    if (drained_) return;
    drained_ = true;
    stop_ = true;
  }
  pending_cv_.NotifyAll();
  if (writer_.joinable()) writer_.join();
}

std::vector<size_t> UpsertBatcher::committed_batch_sizes() const {
  MutexLock lock(mu_);
  return batch_sizes_;
}

uint64_t UpsertBatcher::batches_committed() const {
  MutexLock lock(mu_);
  return batch_sizes_.size();
}

void UpsertBatcher::WriterLoop() {
  static Counter* const batches =
      MetricsRegistry::Global().GetCounter(metric_names::kServiceBatches);
  static LatencyHistogram* const batch_records =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceBatchRecords,
          LatencyHistogram::ExponentialBounds(1.0, 2.0, 11));
  static LatencyHistogram* const queue_wait_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceQueueWaitUs);
  // Stage attribution (one sample per committed batch; see
  // metric_names.h): the batch-level queue wait is the OLDEST request's
  // wait, because that is the time the batch as a whole spent forming
  // before its commit started.
  static LatencyHistogram* const stage_queue_wait_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceStageQueueWaitUs);
  static LatencyHistogram* const stage_ack_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceStageAckUs);

  const auto max_delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(options_.max_delay_ms));

  MutexLock lock(mu_);
  for (;;) {
    while (!stop_ && pending_.empty()) pending_cv_.Wait(mu_);
    if (pending_.empty()) return;  // stop_ and nothing left to flush.

    // Group-commit window: wait for more requests until the batch fills
    // or the oldest request's deadline expires. A stop request flushes
    // immediately.
    const auto deadline = pending_.front().enqueued_at + max_delay;
    while (!stop_ && pending_records_ < options_.max_batch_records) {
      if (pending_cv_.WaitUntil(mu_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }

    // Take whole requests until the batch is full (a single request is
    // never split across batches: its records must land in one AddBatch
    // so its labels come from one commit).
    std::vector<PendingUpsert> taken;
    size_t taken_records = 0;
    while (!pending_.empty() &&
           (taken.empty() ||
            taken_records + pending_.front().records.size() <=
                options_.max_batch_records)) {
      taken_records += pending_.front().records.size();
      taken.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    pending_records_ -= taken_records;
    lock.Unlock();

    const auto commit_start = std::chrono::steady_clock::now();
    std::vector<Record> combined;
    combined.reserve(taken_records);
    for (PendingUpsert& upsert : taken) {
      for (Record& record : upsert.records) {
        combined.push_back(std::move(record));
      }
      queue_wait_us->Record(
          std::chrono::duration<double, std::micro>(commit_start -
                                                    upsert.enqueued_at)
              .count());
    }
    stage_queue_wait_us->Record(
        std::chrono::duration<double, std::micro>(
            commit_start - taken.front().enqueued_at)
            .count());

    Result<BatchCommit> commit = commit_(std::move(combined));
    batches->Increment();
    batch_records->Record(static_cast<double>(taken_records));

    const auto ack_start = std::chrono::steady_clock::now();
    if (!commit.ok()) {
      for (PendingUpsert& upsert : taken) {
        upsert.promise.set_value(commit.status());
      }
    } else {
      size_t offset = 0;
      for (PendingUpsert& upsert : taken) {
        const size_t n = upsert.records.size();
        UpsertSlice slice;
        slice.entities.assign(commit->labels.begin() + offset,
                              commit->labels.begin() + offset + n);
        slice.base_tid = commit->base_tid + static_cast<TupleId>(offset);
        slice.merges = commit->merges;
        upsert.promise.set_value(std::move(slice));
        offset += n;
      }
    }
    stage_ack_us->Record(std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - ack_start)
                             .count());

    lock.Lock();
    if (commit.ok()) batch_sizes_.push_back(taken_records);
  }
}

}  // namespace mergepurge
