// UpsertBatcher: coalesces concurrent upsert requests into one engine
// batch under a latency deadline.
//
// Why: IncrementalMergePurge::AddBatch pays one linear merge of the whole
// sorted order PER KEY PER BATCH — O(keys * n) regardless of batch size —
// so admitting records one request at a time is quadratic in the number
// of requests. Coalescing K concurrent requests into one batch amortizes
// the merges K-fold while adding at most `max_delay_ms` of latency: the
// classic group-commit trade.
//
// One writer thread owns all commits (the engine is single-writer /
// multi-reader); requesters park on a future. A batch commits as soon as
// either `max_batch_records` records are pending or `max_delay_ms` has
// elapsed since the OLDEST pending request arrived — so under light load
// a lone upsert waits the full deadline at worst, and under heavy load
// batches fill instantly and the deadline never binds.

#ifndef MERGEPURGE_SERVICE_BATCHER_H_
#define MERGEPURGE_SERVICE_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "record/record.h"
#include "util/status.h"
#include "util/sync.h"

namespace mergepurge {

struct BatcherOptions {
  // Commit as soon as this many records are pending.
  size_t max_batch_records = 256;

  // Latency deadline: commit no later than this after the oldest pending
  // request arrived, even if the batch is small.
  double max_delay_ms = 2.0;
};

// One committed batch as produced by the CommitFn. Records of a batch
// land contiguously in the engine, so the tuple id of record i is
// `base_tid + i`; `merges` is the closure delta — every {survivor,
// absorbed} component-label union the batch caused among PRE-EXISTING
// components (new records' memberships are already visible through
// `labels`). A sharding coordinator replays these into its global
// union-find instead of re-pulling full label dumps.
struct BatchCommit {
  std::vector<uint32_t> labels;  // One entity label per record, in order.
  TupleId base_tid = 0;
  std::vector<std::pair<uint32_t, uint32_t>> merges;
};

// The per-request slice of a committed batch handed back to Submit
// callers: the request's own labels and tids (contiguous from
// `base_tid`), plus the WHOLE batch's merge delta — merge application
// is idempotent, so every rider of a coalesced batch may safely replay
// it.
struct UpsertSlice {
  std::vector<uint32_t> entities;
  TupleId base_tid = 0;
  std::vector<std::pair<uint32_t, uint32_t>> merges;
};

class UpsertBatcher {
 public:
  // `commit` admits one coalesced batch and returns the labels/tids/
  // merge delta. It runs exclusively on the batcher's writer thread.
  using CommitFn = std::function<Result<BatchCommit>(std::vector<Record>)>;

  UpsertBatcher(BatcherOptions options, CommitFn commit);

  // Drains on destruction if Drain() was not called.
  ~UpsertBatcher();

  UpsertBatcher(const UpsertBatcher&) = delete;
  UpsertBatcher& operator=(const UpsertBatcher&) = delete;

  // Enqueues the records and returns a future that resolves to their
  // slice of the committed batch (or the commit error). After Drain()
  // the future resolves immediately to an error.
  std::future<Result<UpsertSlice>> Submit(std::vector<Record> records);

  // Flushes everything pending, then stops the writer thread. Idempotent.
  void Drain();

  // Sizes (in records) of every committed batch, in commit order. The
  // exact serial replay schedule: feeding these slices of the admitted
  // record sequence to AddBatch reproduces the service's partition
  // (tests/service_test.cc holds the service to that). Call after
  // Drain(); during operation it returns a snapshot.
  std::vector<size_t> committed_batch_sizes() const;

  uint64_t batches_committed() const;

 private:
  struct PendingUpsert {
    std::vector<Record> records;
    std::promise<Result<UpsertSlice>> promise;
    std::chrono::steady_clock::time_point enqueued_at;
  };

  void WriterLoop();

  BatcherOptions options_;
  CommitFn commit_;

  mutable Mutex mu_{lockrank::kBatcher};
  CondVar pending_cv_;
  std::deque<PendingUpsert> pending_ MERGEPURGE_GUARDED_BY(mu_);
  size_t pending_records_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  bool stop_ MERGEPURGE_GUARDED_BY(mu_) = false;
  bool drained_ MERGEPURGE_GUARDED_BY(mu_) = false;
  std::vector<size_t> batch_sizes_ MERGEPURGE_GUARDED_BY(mu_);

  std::thread writer_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_BATCHER_H_
