#include "service/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/protocol.h"
#include "util/string_util.h"

namespace mergepurge {

ServiceClient::~ServiceClient() { Close(); }

void ServiceClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

Status ServiceClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(StringPrintf("socket: %s", strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(StringPrintf("connect %s:%u: %s", host.c_str(),
                                        port, strerror(errno)));
  }
  return Status::OK();
}

Result<JsonValue> ServiceClient::Call(std::string_view request_line) {
  std::string_view rest = request_line;
  while (!rest.empty()) {
    const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StringPrintf("send: %s", strerror(errno)));
    }
    rest.remove_prefix(static_cast<size_t>(n));
  }
  std::string line;
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      break;
    }
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StringPrintf("recv: %s", strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  return ParseResponseLine(line);
}

}  // namespace mergepurge
