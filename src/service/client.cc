#include "service/client.h"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "util/string_util.h"

namespace mergepurge {

ServiceClient::~ServiceClient() { Close(); }

void ServiceClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

Status ServiceClient::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IoError(StringPrintf("socket: %s", strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::IoError(StringPrintf("connect %s:%u: %s", host.c_str(),
                                        port, strerror(errno)));
  }
  return Status::OK();
}

Result<JsonValue> ServiceClient::Call(std::string_view request_line) {
  std::string_view rest = request_line;
  while (!rest.empty()) {
    const ssize_t n = ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StringPrintf("send: %s", strerror(errno)));
    }
    rest.remove_prefix(static_cast<size_t>(n));
  }
  std::string line;
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      break;
    }
    char chunk[16 * 1024];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("server closed the connection mid-response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(StringPrintf("recv: %s", strerror(errno)));
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
  return ParseResponseLine(line);
}

bool IsRecoveringError(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  if (ok == nullptr || ok->bool_value()) return false;
  const JsonValue* error = response.Find("error");
  if (error == nullptr) return false;
  const JsonValue* code = error->Find("code");
  return code != nullptr && code->is_string() &&
         code->string_value() == "recovering";
}

Result<JsonValue> CallWithRetry(ServiceClient* client,
                                const std::string& host, uint16_t port,
                                std::string_view request_line, Rng* rng,
                                const RetryOptions& options,
                                const std::function<void()>& on_retry) {
  static Counter* const retries_counter =
      MetricsRegistry::Global().GetCounter(
          metric_names::kServiceClientRetries);
  Status last_error = Status::OK();
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    if (attempt > 1) {
      retries_counter->Increment();
      if (on_retry) on_retry();
      double delay_ms =
          options.backoff_base_ms *
          std::pow(options.backoff_multiplier,
                   static_cast<double>(attempt - 2));
      delay_ms = std::min(delay_ms, options.backoff_cap_ms);
      delay_ms += static_cast<double>(rng->NextBounded(
          static_cast<uint64_t>(options.backoff_base_ms)));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    if (!client->connected()) {
      Status connected = client->Connect(host, port);
      if (!connected.ok()) {
        last_error = connected;
        client->Close();
        continue;
      }
    }
    Result<JsonValue> response = client->Call(request_line);
    if (response.ok()) {
      if (IsRecoveringError(*response)) {
        // The connection is fine; only the request was refused.
        last_error = Status::IoError("server is recovering");
        continue;
      }
      return response;
    }
    last_error = response.status();
    client->Close();  // The connection is unusable after a transport error.
  }
  return last_error;
}

}  // namespace mergepurge
