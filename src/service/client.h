// ServiceClient: one blocking NDJSON request/response connection to
// mergepurge_serve. Shared by the load generator, the mergepurge_top
// console, and any script that wants a final stats round-trip, so the
// framing logic (send the full line, buffer socket reads until '\n')
// lives in exactly one place.
//
// Not thread-safe — use one client per thread. A transport error leaves
// the connection unusable; Close() and Connect() again to retry.

#ifndef MERGEPURGE_SERVICE_CLIENT_H_
#define MERGEPURGE_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "util/status.h"

namespace mergepurge {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  // Idempotent; drops any buffered partial response.
  void Close();

  Status Connect(const std::string& host, uint16_t port);

  // Sends one request line (including its trailing '\n') and reads one
  // response line, parsed as JSON.
  Result<JsonValue> Call(std::string_view request_line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_CLIENT_H_
