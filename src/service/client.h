// ServiceClient: one blocking NDJSON request/response connection to
// mergepurge_serve. Shared by the load generator, the mergepurge_top
// console, and any script that wants a final stats round-trip, so the
// framing logic (send the full line, buffer socket reads until '\n')
// lives in exactly one place.
//
// Not thread-safe — use one client per thread. A transport error leaves
// the connection unusable; Close() and Connect() again to retry.

#ifndef MERGEPURGE_SERVICE_CLIENT_H_
#define MERGEPURGE_SERVICE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "obs/json.h"
#include "util/random.h"
#include "util/status.h"

namespace mergepurge {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  // Idempotent; drops any buffered partial response.
  void Close();

  Status Connect(const std::string& host, uint16_t port);

  // Sends one request line (including its trailing '\n') and reads one
  // response line, parsed as JSON.
  Result<JsonValue> Call(std::string_view request_line);

 private:
  int fd_ = -1;
  std::string buffer_;
};

// Retry schedule for transient failures (connection refused while a
// server restarts, ECONNRESET, a peer close mid-response). Same shape as
// ResilientRunner's backoff: the delay before attempt k (k >= 2) is
// min(base * mult^(k-2), cap) plus jitter drawn uniformly from
// [0, base).
struct RetryOptions {
  int max_attempts = 12;
  double backoff_base_ms = 5.0;
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 500.0;
};

// True when the response is a typed retryable refusal: the server is up
// but still replaying its WAL ({"ok":false,"error":{"code":"recovering"}}).
// A restarted server answers this way until replay finishes, so callers
// back off and resend like they do for transport errors.
bool IsRecoveringError(const JsonValue& response);

// Sends one request, reconnecting (lazily, so the first call may do the
// initial connect too) and resending on transport errors, and backing
// off on "recovering" refusals. Requests must be idempotent from the
// caller's point of view (matches are read-only; a resent upsert at
// worst re-admits records that merge with their first copy), so
// at-least-once delivery is safe. Bumps the service.client.retries
// counter and invokes `on_retry` (when set) once per retry attempt;
// returns the last error once the schedule is exhausted. Shared by the
// load generator and the shard coordinator's connection pool.
Result<JsonValue> CallWithRetry(ServiceClient* client,
                                const std::string& host, uint16_t port,
                                std::string_view request_line, Rng* rng,
                                const RetryOptions& options = {},
                                const std::function<void()>& on_retry = {});

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_CLIENT_H_
