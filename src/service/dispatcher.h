// RequestDispatcher: the seam between the socket front end (Server) and
// whatever answers engine-touching requests behind it. The single-node
// binary plugs in EngineDispatcher (a resident MatchService); the shard
// coordinator plugs in its fan-out dispatcher (src/shard/coordinator.h)
// — both speak the identical wire protocol upward, so loadgen,
// mergepurge_top and the admin ops work unchanged against either.
//
// The Server keeps everything transport- and process-level: framing,
// connection hardening, ping, trace toggles, drain, slow-request
// logging, and the introspection sections of stats/health (state,
// uptime, counters, gauges, histogram summaries, windowed rates). The
// dispatcher owns the backend-specific content: lifecycle gating, the
// match/upsert/stats payloads, and the backend sections of health.

#ifndef MERGEPURGE_SERVICE_DISPATCHER_H_
#define MERGEPURGE_SERVICE_DISPATCHER_H_

#include <string>
#include <vector>

#include "obs/json.h"
#include "record/record.h"
#include "service/match_service.h"

namespace mergepurge {

class RequestDispatcher {
 public:
  virtual ~RequestDispatcher() = default;

  // Lifecycle gate for engine-touching ops (match/upsert/stats). While
  // kRecovering the server answers the retryable "recovering" error;
  // kFailed answers a terminal internal error. The vocabulary is shared
  // with MatchService because the transitions mean the same thing at
  // both layers (one-way, observable lock-free).
  virtual MatchService::Lifecycle lifecycle() const = 0;

  // Engine-touching ops; called only while lifecycle() == kServing.
  // Each returns one complete response line (protocol.h builders) and
  // accounts its own kServiceErrors increment on failure.
  virtual std::string HandleMatch(const JsonValue* id,
                                  std::vector<Record> records) = 0;
  virtual std::string HandleUpsert(const JsonValue* id,
                                   std::vector<Record> records) = 0;

  // `extra` carries the server's introspection sections to merge after
  // the backend's fixed fields (docs/observability.md).
  virtual std::string HandleStats(const JsonValue* id,
                                  const JsonValue& extra) = 0;

  // Appends the backend sections of the health document after the
  // server's state/uptime/instance fields. Must not block on engine
  // locks unless lifecycle() == kServing (health answers while a
  // recovery replay holds the engine write lock).
  virtual void FillHealth(JsonValue* health) = 0;

  // Flushes and stops the backend. Called exactly once, from
  // Server::Join().
  virtual void Drain() = 0;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_DISPATCHER_H_
