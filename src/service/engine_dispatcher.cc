#include "service/engine_dispatcher.h"

#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "service/protocol.h"

namespace mergepurge {

namespace {

Counter* ErrorsCounter() {
  static Counter* const errors =
      MetricsRegistry::Global().GetCounter(metric_names::kServiceErrors);
  return errors;
}

}  // namespace

std::string EngineDispatcher::HandleMatch(const JsonValue* id,
                                          std::vector<Record> records) {
  Result<MatchService::MatchOutcome> outcome =
      service_->Match(records.front());
  if (!outcome.ok()) {
    ErrorsCounter()->Increment();
    return ErrorResponseLine(
        id, {ServiceErrorCode::kInternal, outcome.status().ToString()});
  }
  return MatchResponseLine(id, outcome->entity, outcome->matches,
                           outcome->entities);
}

std::string EngineDispatcher::HandleUpsert(const JsonValue* id,
                                           std::vector<Record> records) {
  const size_t count = records.size();
  Result<MatchService::UpsertOutcome> outcome =
      service_->Upsert(std::move(records));
  if (!outcome.ok()) {
    ErrorsCounter()->Increment();
    return ErrorResponseLine(
        id, {ServiceErrorCode::kInternal, outcome.status().ToString()});
  }
  // Tids are contiguous from the request's base (see UpsertBatcher), so
  // the wire carries them expanded — the coordinator binds each record's
  // tid to a global id without any ordering assumption between
  // concurrent upserts.
  std::vector<TupleId> tids;
  tids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    tids.push_back(outcome->base_tid + static_cast<TupleId>(i));
  }
  return UpsertResponseLine(id, outcome->entities, outcome->new_pairs,
                            &tids, &outcome->merges);
}

std::string EngineDispatcher::HandleStats(const JsonValue* id,
                                          const JsonValue& extra) {
  MatchService::Stats stats = service_->GetStats();
  MatchService::DurabilityInfo durability = service_->GetDurability();
  ServiceDurabilityStats wire;
  wire.enabled = durability.enabled;
  wire.wal_seq = durability.applied_seq;
  wire.snapshot_seq = durability.snapshot_seq;
  wire.recovery_batches_replayed = durability.recovery.batches_replayed;
  wire.recovery_ms = durability.recovery.recovery_ms;
  return StatsResponseLine(id, stats.records, stats.entities, stats.pairs,
                           &wire, &extra);
}

void EngineDispatcher::FillHealth(JsonValue* health) {
  const MatchService::Lifecycle lifecycle = service_->lifecycle();
  if (lifecycle == MatchService::Lifecycle::kFailed) {
    // Recovery already finished (that is how kFailed is reached), so
    // this read of the init status cannot block.
    health->Set("error", service_->init_status().ToString());
    return;
  }
  if (lifecycle != MatchService::Lifecycle::kServing) {
    // Recovering: the recovery thread may hold the engine write lock
    // for a long replay — report the reduced document instead of
    // blocking the admin connection behind it.
    return;
  }

  MatchService::DurabilityInfo durability = service_->GetDurability();
  JsonValue wal = JsonValue::Object();
  wal.Set("enabled", durability.enabled);
  if (durability.enabled) {
    wal.Set("failed", durability.wal_failed);
    if (durability.wal_failed) wal.Set("error", durability.wal_error);
    wal.Set("applied_seq", durability.applied_seq);
    wal.Set("snapshot_seq", durability.snapshot_seq);
    wal.Set("open_segment_bytes", durability.wal_open_segment_bytes);
  }
  health->Set("wal", std::move(wal));
  health->Set("snapshot_age_ms", durability.snapshot_age_ms);

  MatchService::Stats stats = service_->GetStats();
  JsonValue resident = JsonValue::Object();
  resident.Set("records", stats.records);
  resident.Set("pairs", stats.pairs);
  resident.Set("components", stats.entities);
  health->Set("resident", std::move(resident));
}

}  // namespace mergepurge
