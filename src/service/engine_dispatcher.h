// EngineDispatcher: the single-node RequestDispatcher — answers
// match/upsert/stats/health straight from a resident MatchService. This
// is the PR-4 server behaviour, factored out of Server::ProcessLine so
// the shard coordinator can reuse the socket front end with a different
// backend.

#ifndef MERGEPURGE_SERVICE_ENGINE_DISPATCHER_H_
#define MERGEPURGE_SERVICE_ENGINE_DISPATCHER_H_

#include <string>
#include <vector>

#include "service/dispatcher.h"

namespace mergepurge {

class EngineDispatcher : public RequestDispatcher {
 public:
  // `service` must outlive the dispatcher.
  explicit EngineDispatcher(MatchService* service) : service_(service) {}

  MatchService::Lifecycle lifecycle() const override {
    return service_->lifecycle();
  }

  std::string HandleMatch(const JsonValue* id,
                          std::vector<Record> records) override;
  std::string HandleUpsert(const JsonValue* id,
                           std::vector<Record> records) override;
  std::string HandleStats(const JsonValue* id,
                          const JsonValue& extra) override;
  void FillHealth(JsonValue* health) override;
  void Drain() override { service_->Drain(); }

 private:
  MatchService* service_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_ENGINE_DISPATCHER_H_
