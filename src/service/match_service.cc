#include "service/match_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/fs.h"
#include "util/timer.h"

namespace mergepurge {

// RAII lease of a theory instance from the pool (see header: theories are
// not shareable across threads, so each in-flight request gets its own).
class MatchService::TheoryLease {
 public:
  explicit TheoryLease(const MatchService* service) : service_(service) {
    {
      MutexLock lock(service_->theory_mu_);
      if (!service_->theory_pool_.empty()) {
        theory_ = std::move(service_->theory_pool_.back());
        service_->theory_pool_.pop_back();
      }
    }
    if (theory_ == nullptr) theory_ = service_->theory_factory_();
  }

  ~TheoryLease() {
    MutexLock lock(service_->theory_mu_);
    service_->theory_pool_.push_back(std::move(theory_));
  }

  EquationalTheory& operator*() const { return *theory_; }

 private:
  const MatchService* service_;
  std::unique_ptr<EquationalTheory> theory_;
};

const char* MatchService::LifecycleName(Lifecycle lifecycle) {
  switch (lifecycle) {
    case Lifecycle::kRecovering:
      return "recovering";
    case Lifecycle::kServing:
      return "serving";
    case Lifecycle::kFailed:
      return "failed";
  }
  return "failed";
}

MatchService::MatchService(MatchServiceOptions options,
                           TheoryFactory theory_factory)
    : options_(std::move(options)),
      theory_factory_(std::move(theory_factory)),
      engine_(options_.engine) {
  if (!options_.durability.data_dir.empty()) {
    // Recovery runs off-thread so the process can bind its socket and
    // answer health ("recovering") while a large WAL tail replays; the
    // lifecycle gate keeps upserts out until the replay lands.
    lifecycle_.store(Lifecycle::kRecovering, std::memory_order_release);
    {
      MutexLock lock(recovery_mu_);
      recovery_done_ = false;
    }
    recovery_thread_ = std::thread([this] { RunRecovery(); });
  }
  batcher_ = std::make_unique<UpsertBatcher>(
      options_.batcher, [this](std::vector<Record> records) {
        return CommitBatch(std::move(records));
      });
}

void MatchService::RunRecovery() {
  if (options_.durability.recovery_delay_for_testing_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        options_.durability.recovery_delay_for_testing_ms));
  }
  Status status = InitDurability();
  // Lifecycle first (one-way transition, release), then the completion
  // signal: a WaitForRecovery caller that wakes observes the final
  // state.
  lifecycle_.store(status.ok() ? Lifecycle::kServing : Lifecycle::kFailed,
                   std::memory_order_release);
  {
    MutexLock lock(recovery_mu_);
    init_status_ = std::move(status);
    recovery_done_ = true;
  }
  recovery_cv_.NotifyAll();
}

Status MatchService::WaitForRecovery() const {
  MutexLock lock(recovery_mu_);
  while (!recovery_done_) recovery_cv_.Wait(recovery_mu_);
  return init_status_;
}

Status MatchService::InitDurability() {
  const DurabilityOptions& durability = options_.durability;
  MERGEPURGE_RETURN_NOT_OK(MakeDirs(durability.data_dir));
  const uint64_t config_digest = EngineConfigDigest(options_.engine);
  Timer recovery_timer;

  // The constructor has no concurrent readers yet; the writer lock is
  // held anyway so the thread-safety analysis covers the engine writes.
  {
    WriterLock lock(engine_mu_);

    Result<SnapshotState> snapshot =
        LoadNewestSnapshot(durability.data_dir, config_digest);
    if (snapshot.ok()) {
      recovery_.snapshot_loaded = true;
      recovery_.snapshot_seq = snapshot->seq;
      recovery_.snapshot_records = snapshot->records.size();
      applied_seq_ = snapshot->seq;
      MERGEPURGE_RETURN_NOT_OK(engine_.Restore(
          std::move(snapshot->records), std::move(snapshot->pairs)));
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      return snapshot.status();
    }

    WalReadStats wal_stats;
    Result<std::vector<WalBatch>> tail = ReadWalForRecovery(
        durability.data_dir, applied_seq_, &wal_stats);
    if (!tail.ok()) return tail.status();
    recovery_.truncated_bytes = wal_stats.truncated_bytes;
    TheoryLease theory(this);
    for (WalBatch& batch : *tail) {
      Dataset replay(engine_.records().schema().num_fields() > 0
                         ? engine_.records().schema()
                         : employee::MakeSchema());
      replay.Reserve(batch.records.size());
      for (Record& record : batch.records) replay.Append(std::move(record));
      Result<uint64_t> added = engine_.AddBatch(replay, *theory);
      // A batch the engine rejects now was rejected (deterministically)
      // when it was first committed too — the client saw an error, so
      // skipping it reproduces the acknowledged state.
      (void)added;
      applied_seq_ = batch.seq;
      ++recovery_.batches_replayed;
      recovery_.records_replayed += replay.size();
    }
    // The WAL may have validated records beyond what we replayed only
    // when the engine rejected them; either way the next sequence
    // continues after the last logged one so replay stays gap-free.
    if (wal_stats.last_seq > applied_seq_) applied_seq_ = wal_stats.last_seq;
    recovery_.last_seq = applied_seq_;
    // Warm the label cache so recovery cost is paid here, not by the
    // first request.
    if (engine_.size() > 0) engine_.CachedComponentLabels();
  }
  recovery_.recovery_ms = recovery_timer.ElapsedSeconds() * 1e3;

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter(metric_names::kServiceRecoveryBatchesReplayed)
      ->Add(recovery_.batches_replayed);
  registry.GetCounter(metric_names::kServiceRecoveryRecordsReplayed)
      ->Add(recovery_.records_replayed);
  registry.GetCounter(metric_names::kServiceRecoveryTruncatedBytes)
      ->Add(recovery_.truncated_bytes);
  registry.GetHistogram(metric_names::kServiceRecoveryUs)
      ->Record(recovery_.recovery_ms * 1e3);

  wal_ = std::make_unique<WalWriter>(durability.fsync);
  uint64_t next_seq = 0;
  {
    WriterLock lock(engine_mu_);
    next_seq = applied_seq_ + 1;
  }
  MERGEPURGE_RETURN_NOT_OK(wal_->Open(durability.data_dir, next_seq));

  Snapshotter::Options snap_options;
  snap_options.dir = durability.data_dir;
  snap_options.config_digest = config_digest;
  snap_options.every_batches = durability.snapshot_every_batches;
  snap_options.interval_ms = durability.snapshot_interval_ms;
  snap_options.keep_wal = durability.keep_wal;
  snapshotter_ = std::make_unique<Snapshotter>(
      std::move(snap_options),
      [this](SnapshotState* out) {
        GatedReaderLock lock(*this);
        if (engine_.size() == 0) return false;
        out->seq = applied_seq_;
        out->records = engine_.records();
        out->pairs = engine_.pairs();
        return true;
      },
      [this](uint64_t seq) { (void)wal_->TruncateThrough(seq); });
  snapshotter_->Start();
  return Status::OK();
}

MatchService::~MatchService() { Drain(); }

MatchService::GatedReaderLock::GatedReaderLock(const MatchService& service)
    : service_(service) {
  // Hold off while the writer is waiting (see writer_waiting_ in the
  // header); otherwise a tight reader loop starves commits forever.
  while (service_.writer_waiting_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  service_.engine_mu_.LockShared();
}

MatchService::GatedReaderLock::~GatedReaderLock() {
  service_.engine_mu_.UnlockShared();
}

Result<MatchService::MatchOutcome> MatchService::Match(
    const Record& record) const {
  static LatencyHistogram* const match_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kServiceMatchUs);
  static Counter* const match_requests =
      MetricsRegistry::Global().GetCounter(
          metric_names::kServiceMatchRequests);
  Timer timer;
  match_requests->Increment();

  MatchOutcome outcome;
  {
    GatedReaderLock lock(*this);
    TheoryLease theory(this);
    Result<ProbeResult> probe = engine_.MatchOnly(record, *theory);
    if (!probe.ok()) return probe.status();
    outcome.matches = std::move(probe->matches);
    if (!outcome.matches.empty()) {
      const std::vector<uint32_t>& labels = engine_.CachedComponentLabels();
      outcome.entities.reserve(outcome.matches.size());
      for (TupleId t : outcome.matches) {
        outcome.entities.push_back(labels[t]);
      }
      std::sort(outcome.entities.begin(), outcome.entities.end());
      outcome.entities.erase(
          std::unique(outcome.entities.begin(), outcome.entities.end()),
          outcome.entities.end());
      outcome.entity = outcome.entities.front();
    }
  }
  match_us->Record(static_cast<double>(timer.ElapsedMicros()));
  return outcome;
}

Result<MatchService::UpsertOutcome> MatchService::Upsert(
    std::vector<Record> records) {
  static LatencyHistogram* const upsert_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceUpsertUs);
  static Counter* const upsert_requests =
      MetricsRegistry::Global().GetCounter(
          metric_names::kServiceUpsertRequests);
  static Counter* const upsert_records =
      MetricsRegistry::Global().GetCounter(
          metric_names::kServiceUpsertRecords);
  Timer timer;
  upsert_requests->Increment();
  upsert_records->Add(records.size());

  // The server refuses with a typed "recovering" error before getting
  // here; a direct caller (tests, embedders) instead blocks until
  // recovery lands — the observable behaviour the old synchronous
  // constructor gave — so an upsert can never race the recovery
  // thread's engine writes or hit a not-yet-open WAL. A failed recovery
  // refuses: serving it could re-lose an acknowledged write.
  if (lifecycle() == Lifecycle::kRecovering) (void)WaitForRecovery();
  if (lifecycle() != Lifecycle::kServing) {
    return Status::InvalidArgument(
        std::string("service is not serving (") +
        LifecycleName(lifecycle()) + ")");
  }

  std::future<Result<UpsertSlice>> future =
      batcher_->Submit(std::move(records));
  Result<UpsertSlice> slice = future.get();
  if (!slice.ok()) return slice.status();

  UpsertOutcome outcome;
  outcome.entities = std::move(slice->entities);
  outcome.base_tid = slice->base_tid;
  outcome.merges = std::move(slice->merges);
  outcome.new_pairs =
      last_batch_new_pairs_.load(std::memory_order_relaxed);
  upsert_us->Record(static_cast<double>(timer.ElapsedMicros()));
  return outcome;
}

Result<BatchCommit> MatchService::CommitBatch(std::vector<Record> records) {
  // Stage attribution (metric_names.h): the WAL records its own
  // wal_append/wal_fsync split; apply and label_rebuild are timed here.
  // Every stage gets exactly one sample per committed batch — with
  // durability off the WAL stages record 0 µs so the counts (and the
  // p50 decomposition of service.upsert_us) stay comparable.
  static LatencyHistogram* const stage_apply_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceStageApplyUs);
  static LatencyHistogram* const stage_label_rebuild_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceStageLabelRebuildUs);
  static Gauge* const records_resident = MetricsRegistry::Global().GetGauge(
      metric_names::kServiceRecordsResident);
  static Gauge* const pairs_resident = MetricsRegistry::Global().GetGauge(
      metric_names::kServicePairsResident);
  static Gauge* const components_resident =
      MetricsRegistry::Global().GetGauge(
          metric_names::kServiceComponentsResident);

  // Write-ahead: the batch must be durable (per the fsync policy)
  // before any of it becomes visible, because the moment AddBatch runs,
  // Match results reflect it — and an acknowledgement must survive a
  // crash. The append runs outside the engine lock so readers never
  // wait on an fsync. A WAL failure fails the whole batch (the clients
  // see an error and nothing is applied) and latches the writer
  // fail-stop — see WalWriter::Commit.
  uint64_t seq = 0;
  if (wal_ != nullptr) {
    Result<uint64_t> committed = wal_->Commit(records);
    if (!committed.ok()) return committed.status();
    seq = *committed;
  } else {
    static LatencyHistogram* const stage_wal_append_us =
        MetricsRegistry::Global().GetHistogram(
            metric_names::kServiceStageWalAppendUs);
    static LatencyHistogram* const stage_wal_fsync_us =
        MetricsRegistry::Global().GetHistogram(
            metric_names::kServiceStageWalFsyncUs);
    stage_wal_append_us->Record(0.0);
    stage_wal_fsync_us->Record(0.0);
  }

  BatchCommit result;
  {
    writer_waiting_.fetch_add(1, std::memory_order_acq_rel);
    WriterLock lock(engine_mu_);
    writer_waiting_.fetch_sub(1, std::memory_order_acq_rel);

    Dataset batch(engine_.records().schema().num_fields() > 0
                      ? engine_.records().schema()
                      : employee::MakeSchema());
    batch.Reserve(records.size());
    for (Record& record : records) batch.Append(std::move(record));

    TheoryLease theory(this);
    const size_t first_new = engine_.size();
    // Snapshot the pre-batch labels of the resident records: diffing
    // them against the rebuilt cache below yields the batch's closure
    // delta (which pre-existing components this batch united). The copy
    // is O(n) like the rebuild itself, so it does not change the
    // commit's complexity.
    std::vector<uint32_t> old_labels;
    if (first_new > 0) old_labels = engine_.CachedComponentLabels();
    Timer stage_timer;
    Result<uint64_t> added = engine_.AddBatch(batch, *theory);
    stage_apply_us->Record(static_cast<double>(stage_timer.ElapsedMicros()));
    if (wal_ != nullptr) applied_seq_ = seq;
    if (!added.ok()) return added.status();
    last_batch_new_pairs_.store(*added, std::memory_order_relaxed);
    // Rebuild the label cache while still exclusive, so concurrent
    // readers after this commit only ever hit the warm cache.
    stage_timer.Restart();
    const std::vector<uint32_t>& labels = engine_.CachedComponentLabels();
    stage_label_rebuild_us->Record(
        static_cast<double>(stage_timer.ElapsedMicros()));
    result.base_tid = static_cast<TupleId>(first_new);
    result.labels.assign(labels.begin() + first_new, labels.end());
    // Closure delta: a resident record whose label changed was absorbed
    // into another component (labels are smallest-tuple-id, so they only
    // ever decrease). Dedup'd per (survivor, absorbed) pair.
    for (size_t i = 0; i < old_labels.size(); ++i) {
      if (labels[i] != old_labels[i]) {
        result.merges.emplace_back(labels[i], old_labels[i]);
      }
    }
    std::sort(result.merges.begin(), result.merges.end());
    result.merges.erase(
        std::unique(result.merges.begin(), result.merges.end()),
        result.merges.end());
    // Resident sizes, refreshed while exclusive so the gauges always
    // describe a committed state (readers of the gauges take no lock).
    records_resident->Set(static_cast<double>(engine_.size()));
    pairs_resident->Set(static_cast<double>(engine_.pairs().size()));
    components_resident->Set(static_cast<double>(engine_.NumEntities()));
  }
  // Outside engine_mu_: the snapshotter lock is a leaf, never nested
  // inside the engine lock (docs/concurrency.md).
  if (snapshotter_ != nullptr) snapshotter_->NotifyBatch();
  return result;
}

MatchService::Stats MatchService::GetStats() const {
  GatedReaderLock lock(*this);
  Stats stats;
  stats.records = engine_.size();
  stats.entities = engine_.NumEntities();
  stats.pairs = engine_.pairs().size();
  return stats;
}

MatchService::DurabilityInfo MatchService::GetDurability() const {
  DurabilityInfo info;
  if (wal_ == nullptr) return info;
  info.enabled = true;
  info.recovery = recovery_;
  info.snapshot_seq =
      snapshotter_ != nullptr ? snapshotter_->last_saved_seq() : 0;
  if (info.snapshot_seq < recovery_.snapshot_seq) {
    info.snapshot_seq = recovery_.snapshot_seq;
  }
  Status wal_health = wal_->health();
  info.wal_failed = !wal_health.ok();
  if (info.wal_failed) info.wal_error = wal_health.ToString();
  info.wal_open_segment_bytes = wal_->open_segment_bytes();
  if (snapshotter_ != nullptr) {
    info.snapshot_age_ms = snapshotter_->ms_since_last_save();
    // Keep the gauge fresh: it otherwise only moves when a save lands.
    MetricsRegistry::Global()
        .GetGauge(metric_names::kServiceSnapshotAgeMs)
        ->Set(info.snapshot_age_ms);
  }
  {
    GatedReaderLock lock(*this);
    info.applied_seq = applied_seq_;
  }
  return info;
}

Status MatchService::SnapshotNow() {
  if (snapshotter_ == nullptr) {
    return Status::InvalidArgument("durability is not enabled");
  }
  return snapshotter_->SnapshotNow();
}

void MatchService::Drain() {
  // Recovery must land (or fail) before teardown: the recovery thread
  // owns wal_/snapshotter_ construction until then.
  (void)WaitForRecovery();
  if (recovery_thread_.joinable()) recovery_thread_.join();
  batcher_->Drain();
  const bool crashed = crashed_.load(std::memory_order_relaxed);
  if (snapshotter_ != nullptr) {
    // A simulated crash must leave the data dir exactly as a dead
    // process would: no parting snapshot, no WAL truncation.
    snapshotter_->Stop(/*final_snapshot=*/!crashed);
  }
  if (wal_ != nullptr) wal_->Close();
  if (crashed) return;
  // Flush the pooled theories' batched rule statistics into the global
  // registry so the final run report carries them.
  MutexLock lock(theory_mu_);
  for (const auto& theory : theory_pool_) theory->FlushMetrics();
}

Dataset MatchService::CopyRecords() const {
  GatedReaderLock lock(*this);
  return engine_.records();
}

std::vector<uint32_t> MatchService::ComponentLabels() const {
  GatedReaderLock lock(*this);
  return engine_.ComponentLabels();
}

std::vector<size_t> MatchService::committed_batch_sizes() const {
  return batcher_->committed_batch_sizes();
}

}  // namespace mergepurge
