#include "service/match_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace mergepurge {

// RAII lease of a theory instance from the pool (see header: theories are
// not shareable across threads, so each in-flight request gets its own).
class MatchService::TheoryLease {
 public:
  explicit TheoryLease(const MatchService* service) : service_(service) {
    {
      MutexLock lock(service_->theory_mu_);
      if (!service_->theory_pool_.empty()) {
        theory_ = std::move(service_->theory_pool_.back());
        service_->theory_pool_.pop_back();
      }
    }
    if (theory_ == nullptr) theory_ = service_->theory_factory_();
  }

  ~TheoryLease() {
    MutexLock lock(service_->theory_mu_);
    service_->theory_pool_.push_back(std::move(theory_));
  }

  EquationalTheory& operator*() const { return *theory_; }

 private:
  const MatchService* service_;
  std::unique_ptr<EquationalTheory> theory_;
};

MatchService::MatchService(MatchServiceOptions options,
                           TheoryFactory theory_factory)
    : options_(std::move(options)),
      theory_factory_(std::move(theory_factory)),
      engine_(options_.engine) {
  batcher_ = std::make_unique<UpsertBatcher>(
      options_.batcher, [this](std::vector<Record> records) {
        return CommitBatch(std::move(records));
      });
}

MatchService::~MatchService() { Drain(); }

MatchService::GatedReaderLock::GatedReaderLock(const MatchService& service)
    : service_(service) {
  // Hold off while the writer is waiting (see writer_waiting_ in the
  // header); otherwise a tight reader loop starves commits forever.
  while (service_.writer_waiting_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  service_.engine_mu_.LockShared();
}

MatchService::GatedReaderLock::~GatedReaderLock() {
  service_.engine_mu_.UnlockShared();
}

Result<MatchService::MatchOutcome> MatchService::Match(
    const Record& record) const {
  static LatencyHistogram* const match_us =
      MetricsRegistry::Global().GetHistogram(metric_names::kServiceMatchUs);
  static Counter* const match_requests =
      MetricsRegistry::Global().GetCounter(
          metric_names::kServiceMatchRequests);
  Timer timer;
  match_requests->Increment();

  MatchOutcome outcome;
  {
    GatedReaderLock lock(*this);
    TheoryLease theory(this);
    Result<ProbeResult> probe = engine_.MatchOnly(record, *theory);
    if (!probe.ok()) return probe.status();
    outcome.matches = std::move(probe->matches);
    if (!outcome.matches.empty()) {
      const std::vector<uint32_t>& labels = engine_.CachedComponentLabels();
      outcome.entities.reserve(outcome.matches.size());
      for (TupleId t : outcome.matches) {
        outcome.entities.push_back(labels[t]);
      }
      std::sort(outcome.entities.begin(), outcome.entities.end());
      outcome.entities.erase(
          std::unique(outcome.entities.begin(), outcome.entities.end()),
          outcome.entities.end());
      outcome.entity = outcome.entities.front();
    }
  }
  match_us->Record(static_cast<double>(timer.ElapsedMicros()));
  return outcome;
}

Result<MatchService::UpsertOutcome> MatchService::Upsert(
    std::vector<Record> records) {
  static LatencyHistogram* const upsert_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceUpsertUs);
  static Counter* const upsert_requests =
      MetricsRegistry::Global().GetCounter(
          metric_names::kServiceUpsertRequests);
  static Counter* const upsert_records =
      MetricsRegistry::Global().GetCounter(
          metric_names::kServiceUpsertRecords);
  Timer timer;
  upsert_requests->Increment();
  upsert_records->Add(records.size());

  std::future<Result<std::vector<uint32_t>>> future =
      batcher_->Submit(std::move(records));
  Result<std::vector<uint32_t>> labels = future.get();
  if (!labels.ok()) return labels.status();

  UpsertOutcome outcome;
  outcome.entities = std::move(*labels);
  outcome.new_pairs =
      last_batch_new_pairs_.load(std::memory_order_relaxed);
  upsert_us->Record(static_cast<double>(timer.ElapsedMicros()));
  return outcome;
}

Result<std::vector<uint32_t>> MatchService::CommitBatch(
    std::vector<Record> records) {
  writer_waiting_.fetch_add(1, std::memory_order_acq_rel);
  WriterLock lock(engine_mu_);
  writer_waiting_.fetch_sub(1, std::memory_order_acq_rel);

  Dataset batch(engine_.records().schema().num_fields() > 0
                    ? engine_.records().schema()
                    : employee::MakeSchema());
  batch.Reserve(records.size());
  for (Record& record : records) batch.Append(std::move(record));

  TheoryLease theory(this);
  const size_t first_new = engine_.size();
  Result<uint64_t> added = engine_.AddBatch(batch, *theory);
  if (!added.ok()) return added.status();
  last_batch_new_pairs_.store(*added, std::memory_order_relaxed);
  // Rebuild the label cache while still exclusive, so concurrent readers
  // after this commit only ever hit the warm cache.
  const std::vector<uint32_t>& labels = engine_.CachedComponentLabels();
  return std::vector<uint32_t>(labels.begin() + first_new, labels.end());
}

MatchService::Stats MatchService::GetStats() const {
  GatedReaderLock lock(*this);
  Stats stats;
  stats.records = engine_.size();
  stats.entities = engine_.NumEntities();
  stats.pairs = engine_.pairs().size();
  return stats;
}

void MatchService::Drain() {
  batcher_->Drain();
  // Flush the pooled theories' batched rule statistics into the global
  // registry so the final run report carries them.
  MutexLock lock(theory_mu_);
  for (const auto& theory : theory_pool_) theory->FlushMetrics();
}

Dataset MatchService::CopyRecords() const {
  GatedReaderLock lock(*this);
  return engine_.records();
}

std::vector<uint32_t> MatchService::ComponentLabels() const {
  GatedReaderLock lock(*this);
  return engine_.ComponentLabels();
}

std::vector<size_t> MatchService::committed_batch_sizes() const {
  return batcher_->committed_batch_sizes();
}

}  // namespace mergepurge
