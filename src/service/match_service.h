// MatchService: the concurrency façade that turns the single-threaded
// IncrementalMergePurge into a safely shared online engine.
//
// Concurrency model (documented in docs/service.md):
//   * single writer / multiple readers over a std::shared_mutex;
//   * ALL writes flow through one UpsertBatcher writer thread, which
//     takes the exclusive lock only for the AddBatch call itself (plus
//     the label-cache rebuild) — queueing and coalescing happen outside
//     the lock, so a Match never serializes behind the batching window,
//     only behind the (short) commit critical section;
//   * Match takes the shared lock and uses the engine's read-only probe
//     (MatchOnly) plus the cached component labels, so readers never
//     mutate engine state and any number run concurrently.
//
// Equational theories batch rule statistics in plain (non-atomic)
// members, so instances must not be shared across threads. The service
// therefore takes a theory FACTORY and maintains a pool: each in-flight
// request leases an instance, and the lease returns it when done. Pool
// size ≈ peak concurrent requests (bounded by the server's worker count).

#ifndef MERGEPURGE_SERVICE_MATCH_SERVICE_H_
#define MERGEPURGE_SERVICE_MATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/incremental.h"
#include "service/batcher.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "util/sync.h"

namespace mergepurge {

// Crash durability for the resident engine (docs/durability.md). With a
// data_dir set, every committed batch is WAL-appended BEFORE it is
// applied — an upsert is acknowledged only after its batch is durable
// per the fsync policy — and a background snapshotter bounds WAL replay.
// Construction recovers: newest valid snapshot + WAL tail replay.
struct DurabilityOptions {
  // Empty: durability off (the PR-4 in-memory behaviour).
  std::string data_dir;
  FsyncPolicy fsync = FsyncPolicy::kGroup;
  // Snapshot after this many committed batches or this much time with
  // new state, whichever comes first.
  uint64_t snapshot_every_batches = 256;
  int snapshot_interval_ms = 1000;
  // Keep truncated-away WAL segments (CI's recovery-vs-replay diff).
  bool keep_wal = false;
  // Test hook: sleep this long on the recovery thread before replaying,
  // so tests can observe the kRecovering lifecycle state reliably.
  int recovery_delay_for_testing_ms = 0;
};

struct MatchServiceOptions {
  // Keys / window / conditioning for the resident incremental engine.
  MergePurgeOptions engine;
  BatcherOptions batcher;
  DurabilityOptions durability;
};

// What startup recovery found (run report + stats op).
struct RecoveryInfo {
  bool snapshot_loaded = false;
  uint64_t snapshot_seq = 0;
  uint64_t snapshot_records = 0;
  uint64_t batches_replayed = 0;
  uint64_t records_replayed = 0;
  uint64_t truncated_bytes = 0;
  uint64_t last_seq = 0;  // Applied sequence after recovery.
  double recovery_ms = 0.0;
};

class MatchService {
 public:
  // Service lifecycle, observable without any lock (the health op reads
  // it while recovery still holds the engine write lock). Durability on:
  // the service constructs in kRecovering and a background thread
  // replays snapshot + WAL tail; it transitions to kServing (or kFailed
  // on a recovery error) exactly once. Durability off: kServing from
  // birth. Draining is a server-level state (the socket layer owns the
  // drain flag), not a service one.
  enum class Lifecycle { kRecovering, kServing, kFailed };

  // The factory is called whenever the lease pool is empty; instances
  // are reused across requests but never across concurrent ones.
  using TheoryFactory = std::function<std::unique_ptr<EquationalTheory>()>;

  MatchService(MatchServiceOptions options, TheoryFactory theory_factory);
  ~MatchService();

  MatchService(const MatchService&) = delete;
  MatchService& operator=(const MatchService&) = delete;

  struct MatchOutcome {
    // Entity label of the best (smallest-label) matched component, or
    // nullopt when nothing matched.
    std::optional<uint32_t> entity;
    // Matched tuple ids, ascending.
    std::vector<TupleId> matches;
    // Distinct entity labels of the matches, ascending. More than one
    // means the probe bridges components the engine has not (yet) merged.
    std::vector<uint32_t> entities;
  };

  // Read-only probe; never admits the record. Safe from any thread.
  Result<MatchOutcome> Match(const Record& record) const;

  struct UpsertOutcome {
    // One entity label per submitted record, in submission order.
    std::vector<uint32_t> entities;
    // New matching pairs discovered by the COMMITTED BATCH containing
    // this request (batch-level, not per-request: coalescing makes a
    // per-request attribution ill-defined).
    uint64_t new_pairs = 0;
    // Tuple id of this request's first record; the request's records
    // land contiguously, so record i has tid `base_tid + i`.
    TupleId base_tid = 0;
    // {survivor, absorbed} component-label unions caused by the
    // containing batch (whole-batch delta; idempotent to replay). A
    // sharding coordinator folds these into its global closure.
    std::vector<std::pair<uint32_t, uint32_t>> merges;
  };

  // Admits records via the batcher; blocks until their batch commits
  // (bounded by the batcher deadline plus commit time).
  Result<UpsertOutcome> Upsert(std::vector<Record> records);

  struct Stats {
    uint64_t records = 0;
    uint64_t entities = 0;
    uint64_t pairs = 0;
  };
  Stats GetStats() const;

  // --- Durability surface (no-ops / zeros when data_dir is unset). ---

  // Current lifecycle state; never blocks. Transitions are one-way
  // (kRecovering -> kServing | kFailed), so a caller that observed
  // kServing can rely on it.
  Lifecycle lifecycle() const {
    return lifecycle_.load(std::memory_order_acquire);
  }
  static const char* LifecycleName(Lifecycle lifecycle);

  // Blocks until startup recovery finishes (returns immediately when
  // durability is off) and returns its status. The service must not
  // serve upserts when this is non-OK (a served upsert could be
  // re-lost).
  Status WaitForRecovery() const;

  // Recovery or WAL-open failure; blocks until recovery finishes.
  Status init_status() const { return WaitForRecovery(); }

  struct DurabilityInfo {
    bool enabled = false;
    uint64_t applied_seq = 0;   // Last sequence applied to the engine.
    uint64_t snapshot_seq = 0;  // Last durably snapshotted sequence.
    // WAL fail-stop state: false while healthy; once true every further
    // commit fails and wal_error carries the latched first error.
    bool wal_failed = false;
    std::string wal_error;
    uint64_t wal_open_segment_bytes = 0;
    // ms since the last durable save by THIS process; -1 before one.
    double snapshot_age_ms = -1.0;
    RecoveryInfo recovery;
  };
  // Blocks on the engine reader lock — call only when serving (the
  // health op reports a reduced document while recovering).
  DurabilityInfo GetDurability() const;

  // Synchronous snapshot of the current state (tests, drain path).
  Status SnapshotNow();

  // Test hook: makes teardown behave like a crash — Drain skips the
  // final snapshot and flushes nothing — so a second service over the
  // same data dir exercises the recovery path in-process.
  void SimulateCrashForTesting() {
    crashed_.store(true, std::memory_order_relaxed);
  }

  // Flushes pending upserts and stops the writer thread. Further Upserts
  // fail; Match/GetStats keep working on the frozen state. Idempotent.
  void Drain();

  // --- Post-drain inspection (final reports, contract tests). ---

  // Copy of all admitted records in admission order.
  Dataset CopyRecords() const;

  // Entity partition over the admitted records.
  std::vector<uint32_t> ComponentLabels() const;

  // Committed batch sizes in commit order (see UpsertBatcher).
  std::vector<size_t> committed_batch_sizes() const;

  uint64_t batches_committed() const {
    return batcher_->batches_committed();
  }

 private:
  class TheoryLease;

  // Scoped shared (reader) acquisition of engine_mu_ that honors the
  // write-preference gate: yields while a writer is waiting, then takes
  // the shared lock for its lifetime.
  class MERGEPURGE_SCOPED_CAPABILITY GatedReaderLock {
   public:
    explicit GatedReaderLock(const MatchService& service)
        MERGEPURGE_ACQUIRE_SHARED(service.engine_mu_);
    ~GatedReaderLock() MERGEPURGE_RELEASE();

    GatedReaderLock(const GatedReaderLock&) = delete;
    GatedReaderLock& operator=(const GatedReaderLock&) = delete;

   private:
    const MatchService& service_;
  };

  // Batcher commit hook: the only writer of engine_. With durability
  // on, the batch is WAL-committed BEFORE the engine lock is taken —
  // write-ahead ordering, and the (possibly fsyncing) append never
  // blocks readers.
  Result<BatchCommit> CommitBatch(std::vector<Record> records);

  // Startup recovery: snapshot restore + WAL tail replay, then opens
  // the WAL for appends and starts the snapshotter. Runs on the
  // recovery thread; RunRecovery wraps it with the lifecycle
  // transition and completion signal.
  Status InitDurability();
  void RunRecovery();

  MatchServiceOptions options_;
  TheoryFactory theory_factory_;

  mutable SharedMutex engine_mu_{lockrank::kEngine};
  // Write-preference gate. glibc's rwlock is reader-preferring: a steady
  // stream of Match calls can starve the batcher's writer thread
  // indefinitely. The writer raises this before blocking on the
  // exclusive lock; readers spin-yield while it is raised, so in-flight
  // reads finish but new ones queue behind the commit.
  mutable std::atomic<int> writer_waiting_{0};
  // Readers hold engine_mu_ shared and stick to the engine's const
  // surface (MatchOnly, CachedComponentLabels); AddBatch runs only under
  // the exclusive lock, on the batcher's writer thread.
  IncrementalMergePurge engine_ MERGEPURGE_GUARDED_BY(engine_mu_);

  // Sequence of the last batch applied to the engine (== the WAL
  // sequence it was logged under). Only meaningful with durability on.
  uint64_t applied_seq_ MERGEPURGE_GUARDED_BY(engine_mu_) = 0;

  // new_pairs of the most recent committed batch (read by Upsert after
  // its future resolves; racy reads across batches are acceptable for a
  // batch-level diagnostic and documented as such).
  std::atomic<uint64_t> last_batch_new_pairs_{0};

  // --- Durability (null / default when data_dir is unset). ---
  // kServing from birth without durability; flipped by the recovery
  // thread (one-way) with durability on.
  std::atomic<Lifecycle> lifecycle_{Lifecycle::kServing};
  mutable Mutex recovery_mu_{lockrank::kRecovery};
  mutable CondVar recovery_cv_;
  bool recovery_done_ MERGEPURGE_GUARDED_BY(recovery_mu_) = true;
  Status init_status_ MERGEPURGE_GUARDED_BY(recovery_mu_);
  // Written by the recovery thread before lifecycle_ leaves
  // kRecovering; read-only once serving.
  RecoveryInfo recovery_;
  std::unique_ptr<WalWriter> wal_;
  std::unique_ptr<Snapshotter> snapshotter_;
  std::thread recovery_thread_;
  std::atomic<bool> crashed_{false};

  // Leased under the engine lock (CommitBatch, Match): engine before
  // theory is a declared hierarchy edge, not an accident.
  mutable Mutex theory_mu_ MERGEPURGE_ACQUIRED_AFTER(engine_mu_){
      lockrank::kTheoryPool};
  mutable std::vector<std::unique_ptr<EquationalTheory>> theory_pool_
      MERGEPURGE_GUARDED_BY(theory_mu_);

  std::unique_ptr<UpsertBatcher> batcher_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_MATCH_SERVICE_H_
