#include "service/protocol.h"

#include <algorithm>
#include <cctype>

#include "util/string_util.h"

namespace mergepurge {

const char* ServiceErrorCodeName(ServiceErrorCode code) {
  switch (code) {
    case ServiceErrorCode::kBadJson:
      return "bad_json";
    case ServiceErrorCode::kBadRequest:
      return "bad_request";
    case ServiceErrorCode::kUnknownOp:
      return "unknown_op";
    case ServiceErrorCode::kBadRecord:
      return "bad_record";
    case ServiceErrorCode::kFrameTooLarge:
      return "frame_too_large";
    case ServiceErrorCode::kTooManyConnections:
      return "too_many_connections";
    case ServiceErrorCode::kDraining:
      return "draining";
    case ServiceErrorCode::kRecovering:
      return "recovering";
    case ServiceErrorCode::kConfigMismatch:
      return "config_mismatch";
    case ServiceErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

JsonValue RecordToJson(const Schema& schema, const Record& record) {
  JsonValue out = JsonValue::Object();
  for (FieldId f = 0; f < schema.num_fields(); ++f) {
    std::string_view value = record.field(f);
    // Empty fields are omitted; decoding treats absent as empty, so the
    // round trip is exact and match probes stay small on the wire.
    if (!value.empty()) {
      out.Set(schema.field_name(f), JsonValue(value));
    }
  }
  return out;
}

bool RecordFromJson(const Schema& schema, const JsonValue& value,
                    std::string_view where, Record* out,
                    ServiceError* error) {
  if (!value.is_object()) {
    *error = {ServiceErrorCode::kBadRecord,
              std::string(where) + " must be a JSON object"};
    return false;
  }
  Record record(std::vector<std::string>(schema.num_fields()));
  for (const auto& [key, field_value] : value.members()) {
    FieldId f = schema.FieldIndex(key);
    if (f == kInvalidField) {
      *error = {ServiceErrorCode::kBadRecord,
                std::string(where) + ": unknown field '" + key + "'"};
      return false;
    }
    if (!field_value.is_string()) {
      *error = {ServiceErrorCode::kBadRecord,
                std::string(where) + ": field '" + key +
                    "' must be a string"};
      return false;
    }
    record.set_field(f, field_value.string_value());
  }
  *out = std::move(record);
  return true;
}

std::string CanonicalKeysSpec(std::string_view spec) {
  std::string out;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view token = spec.substr(begin, end - begin);
    while (!token.empty() && std::isspace(static_cast<unsigned char>(
                                 token.front()))) {
      token.remove_prefix(1);
    }
    while (!token.empty() && std::isspace(static_cast<unsigned char>(
                                 token.back()))) {
      token.remove_suffix(1);
    }
    if (!token.empty()) {
      if (!out.empty()) out.push_back(',');
      for (char c : token) {
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
      }
    }
    begin = end + 1;
  }
  return out;
}

bool ParseRequest(std::string_view line, const Schema& schema,
                  ServiceRequest* out, ServiceError* error) {
  Result<JsonValue> parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    *error = {ServiceErrorCode::kBadJson, parsed.status().message()};
    return false;
  }
  const JsonValue& doc = *parsed;
  if (!doc.is_object()) {
    *error = {ServiceErrorCode::kBadJson, "request must be a JSON object"};
    return false;
  }
  // Reject unknown members outright: a misspelled key silently ignored is
  // a client bug that would otherwise surface as wrong answers.
  for (const auto& [key, value] : doc.members()) {
    (void)value;
    if (key != "op" && key != "id" && key != "record" && key != "records" &&
        key != "enabled" && key != "sample" && key != "keys" &&
        key != "window") {
      *error = {ServiceErrorCode::kBadRequest,
                "unknown request member '" + key + "'"};
      return false;
    }
  }

  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    *error = {ServiceErrorCode::kBadRequest,
              "request needs a string \"op\" member"};
    return false;
  }

  ServiceRequest request;
  if (const JsonValue* id = doc.Find("id")) request.id = *id;

  const std::string& name = op->string_value();
  const JsonValue* record = doc.Find("record");
  const JsonValue* records = doc.Find("records");
  const JsonValue* enabled = doc.Find("enabled");
  const JsonValue* sample = doc.Find("sample");
  if (name != "trace" && (enabled != nullptr || sample != nullptr)) {
    *error = {ServiceErrorCode::kBadRequest,
              name + " takes no \"enabled\"/\"sample\" members"};
    return false;
  }
  const JsonValue* keys = doc.Find("keys");
  const JsonValue* window = doc.Find("window");
  if (name != "hello" && (keys != nullptr || window != nullptr)) {
    *error = {ServiceErrorCode::kBadRequest,
              name + " takes no \"keys\"/\"window\" members"};
    return false;
  }
  if (name == "match") {
    request.op = ServiceRequest::Op::kMatch;
    if (record == nullptr || records != nullptr) {
      *error = {ServiceErrorCode::kBadRequest,
                "match takes exactly a \"record\" member"};
      return false;
    }
    Record r;
    if (!RecordFromJson(schema, *record, "record", &r, error)) return false;
    request.records.push_back(std::move(r));
  } else if (name == "upsert") {
    request.op = ServiceRequest::Op::kUpsert;
    if (records == nullptr || record != nullptr || !records->is_array() ||
        records->size() == 0) {
      *error = {ServiceErrorCode::kBadRequest,
                "upsert takes a non-empty \"records\" array"};
      return false;
    }
    request.records.reserve(records->size());
    for (size_t i = 0; i < records->size(); ++i) {
      Record r;
      if (!RecordFromJson(schema, records->at(i),
                          "records[" + std::to_string(i) + "]", &r, error)) {
        return false;
      }
      request.records.push_back(std::move(r));
    }
  } else if (name == "ping" || name == "stats" || name == "health") {
    request.op = name == "ping"    ? ServiceRequest::Op::kPing
                 : name == "stats" ? ServiceRequest::Op::kStats
                                   : ServiceRequest::Op::kHealth;
    if (record != nullptr || records != nullptr) {
      *error = {ServiceErrorCode::kBadRequest,
                name + " takes no record payload"};
      return false;
    }
  } else if (name == "trace") {
    request.op = ServiceRequest::Op::kTrace;
    if (record != nullptr || records != nullptr) {
      *error = {ServiceErrorCode::kBadRequest,
                name + " takes no record payload"};
      return false;
    }
    if (enabled == nullptr || enabled->kind() != JsonValue::Kind::kBool) {
      *error = {ServiceErrorCode::kBadRequest,
                "trace needs a boolean \"enabled\" member"};
      return false;
    }
    request.trace_enabled = enabled->bool_value();
    if (sample != nullptr) {
      if (!sample->is_number() || sample->int_value() < 1) {
        *error = {ServiceErrorCode::kBadRequest,
                  "trace \"sample\" must be a positive integer"};
        return false;
      }
      request.trace_sample = static_cast<uint64_t>(sample->int_value());
    }
  } else if (name == "hello") {
    request.op = ServiceRequest::Op::kHello;
    if (record != nullptr || records != nullptr) {
      *error = {ServiceErrorCode::kBadRequest,
                "hello takes no record payload"};
      return false;
    }
    if (keys != nullptr) {
      if (!keys->is_string()) {
        *error = {ServiceErrorCode::kBadRequest,
                  "hello \"keys\" must be a string"};
        return false;
      }
      request.hello_keys = CanonicalKeysSpec(keys->string_value());
    }
    if (window != nullptr) {
      if (!window->is_number() || window->int_value() < 1) {
        *error = {ServiceErrorCode::kBadRequest,
                  "hello \"window\" must be a positive integer"};
        return false;
      }
      request.hello_window = static_cast<uint64_t>(window->int_value());
    }
  } else {
    *error = {ServiceErrorCode::kUnknownOp,
              "unknown op '" + name +
                  "' (expected match, upsert, ping, stats, health, "
                  "trace, or hello)"};
    return false;
  }
  *out = std::move(request);
  return true;
}

namespace {

JsonValue ResponseBase(const JsonValue* id, bool ok) {
  JsonValue out = JsonValue::Object();
  out.Set("ok", JsonValue(ok));
  if (id != nullptr) out.Set("id", *id);
  return out;
}

std::string FinishLine(const JsonValue& doc) { return doc.Dump(0) + "\n"; }

}  // namespace

std::string MatchResponseLine(const JsonValue* id,
                              std::optional<uint32_t> entity,
                              const std::vector<TupleId>& matches,
                              const std::vector<uint32_t>& entities) {
  JsonValue out = ResponseBase(id, true);
  out.Set("entity", entity.has_value()
                        ? JsonValue(static_cast<uint64_t>(*entity))
                        : JsonValue());
  JsonValue match_array = JsonValue::Array();
  for (TupleId t : matches) {
    match_array.Append(JsonValue(static_cast<uint64_t>(t)));
  }
  out.Set("matches", std::move(match_array));
  JsonValue entity_array = JsonValue::Array();
  for (uint32_t e : entities) {
    entity_array.Append(JsonValue(static_cast<uint64_t>(e)));
  }
  out.Set("entities", std::move(entity_array));
  return FinishLine(out);
}

std::string UpsertResponseLine(
    const JsonValue* id, const std::vector<uint32_t>& entities,
    uint64_t new_pairs, const std::vector<TupleId>* tids,
    const std::vector<std::pair<uint32_t, uint32_t>>* merges) {
  JsonValue out = ResponseBase(id, true);
  JsonValue entity_array = JsonValue::Array();
  for (uint32_t e : entities) {
    entity_array.Append(JsonValue(static_cast<uint64_t>(e)));
  }
  out.Set("entities", std::move(entity_array));
  out.Set("new_pairs", JsonValue(new_pairs));
  if (tids != nullptr) {
    JsonValue tid_array = JsonValue::Array();
    for (TupleId t : *tids) {
      tid_array.Append(JsonValue(static_cast<uint64_t>(t)));
    }
    out.Set("tids", std::move(tid_array));
  }
  if (merges != nullptr) {
    JsonValue merge_array = JsonValue::Array();
    for (const auto& [survivor, absorbed] : *merges) {
      JsonValue pair = JsonValue::Array();
      pair.Append(JsonValue(static_cast<uint64_t>(survivor)));
      pair.Append(JsonValue(static_cast<uint64_t>(absorbed)));
      merge_array.Append(std::move(pair));
    }
    out.Set("merges", std::move(merge_array));
  }
  return FinishLine(out);
}

std::string PingResponseLine(const JsonValue* id) {
  JsonValue out = ResponseBase(id, true);
  out.Set("pong", JsonValue(true));
  return FinishLine(out);
}

std::string StatsResponseLine(
    const JsonValue* id, uint64_t records, uint64_t entities, uint64_t pairs,
    const ServiceDurabilityStats* durability, const JsonValue* extra) {
  JsonValue out = ResponseBase(id, true);
  out.Set("records", JsonValue(records));
  out.Set("entities", JsonValue(entities));
  out.Set("pairs", JsonValue(pairs));
  if (durability != nullptr && durability->enabled) {
    JsonValue d = JsonValue::Object();
    d.Set("wal_seq", JsonValue(durability->wal_seq));
    d.Set("snapshot_seq", JsonValue(durability->snapshot_seq));
    d.Set("recovery_batches_replayed",
          JsonValue(durability->recovery_batches_replayed));
    d.Set("recovery_ms", JsonValue(durability->recovery_ms));
    out.Set("durability", std::move(d));
  }
  if (extra != nullptr && extra->is_object()) {
    for (const auto& [key, value] : extra->members()) {
      out.Set(key, value);
    }
  }
  return FinishLine(out);
}

std::string HealthResponseLine(const JsonValue* id, const JsonValue& health) {
  JsonValue out = ResponseBase(id, true);
  for (const auto& [key, value] : health.members()) {
    out.Set(key, value);
  }
  return FinishLine(out);
}

std::string TraceResponseLine(const JsonValue* id, bool enabled,
                              uint64_t sample) {
  JsonValue out = ResponseBase(id, true);
  out.Set("tracing", JsonValue(enabled));
  out.Set("sample", JsonValue(sample));
  return FinishLine(out);
}

std::string HelloResponseLine(const JsonValue* id, const std::string& keys,
                              uint64_t window) {
  JsonValue out = ResponseBase(id, true);
  out.Set("keys", JsonValue(keys));
  out.Set("window", JsonValue(window));
  return FinishLine(out);
}

std::string ErrorResponseLine(const JsonValue* id,
                              const ServiceError& error) {
  JsonValue out = ResponseBase(id, false);
  JsonValue err = JsonValue::Object();
  err.Set("code", JsonValue(ServiceErrorCodeName(error.code)));
  err.Set("message", JsonValue(error.message));
  out.Set("error", std::move(err));
  return FinishLine(out);
}

Result<JsonValue> ParseResponseLine(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  return JsonValue::Parse(line);
}

// --- LineFrameReader. ---

bool LineFrameReader::Append(std::string_view data) {
  if (overflowed_) return false;
  buffer_.append(data.data(), data.size());
  // Only the first pending line can be checked here; NextLine() checks
  // each subsequent one as it surfaces.
  if (buffer_.find('\n', consumed_) == std::string::npos &&
      buffer_.size() - consumed_ > max_line_bytes_) {
    overflowed_ = true;
  }
  return !overflowed_;
}

bool LineFrameReader::NextLine(std::string* out) {
  if (overflowed_) return false;
  const size_t nl = buffer_.find('\n', consumed_);
  if (nl == std::string::npos) {
    if (buffer_.size() - consumed_ > max_line_bytes_) overflowed_ = true;
    // Compact the consumed prefix while idle so long-lived connections
    // don't grow the buffer without bound.
    if (consumed_ > 0) {
      buffer_.erase(0, consumed_);
      consumed_ = 0;
    }
    return false;
  }
  if (nl - consumed_ > max_line_bytes_) {
    overflowed_ = true;
    return false;
  }
  size_t length = nl - consumed_;
  if (length > 0 && buffer_[consumed_ + length - 1] == '\r') --length;
  out->assign(buffer_, consumed_, length);
  consumed_ = nl + 1;
  return true;
}

}  // namespace mergepurge
