// Wire protocol of the online merge/purge service: newline-delimited JSON
// (one request object per line, one response object per line) over a
// byte stream. The full request/response shapes and error codes are
// specified in docs/service.md; this header is the single in-process
// source of truth for both the server and the loadgen client.
//
// Requests:
//   {"op":"match","record":{<field>:<string>,...}[,"id":<any>]}
//   {"op":"upsert","records":[{...},...][,"id":<any>]}
//   {"op":"ping"[,"id":<any>]}
//   {"op":"stats"[,"id":<any>]}
//   {"op":"health"[,"id":<any>]}
//   {"op":"trace","enabled":<bool>[,"sample":<N>][,"id":<any>]}
//   {"op":"hello"[,"keys":"<spec>"][,"window":<N>][,"id":<any>]}
//
// Responses always carry "ok" and echo "id" when the request had one:
//   {"ok":true,...}                          — op-specific payload
//   {"ok":false,"error":{"code":..,"message":..}}
//
// Framing is LineFrameReader below: requests are split on '\n' ('\r'
// tolerated before it), with a hard per-line byte limit. A line that
// exceeds the limit is unrecoverable (the reader cannot tell where the
// next request starts reliably without buffering the oversized payload),
// so the server answers frame_too_large and closes the connection.

#ifndef MERGEPURGE_SERVICE_PROTOCOL_H_
#define MERGEPURGE_SERVICE_PROTOCOL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "record/dataset.h"
#include "record/record.h"
#include "util/status.h"

namespace mergepurge {

// Typed error vocabulary of the wire protocol. Names (ErrorCodeName) are
// part of the public contract — never renamed once shipped.
enum class ServiceErrorCode {
  kBadJson,          // Line is not a JSON object.
  kBadRequest,       // Valid JSON, wrong shape (missing/ill-typed member).
  kUnknownOp,        // "op" is not one of the known operations.
  kBadRecord,        // A record object has unknown fields or non-strings.
  kFrameTooLarge,    // Line exceeded the server's byte limit; fatal.
  kTooManyConnections,  // Connection cap reached; fatal.
  kDraining,         // Server is shutting down; request not admitted.
  kRecovering,       // Startup recovery still replaying; retry shortly.
  kConfigMismatch,   // hello carried a topology (keys/window) that
                     // differs from this server's; not retryable — the
                     // deployment is misconfigured.
  kInternal,         // Engine-side failure.
};

// Stable wire name, e.g. "bad_json".
const char* ServiceErrorCodeName(ServiceErrorCode code);

struct ServiceError {
  ServiceErrorCode code = ServiceErrorCode::kInternal;
  std::string message;
};

struct ServiceRequest {
  enum class Op { kMatch, kUpsert, kPing, kStats, kHealth, kTrace, kHello };

  Op op = Op::kPing;
  // Echoed verbatim into the response when present.
  std::optional<JsonValue> id;
  // kMatch: exactly one record; kUpsert: one or more.
  std::vector<Record> records;
  // kTrace only: the requested recorder state and sampling interval
  // (record one span per `trace_sample` sampled requests; absent keeps
  // the server's current interval).
  bool trace_enabled = false;
  std::optional<uint64_t> trace_sample;
  // kHello only: the caller's topology, for the server to verify
  // against its own. Absent members mean "don't check" (a bare hello is
  // a topology query).
  std::optional<std::string> hello_keys;
  std::optional<uint64_t> hello_window;
};

// Canonicalizes a --keys spec for the hello handshake: comma-split,
// whitespace-trimmed, lowercased, empties dropped, re-joined. Both ends
// canonicalize before comparing, so "Last-Name, Address" and
// "last-name,address" agree.
std::string CanonicalKeysSpec(std::string_view spec);

// --- Record <-> JSON. Records travel as objects keyed by schema field
// name; all values are strings (the record model is string fields).
// Absent fields decode as empty; unknown keys and non-string values are
// kBadRecord errors rather than silently dropped, so client bugs surface
// immediately. ---

JsonValue RecordToJson(const Schema& schema, const Record& record);

// `where` names the record in error messages ("record", "records[3]").
bool RecordFromJson(const Schema& schema, const JsonValue& value,
                    std::string_view where, Record* out, ServiceError* error);

// Parses one request line. Returns false and fills `error` on any
// protocol violation; `out` is valid only on success.
bool ParseRequest(std::string_view line, const Schema& schema,
                  ServiceRequest* out, ServiceError* error);

// --- Response builders. Every builder returns one complete line
// including the trailing '\n'. `id` may be nullptr (no echo). ---

std::string MatchResponseLine(const JsonValue* id,
                              std::optional<uint32_t> entity,
                              const std::vector<TupleId>& matches,
                              const std::vector<uint32_t>& entities);

// `tids`, when non-null, adds a "tids" array: the engine tuple id
// assigned to each submitted record, positionally aligned with
// "entities". `merges`, when non-null, adds a "merges" array of
// [survivor, absorbed] component-label pairs that this batch united —
// the incremental closure delta a sharding coordinator needs to keep a
// global union-find in sync without polling full label dumps. Both are
// response-side additions: clients that don't know them ignore them.
std::string UpsertResponseLine(
    const JsonValue* id, const std::vector<uint32_t>& entities,
    uint64_t new_pairs, const std::vector<TupleId>* tids = nullptr,
    const std::vector<std::pair<uint32_t, uint32_t>>* merges = nullptr);

std::string PingResponseLine(const JsonValue* id);

// Durability figures for the stats response (docs/durability.md).
// Emitted as a "durability" object only when enabled, so pre-durability
// clients see an unchanged response shape.
struct ServiceDurabilityStats {
  bool enabled = false;
  uint64_t wal_seq = 0;       // Last applied (WAL-logged) sequence.
  uint64_t snapshot_seq = 0;  // Last durably snapshotted sequence.
  uint64_t recovery_batches_replayed = 0;
  double recovery_ms = 0.0;
};

// `extra`, when non-null, must be a JSON object; its members are merged
// into the response after the fixed fields (the server uses this for the
// live-introspection sections: state, uptime, counters, gauges, latency
// summaries, windowed rates — see docs/observability.md).
std::string StatsResponseLine(
    const JsonValue* id, uint64_t records, uint64_t entities, uint64_t pairs,
    const ServiceDurabilityStats* durability = nullptr,
    const JsonValue* extra = nullptr);

// `health` must be a JSON object; its members are merged after "ok"/"id"
// (the server builds the lifecycle/WAL/snapshot/resident sections).
std::string HealthResponseLine(const JsonValue* id, const JsonValue& health);

// Acknowledges a trace toggle with the resulting recorder state.
std::string TraceResponseLine(const JsonValue* id, bool enabled,
                              uint64_t sample);

// Answers a hello with this server's topology: the canonical keys spec
// ("" when the server was not told one) and window (0 likewise).
std::string HelloResponseLine(const JsonValue* id, const std::string& keys,
                              uint64_t window);

std::string ErrorResponseLine(const JsonValue* id, const ServiceError& error);

// Parses a response line (loadgen / tests). Returns the parsed object;
// error status when the line is not valid JSON.
Result<JsonValue> ParseResponseLine(std::string_view line);

// --- Framing. ---

// Incremental newline-splitter with a hard per-line byte limit. Feed raw
// socket reads with Append(); drain complete lines with NextLine(). Once
// the buffered partial line exceeds max_line_bytes the reader enters the
// overflowed state permanently (the connection must be closed).
class LineFrameReader {
 public:
  explicit LineFrameReader(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  // Appends raw bytes. Returns false if the reader (now) overflowed.
  bool Append(std::string_view data);

  // Pops the next complete line (without the newline; a trailing '\r' is
  // stripped). Returns false when no complete line is buffered.
  bool NextLine(std::string* out);

  bool overflowed() const { return overflowed_; }

  // Bytes of the current incomplete line (diagnostics / tests).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix of buffer_ already returned as lines.
  bool overflowed_ = false;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_PROTOCOL_H_
