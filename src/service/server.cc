#include "service/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mergepurge {

namespace {

// One socket read per iteration of the connection loop.
constexpr size_t kReadChunkBytes = 16 * 1024;

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

Server::Server(ServerOptions options, MatchService* service)
    : options_(std::move(options)),
      service_(service),
      schema_(employee::MakeSchema()) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
}

Server::~Server() {
  RequestDrain();
  Join();
}

Result<uint16_t> Server::Start() {
  // A peer closing mid-write must surface as a send() error on that
  // connection, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StringPrintf("socket: %s", strerror(errno)));
  }
  int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::IoError(
        StringPrintf("bind %s:%u: %s", options_.bind_address.c_str(),
                     options_.port, strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status =
        Status::IoError(StringPrintf("listen: %s", strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status status =
        Status::IoError(StringPrintf("getsockname: %s", strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  MERGEPURGE_LOG(kInfo) << "serving on " << options_.bind_address << ":" << port_
           << " (" << options_.num_workers << " workers, cap "
           << options_.max_connections << " connections)";
  return port_;
}

void Server::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  // Wake the blocked accept() (Linux returns EINVAL after shutdown).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Wake every blocked read; SHUT_RD leaves response writes working.
  MutexLock lock(conn_mu_);
  for (int fd : open_fds_) ::shutdown(fd, SHUT_RD);
}

void Server::Join() {
  bool expected = false;
  if (!joined_.compare_exchange_strong(expected, true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_ != nullptr) pool_->Wait();
  if (listen_fd_ >= 0) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
  }
  service_->Drain();
  MERGEPURGE_LOG(kInfo) << "drained: " << connections_accepted_.load()
           << " connections served";
}

void Server::AcceptLoop() {
  static Counter* const connections = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceConnections);
  static Counter* const rejected = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceConnectionsRejected);

  while (!draining()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (draining()) break;
      MERGEPURGE_LOG(kWarning) << "accept: " << strerror(errno);
      break;
    }
    if (draining()) {
      CloseQuietly(fd);
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      rejected->Increment();
      WriteAll(fd, ErrorResponseLine(
                       nullptr, {ServiceErrorCode::kTooManyConnections,
                                 "connection cap reached"}));
      CloseQuietly(fd);
      continue;
    }
    connections->Increment();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    RegisterConnection(fd);
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  if (options_.idle_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = options_.idle_timeout_ms / 1000;
    tv.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  LineFrameReader reader(options_.max_line_bytes);
  char buffer[kReadChunkBytes];
  std::string line;
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) break;  // Peer closed (or drain shut the read side).
    if (n < 0) {
      // EAGAIN/EWOULDBLOCK is the idle timeout firing; anything else is
      // a dead peer. Either way the connection is done.
      if (errno == EINTR) continue;
      break;
    }
    if (!reader.Append(std::string_view(buffer, static_cast<size_t>(n)))) {
      WriteAll(fd, ErrorResponseLine(
                       nullptr, {ServiceErrorCode::kFrameTooLarge,
                                 StringPrintf("request line exceeds %zu "
                                              "bytes",
                                              options_.max_line_bytes)}));
      break;
    }
    while (reader.NextLine(&line)) {
      if (!WriteAll(fd, ProcessLine(line))) {
        open = false;
        break;
      }
    }
    if (open && reader.overflowed()) {
      WriteAll(fd, ErrorResponseLine(
                       nullptr, {ServiceErrorCode::kFrameTooLarge,
                                 StringPrintf("request line exceeds %zu "
                                              "bytes",
                                              options_.max_line_bytes)}));
      break;
    }
  }
  UnregisterConnection(fd);
  CloseQuietly(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

std::string Server::ProcessLine(const std::string& line) {
  static Counter* const requests = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceRequests);
  static Counter* const errors =
      MetricsRegistry::Global().GetCounter(metric_names::kServiceErrors);
  static LatencyHistogram* const request_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceRequestUs);

  Timer timer;
  requests->Increment();

  ServiceRequest request;
  ServiceError error;
  if (!ParseRequest(line, schema_, &request, &error)) {
    errors->Increment();
    request_us->Record(static_cast<double>(timer.ElapsedMicros()));
    return ErrorResponseLine(nullptr, error);
  }
  const JsonValue* id =
      request.id.has_value() ? &request.id.value() : nullptr;

  std::string response;
  switch (request.op) {
    case ServiceRequest::Op::kPing:
      response = PingResponseLine(id);
      break;
    case ServiceRequest::Op::kStats: {
      Span span("service-stats");
      MatchService::Stats stats = service_->GetStats();
      MatchService::DurabilityInfo durability = service_->GetDurability();
      ServiceDurabilityStats wire;
      wire.enabled = durability.enabled;
      wire.wal_seq = durability.applied_seq;
      wire.snapshot_seq = durability.snapshot_seq;
      wire.recovery_batches_replayed = durability.recovery.batches_replayed;
      wire.recovery_ms = durability.recovery.recovery_ms;
      response = StatsResponseLine(id, stats.records, stats.entities,
                                   stats.pairs, &wire);
      break;
    }
    case ServiceRequest::Op::kMatch: {
      Span span("service-match");
      Result<MatchService::MatchOutcome> outcome =
          service_->Match(request.records.front());
      if (!outcome.ok()) {
        errors->Increment();
        response = ErrorResponseLine(
            id, {ServiceErrorCode::kInternal,
                 outcome.status().ToString()});
      } else {
        response = MatchResponseLine(id, outcome->entity,
                                     outcome->matches, outcome->entities);
      }
      break;
    }
    case ServiceRequest::Op::kUpsert: {
      if (draining()) {
        errors->Increment();
        response = ErrorResponseLine(
            id, {ServiceErrorCode::kDraining,
                 "server is draining; upsert not admitted"});
        break;
      }
      Span span("service-upsert");
      span.AddArg("records",
                  static_cast<uint64_t>(request.records.size()));
      Result<MatchService::UpsertOutcome> outcome =
          service_->Upsert(std::move(request.records));
      if (!outcome.ok()) {
        errors->Increment();
        response = ErrorResponseLine(
            id, {ServiceErrorCode::kInternal,
                 outcome.status().ToString()});
      } else {
        response =
            UpsertResponseLine(id, outcome->entities, outcome->new_pairs);
      }
      break;
    }
  }
  request_us->Record(static_cast<double>(timer.ElapsedMicros()));
  return response;
}

bool Server::WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

void Server::RegisterConnection(int fd) {
  MutexLock lock(conn_mu_);
  open_fds_.insert(fd);
  // Registering during a drain means the accept raced RequestDrain's fd
  // sweep; shut the read side now so the worker sees EOF immediately.
  if (draining()) ::shutdown(fd, SHUT_RD);
}

void Server::UnregisterConnection(int fd) {
  MutexLock lock(conn_mu_);
  open_fds_.erase(fd);
}

}  // namespace mergepurge
