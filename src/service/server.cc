#include "service/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <optional>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/engine_dispatcher.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mergepurge {

namespace {

// One socket read per iteration of the connection loop.
constexpr size_t kReadChunkBytes = 16 * 1024;

// Span of the windowed-rate section of the stats response.
constexpr double kStatsWindowSeconds = 10.0;

// Minimum gap between slow-request log lines.
constexpr int64_t kSlowLogMinIntervalMs = 1000;

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

const char* OpName(ServiceRequest::Op op) {
  switch (op) {
    case ServiceRequest::Op::kMatch:
      return "match";
    case ServiceRequest::Op::kUpsert:
      return "upsert";
    case ServiceRequest::Op::kPing:
      return "ping";
    case ServiceRequest::Op::kStats:
      return "stats";
    case ServiceRequest::Op::kHealth:
      return "health";
    case ServiceRequest::Op::kTrace:
      return "trace";
    case ServiceRequest::Op::kHello:
      return "hello";
  }
  return "unknown";
}

// {count, sum, p50, p90, p99} per histogram. Quantiles are interpolated
// from the bucket counts (obs/window.h); *_us histograms report them in
// microseconds.
JsonValue HistogramSummaries(const MetricsSnapshot& snapshot) {
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, histogram] : snapshot.histograms) {
    JsonValue doc = JsonValue::Object();
    doc.Set("count", histogram.count);
    doc.Set("sum", histogram.sum);
    doc.Set("p50", HistogramQuantile(histogram, 0.50));
    doc.Set("p90", HistogramQuantile(histogram, 0.90));
    doc.Set("p99", HistogramQuantile(histogram, 0.99));
    histograms.Set(name, std::move(doc));
  }
  return histograms;
}

// Typed refusal for engine-touching ops while the service cannot serve
// them: recovering is retryable (the client waits and resends), failed
// is terminal.
std::string NotServingResponse(const JsonValue* id,
                               MatchService::Lifecycle lifecycle) {
  if (lifecycle == MatchService::Lifecycle::kRecovering) {
    return ErrorResponseLine(
        id, {ServiceErrorCode::kRecovering,
             "startup recovery in progress; retry shortly"});
  }
  return ErrorResponseLine(id, {ServiceErrorCode::kInternal,
                                "startup recovery failed; service is "
                                "not serving"});
}

}  // namespace

Server::Server(ServerOptions options, MatchService* service)
    : options_(std::move(options)),
      owned_dispatcher_(std::make_unique<EngineDispatcher>(service)),
      dispatcher_(owned_dispatcher_.get()),
      schema_(employee::MakeSchema()) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
}

Server::Server(ServerOptions options, RequestDispatcher* dispatcher)
    : options_(std::move(options)),
      dispatcher_(dispatcher),
      schema_(employee::MakeSchema()) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_connections == 0) options_.max_connections = 1;
}

Server::~Server() {
  RequestDrain();
  Join();
}

Result<uint16_t> Server::Start() {
  // A peer closing mid-write must surface as a send() error on that
  // connection, not kill the process.
  ::signal(SIGPIPE, SIG_IGN);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StringPrintf("socket: %s", strerror(errno)));
  }
  int on = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status = Status::IoError(
        StringPrintf("bind %s:%u: %s", options_.bind_address.c_str(),
                     options_.port, strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status =
        Status::IoError(StringPrintf("listen: %s", strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status status =
        Status::IoError(StringPrintf("getsockname: %s", strerror(errno)));
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);

  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  MERGEPURGE_LOG(kInfo) << "serving on " << options_.bind_address << ":" << port_
           << " (" << options_.num_workers << " workers, cap "
           << options_.max_connections << " connections)";
  return port_;
}

void Server::RequestDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  // Wake the blocked accept() (Linux returns EINVAL after shutdown).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Wake every blocked read; SHUT_RD leaves response writes working.
  MutexLock lock(conn_mu_);
  for (int fd : open_fds_) ::shutdown(fd, SHUT_RD);
}

void Server::Join() {
  bool expected = false;
  if (!joined_.compare_exchange_strong(expected, true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pool_ != nullptr) pool_->Wait();
  if (listen_fd_ >= 0) {
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
  }
  dispatcher_->Drain();
  MERGEPURGE_LOG(kInfo) << "drained: " << connections_accepted_.load()
           << " connections served";
}

void Server::AcceptLoop() {
  static Counter* const connections = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceConnections);
  static Counter* const rejected = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceConnectionsRejected);

  while (!draining()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (draining()) break;
      MERGEPURGE_LOG(kWarning) << "accept: " << strerror(errno);
      break;
    }
    if (draining()) {
      CloseQuietly(fd);
      break;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      rejected->Increment();
      WriteAll(fd, ErrorResponseLine(
                       nullptr, {ServiceErrorCode::kTooManyConnections,
                                 "connection cap reached"}));
      CloseQuietly(fd);
      continue;
    }
    connections->Increment();
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    RegisterConnection(fd);
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void Server::HandleConnection(int fd) {
  if (options_.idle_timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = options_.idle_timeout_ms / 1000;
    tv.tv_usec = (options_.idle_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  LineFrameReader reader(options_.max_line_bytes);
  char buffer[kReadChunkBytes];
  std::string line;
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n == 0) break;  // Peer closed (or drain shut the read side).
    if (n < 0) {
      // EAGAIN/EWOULDBLOCK is the idle timeout firing; anything else is
      // a dead peer. Either way the connection is done.
      if (errno == EINTR) continue;
      break;
    }
    if (!reader.Append(std::string_view(buffer, static_cast<size_t>(n)))) {
      WriteAll(fd, ErrorResponseLine(
                       nullptr, {ServiceErrorCode::kFrameTooLarge,
                                 StringPrintf("request line exceeds %zu "
                                              "bytes",
                                              options_.max_line_bytes)}));
      break;
    }
    while (reader.NextLine(&line)) {
      if (!WriteAll(fd, ProcessLine(line))) {
        open = false;
        break;
      }
    }
    if (open && reader.overflowed()) {
      WriteAll(fd, ErrorResponseLine(
                       nullptr, {ServiceErrorCode::kFrameTooLarge,
                                 StringPrintf("request line exceeds %zu "
                                              "bytes",
                                              options_.max_line_bytes)}));
      break;
    }
  }
  UnregisterConnection(fd);
  CloseQuietly(fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

std::string Server::ProcessLine(const std::string& line) {
  static Counter* const requests = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceRequests);
  static Counter* const errors =
      MetricsRegistry::Global().GetCounter(metric_names::kServiceErrors);
  static LatencyHistogram* const request_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceRequestUs);

  Timer timer;
  requests->Increment();

  ServiceRequest request;
  ServiceError error;
  if (!ParseRequest(line, schema_, &request, &error)) {
    errors->Increment();
    request_us->Record(static_cast<double>(timer.ElapsedMicros()));
    return ErrorResponseLine(nullptr, error);
  }
  const JsonValue* id =
      request.id.has_value() ? &request.id.value() : nullptr;
  const MatchService::Lifecycle lifecycle = dispatcher_->lifecycle();
  const bool sampled = SampleTrace();

  std::string response;
  switch (request.op) {
    case ServiceRequest::Op::kPing:
      response = PingResponseLine(id);
      break;
    case ServiceRequest::Op::kHealth:
      // Health must answer while recovery still holds the engine write
      // lock, so BuildHealthDoc never touches engine state unless the
      // service is serving.
      response = HealthResponseLine(id, BuildHealthDoc());
      break;
    case ServiceRequest::Op::kHello: {
      // Like ping/health, hello must answer while recovery still holds
      // the engine write lock: the coordinator verifies topology at
      // startup, exactly when shards are likely to be replaying.
      const bool keys_mismatch =
          request.hello_keys.has_value() &&
          !options_.topology_keys.empty() &&
          *request.hello_keys != options_.topology_keys;
      const bool window_mismatch =
          request.hello_window.has_value() &&
          options_.topology_window != 0 &&
          *request.hello_window != options_.topology_window;
      if (keys_mismatch || window_mismatch) {
        errors->Increment();
        std::string message =
            "topology mismatch: this server runs keys=" +
            options_.topology_keys +
            " window=" + std::to_string(options_.topology_window) +
            ", caller sent";
        if (request.hello_keys.has_value()) {
          message += " keys=" + *request.hello_keys;
        }
        if (request.hello_window.has_value()) {
          message += " window=" + std::to_string(*request.hello_window);
        }
        response = ErrorResponseLine(
            id, {ServiceErrorCode::kConfigMismatch, message});
      } else {
        response = HelloResponseLine(id, options_.topology_keys,
                                     options_.topology_window);
      }
      break;
    }
    case ServiceRequest::Op::kTrace: {
      if (request.trace_sample.has_value()) {
        trace_sample_.store(*request.trace_sample,
                            std::memory_order_relaxed);
      }
      TraceRecorder& recorder = TraceRecorder::Global();
      if (request.trace_enabled) {
        recorder.Enable();
      } else {
        recorder.Disable();
      }
      response = TraceResponseLine(
          id, recorder.enabled(),
          trace_sample_.load(std::memory_order_relaxed));
      break;
    }
    case ServiceRequest::Op::kStats: {
      if (lifecycle != MatchService::Lifecycle::kServing) {
        errors->Increment();
        response = NotServingResponse(id, lifecycle);
        break;
      }
      std::optional<Span> span;
      if (sampled) span.emplace("service-stats");
      JsonValue extra = BuildStatsExtra();
      response = dispatcher_->HandleStats(id, extra);
      break;
    }
    case ServiceRequest::Op::kMatch: {
      if (lifecycle != MatchService::Lifecycle::kServing) {
        errors->Increment();
        response = NotServingResponse(id, lifecycle);
        break;
      }
      std::optional<Span> span;
      if (sampled) span.emplace("service-match");
      response = dispatcher_->HandleMatch(id, std::move(request.records));
      break;
    }
    case ServiceRequest::Op::kUpsert: {
      if (lifecycle != MatchService::Lifecycle::kServing) {
        errors->Increment();
        response = NotServingResponse(id, lifecycle);
        break;
      }
      if (draining()) {
        errors->Increment();
        response = ErrorResponseLine(
            id, {ServiceErrorCode::kDraining,
                 "server is draining; upsert not admitted"});
        break;
      }
      std::optional<Span> span;
      if (sampled) {
        span.emplace("service-upsert");
        span->AddArg("records",
                     static_cast<uint64_t>(request.records.size()));
      }
      response = dispatcher_->HandleUpsert(id, std::move(request.records));
      break;
    }
  }
  const double elapsed_us = static_cast<double>(timer.ElapsedMicros());
  request_us->Record(elapsed_us);
  if (options_.slow_request_us > 0 &&
      elapsed_us >= static_cast<double>(options_.slow_request_us)) {
    LogSlowRequest(request, id, elapsed_us, line.size());
  }
  return response;
}

const char* Server::StateName() const {
  switch (dispatcher_->lifecycle()) {
    case MatchService::Lifecycle::kRecovering:
      return "recovering";
    case MatchService::Lifecycle::kFailed:
      return "failed";
    case MatchService::Lifecycle::kServing:
      break;
  }
  return draining() ? "draining" : "serving";
}

bool Server::SampleTrace() {
  if (!TraceRecorder::Global().enabled()) return false;
  const uint64_t sample = trace_sample_.load(std::memory_order_relaxed);
  if (sample <= 1) return true;
  return trace_request_counter_.fetch_add(1, std::memory_order_relaxed) %
             sample ==
         0;
}

void Server::LogSlowRequest(const ServiceRequest& request,
                            const JsonValue* id, double elapsed_us,
                            size_t line_bytes) {
  const int64_t now_ms = static_cast<int64_t>(uptime_timer_.ElapsedMillis());
  int64_t last = last_slow_log_ms_.load(std::memory_order_relaxed);
  if (now_ms - last < kSlowLogMinIntervalMs) return;
  // One worker wins the slot; the rest drop their line (the histogram
  // still counted the request, only the log line is rate-limited).
  if (!last_slow_log_ms_.compare_exchange_strong(
          last, now_ms, std::memory_order_relaxed)) {
    return;
  }
  MERGEPURGE_LOG(kWarning) << "slow request: op=" << OpName(request.op)
                           << (id != nullptr ? " id=" + id->Dump()
                                             : std::string())
                           << " us=" << static_cast<uint64_t>(elapsed_us)
                           << " bytes=" << line_bytes << " threshold_us="
                           << options_.slow_request_us;
}

JsonValue Server::BuildStatsExtra() {
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const double now_seconds = uptime_timer_.ElapsedSeconds();

  JsonValue extra = JsonValue::Object();
  extra.Set("state", StateName());
  extra.Set("uptime_seconds", now_seconds);
  if (!options_.instance_label.empty()) {
    extra.Set("instance", options_.instance_label);
  }

  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.Set(name, value);
  }
  extra.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.Set(name, value);
  }
  extra.Set("gauges", std::move(gauges));

  extra.Set("histograms", HistogramSummaries(snapshot));

  // Feed the ring AFTER summarizing, so the window never diffs a sample
  // against itself; the window then spans up to the previous
  // kStatsWindowSeconds of stats requests.
  JsonValue window_doc = JsonValue::Object();
  stats_ring_.Push(now_seconds, std::move(snapshot));
  SnapshotWindow window = stats_ring_.Over(kStatsWindowSeconds);
  window_doc.Set("valid", window.valid);
  if (window.valid) {
    window_doc.Set("seconds", window.seconds);
    window_doc.Set(
        "requests_per_sec",
        static_cast<double>(
            window.delta.counter(metric_names::kServiceRequests)) /
            window.seconds);
    window_doc.Set(
        "records_per_sec",
        static_cast<double>(
            window.delta.counter(metric_names::kServiceUpsertRecords)) /
            window.seconds);
    window_doc.Set("histograms", HistogramSummaries(window.delta));
  }
  extra.Set("window", std::move(window_doc));
  return extra;
}

JsonValue Server::BuildHealthDoc() {
  JsonValue health = JsonValue::Object();
  health.Set("state", StateName());
  health.Set("uptime_seconds", uptime_timer_.ElapsedSeconds());
  if (!options_.instance_label.empty()) {
    health.Set("instance", options_.instance_label);
  }
  // Backend-specific sections (WAL/snapshot/resident for the engine
  // dispatcher, shard fan-out for the coordinator); the dispatcher
  // respects its own lifecycle so this never blocks behind a recovery
  // replay.
  dispatcher_->FillHealth(&health);
  return health;
}

bool Server::WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n =
        ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

void Server::RegisterConnection(int fd) {
  MutexLock lock(conn_mu_);
  open_fds_.insert(fd);
  // Registering during a drain means the accept raced RequestDrain's fd
  // sweep; shut the read side now so the worker sees EOF immediately.
  if (draining()) ::shutdown(fd, SHUT_RD);
}

void Server::UnregisterConnection(int fd) {
  MutexLock lock(conn_mu_);
  open_fds_.erase(fd);
}

}  // namespace mergepurge
