// Server: the socket front end of the online merge/purge service.
//
// A dedicated accept thread hands each connection to the shared
// ThreadPool (util/thread_pool.h); a worker owns the connection for its
// lifetime — reads newline-delimited JSON requests (service/protocol.h),
// dispatches them to the MatchService, and writes one response line per
// request. Defences, all testable without a real client:
//
//   * per-line byte limit (LineFrameReader): oversized frames get a
//     frame_too_large error and the connection is closed;
//   * idle timeout: a connection that sends nothing for idle_timeout_ms
//     is closed (SO_RCVTIMEO, no timer thread);
//   * connection cap: beyond max_connections, new connections receive a
//     too_many_connections error line and are closed immediately;
//   * malformed input (bad JSON, wrong shape, bad records) gets a typed
//     error line and the connection STAYS open — line framing preserves
//     sync;
//   * abrupt disconnects and mid-frame closes just end the connection;
//     the worker returns to the pool.
//
// Graceful drain (SIGTERM via obs/drain.h, or RequestDrain() directly):
// stop accepting, wake every blocked read, finish requests already
// buffered (upserts arriving after the drain began are refused with a
// "draining" error), flush the batcher, then Join() returns so the
// binary can write its final --metrics-out report.

#ifndef MERGEPURGE_SERVICE_SERVER_H_
#define MERGEPURGE_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/window.h"
#include "record/schema.h"
#include "service/dispatcher.h"
#include "service/match_service.h"
#include "service/protocol.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mergepurge {

struct ServerOptions {
  // IPv4 address to bind; the service is a backend, loopback by default.
  std::string bind_address = "127.0.0.1";

  // 0 picks an ephemeral port (Start() returns the actual one).
  uint16_t port = 7733;

  // Connection-handling workers. A worker owns one connection at a time,
  // so this is also the number of connections served CONCURRENTLY;
  // accepted connections beyond it wait for a free worker.
  size_t num_workers = 8;

  // Hard cap on connections admitted at once (serving + waiting).
  size_t max_connections = 64;

  // Per-request-line byte limit.
  size_t max_line_bytes = 1 << 20;

  // Close a connection after this long without a complete read.
  // 0 disables the timeout.
  int idle_timeout_ms = 30000;

  // Log a structured warning for any request slower than this many
  // microseconds (rate-limited to one line per second so a pathological
  // burst cannot flood the log). 0 disables slow-request logging.
  int slow_request_us = 0;

  // When non-empty, stamped as "instance" into every stats and health
  // response (and surfaced in the run report by the binaries), so
  // multi-shard output is attributable per process.
  std::string instance_label;

  // The topology this server was configured with, answered (and
  // verified) by the hello op: canonical --keys spec
  // (protocol.h CanonicalKeysSpec) and window size. A hello carrying a
  // different topology gets a config_mismatch error — the coordinator
  // handshake that stops a mis-deployed shard fleet before any record
  // is routed. Empty / 0 mean "not configured": hello then answers
  // without checking that member.
  std::string topology_keys;
  uint64_t topology_window = 0;
};

class Server {
 public:
  // Convenience: single-node service — wraps `service` (which must
  // outlive the server) in an owned EngineDispatcher.
  Server(ServerOptions options, MatchService* service);

  // General form: any backend behind the RequestDispatcher seam (the
  // shard coordinator uses this). `dispatcher` must outlive the server.
  Server(ServerOptions options, RequestDispatcher* dispatcher);

  // Drains and joins if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the accept thread. Returns the bound port.
  Result<uint16_t> Start();

  uint16_t port() const { return port_; }

  // Begins a graceful drain: stops accepting and wakes blocked reads.
  // Thread-safe and idempotent; callable from a SignalDrain callback.
  void RequestDrain();

  // Blocks until the accept thread and every connection have finished,
  // then drains the MatchService. Call after RequestDrain() (or let a
  // signal trigger it). Idempotent.
  void Join();

  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  // The composite lifecycle string the health/stats ops report:
  // "recovering" / "failed" from the service, else "draining" /
  // "serving" from the socket layer's drain flag.
  const char* StateName() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  // Parses and dispatches one request line; returns the response line.
  std::string ProcessLine(const std::string& line);
  static bool WriteAll(int fd, std::string_view data);

  void RegisterConnection(int fd);
  void UnregisterConnection(int fd);

  // True when this request should open a trace span: the global recorder
  // is enabled and this is the first of each `trace_sample_` requests.
  bool SampleTrace();

  // Rate-limited structured warning for a request that exceeded
  // options_.slow_request_us.
  void LogSlowRequest(const ServiceRequest& request, const JsonValue* id,
                      double elapsed_us, size_t line_bytes);

  // The live-introspection sections merged into the stats response:
  // state, uptime, full counters/gauges, histogram quantile summaries,
  // and windowed rates over the last kStatsWindowSeconds (fed by a
  // snapshot ring that grows one sample per stats call).
  JsonValue BuildStatsExtra();

  // The health document: lifecycle + WAL fail-stop state + snapshot age
  // + resident sizes. While recovering (or failed) it reports a reduced
  // document without touching the engine locks.
  JsonValue BuildHealthDoc();

  ServerOptions options_;
  // Owned only by the convenience (MatchService) constructor.
  std::unique_ptr<RequestDispatcher> owned_dispatcher_;
  RequestDispatcher* dispatcher_;
  Schema schema_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> draining_{false};
  std::atomic<bool> joined_{false};

  std::unique_ptr<ThreadPool> pool_;
  std::thread accept_thread_;

  Mutex conn_mu_{lockrank::kServerConn};
  std::set<int> open_fds_ MERGEPURGE_GUARDED_BY(conn_mu_);
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> connections_accepted_{0};

  // --- Live introspection (docs/observability.md). ---
  // Steady-clock epoch for uptime_seconds and the snapshot ring's
  // timestamps; starts at construction.
  Timer uptime_timer_;
  // One sample per stats request; Over(10s) yields the windowed rates.
  SnapshotRing stats_ring_;
  // Span-sampling interval, adjustable at runtime via the trace op:
  // one span per this many requests while the recorder is enabled.
  std::atomic<uint64_t> trace_sample_{64};
  std::atomic<uint64_t> trace_request_counter_{0};
  // Slow-request log rate limiter: uptime milliseconds of the last
  // emitted line; claimed by compare-exchange so concurrent workers emit
  // at most one line per second between them.
  std::atomic<int64_t> last_slow_log_ms_{-1000000};
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_SERVER_H_
