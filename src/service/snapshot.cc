#include "service/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "core/checkpoint.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/fs.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mergepurge {

namespace {

constexpr char kSnapshotMagic[] = "MPSNAP1\n";
constexpr size_t kSnapshotMagicLen = 8;
constexpr char kManifestMagic[] = "MPSS1";
constexpr char kManifestName[] = "snapshot.manifest";

std::string EncodeBody(uint64_t config_digest, const SnapshotState& state) {
  std::string body;
  PutU64(&body, state.seq);
  PutU64(&body, config_digest);
  const Schema& schema = state.records.schema();
  PutU32(&body, static_cast<uint32_t>(schema.num_fields()));
  for (const std::string& name : schema.field_names()) {
    PutU32(&body, static_cast<uint32_t>(name.size()));
    body.append(name);
  }
  PutU64(&body, state.records.size());
  for (const Record& record : state.records.records()) {
    PutU32(&body, static_cast<uint32_t>(record.fields().size()));
    for (const std::string& field : record.fields()) {
      PutU32(&body, static_cast<uint32_t>(field.size()));
      body.append(field);
    }
  }
  const auto pairs = state.pairs.ToSortedVector();
  PutU64(&body, pairs.size());
  for (const auto& [lo, hi] : pairs) {
    PutU32(&body, lo);
    PutU32(&body, hi);
  }
  return body;
}

Status DecodeBody(std::string_view body, const std::string& path,
                  uint64_t expected_config, SnapshotState* out) {
  size_t pos = 0;
  uint64_t config_digest = 0;
  uint32_t field_count = 0;
  if (!GetU64(body, &pos, &out->seq) ||
      !GetU64(body, &pos, &config_digest) ||
      !GetU32(body, &pos, &field_count)) {
    return Status::ParseError(path + ": truncated snapshot header");
  }
  if (config_digest != expected_config) {
    return Status::InvalidArgument(StringPrintf(
        "%s: snapshot config digest %016llx does not match engine %016llx "
        "(engine parameters changed; remove the data dir to start fresh)",
        path.c_str(), static_cast<unsigned long long>(config_digest),
        static_cast<unsigned long long>(expected_config)));
  }
  std::vector<std::string> field_names;
  field_names.reserve(field_count);
  for (uint32_t f = 0; f < field_count; ++f) {
    uint32_t len = 0;
    if (!GetU32(body, &pos, &len) || body.size() - pos < len) {
      return Status::ParseError(path + ": truncated schema");
    }
    field_names.emplace_back(body.substr(pos, len));
    pos += len;
  }
  out->records = Dataset(Schema(std::move(field_names)));
  uint64_t record_count = 0;
  if (!GetU64(body, &pos, &record_count)) {
    return Status::ParseError(path + ": truncated record count");
  }
  out->records.Reserve(record_count);
  for (uint64_t r = 0; r < record_count; ++r) {
    uint32_t record_fields = 0;
    if (!GetU32(body, &pos, &record_fields)) {
      return Status::ParseError(path + ": truncated record");
    }
    std::vector<std::string> fields;
    fields.reserve(record_fields);
    for (uint32_t f = 0; f < record_fields; ++f) {
      uint32_t len = 0;
      if (!GetU32(body, &pos, &len) || body.size() - pos < len) {
        return Status::ParseError(path + ": truncated record field");
      }
      fields.emplace_back(body.substr(pos, len));
      pos += len;
    }
    out->records.Append(Record(std::move(fields)));
  }
  uint64_t pair_count = 0;
  if (!GetU64(body, &pos, &pair_count)) {
    return Status::ParseError(path + ": truncated pair count");
  }
  out->pairs.Reserve(pair_count);
  for (uint64_t p = 0; p < pair_count; ++p) {
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!GetU32(body, &pos, &lo) || !GetU32(body, &pos, &hi)) {
      return Status::ParseError(path + ": truncated pair");
    }
    out->pairs.Add(lo, hi);
  }
  if (pos != body.size()) {
    return Status::ParseError(path + ": trailing bytes after snapshot body");
  }
  return Status::OK();
}

// Loads and fully validates one snapshot file.
Status LoadSnapshotFile(const std::string& path, uint64_t expected_config,
                        SnapshotState* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open snapshot: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  if (data.size() < kSnapshotMagicLen ||
      data.compare(0, kSnapshotMagicLen, kSnapshotMagic) != 0) {
    return Status::ParseError(path + ": not a snapshot file");
  }
  size_t pos = kSnapshotMagicLen;
  uint64_t body_len = 0;
  uint32_t crc = 0;
  if (!GetU64(data, &pos, &body_len) || !GetU32(data, &pos, &crc) ||
      data.size() - pos != body_len) {
    return Status::ParseError(path + ": truncated snapshot");
  }
  std::string_view body(data.data() + pos, body_len);
  if (Crc32(body) != crc) {
    return Status::ParseError(path + ": snapshot checksum mismatch");
  }
  return DecodeBody(body, path, expected_config, out);
}

// Parses "snap-<16 hex>.mps" -> seq; false for any other name.
bool ParseSnapshotName(const std::string& name, uint64_t* seq) {
  if (name.size() != 5 + 16 + 4 || name.compare(0, 5, "snap-") != 0 ||
      name.compare(21, 4, ".mps") != 0) {
    return false;
  }
  char* end = nullptr;
  const std::string hex = name.substr(5, 16);
  *seq = std::strtoull(hex.c_str(), &end, 16);
  return end == hex.c_str() + 16;
}

}  // namespace

uint64_t EngineConfigDigest(const MergePurgeOptions& options) {
  uint64_t digest = Fnv1a64("engine-config");
  digest = Fnv1a64(
      StringPrintf("|m=%d;w=%zu;c=%d;s=%d",
                   static_cast<int>(options.method), options.window,
                   options.condition_records ? 1 : 0,
                   options.spell_correct_city ? 1 : 0),
      digest);
  for (const KeySpec& spec : options.keys) {
    digest = Fnv1a64(
        StringPrintf("|k=%016llx",
                     static_cast<unsigned long long>(KeySpecDigest(spec))),
        digest);
  }
  return digest;
}

std::string SnapshotFileName(uint64_t seq) {
  return StringPrintf("snap-%016llx.mps",
                      static_cast<unsigned long long>(seq));
}

Status SaveSnapshot(const std::string& dir, uint64_t config_digest,
                    const SnapshotState& state, FaultInjector* faults) {
  const std::string body = EncodeBody(config_digest, state);
  std::string file;
  file.reserve(kSnapshotMagicLen + 12 + body.size());
  file.append(kSnapshotMagic, kSnapshotMagicLen);
  PutU64(&file, body.size());
  PutU32(&file, Crc32(body));
  file.append(body);

  const std::string path = dir + "/" + SnapshotFileName(state.seq);
  const std::string tmp = path + ".tmp";

  // Crash point: process dies mid-write, leaving a partial temp file.
  // Recovery must ignore it (only renamed files are ever loaded).
  Status fault = faults->OnPoint(fault_points::kSnapshotWrite);
  if (!fault.ok()) {
    std::ofstream torn(tmp, std::ios::binary | std::ios::trunc);
    torn.write(file.data(), static_cast<std::streamsize>(file.size() / 2));
    return fault;
  }
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + tmp);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out) return Status::IoError("write failed: " + tmp);
  }
  MERGEPURGE_RETURN_NOT_OK(FsyncPath(tmp));

  // Crash point: process dies after the temp write but before the
  // rename — the snapshot never becomes visible.
  fault = faults->OnPoint(fault_points::kSnapshotRename);
  if (!fault.ok()) return fault;
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)RemoveFile(tmp);
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  MERGEPURGE_RETURN_NOT_OK(FsyncPath(dir));

  // Commit record: the manifest names the newest snapshot. Written last
  // so it never points at a file that is not fully durable.
  std::string manifest;
  manifest.append(kManifestMagic);
  manifest.push_back('\n');
  manifest.append(StringPrintf(
      "seq %016llx\n", static_cast<unsigned long long>(state.seq)));
  manifest.append(StringPrintf(
      "config %016llx\n", static_cast<unsigned long long>(config_digest)));
  manifest.append("file " + SnapshotFileName(state.seq) + "\n");
  MERGEPURGE_RETURN_NOT_OK(
      WriteFileDurable(dir + "/" + kManifestName, manifest));

  // Old snapshot files are garbage once the manifest moved on; keep just
  // the newest so the directory doesn't grow without bound. Best-effort:
  // a leftover file is wasted disk, not a correctness problem.
  Result<std::vector<std::string>> names = ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      uint64_t seq = 0;
      if (ParseSnapshotName(name, &seq) && seq < state.seq) {
        (void)RemoveFile(dir + "/" + name);
      }
    }
  }
  return Status::OK();
}

Result<SnapshotState> LoadNewestSnapshot(const std::string& dir,
                                         uint64_t config_digest) {
  // Prefer the manifest's file: it is the committed pointer.
  const std::string manifest_path = dir + "/" + kManifestName;
  std::string manifest_file;
  {
    std::ifstream in(manifest_path);
    std::string line;
    bool magic_ok = in && std::getline(in, line) && line == kManifestMagic;
    while (magic_ok && std::getline(in, line)) {
      if (line.rfind("file ", 0) == 0) manifest_file = line.substr(5);
    }
  }
  uint64_t manifest_seq = 0;
  if (!manifest_file.empty() &&
      ParseSnapshotName(manifest_file, &manifest_seq)) {
    SnapshotState state;
    Status status = LoadSnapshotFile(dir + "/" + manifest_file,
                                     config_digest, &state);
    if (status.ok()) return state;
    // A config mismatch is a hard refusal (replaying under different
    // parameters silently corrupts the closure); anything else falls
    // through to the directory scan.
    if (status.code() == StatusCode::kInvalidArgument) return status;
  }

  // Fall back to the newest snap-*.mps that validates — covers a crash
  // between the snapshot rename and the manifest rewrite.
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> seqs;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseSnapshotName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  for (uint64_t seq : seqs) {
    SnapshotState state;
    Status status = LoadSnapshotFile(dir + "/" + SnapshotFileName(seq),
                                     config_digest, &state);
    if (status.ok()) return state;
    if (status.code() == StatusCode::kInvalidArgument) return status;
  }
  return Status::NotFound("no usable snapshot under " + dir);
}

// --- Snapshotter. ---

Snapshotter::Snapshotter(Options options, CopyFn copy, TruncateFn truncate)
    : options_(std::move(options)),
      copy_(std::move(copy)),
      truncate_(std::move(truncate)) {}

Snapshotter::~Snapshotter() { Stop(/*final_snapshot=*/false); }

void Snapshotter::Start() {
  MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Snapshotter::NotifyBatch() {
  MutexLock lock(mu_);
  if (++batches_since_save_ >= options_.every_batches) cv_.NotifyOne();
}

Status Snapshotter::SnapshotNow() { return SaveOnce(); }

void Snapshotter::Stop(bool final_snapshot) {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
    stop_ = true;
    cv_.NotifyAll();
  }
  if (thread_.joinable()) thread_.join();
  if (final_snapshot) (void)SaveOnce();
}

uint64_t Snapshotter::last_saved_seq() const {
  MutexLock lock(mu_);
  return last_saved_seq_;
}

double Snapshotter::ms_since_last_save() const {
  MutexLock lock(mu_);
  if (!saved_once_) return -1.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - last_saved_at_)
      .count();
}

void Snapshotter::Loop() {
  MutexLock lock(mu_);
  while (!stop_) {
    if (batches_since_save_ < options_.every_batches) {
      cv_.WaitFor(mu_, std::chrono::milliseconds(options_.interval_ms));
    }
    if (stop_) break;
    if (batches_since_save_ == 0) continue;
    lock.Unlock();
    (void)SaveOnce();
    lock.Lock();
  }
}

Status Snapshotter::SaveOnce() {
  // save_sequence_mu_-free: concurrent callers (the loop vs an explicit
  // SnapshotNow) both copy consistent state; the seq check below makes a
  // stale save a no-op and the rename makes same-seq saves idempotent.
  uint64_t last = 0;
  {
    MutexLock lock(mu_);
    last = last_saved_seq_;
    batches_since_save_ = 0;
  }
  SnapshotState state;
  if (!copy_(&state) || state.seq <= last) return Status::OK();

  Timer timer;
  Status status =
      SaveSnapshot(options_.dir, options_.config_digest, state);
  static Counter* const saves = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceSnapshotSaves);
  static Counter* const failures = MetricsRegistry::Global().GetCounter(
      metric_names::kServiceSnapshotFailures);
  static LatencyHistogram* const write_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceSnapshotWriteUs);
  if (!status.ok()) {
    // Non-fatal: the WAL still holds everything this snapshot would
    // have covered; the next tick retries.
    failures->Increment();
    return status;
  }
  saves->Increment();
  write_us->Record(static_cast<double>(timer.ElapsedMicros()));
  {
    MutexLock lock(mu_);
    if (state.seq > last_saved_seq_) last_saved_seq_ = state.seq;
    saved_once_ = true;
    last_saved_at_ = std::chrono::steady_clock::now();
  }
  MetricsRegistry::Global()
      .GetGauge(metric_names::kServiceSnapshotAgeMs)
      ->Set(0.0);
  if (!options_.keep_wal && truncate_) truncate_(state.seq);
  return Status::OK();
}

}  // namespace mergepurge
