// Snapshots of the resident IncrementalMergePurge state, so the WAL can
// be truncated and recovery is O(tail) instead of O(history).
//
// A snapshot serializes the engine's conditioned record store and its
// discovered pair set as of applied sequence S. That pair is sufficient:
// IncrementalMergePurge::Restore rebuilds the per-key sorted orders by a
// full sort (provably identical to the incrementally merged orders — the
// comparator is a total order on (key, tuple id)) and the union-find
// from the pairs (canonical labeling is union-order independent), so
// restore(snapshot at S) + replay(WAL records with seq > S) reaches a
// closure byte-identical to the original run.
//
// On-disk protocol (the checkpoint.cc pattern, hardened):
//   1. write <dir>/snap-<16-hex S>.mps.tmp in full,
//   2. fsync the temp file,
//   3. rename to snap-<S>.mps and fsync the directory,
//   4. atomically rewrite <dir>/snapshot.manifest naming the new file —
//      the manifest is the commit record; a crash between 3 and 4
//      leaves a valid orphan snapshot that loading falls back to.
//
// File format ("MPSNAP1\n" header, little-endian integers):
//   u64 body_len | u32 crc32(body) | body
//   body: u64 seq | u64 config_digest
//         u32 field_count, per field: u32 len | bytes     (schema)
//         u64 record_count, per record: u32 field_count,
//             per field: u32 len | bytes
//         u64 pair_count, per pair: u32 lo | u32 hi       (sorted)
//
// The config digest (EngineConfigDigest) covers keys/window/method/
// conditioning: restarting with different engine parameters invalidates
// the snapshot (and the WAL — replay under new parameters would not
// reproduce the acknowledged closure, so recovery refuses instead).

#ifndef MERGEPURGE_SERVICE_SNAPSHOT_H_
#define MERGEPURGE_SERVICE_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "core/merge_purge.h"
#include "core/pair_set.h"
#include "record/dataset.h"
#include "util/fault_injector.h"
#include "util/status.h"
#include "util/sync.h"

namespace mergepurge {

// Engine-parameter identity hashed into snapshots (FNV-1a over method,
// window, conditioning flags, and every KeySpecDigest).
uint64_t EngineConfigDigest(const MergePurgeOptions& options);

// A copy of the durable engine state at one applied sequence.
struct SnapshotState {
  uint64_t seq = 0;
  Dataset records;
  PairSet pairs;
};

std::string SnapshotFileName(uint64_t seq);

// Writes `state` durably under `dir` (protocol above). Consults the
// snapshot-write / snapshot-rename crash points.
Status SaveSnapshot(const std::string& dir, uint64_t config_digest,
                    const SnapshotState& state,
                    FaultInjector* faults = &FaultInjector::Global());

// Loads the newest valid snapshot: the manifest's file when it passes
// CRC + config checks, else the highest-seq snap-*.mps that does
// (a crash between rename and manifest rewrite leaves exactly this
// orphan). NotFound when the directory holds no usable snapshot.
Result<SnapshotState> LoadNewestSnapshot(const std::string& dir,
                                         uint64_t config_digest);

// Background snapshot scheduler. Owns one thread that wakes every
// `interval_ms` or when `every_batches` commits accumulated (whichever
// first) and, when there is new state, copies it via `copy` and saves.
// A failed save is non-fatal — the WAL still has everything — and is
// counted in service.snapshot.failures; truncation only follows a
// successful save.
class Snapshotter {
 public:
  struct Options {
    std::string dir;
    uint64_t config_digest = 0;
    // Snapshot when this many batches committed since the last one...
    uint64_t every_batches = 256;
    // ...or this much time passed with at least one new batch.
    int interval_ms = 1000;
    // Skip WAL truncation after a save (CI keeps the full log to diff
    // recovery against serial replay; see tools/mergepurge_walcheck).
    bool keep_wal = false;
  };

  // `copy` snapshots current engine state (under the service's reader
  // lock); returns false when state hasn't advanced past the last save.
  // `truncate` is called with the saved seq after a durable save.
  using CopyFn = std::function<bool(SnapshotState*)>;
  using TruncateFn = std::function<void(uint64_t seq)>;

  Snapshotter(Options options, CopyFn copy, TruncateFn truncate);
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  void Start();
  // One batch committed; wakes the thread when the threshold is hit.
  void NotifyBatch();
  // Synchronous snapshot of current state (drain path / tests). Returns
  // the save status; OK with no work when state hasn't advanced.
  Status SnapshotNow();
  // Stops the thread; with `final_snapshot`, saves once more first.
  void Stop(bool final_snapshot);

  uint64_t last_saved_seq() const;

  // Milliseconds since the last durable save (this process; loaded
  // snapshots from a previous run don't count). Negative when no save
  // has happened yet — mirrored into service.snapshot.age_ms by the
  // health op, which reports -1 the same way.
  double ms_since_last_save() const;

 private:
  void Loop();
  // Copy + save + truncate; resets the batch counter.
  Status SaveOnce() MERGEPURGE_EXCLUDES(mu_);

  const Options options_;
  const CopyFn copy_;
  const TruncateFn truncate_;

  mutable Mutex mu_{lockrank::kSnapshotter};
  CondVar cv_;
  bool stop_ MERGEPURGE_GUARDED_BY(mu_) = false;
  uint64_t batches_since_save_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  uint64_t last_saved_seq_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  bool saved_once_ MERGEPURGE_GUARDED_BY(mu_) = false;
  std::chrono::steady_clock::time_point last_saved_at_
      MERGEPURGE_GUARDED_BY(mu_);
  bool started_ MERGEPURGE_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_SNAPSHOT_H_
