#include "service/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/coding.h"
#include "util/crc32.h"
#include "util/fs.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace mergepurge {

namespace {

constexpr char kSegmentMagic[] = "MPWAL1\n";
constexpr size_t kSegmentMagicLen = 7;
// A single batch is bounded by the batcher (hundreds of records of short
// fields); anything near this is a corrupt length field, not data.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

std::string EncodePayload(uint64_t seq, const std::vector<Record>& records) {
  std::string payload;
  PutU64(&payload, seq);
  PutU32(&payload, static_cast<uint32_t>(records.size()));
  for (const Record& record : records) {
    PutU32(&payload, static_cast<uint32_t>(record.fields().size()));
    for (const std::string& field : record.fields()) {
      PutU32(&payload, static_cast<uint32_t>(field.size()));
      payload.append(field);
    }
  }
  return payload;
}

bool DecodePayload(std::string_view payload, WalBatch* out) {
  size_t pos = 0;
  uint32_t record_count = 0;
  if (!GetU64(payload, &pos, &out->seq)) return false;
  if (!GetU32(payload, &pos, &record_count)) return false;
  out->records.clear();
  out->records.reserve(record_count);
  for (uint32_t r = 0; r < record_count; ++r) {
    uint32_t field_count = 0;
    if (!GetU32(payload, &pos, &field_count)) return false;
    std::vector<std::string> fields;
    fields.reserve(field_count);
    for (uint32_t f = 0; f < field_count; ++f) {
      uint32_t len = 0;
      if (!GetU32(payload, &pos, &len)) return false;
      if (payload.size() - pos < len) return false;
      fields.emplace_back(payload.substr(pos, len));
      pos += len;
    }
    out->records.emplace_back(std::move(fields));
  }
  return pos == payload.size();
}

Status WriteFully(int fd, std::string_view data, const std::string& path) {
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write failed: " + path + " (" +
                             std::strerror(errno) + ")");
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Parses "wal-<16 hex>.log" -> first seq; false for any other name.
bool ParseSegmentName(const std::string& name, uint64_t* first_seq) {
  if (name.size() != 4 + 16 + 4 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  char* end = nullptr;
  const std::string hex = name.substr(4, 16);
  *first_seq = std::strtoull(hex.c_str(), &end, 16);
  return end == hex.c_str() + 16;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways:
      return "always";
    case FsyncPolicy::kGroup:
      return "group";
    case FsyncPolicy::kNone:
      return "none";
  }
  return "group";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "group") return FsyncPolicy::kGroup;
  if (name == "none") return FsyncPolicy::kNone;
  return Status::InvalidArgument(
      "unknown fsync policy '" + name + "' (expected always, group, or none)");
}

std::string WalSegmentFileName(uint64_t first_seq) {
  return StringPrintf("wal-%016llx.log",
                      static_cast<unsigned long long>(first_seq));
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& dir, uint64_t next_seq) {
  MutexLock lock(mu_);
  if (fd_ >= 0) return Status::Internal("WalWriter::Open: already open");
  dir_ = dir;
  next_seq_ = next_seq;
  active_first_seq_ = next_seq;
  active_path_ = dir + "/" + WalSegmentFileName(next_seq);
  fd_ = open(active_path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot open WAL segment: " + active_path_ + " (" +
                           std::strerror(errno) + ")");
  }
  // A restart can reopen the segment it crashed in (recovery truncated
  // it back to whole records); only a fresh file needs the header.
  off_t size = lseek(fd_, 0, SEEK_END);
  if (size == 0) {
    MERGEPURGE_RETURN_NOT_OK(
        WriteFully(fd_, {kSegmentMagic, kSegmentMagicLen}, active_path_));
    size = static_cast<off_t>(kSegmentMagicLen);
  }
  open_segment_bytes_ = static_cast<uint64_t>(size);
  MetricsRegistry::Global()
      .GetGauge(metric_names::kServiceWalOpenSegmentBytes)
      ->Set(static_cast<double>(open_segment_bytes_));
  return Status::OK();
}

Status WalWriter::AppendLocked(const std::vector<Record>& records) {
  // Stage attribution: serialize+write vs fsync, one sample per batch in
  // each so the stage counts stay equal (a 0 µs fsync sample under
  // --fsync=none is the truth, not noise). service.wal.append_us in
  // Commit keeps the combined number.
  static LatencyHistogram* const stage_append_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceStageWalAppendUs);
  static LatencyHistogram* const stage_fsync_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceStageWalFsyncUs);
  Timer stage_timer;
  const std::string payload = EncodePayload(next_seq_, records);
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, Crc32(payload));
  frame.append(payload);

  // Crash point: the process dies mid-write, leaving a torn record. We
  // model it by writing only a prefix of the frame before failing.
  Status fault = faults_->OnPoint(fault_points::kWalAppend);
  if (!fault.ok()) {
    const std::string torn = frame.substr(0, 8 + payload.size() / 2);
    (void)WriteFully(fd_, torn, active_path_);
    return fault;
  }
  MERGEPURGE_RETURN_NOT_OK(WriteFully(fd_, frame, active_path_));

  static Counter* const appends =
      MetricsRegistry::Global().GetCounter(metric_names::kServiceWalAppends);
  static Counter* const bytes =
      MetricsRegistry::Global().GetCounter(metric_names::kServiceWalBytes);
  appends->Increment();
  bytes->Add(frame.size());
  open_segment_bytes_ += frame.size();
  MetricsRegistry::Global()
      .GetGauge(metric_names::kServiceWalOpenSegmentBytes)
      ->Set(static_cast<double>(open_segment_bytes_));
  stage_append_us->Record(static_cast<double>(stage_timer.ElapsedMicros()));

  stage_timer.Restart();
  if (policy_ != FsyncPolicy::kNone) {
    // Crash point: the append hit the page cache but the process dies
    // before fsync — the record may or may not survive the "crash".
    Status sync_fault = faults_->OnPoint(fault_points::kWalFsync);
    if (!sync_fault.ok()) return sync_fault;
    MERGEPURGE_RETURN_NOT_OK(FsyncFd(fd_, active_path_));
    static Counter* const fsyncs =
        MetricsRegistry::Global().GetCounter(metric_names::kServiceWalFsyncs);
    fsyncs->Increment();
  }
  stage_fsync_us->Record(static_cast<double>(stage_timer.ElapsedMicros()));
  return Status::OK();
}

Result<uint64_t> WalWriter::Commit(const std::vector<Record>& records) {
  Timer timer;
  MutexLock lock(mu_);
  if (!broken_.ok()) return broken_;
  if (fd_ < 0) return Status::Internal("WalWriter::Commit: not open");
  Status status = AppendLocked(records);
  if (!status.ok()) {
    // Fail-stop: a torn or unsynced record must stay the LAST record, so
    // the writer never appends past it (recovery truncates it away).
    broken_ = status;
    return status;
  }
  uint64_t seq = next_seq_++;
  static LatencyHistogram* const append_us =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kServiceWalAppendUs);
  append_us->Record(static_cast<double>(timer.ElapsedMicros()));
  return seq;
}

Result<uint64_t> WalWriter::TruncateThrough(uint64_t seq) {
  MutexLock lock(mu_);
  if (!broken_.ok()) return broken_;
  if (fd_ < 0) return Status::Internal("WalWriter::TruncateThrough: not open");

  // Rotate when the snapshot covers records in the active segment, so
  // those records become removable at the next truncation.
  if (seq >= active_first_seq_ && next_seq_ > active_first_seq_) {
    // Any failure mid-rotation leaves the writer in an undefined file
    // state, so it latches fail-stop like a Commit failure would.
    Status rotate = FsyncFd(fd_, active_path_);
    if (rotate.ok()) {
      close(fd_);
      fd_ = -1;
      active_first_seq_ = next_seq_;
      active_path_ = dir_ + "/" + WalSegmentFileName(next_seq_);
      fd_ = open(active_path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      rotate = fd_ < 0 ? Status::IoError("cannot open WAL segment: " +
                                         active_path_ + " (" +
                                         std::strerror(errno) + ")")
                       : Status::OK();
    }
    if (rotate.ok()) {
      rotate = WriteFully(fd_, {kSegmentMagic, kSegmentMagicLen},
                          active_path_);
    }
    if (rotate.ok()) rotate = FsyncPath(dir_);
    if (!rotate.ok()) {
      broken_ = rotate;
      return rotate;
    }
    open_segment_bytes_ = kSegmentMagicLen;
    MetricsRegistry::Global()
        .GetGauge(metric_names::kServiceWalOpenSegmentBytes)
        ->Set(static_cast<double>(open_segment_bytes_));
  }

  Result<std::vector<std::string>> names = ListDir(dir_);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> firsts;
  for (const std::string& name : *names) {
    uint64_t first = 0;
    if (ParseSegmentName(name, &first)) firsts.push_back(first);
  }
  std::sort(firsts.begin(), firsts.end());
  uint64_t removed = 0;
  for (size_t i = 0; i + 1 < firsts.size(); ++i) {
    if (firsts[i] == active_first_seq_) continue;
    // Segment i holds seqs [firsts[i], firsts[i+1] - 1].
    if (firsts[i + 1] - 1 > seq) break;
    MERGEPURGE_RETURN_NOT_OK(
        RemoveFile(dir_ + "/" + WalSegmentFileName(firsts[i])));
    ++removed;
  }
  if (removed > 0) {
    MERGEPURGE_RETURN_NOT_OK(FsyncPath(dir_));
    static Counter* const removed_counter =
        MetricsRegistry::Global().GetCounter(
            metric_names::kServiceWalSegmentsRemoved);
    removed_counter->Add(removed);
  }
  return removed;
}

void WalWriter::Close() {
  MutexLock lock(mu_);
  if (fd_ < 0) return;
  if (broken_.ok() && policy_ != FsyncPolicy::kNone) {
    (void)FsyncFd(fd_, active_path_);
  }
  close(fd_);
  fd_ = -1;
}

uint64_t WalWriter::next_seq() const {
  MutexLock lock(mu_);
  return next_seq_;
}

Status WalWriter::health() const {
  MutexLock lock(mu_);
  return broken_;
}

uint64_t WalWriter::open_segment_bytes() const {
  MutexLock lock(mu_);
  return open_segment_bytes_;
}

Result<std::vector<WalBatch>> ReadWalForRecovery(const std::string& dir,
                                                 uint64_t after_seq,
                                                 WalReadStats* stats) {
  WalReadStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = WalReadStats();
  std::vector<WalBatch> batches;
  if (!PathExists(dir)) return batches;
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return names.status();
  std::vector<uint64_t> firsts;
  for (const std::string& name : *names) {
    uint64_t first = 0;
    if (ParseSegmentName(name, &first)) firsts.push_back(first);
  }
  std::sort(firsts.begin(), firsts.end());

  uint64_t last_seq = 0;  // 0 = no record scanned yet.
  for (uint64_t first : firsts) {
    const std::string path = dir + "/" + WalSegmentFileName(first);
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IoError("cannot open WAL segment: " + path);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    in.close();
    ++stats->segments_scanned;

    if (data.size() < kSegmentMagicLen ||
        data.compare(0, kSegmentMagicLen, kSegmentMagic) != 0) {
      // A torn segment header (crash during rotation). Cut the whole
      // file; the writer re-writes the header on a zero-length file.
      stats->truncated_bytes += data.size();
      MERGEPURGE_RETURN_NOT_OK(TruncateFile(path, 0));
      break;
    }

    size_t pos = kSegmentMagicLen;
    size_t good_end = pos;
    bool torn = false;
    while (pos < data.size()) {
      uint32_t payload_len = 0;
      uint32_t crc = 0;
      size_t frame_start = pos;
      if (!GetU32(data, &pos, &payload_len) || !GetU32(data, &pos, &crc) ||
          payload_len > kMaxPayloadBytes ||
          data.size() - pos < payload_len) {
        torn = true;
        pos = frame_start;
        break;
      }
      std::string_view payload(data.data() + pos, payload_len);
      pos += payload_len;
      WalBatch batch;
      if (Crc32(payload) != crc || !DecodePayload(payload, &batch)) {
        torn = true;
        pos = frame_start;
        break;
      }
      if (last_seq != 0 && batch.seq != last_seq + 1) {
        // A sequence gap means everything from here on postdates a lost
        // record; replaying it would reorder history. Stop cleanly.
        return batches;
      }
      last_seq = batch.seq;
      stats->last_seq = batch.seq;
      ++stats->batches_read;
      stats->records_read += batch.records.size();
      if (batch.seq > after_seq) batches.push_back(std::move(batch));
      good_end = pos;
    }
    if (torn) {
      stats->truncated_bytes += data.size() - good_end;
      MERGEPURGE_RETURN_NOT_OK(TruncateFile(path, good_end));
      // Anything in later segments postdates the torn record; a
      // fail-stop writer can't have written any, but guard anyway.
      break;
    }
  }
  return batches;
}

}  // namespace mergepurge
