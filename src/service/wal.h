// Write-ahead log for the online match/upsert service.
//
// Every committed UpsertBatcher group-commit is appended as one WAL
// record BEFORE the batch is applied to the resident engine, so a crash
// after the append loses nothing that was acknowledged. Because the
// engine's closure depends only on the multiset of records and the
// total (key, tuple-id) order — not on batch boundaries — replaying the
// logged batches through IncrementalMergePurge::AddBatch reproduces a
// byte-identical closure (tests/durability_test.cc proves this per
// crash point).
//
// On-disk layout (all integers little-endian):
//   <dir>/wal-<16-hex first_seq>.log
//     "MPWAL1\n"                                segment header
//     repeated records:
//       u32 payload_len | u32 crc32(payload) | payload
//     payload:
//       u64 seq | u32 record_count
//       per record: u32 field_count, per field: u32 len | bytes
//
// `seq` numbers batches contiguously from 1. A torn tail (partial
// record from a crash mid-append) fails the length or CRC check;
// recovery truncates the segment back to the last whole record and
// reports the cut bytes. Recovery also stops at the first sequence gap,
// so a record that survived *after* a torn one (impossible for a
// fail-stop writer, but possible with byte-level corruption) can never
// be replayed out of order.
//
// Fsync policy:
//   always  fsync after every append          (zero acknowledged loss)
//   group   fsync once per group-commit batch (default; the batcher
//           already coalesces, so this is one fsync per commit too, but
//           the policy point is kept distinct for future sub-batch use)
//   none    never fsync; the OS page cache decides (fast, test-only)
//
// Locking: WalWriter::mu_ is a leaf lock in the service hierarchy —
// CommitBatch holds no other lock while appending (docs/concurrency.md).

#ifndef MERGEPURGE_SERVICE_WAL_H_
#define MERGEPURGE_SERVICE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "record/record.h"
#include "util/fault_injector.h"
#include "util/status.h"
#include "util/sync.h"

namespace mergepurge {

enum class FsyncPolicy { kAlways, kGroup, kNone };

const char* FsyncPolicyName(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

// One logged group-commit: the batch's records exactly as submitted
// (pre-conditioning; the engine re-conditions on replay just as it did
// on the original commit).
struct WalBatch {
  uint64_t seq = 0;
  std::vector<Record> records;
};

// Appender. Single-owner: the batcher's writer thread calls Commit; the
// snapshotter thread calls RemoveSegmentsThrough; mu_ serializes them.
class WalWriter {
 public:
  explicit WalWriter(FsyncPolicy policy,
                     FaultInjector* faults = &FaultInjector::Global())
      : policy_(policy), faults_(faults) {}
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens (creates) the active segment <dir>/wal-<next_seq>.log. The
  // directory must exist. `next_seq` is the sequence the next Commit
  // will write (last recovered seq + 1; 1 on a fresh directory).
  Status Open(const std::string& dir, uint64_t next_seq);

  // Appends one batch record and applies the fsync policy. On success
  // the batch is durable per policy and the internal sequence advances.
  // On ANY failure (including injected crash points) the writer goes
  // fail-stop: every later Commit fails immediately without touching
  // the file, exactly like a crashed process — the log never gains a
  // record after a torn one. Returns the sequence assigned.
  Result<uint64_t> Commit(const std::vector<Record>& records);

  // Called after a snapshot at `seq` is durable. Rotates to a fresh
  // segment when the active one holds records covered by the snapshot
  // (so it becomes removable), then deletes every inactive segment
  // whose records all have seq <= `seq`. A segment named f is covered
  // through g-1 where g is the next segment's name, so nothing with a
  // live record is ever deleted. Returns the number of segments
  // removed.
  Result<uint64_t> TruncateThrough(uint64_t seq);

  // Closes the active segment file (final fsync under always/group).
  void Close();

  uint64_t next_seq() const;

  // Fail-stop state: OK while healthy, the latched first error after a
  // failed append or rotation (surfaced by the health admin op).
  Status health() const;

  // Bytes in the active (not yet truncated-away) segment, header
  // included. Mirrored into the service.wal.open_segment_bytes gauge.
  uint64_t open_segment_bytes() const;

 private:
  Status AppendLocked(const std::vector<Record>& records)
      MERGEPURGE_REQUIRES(mu_);

  const FsyncPolicy policy_;
  FaultInjector* const faults_;

  mutable Mutex mu_{lockrank::kWal};
  std::string dir_ MERGEPURGE_GUARDED_BY(mu_);
  std::string active_path_ MERGEPURGE_GUARDED_BY(mu_);
  uint64_t active_first_seq_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  int fd_ MERGEPURGE_GUARDED_BY(mu_) = -1;
  uint64_t next_seq_ MERGEPURGE_GUARDED_BY(mu_) = 1;
  uint64_t open_segment_bytes_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  // Fail-stop latch: first error sticks (see Commit).
  Status broken_ MERGEPURGE_GUARDED_BY(mu_);
};

// Recovery-side statistics (surfaced as service.recovery.* metrics and
// the run report's recovery section).
struct WalReadStats {
  uint64_t segments_scanned = 0;
  uint64_t batches_read = 0;
  uint64_t records_read = 0;
  // Bytes cut from torn/corrupt segment tails (the file is truncated in
  // place so a later writer never appends past garbage).
  uint64_t truncated_bytes = 0;
  uint64_t last_seq = 0;  // Highest contiguous seq recovered.
};

// Reads every batch with seq > after_seq from the WAL segments in
// `dir`, in sequence order. Torn/corrupt tails are truncated in place;
// a sequence gap stops recovery at the last contiguous record. A
// missing directory or no segments is OK (empty result).
Result<std::vector<WalBatch>> ReadWalForRecovery(const std::string& dir,
                                                 uint64_t after_seq,
                                                 WalReadStats* stats);

// "wal-<16-hex seq>.log"; exposed for tests and the walcheck tool.
std::string WalSegmentFileName(uint64_t first_seq);

}  // namespace mergepurge

#endif  // MERGEPURGE_SERVICE_WAL_H_
