#include "shard/boundary.h"

namespace mergepurge {

BoundaryBand::BoundaryBand(size_t num_shards, size_t band_width)
    : num_shards_(num_shards),
      band_width_(band_width),
      upper_(num_shards),
      lower_(num_shards) {}

bool BoundaryBand::Admit(std::multiset<std::string>* band,
                         std::string_view key, bool upper) {
  bool in_band = true;
  if (band->size() >= band_width_) {
    if (upper) {
      // Tracked: the band_width_ largest so far; least extreme = min.
      // Ties count as in-band (equal keys are adjacent in sort order).
      in_band = key >= *band->begin();
    } else {
      in_band = key <= *band->rbegin();
    }
  }
  if (in_band) {
    band->emplace(key);
    if (band->size() > band_width_) {
      band->erase(upper ? band->begin() : std::prev(band->end()));
    }
  }
  return in_band;
}

void BoundaryBand::Replicas(size_t owner, std::string_view key,
                            std::vector<size_t>* out) {
  if (band_width_ == 0) return;
  if (owner + 1 < num_shards_ && Admit(&upper_[owner], key, true)) {
    out->push_back(owner + 1);
  }
  if (owner > 0 && Admit(&lower_[owner], key, false)) {
    out->push_back(owner - 1);
  }
}

uint64_t BoundaryBand::tracked() const {
  uint64_t total = 0;
  for (const auto& band : upper_) total += band.size();
  for (const auto& band : lower_) total += band.size();
  return total;
}

}  // namespace mergepurge
