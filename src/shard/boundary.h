// BoundaryBand: the paper's §4 fragmentation rule, applied dynamically
// to a long-lived service. When the key space is split at a cut between
// shard i and shard i+1, a window of size w can pair a record among the
// w-1 largest keys of shard i with one among the w-1 smallest keys of
// shard i+1. Batch fragmentation replicates that band once, after
// sorting; a service admits records forever, so the band must be
// maintained ONLINE.
//
// Per cut and per side we track the w-1 most extreme keys admitted so
// far. A new record is in-band — and is replicated to the neighbor —
// iff fewer than w-1 keys are tracked or its key ties/beats the least
// extreme tracked key. This test is conservative and monotone: the set
// of keys beating a record only grows over time, so any record that
// ends among the w-1 most extreme in the FINAL sorted order was in-band
// at its own arrival and was replicated then. (The converse does not
// hold: early records are replicated and later pushed out of the band —
// harmless, replicas can only add records to a neighbor's engine, and
// duplicate matches collapse in the global closure.)
//
// Not thread-safe: in-band-ness depends on admission order, so the
// coordinator serializes calls under its routing mutex.

#ifndef MERGEPURGE_SHARD_BOUNDARY_H_
#define MERGEPURGE_SHARD_BOUNDARY_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace mergepurge {

class BoundaryBand {
 public:
  // `band_width` is w-1 for window size w. A width of 0 disables
  // replication (only valid when windows never cross cuts).
  BoundaryBand(size_t num_shards, size_t band_width);

  // Records that a key owned by `owner` was admitted; appends to `out`
  // every neighbor shard that must receive a replica (at most two:
  // owner-1 when the key sits in the owner's lower band, owner+1 for
  // the upper band). Updates the tracked extremes as a side effect.
  void Replicas(size_t owner, std::string_view key,
                std::vector<size_t>* out);

  // Total keys currently tracked across all cuts (diagnostics).
  uint64_t tracked() const;

 private:
  // Admits `key` into a bounded extreme-set. Returns true when the key
  // is in-band. `greater` picks the max-tracking (upper band) or
  // min-tracking (lower band) direction.
  bool Admit(std::multiset<std::string>* band, std::string_view key,
             bool upper);

  size_t num_shards_;
  size_t band_width_;
  // upper_[i]: the band_width_ largest keys admitted to shard i
  // (candidates for pairing across the cut to shard i+1). lower_[i]:
  // the band_width_ smallest keys admitted to shard i (cut to i-1).
  std::vector<std::multiset<std::string>> upper_;
  std::vector<std::multiset<std::string>> lower_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SHARD_BOUNDARY_H_
