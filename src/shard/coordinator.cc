#include "shard/coordinator.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "util/timer.h"

namespace mergepurge {

namespace {

Counter* ErrorsCounter() {
  static Counter* const errors =
      MetricsRegistry::Global().GetCounter(metric_names::kServiceErrors);
  return errors;
}

Counter* RouteCounter() {
  static Counter* const routes = MetricsRegistry::Global().GetCounter(
      metric_names::kCoordRouteRecords);
  return routes;
}

Counter* ReplicaCounter() {
  static Counter* const replicas = MetricsRegistry::Global().GetCounter(
      metric_names::kCoordReplicaRecords);
  return replicas;
}

Counter* ShardRetryCounter() {
  static Counter* const retries = MetricsRegistry::Global().GetCounter(
      metric_names::kCoordShardRetries);
  return retries;
}

// A shard answered, but with {"ok":false,...}: surface its typed error.
Status ShardRefusal(size_t shard, const JsonValue& response) {
  std::string message = "shard " + std::to_string(shard) + " refused";
  const JsonValue* error = response.Find("error");
  if (error != nullptr && error->is_object()) {
    const JsonValue* code = error->Find("code");
    const JsonValue* detail = error->Find("message");
    if (code != nullptr && code->is_string()) {
      message += " (" + code->string_value() + ")";
    }
    if (detail != nullptr && detail->is_string()) {
      message += ": " + detail->string_value();
    }
  }
  return Status::Internal(std::move(message));
}

Status CheckShardOk(size_t shard, const Result<JsonValue>& response) {
  if (!response.ok()) {
    return Status::Internal("shard " + std::to_string(shard) + ": " +
                            response.status().ToString());
  }
  const JsonValue* ok = response->Find("ok");
  if (ok == nullptr || ok->kind() != JsonValue::Kind::kBool ||
      !ok->bool_value()) {
    return ShardRefusal(shard, *response);
  }
  return Status::OK();
}

bool ReadUintArray(const JsonValue& response, const char* key,
                   std::vector<uint32_t>* out) {
  const JsonValue* array = response.Find(key);
  if (array == nullptr || !array->is_array()) return false;
  out->clear();
  out->reserve(array->size());
  for (const JsonValue& element : array->elements()) {
    if (!element.is_number()) return false;
    out->push_back(static_cast<uint32_t>(element.int_value()));
  }
  return true;
}

bool ReadMerges(const JsonValue& response,
                std::vector<std::pair<uint32_t, uint32_t>>* out) {
  const JsonValue* array = response.Find("merges");
  if (array == nullptr || !array->is_array()) return false;
  out->clear();
  out->reserve(array->size());
  for (const JsonValue& pair : array->elements()) {
    if (!pair.is_array() || pair.size() != 2 || !pair.at(0).is_number() ||
        !pair.at(1).is_number()) {
      return false;
    }
    out->emplace_back(static_cast<uint32_t>(pair.at(0).int_value()),
                      static_cast<uint32_t>(pair.at(1).int_value()));
  }
  return true;
}

uint64_t ReadUint(const JsonValue& response, const char* key) {
  const JsonValue* value = response.Find(key);
  if (value == nullptr || !value->is_number()) return 0;
  return static_cast<uint64_t>(value->int_value());
}

std::string SimpleOpLine(const char* op) {
  JsonValue doc = JsonValue::Object();
  doc.Set("op", JsonValue(op));
  return doc.Dump(0) + "\n";
}

}  // namespace

CoordService::CoordService(CoordinatorOptions options)
    : options_(std::move(options)), routing_rng_(options_.seed) {
  {
    MutexLock lock(closure_mu_);
    spaces_.reserve(options_.shards.size());
    for (size_t i = 0; i < options_.shards.size(); ++i) {
      spaces_.push_back(std::make_unique<ShardLabelSpace>(&closure_));
    }
  }
  MutexLock lock(pool_mu_);
  pools_.resize(options_.shards.size());
}

CoordService::~CoordService() { Drain(); }

Status CoordService::VerifyShards() {
  JsonValue doc = JsonValue::Object();
  doc.Set("op", JsonValue("hello"));
  if (!options_.keys_spec.empty()) {
    doc.Set("keys", JsonValue(options_.keys_spec));
  }
  doc.Set("window", JsonValue(static_cast<uint64_t>(options_.window)));
  const std::string line = doc.Dump(0) + "\n";

  std::vector<ShardCall> calls(options_.shards.size());
  for (size_t i = 0; i < calls.size(); ++i) {
    calls[i].shard = i;
    calls[i].line = line;
  }
  FanOut(&calls);

  for (const ShardCall& call : calls) {
    const ShardAddress& address = options_.shards[call.shard];
    const std::string where = "shard " + std::to_string(call.shard) + " (" +
                              address.host + ":" +
                              std::to_string(address.port) + ")";
    if (!call.response.ok()) {
      return Status::IoError("hello to " + where + " failed: " +
                             call.response.status().ToString());
    }
    const JsonValue& response = *call.response;
    const JsonValue* ok = response.Find("ok");
    if (ok == nullptr || !ok->bool_value()) {
      std::string detail = "refused";
      if (const JsonValue* error = response.Find("error")) {
        if (const JsonValue* message = error->Find("message")) {
          detail = message->string_value();
        }
      }
      return Status::InvalidArgument("hello to " + where + ": " + detail);
    }
    // The shard echoes its own topology; cross-check what it reported
    // in case the shard was started without one side of the check.
    const JsonValue* keys = response.Find("keys");
    if (keys != nullptr && keys->is_string() &&
        !keys->string_value().empty() && !options_.keys_spec.empty() &&
        keys->string_value() != options_.keys_spec) {
      return Status::InvalidArgument(
          where + " runs keys=" + keys->string_value() +
          ", coordinator expects keys=" + options_.keys_spec);
    }
    const JsonValue* window = response.Find("window");
    if (window != nullptr && window->is_number() &&
        window->int_value() != 0 &&
        static_cast<size_t>(window->int_value()) != options_.window) {
      return Status::InvalidArgument(
          where + " runs window=" + std::to_string(window->int_value()) +
          ", coordinator expects window=" + std::to_string(options_.window));
    }
  }
  return Status::OK();
}

Status CoordService::SeedRouter(const std::vector<Record>& sample) {
  MutexLock lock(routing_mu_);
  if (router_ != nullptr) {
    return Status::InvalidArgument("router already built");
  }
  return BuildRouterLocked(sample);
}

Status CoordService::EnsureRouter(const std::vector<Record>& sample) {
  MutexLock lock(routing_mu_);
  if (router_ != nullptr) return Status::OK();
  return BuildRouterLocked(sample);
}

Status CoordService::BuildRouterLocked(const std::vector<Record>& sample) {
  ShardRouterOptions router_options;
  router_options.num_shards = options_.shards.size();
  router_options.histogram_depth = options_.histogram_depth;
  router_options.sample_size = 0;  // Deterministic: fit on every key.
  Result<ShardRouter> router = ShardRouter::Build(
      options_.keys, sample, router_options, &routing_rng_);
  if (!router.ok()) return router.status();
  const size_t band_width = options_.window > 0 ? options_.window - 1 : 0;
  bands_.clear();
  bands_.reserve(options_.keys.size());
  for (size_t k = 0; k < options_.keys.size(); ++k) {
    bands_.emplace_back(options_.shards.size(), band_width);
  }
  router_ = std::make_shared<const ShardRouter>(std::move(*router));
  return Status::OK();
}

std::unique_ptr<CoordService::PooledClient> CoordService::LeaseClient(
    size_t shard) {
  MutexLock lock(pool_mu_);
  std::vector<std::unique_ptr<PooledClient>>& pool = pools_[shard];
  if (!pool.empty()) {
    std::unique_ptr<PooledClient> client = std::move(pool.back());
    pool.pop_back();
    return client;
  }
  // Each connection gets an independent deterministic jitter stream.
  const uint64_t seed = options_.seed ^ (0x9e3779b97f4a7c15ull *
                                         static_cast<uint64_t>(
                                             ++clients_created_));
  return std::make_unique<PooledClient>(seed);
}

void CoordService::ReturnClient(size_t shard,
                                std::unique_ptr<PooledClient> client) {
  MutexLock lock(pool_mu_);
  if (pools_.empty()) return;  // Drained: drop the connection.
  pools_[shard].push_back(std::move(client));
}

void CoordService::RunCall(ShardCall* call) {
  std::unique_ptr<PooledClient> leased = LeaseClient(call->shard);
  const ShardAddress& address = options_.shards[call->shard];
  call->response = CallWithRetry(
      &leased->client, address.host, address.port, call->line, &leased->rng,
      options_.retry, [] { ShardRetryCounter()->Increment(); });
  ReturnClient(call->shard, std::move(leased));
}

void CoordService::FanOut(std::vector<ShardCall>* calls) {
  if (calls->empty()) return;
  if (calls->size() == 1) {
    RunCall(&calls->front());
    return;
  }
  // Joined per-call threads: fan-out width is the shard count (small),
  // and the caller is already one of many server workers, so a pool
  // would only add queueing between requests.
  std::vector<std::thread> threads;
  threads.reserve(calls->size() - 1);
  for (size_t i = 1; i < calls->size(); ++i) {
    threads.emplace_back([this, call = &(*calls)[i]] { RunCall(call); });
  }
  RunCall(&calls->front());
  for (std::thread& thread : threads) thread.join();
}

std::string CoordService::HandleUpsert(const JsonValue* id,
                                       std::vector<Record> records) {
  Status ready = EnsureRouter(records);
  if (!ready.ok()) {
    ErrorsCounter()->Increment();
    return ErrorResponseLine(
        id, {ServiceErrorCode::kInternal,
             "router bootstrap failed: " + ready.ToString()});
  }

  // --- Route: owners per key, plus boundary-band replicas. ---
  const size_t count = records.size();
  std::vector<std::vector<size_t>> members(options_.shards.size());
  uint64_t replica_memberships = 0;
  {
    MutexLock lock(routing_mu_);
    const ShardRouter& router = *router_;
    std::vector<size_t> owners;
    std::vector<size_t> destinations;
    for (size_t i = 0; i < count; ++i) {
      owners.clear();
      destinations.clear();
      for (size_t k = 0; k < router.num_keys(); ++k) {
        const std::string key = router.KeyOf(k, records[i]);
        const size_t owner = router.OwnerOfKey(k, key);
        owners.push_back(owner);
        destinations.push_back(owner);
        bands_[k].Replicas(owner, key, &destinations);
      }
      std::sort(owners.begin(), owners.end());
      owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
      std::sort(destinations.begin(), destinations.end());
      destinations.erase(
          std::unique(destinations.begin(), destinations.end()),
          destinations.end());
      // Band replicas = destinations beyond the dedup'd owner set.
      replica_memberships += destinations.size() - owners.size();
      for (const size_t shard : destinations) {
        members[shard].push_back(i);
      }
    }
  }
  RouteCounter()->Add(count);
  if (replica_memberships > 0) ReplicaCounter()->Add(replica_memberships);

  // --- Admit: one global id per record, before any shard sees it. ---
  std::vector<uint32_t> gids(count);
  {
    MutexLock lock(closure_mu_);
    for (size_t i = 0; i < count; ++i) gids[i] = closure_.NewId();
  }

  // --- Fan out one upsert per shard holding records. ---
  std::vector<ShardCall> calls;
  for (size_t shard = 0; shard < members.size(); ++shard) {
    if (members[shard].empty()) continue;
    JsonValue shard_records = JsonValue::Array();
    for (const size_t i : members[shard]) {
      shard_records.Append(RecordToJson(options_.schema, records[i]));
    }
    JsonValue doc = JsonValue::Object();
    doc.Set("op", JsonValue("upsert"));
    doc.Set("records", std::move(shard_records));
    ShardCall call;
    call.shard = shard;
    call.line = doc.Dump(0) + "\n";
    calls.push_back(std::move(call));
  }

  Timer fanout_timer;
  FanOut(&calls);
  static LatencyHistogram* const fanout_hist =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kCoordFanoutUs);
  fanout_hist->Record(static_cast<double>(fanout_timer.ElapsedMicros()));

  // --- Fold shard responses into the global closure. ---
  Status failure = Status::OK();
  uint64_t new_pairs = 0;
  std::vector<uint32_t> out_entities(count, 0);
  Timer merge_timer;
  {
    MutexLock lock(closure_mu_);
    std::vector<uint32_t> entities;
    std::vector<uint32_t> tids;
    std::vector<std::pair<uint32_t, uint32_t>> merges;
    for (const ShardCall& call : calls) {
      Status ok = CheckShardOk(call.shard, call.response);
      if (!ok.ok()) {
        // Keep folding the shards that DID commit — their records are
        // resident, so the closure must reflect them; the request as a
        // whole still fails upward and the client resends (idempotent).
        if (failure.ok()) failure = ok;
        continue;
      }
      const JsonValue& response = *call.response;
      const std::vector<size_t>& indices = members[call.shard];
      if (!ReadUintArray(response, "entities", &entities) ||
          !ReadUintArray(response, "tids", &tids) ||
          !ReadMerges(response, &merges) ||
          entities.size() != indices.size() ||
          tids.size() != indices.size()) {
        if (failure.ok()) {
          failure = Status::Internal(
              "shard " + std::to_string(call.shard) +
              ": malformed upsert response (tids/entities/merges)");
        }
        continue;
      }
      ShardLabelSpace& space = *spaces_[call.shard];
      // Whole-batch merge delta first (may involve riders of a
      // coalesced batch we never sent; unions are idempotent).
      for (const auto& [survivor, absorbed] : merges) {
        space.UnionTids(survivor, absorbed);
      }
      for (size_t j = 0; j < indices.size(); ++j) {
        space.Bind(tids[j], gids[indices[j]]);
        space.UnionTids(tids[j], entities[j]);
      }
      // Batch-level figure (includes coalesced riders), summed across
      // shards — a throughput diagnostic, not an exact per-request one.
      new_pairs += ReadUint(response, "new_pairs");
    }
    for (size_t i = 0; i < count; ++i) {
      out_entities[i] = closure_.Find(gids[i]);
    }
    static Gauge* const records_gauge =
        MetricsRegistry::Global().GetGauge(metric_names::kCoordGlobalRecords);
    static Gauge* const entities_gauge =
        MetricsRegistry::Global().GetGauge(
            metric_names::kCoordGlobalEntities);
    records_gauge->Set(static_cast<double>(closure_.num_ids()));
    entities_gauge->Set(static_cast<double>(closure_.num_entities()));
  }
  static LatencyHistogram* const merge_hist =
      MetricsRegistry::Global().GetHistogram(
          metric_names::kCoordClosureMergeUs);
  merge_hist->Record(static_cast<double>(merge_timer.ElapsedMicros()));

  if (!failure.ok()) {
    ErrorsCounter()->Increment();
    return ErrorResponseLine(
        id, {ServiceErrorCode::kInternal, failure.ToString()});
  }
  return UpsertResponseLine(id, out_entities, new_pairs);
}

std::string CoordService::HandleMatch(const JsonValue* id,
                                      std::vector<Record> records) {
  std::shared_ptr<const ShardRouter> router;
  {
    MutexLock lock(routing_mu_);
    router = router_;
  }
  if (router == nullptr) {
    // Nothing has ever been admitted, so nothing can match.
    return MatchResponseLine(id, std::nullopt, {}, {});
  }

  // Owners only — boundary records are replicated INTO owner shards, so
  // a probe's window neighbors all live where the probe routes. No band
  // update: matches are read-only.
  const std::vector<size_t> destinations =
      router->DestinationsOf(records.front());
  JsonValue doc = JsonValue::Object();
  doc.Set("op", JsonValue("match"));
  doc.Set("record", RecordToJson(options_.schema, records.front()));
  const std::string line = doc.Dump(0) + "\n";

  std::vector<ShardCall> calls;
  calls.reserve(destinations.size());
  for (const size_t shard : destinations) {
    ShardCall call;
    call.shard = shard;
    call.line = line;
    calls.push_back(std::move(call));
  }
  FanOut(&calls);

  Status failure = Status::OK();
  std::vector<uint32_t> global_entities;
  {
    MutexLock lock(closure_mu_);
    std::vector<uint32_t> labels;
    for (const ShardCall& call : calls) {
      Status ok = CheckShardOk(call.shard, call.response);
      if (!ok.ok()) {
        if (failure.ok()) failure = ok;
        continue;
      }
      if (!ReadUintArray(*call.response, "entities", &labels)) continue;
      for (const uint32_t label : labels) {
        // Unbound labels are shard-resident state this coordinator never
        // admitted (e.g. a durable shard's previous run); they have no
        // global identity to report.
        std::optional<uint32_t> gid = spaces_[call.shard]->Lookup(label);
        if (gid.has_value()) global_entities.push_back(*gid);
      }
    }
  }
  if (!failure.ok()) {
    ErrorsCounter()->Increment();
    return ErrorResponseLine(
        id, {ServiceErrorCode::kInternal, failure.ToString()});
  }
  std::sort(global_entities.begin(), global_entities.end());
  global_entities.erase(
      std::unique(global_entities.begin(), global_entities.end()),
      global_entities.end());
  std::optional<uint32_t> entity;
  if (!global_entities.empty()) entity = global_entities.front();
  // "matches" carries the same global ids: shard tuple ids would be
  // meaningless upward, and the global id IS the entity handle here.
  std::vector<TupleId> matches(global_entities.begin(),
                               global_entities.end());
  return MatchResponseLine(id, entity, matches, global_entities);
}

std::string CoordService::HandleStats(const JsonValue* id,
                                      const JsonValue& extra) {
  std::vector<ShardCall> calls;
  calls.reserve(options_.shards.size());
  const std::string line = SimpleOpLine("stats");
  for (size_t shard = 0; shard < options_.shards.size(); ++shard) {
    ShardCall call;
    call.shard = shard;
    call.line = line;
    calls.push_back(std::move(call));
  }
  FanOut(&calls);

  uint64_t pairs = 0;
  JsonValue shards = JsonValue::Array();
  for (const ShardCall& call : calls) {
    const ShardAddress& address = options_.shards[call.shard];
    JsonValue entry = JsonValue::Object();
    entry.Set("shard", JsonValue(static_cast<uint64_t>(call.shard)));
    entry.Set("host", JsonValue(address.host));
    entry.Set("port", JsonValue(static_cast<uint64_t>(address.port)));
    Status ok = CheckShardOk(call.shard, call.response);
    if (!ok.ok()) {
      entry.Set("error", JsonValue(ok.ToString()));
      shards.Append(std::move(entry));
      continue;
    }
    pairs += ReadUint(*call.response, "pairs");
    for (const auto& [key, value] : call.response->members()) {
      if (key == "id") continue;
      entry.Set(key, value);
    }
    shards.Append(std::move(entry));
  }

  ClosureStats closure = GetClosureStats();
  JsonValue merged = JsonValue::Object();
  for (const auto& [key, value] : extra.members()) {
    merged.Set(key, value);
  }
  merged.Set("shards", std::move(shards));
  // Top-level records/entities are the GLOBAL view: per-shard sums
  // overcount boundary replicas, the closure does not.
  return StatsResponseLine(id, closure.records, closure.entities, pairs,
                           nullptr, &merged);
}

void CoordService::FillHealth(JsonValue* health) {
  {
    MutexLock lock(routing_mu_);
    health->Set("router_ready", JsonValue(router_ != nullptr));
    uint64_t tracked = 0;
    for (const BoundaryBand& band : bands_) tracked += band.tracked();
    health->Set("band_tracked", JsonValue(tracked));
  }
  ClosureStats closure = GetClosureStats();
  JsonValue closure_json = JsonValue::Object();
  closure_json.Set("records", JsonValue(closure.records));
  closure_json.Set("entities", JsonValue(closure.entities));
  health->Set("closure", std::move(closure_json));

  // One attempt per shard, no backoff: health must answer promptly even
  // with a shard down.
  RetryOptions single;
  single.max_attempts = 1;
  std::vector<ShardCall> calls;
  calls.reserve(options_.shards.size());
  const std::string line = SimpleOpLine("health");
  JsonValue shards = JsonValue::Array();
  for (size_t shard = 0; shard < options_.shards.size(); ++shard) {
    std::unique_ptr<PooledClient> leased = LeaseClient(shard);
    const ShardAddress& address = options_.shards[shard];
    Result<JsonValue> response =
        CallWithRetry(&leased->client, address.host, address.port, line,
                      &leased->rng, single);
    ReturnClient(shard, std::move(leased));

    JsonValue entry = JsonValue::Object();
    entry.Set("shard", JsonValue(static_cast<uint64_t>(shard)));
    entry.Set("host", JsonValue(address.host));
    entry.Set("port", JsonValue(static_cast<uint64_t>(address.port)));
    if (!response.ok()) {
      entry.Set("reachable", JsonValue(false));
      entry.Set("error", JsonValue(response.status().ToString()));
    } else {
      entry.Set("reachable", JsonValue(true));
      const JsonValue* state = response->Find("state");
      if (state != nullptr) entry.Set("state", *state);
      const JsonValue* instance = response->Find("instance");
      if (instance != nullptr) entry.Set("instance", *instance);
    }
    shards.Append(std::move(entry));
  }
  health->Set("shards", std::move(shards));
}

void CoordService::Drain() {
  // Nothing is buffered coordinator-side (every upsert is acknowledged
  // only after its shards committed); just release the connections.
  MutexLock lock(pool_mu_);
  pools_.clear();
}

std::vector<uint32_t> CoordService::GlobalLabels() {
  MutexLock lock(closure_mu_);
  const uint64_t count = closure_.num_ids();
  std::vector<uint32_t> labels(count);
  for (uint64_t gid = 0; gid < count; ++gid) {
    labels[gid] = closure_.Find(static_cast<uint32_t>(gid));
  }
  return labels;
}

CoordService::ClosureStats CoordService::GetClosureStats() const {
  MutexLock lock(closure_mu_);
  ClosureStats stats;
  stats.records = closure_.num_ids();
  stats.entities = closure_.num_entities();
  return stats;
}

}  // namespace mergepurge
