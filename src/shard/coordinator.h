// CoordService: the shard coordinator's RequestDispatcher. Fronts N
// mergepurge_serve shard engines over their own NDJSON protocol and
// speaks the identical protocol upward, so loadgen / mergepurge_top /
// scripts work unchanged against `tools/mergepurge_coord`.
//
// Data path (docs/sharding.md):
//   * upsert — records are routed by ShardRouter (dedup'd union of
//     per-key owners), replicated to neighbor shards when in a w-1
//     boundary band (shard/boundary.h), assigned a global id at
//     admission, fanned out to the owning shards in parallel, and the
//     shard responses' tids/entities/merges folded into the
//     GlobalClosure under the closure mutex. The response's "entities"
//     are canonical GLOBAL ids.
//   * match — fanned to the probe's owner shards only (band records are
//     replicated INTO owners, so a probe never needs to visit a
//     neighbor); matched component labels translate to global ids via
//     the per-shard label spaces. "matches"/"entities" both carry the
//     dedup'd canonical global ids (shard-local tuple ids would be
//     meaningless upward).
//   * stats/health — fanned to every shard; the merged response keeps
//     the coordinator's own closure figures at top level and nests each
//     shard's full response under "shards".
//
// Delivery is at-least-once: CallWithRetry resends on transport errors
// and "recovering" refusals (a shard restarting after a crash), and a
// resent upsert at worst re-admits records that merge with their first
// copy — the closure unions are idempotent, so the global partition is
// unaffected (the invariants are spelled out in shard/global_closure.h).
//
// Locking (docs/concurrency.md): three independent leaf mutexes, never
// held together — routing_mu_ (router bootstrap + boundary bands, whose
// in-band test depends on admission order), closure_mu_ (global closure
// + label spaces), pool_mu_ (shard connection pools). Shard RPCs run
// with no coordinator lock held.

#ifndef MERGEPURGE_SHARD_COORDINATOR_H_
#define MERGEPURGE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "record/record.h"
#include "record/schema.h"
#include "service/client.h"
#include "service/dispatcher.h"
#include "shard/boundary.h"
#include "shard/global_closure.h"
#include "shard/router.h"
#include "util/random.h"
#include "util/sync.h"

namespace mergepurge {

struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct CoordinatorOptions {
  // One entry per shard engine; shard index == position.
  std::vector<ShardAddress> shards;
  // Record schema for (de)serializing records on shard requests.
  Schema schema;
  // Key specs — must match the shards' --keys configuration, because
  // routing contiguity per key is what makes the boundary band
  // sufficient (shard/router.h).
  std::vector<KeySpec> keys;
  // The shards' window size w; the boundary band replicates w-1 records
  // per cut side.
  size_t window = 10;
  // Canonical --keys spec (protocol.h CanonicalKeysSpec) sent in the
  // VerifyShards hello so each shard can refuse a mismatched topology.
  // Empty skips the keys check (window is always sent).
  std::string keys_spec;
  // Leading key characters the routing histogram considers.
  size_t histogram_depth = 3;
  // Per-shard-call retry schedule (service/client.h).
  RetryOptions retry;
  // Seeds the routing subsample and retry jitter streams.
  uint64_t seed = 0x5eedc0de;
};

class CoordService : public RequestDispatcher {
 public:
  explicit CoordService(CoordinatorOptions options);
  ~CoordService() override;

  CoordService(const CoordService&) = delete;
  CoordService& operator=(const CoordService&) = delete;

  // Builds the router from an explicit sample (--router-sample). When
  // never called, the router is built lazily from the FIRST upsert's
  // records — later records route through cluster boundaries fit on
  // that first batch, exactly like the paper fits its equi-depth
  // partition on a sample of the input.
  Status SeedRouter(const std::vector<Record>& sample);

  // The startup config handshake: sends a hello carrying this
  // coordinator's topology (options_.keys_spec / options_.window) to
  // every shard. A shard that disagrees answers config_mismatch and
  // this returns an error naming the shard — refuse to serve in that
  // case, because a mismatched shard silently mis-routes records.
  // Shards still replaying their WAL answer hello immediately, so the
  // handshake does not wait out recovery.
  Status VerifyShards();

  size_t num_shards() const { return options_.shards.size(); }

  // The coordinator itself has no recovery phase; per-shard recovery
  // surfaces as retryable "recovering" refusals handled inside the
  // shard calls.
  MatchService::Lifecycle lifecycle() const override {
    return MatchService::Lifecycle::kServing;
  }

  std::string HandleMatch(const JsonValue* id,
                          std::vector<Record> records) override;
  std::string HandleUpsert(const JsonValue* id,
                           std::vector<Record> records) override;
  std::string HandleStats(const JsonValue* id,
                          const JsonValue& extra) override;
  void FillHealth(JsonValue* health) override;
  void Drain() override;

  struct ClosureStats {
    uint64_t records = 0;   // Global ids admitted.
    uint64_t entities = 0;  // Distinct global entities.
  };
  ClosureStats GetClosureStats() const;

  // Canonical global label of every admitted record, in admission order
  // — the global analogue of MatchService::ComponentLabels(), used by
  // the shard-count-invariance contract test to compare a sharded run's
  // partition against a single engine's.
  std::vector<uint32_t> GlobalLabels();

 private:
  // One in-flight RPC of a fan-out. `response` starts errored and is
  // overwritten by the call.
  struct ShardCall {
    size_t shard = 0;
    std::string line;
    Result<JsonValue> response = Status::Internal("not called");
  };

  // A pooled connection with its own jitter stream (ServiceClient is
  // not thread-safe; a leased client is thread-private until returned).
  struct PooledClient {
    ServiceClient client;
    Rng rng;
    explicit PooledClient(uint64_t seed) : rng(seed) {}
  };

  Status EnsureRouter(const std::vector<Record>& sample)
      MERGEPURGE_EXCLUDES(routing_mu_);
  Status BuildRouterLocked(const std::vector<Record>& sample)
      MERGEPURGE_REQUIRES(routing_mu_);

  // Runs every call (parallel when more than one), leasing one pooled
  // connection per call and retrying per options_.retry.
  void FanOut(std::vector<ShardCall>* calls);
  void RunCall(ShardCall* call);

  std::unique_ptr<PooledClient> LeaseClient(size_t shard)
      MERGEPURGE_EXCLUDES(pool_mu_);
  void ReturnClient(size_t shard, std::unique_ptr<PooledClient> client)
      MERGEPURGE_EXCLUDES(pool_mu_);

  CoordinatorOptions options_;

  mutable Mutex routing_mu_{lockrank::kCoordRouting};
  // Immutable once built; the shared_ptr lets requests route outside
  // the mutex after a brief load. Null until the first sample arrives.
  std::shared_ptr<const ShardRouter> router_
      MERGEPURGE_GUARDED_BY(routing_mu_);
  // One band per key spec (each key has its own cut points). Band
  // admission depends on arrival order, so updates stay under the lock.
  std::vector<BoundaryBand> bands_ MERGEPURGE_GUARDED_BY(routing_mu_);
  Rng routing_rng_ MERGEPURGE_GUARDED_BY(routing_mu_);

  mutable Mutex closure_mu_{lockrank::kCoordClosure};
  GlobalClosure closure_ MERGEPURGE_GUARDED_BY(closure_mu_);
  // One label space per shard, indexed by shard id.
  std::vector<std::unique_ptr<ShardLabelSpace>> spaces_
      MERGEPURGE_GUARDED_BY(closure_mu_);

  mutable Mutex pool_mu_{lockrank::kCoordPool};
  // pools_[shard] is a free-list of idle connections to that shard.
  std::vector<std::vector<std::unique_ptr<PooledClient>>> pools_
      MERGEPURGE_GUARDED_BY(pool_mu_);
  uint64_t clients_created_ MERGEPURGE_GUARDED_BY(pool_mu_) = 0;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SHARD_COORDINATOR_H_
