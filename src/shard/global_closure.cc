#include "shard/global_closure.h"

#include <utility>

namespace mergepurge {

uint32_t GlobalClosure::NewId() {
  const uint32_t gid = static_cast<uint32_t>(parent_.size());
  parent_.push_back(gid);
  ++num_entities_;
  return gid;
}

uint32_t GlobalClosure::Find(uint32_t gid) {
  // Path halving; roots are canonical because Union keeps the smaller
  // id as root, so Find(gid) is the smallest id in gid's entity.
  while (parent_[gid] != gid) {
    parent_[gid] = parent_[parent_[gid]];
    gid = parent_[gid];
  }
  return gid;
}

void GlobalClosure::Union(uint32_t a, uint32_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  if (b < a) std::swap(a, b);
  parent_[b] = a;
  --num_entities_;
}

TupleId ShardLabelSpace::FindTid(TupleId tid) {
  // Lazy make-set: an unseen tid is its own root.
  auto it = parent_.find(tid);
  if (it == parent_.end()) {
    parent_.emplace(tid, tid);
    return tid;
  }
  while (it->second != tid) {
    // Path halving over the hash map.
    auto grand = parent_.find(it->second);
    it->second = grand->second;
    tid = it->second;
    it = parent_.find(tid);
  }
  return tid;
}

void ShardLabelSpace::UnionTids(TupleId a, TupleId b) {
  TupleId ra = FindTid(a);
  TupleId rb = FindTid(b);
  if (ra == rb) return;
  if (rb < ra) std::swap(ra, rb);  // Smaller tid wins, like the engine.
  parent_[rb] = ra;
  // Reconcile bindings: if both components were bound, their global ids
  // are the same entity now.
  auto bound_b = binding_.find(rb);
  if (bound_b != binding_.end()) {
    auto bound_a = binding_.find(ra);
    if (bound_a != binding_.end()) {
      closure_->Union(bound_a->second, bound_b->second);
    } else {
      binding_.emplace(ra, bound_b->second);
    }
    binding_.erase(bound_b);
  }
}

void ShardLabelSpace::Bind(TupleId tid, uint32_t gid) {
  const TupleId root = FindTid(tid);
  auto bound = binding_.find(root);
  if (bound != binding_.end()) {
    closure_->Union(bound->second, gid);
  } else {
    binding_.emplace(root, gid);
  }
}

std::optional<uint32_t> ShardLabelSpace::Lookup(TupleId tid) {
  const TupleId root = FindTid(tid);
  auto bound = binding_.find(root);
  if (bound == binding_.end()) return std::nullopt;
  return closure_->Find(bound->second);
}

}  // namespace mergepurge
