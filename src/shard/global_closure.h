// GlobalClosure: incremental union-find over coordinator-assigned global
// ids, plus the per-shard label spaces that translate shard-local tuple
// ids into those global ids.
//
// Invariants (docs/sharding.md):
//   * every record admitted through the coordinator gets one global id
//     at admission, BEFORE any shard sees it — replicas of the record on
//     neighbor shards bind their shard-local tids to the SAME global id,
//     which is exactly how replicated-band matches dedup: a match
//     between a replica and a local record unions two global ids that a
//     single-engine run would also union;
//   * a shard's component labels are smallest-tuple-id per component
//     (IncrementalMergePurge's invariant), i.e. they live in the tid id
//     space — so a shard response's `entities` and `merges` both reduce
//     to tid-level unions here;
//   * unions are idempotent and order-independent, so at-least-once
//     resends after a shard crash, and whole-batch merge deltas replayed
//     by every rider of a coalesced batch, are all safe to apply.
//
// Not thread-safe: the coordinator serializes access under its closure
// mutex (annotated there).

#ifndef MERGEPURGE_SHARD_GLOBAL_CLOSURE_H_
#define MERGEPURGE_SHARD_GLOBAL_CLOSURE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "record/record.h"

namespace mergepurge {

class GlobalClosure {
 public:
  // Admits a new record; returns its global id (dense, starting at 0).
  uint32_t NewId();

  // Canonical (smallest) global id of `gid`'s entity — mirroring the
  // engines' smallest-label convention so the 2-shard contract test can
  // compare partitions against a single-engine run directly.
  uint32_t Find(uint32_t gid);

  void Union(uint32_t a, uint32_t b);

  uint64_t num_ids() const { return parent_.size(); }
  uint64_t num_entities() const { return num_entities_; }

 private:
  std::vector<uint32_t> parent_;
  uint64_t num_entities_ = 0;
};

// One shard's tid -> global-id translation: a lazy union-find over the
// shard's tuple ids (parent map, path halving) with a global-id binding
// per component root. Merge events and label memberships arrive as tid
// unions; record admissions arrive as Bind(tid, gid). When two bound
// components meet — or a component acquires a second binding — the
// bindings' global ids are unioned in the shared GlobalClosure.
class ShardLabelSpace {
 public:
  // `closure` must outlive the label space; not owned.
  explicit ShardLabelSpace(GlobalClosure* closure) : closure_(closure) {}

  // Unions the components of two shard-local tids.
  void UnionTids(TupleId a, TupleId b);

  // Binds `tid`'s component to global id `gid`.
  void Bind(TupleId tid, uint32_t gid);

  // Canonical global id of `tid`'s component; nullopt when the tid was
  // never bound (a tid this coordinator never admitted — e.g. state
  // left over from a previous coordinator run against a durable shard).
  std::optional<uint32_t> Lookup(TupleId tid);

  uint64_t tracked_tids() const { return parent_.size(); }

 private:
  TupleId FindTid(TupleId tid);

  GlobalClosure* closure_;
  std::unordered_map<TupleId, TupleId> parent_;
  // Keyed by component ROOT tid only.
  std::unordered_map<TupleId, uint32_t> binding_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SHARD_GLOBAL_CLOSURE_H_
