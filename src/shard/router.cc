#include "shard/router.h"

#include <algorithm>
#include <utility>

namespace mergepurge {

Result<ShardRouter> ShardRouter::Build(std::vector<KeySpec> keys,
                                       const std::vector<Record>& sample,
                                       const ShardRouterOptions& options,
                                       Rng* rng) {
  if (keys.empty()) {
    return Status::InvalidArgument("router needs at least one key spec");
  }
  if (sample.empty()) {
    return Status::InvalidArgument("router sample must be non-empty");
  }
  if (options.num_shards < 1) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  std::vector<KeyBuilder> builders;
  builders.reserve(keys.size());
  for (KeySpec& spec : keys) builders.emplace_back(std::move(spec));

  std::vector<KeyPartitioner> partitioners;
  partitioners.reserve(builders.size());
  for (const KeyBuilder& builder : builders) {
    std::vector<std::string> sample_keys;
    sample_keys.reserve(sample.size());
    for (const Record& record : sample) {
      sample_keys.push_back(builder.BuildKey(record));
    }
    Histogram histogram = BuildHistogram(
        sample_keys, options.histogram_depth, options.sample_size, rng);
    Result<KeyPartitioner> partitioner =
        KeyPartitioner::FromHistogram(histogram, options.num_shards);
    if (!partitioner.ok()) return partitioner.status();
    partitioners.push_back(std::move(*partitioner));
  }
  return ShardRouter(std::move(builders), std::move(partitioners),
                     options.num_shards);
}

std::vector<size_t> ShardRouter::DestinationsOf(const Record& record) const {
  std::vector<size_t> owners;
  owners.reserve(builders_.size());
  for (size_t k = 0; k < builders_.size(); ++k) {
    owners.push_back(OwnerOf(k, record));
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  return owners;
}

}  // namespace mergepurge
