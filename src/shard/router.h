// ShardRouter: key-range routing of records to shard engines, built on
// the paper's §2.2.1 machinery — one equi-depth KeyPartitioner per
// configured key, fit from a sample's prefix Histogram. Because the
// bin->cluster map is monotone in the (uppercased) key prefix, shard i
// owns a contiguous key range per key, which is what makes the w-1
// boundary band (shard/boundary.h) sufficient for cross-shard window
// coverage.
//
// Multi-key routing: a record's destinations are the dedup'd union of
// its per-key owners. Each shard runs the FULL multi-key engine over the
// records it holds, so every within-shard window pair the single-engine
// run would find is found by some shard (matches are never lost;
// replicas can only add genuine theory-matches — the superset semantics
// docs/sharding.md spells out).

#ifndef MERGEPURGE_SHARD_ROUTER_H_
#define MERGEPURGE_SHARD_ROUTER_H_

#include <string>
#include <string_view>
#include <vector>

#include "cluster/partitioner.h"
#include "keys/key_builder.h"
#include "record/record.h"
#include "util/status.h"

namespace mergepurge {

struct ShardRouterOptions {
  size_t num_shards = 2;
  // Leading key characters the histogram considers (clamped to [1, 4]).
  size_t histogram_depth = 3;
  // 0 fits on every sampled key; otherwise a uniform subsample.
  size_t sample_size = 0;
};

class ShardRouter {
 public:
  // Fits one partitioner per key spec from `sample`. The sample must be
  // non-empty; with sample_size == 0 the build is fully deterministic
  // (`rng` is only drawn from when subsampling).
  static Result<ShardRouter> Build(std::vector<KeySpec> keys,
                                   const std::vector<Record>& sample,
                                   const ShardRouterOptions& options,
                                   Rng* rng);

  size_t num_shards() const { return num_shards_; }
  size_t num_keys() const { return builders_.size(); }

  // The key string of `record` under key spec k.
  std::string KeyOf(size_t key_index, const Record& record) const {
    return builders_[key_index].BuildKey(record);
  }

  // Owner shard of a key string under key spec k. Monotone in the
  // uppercased key prefix; always < num_shards().
  size_t OwnerOfKey(size_t key_index, std::string_view key) const {
    return partitioners_[key_index].ClusterOf(key);
  }

  size_t OwnerOf(size_t key_index, const Record& record) const {
    return OwnerOfKey(key_index, KeyOf(key_index, record));
  }

  // Dedup'd, ascending union of per-key owners: the shards that must
  // admit `record` (before boundary-band replication).
  std::vector<size_t> DestinationsOf(const Record& record) const;

 private:
  ShardRouter(std::vector<KeyBuilder> builders,
              std::vector<KeyPartitioner> partitioners, size_t num_shards)
      : builders_(std::move(builders)),
        partitioners_(std::move(partitioners)),
        num_shards_(num_shards) {}

  std::vector<KeyBuilder> builders_;
  std::vector<KeyPartitioner> partitioners_;
  size_t num_shards_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SHARD_ROUTER_H_
