#include "sort/external_sort.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <optional>
#include <queue>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/fault_injector.h"
#include "util/string_util.h"

namespace mergepurge {

namespace {

// `spills` is the number of run files written to disk in phase 1 (zero on
// the in-memory fast path, where the single "run" never leaves memory).
void FlushIoStats(const IoStats& stats, uint64_t spills) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  static Counter* const spills_counter =
      registry.GetCounter(metric_names::kSortSpills);
  static Counter* const merge_passes =
      registry.GetCounter(metric_names::kSortMergePasses);
  static Counter* const entries_written =
      registry.GetCounter(metric_names::kSortEntriesWritten);
  static Counter* const entries_read =
      registry.GetCounter(metric_names::kSortEntriesRead);
  static Counter* const initial_runs =
      registry.GetCounter(metric_names::kSortInitialRuns);
  spills_counter->Add(spills);
  merge_passes->Add(static_cast<uint64_t>(stats.merge_passes));
  entries_written->Add(stats.entries_written);
  entries_read->Add(stats.entries_read);
  initial_runs->Add(static_cast<uint64_t>(stats.initial_runs));
}

struct Entry {
  std::string key;
  TupleId tid = 0;

  bool operator<(const Entry& other) const {
    int cmp = key.compare(other.key);
    if (cmp != 0) return cmp < 0;
    return tid < other.tid;
  }
};

// Binary run-file format: repeated [u32 key_len][key bytes][u32 tid].
class RunWriter {
 public:
  explicit RunWriter(const std::string& path)
      : out_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(out_); }

  void Write(const Entry& entry) {
    uint32_t len = static_cast<uint32_t>(entry.key.size());
    out_.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out_.write(entry.key.data(), len);
    out_.write(reinterpret_cast<const char*>(&entry.tid),
               sizeof(entry.tid));
  }

 private:
  std::ofstream out_;
};

class RunReader {
 public:
  explicit RunReader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(in_); }

  // Returns false at end of stream.
  bool Read(Entry* entry) {
    uint32_t len = 0;
    if (!in_.read(reinterpret_cast<char*>(&len), sizeof(len))) return false;
    entry->key.resize(len);
    if (len > 0 && !in_.read(entry->key.data(), len)) return false;
    return static_cast<bool>(
        in_.read(reinterpret_cast<char*>(&entry->tid), sizeof(entry->tid)));
  }

 private:
  std::ifstream in_;
};

}  // namespace

ExternalSorter::ExternalSorter(ExternalSortOptions options)
    : options_(std::move(options)) {}

Result<std::vector<TupleId>> ExternalSorter::Sort(const Dataset& dataset,
                                                  const KeySpec& key_spec,
                                                  IoStats* stats) const {
  if (options_.memory_records == 0) {
    return Status::InvalidArgument("memory_records must be >= 1");
  }
  if (options_.fan_in < 2) {
    return Status::InvalidArgument("fan_in must be >= 2");
  }
  KeyBuilder builder(key_spec);
  MERGEPURGE_RETURN_NOT_OK(builder.Validate(dataset.schema()));

  IoStats local_stats;
  const size_t n = dataset.size();

  // In-memory fast path.
  if (n <= options_.memory_records) {
    std::vector<Entry> entries;
    entries.reserve(n);
    for (size_t t = 0; t < n; ++t) {
      entries.push_back(
          {builder.BuildKey(dataset.record(static_cast<TupleId>(t))),
           static_cast<TupleId>(t)});
    }
    std::sort(entries.begin(), entries.end());
    std::vector<TupleId> order;
    order.reserve(n);
    for (const Entry& entry : entries) order.push_back(entry.tid);
    local_stats.initial_runs = n > 0 ? 1 : 0;
    FlushIoStats(local_stats, /*spills=*/0);
    if (stats != nullptr) *stats = local_stats;
    return order;
  }

  Span sort_span("external-sort-spill-merge");

  // Phase 1: form sorted runs of at most memory_records entries.
  uint64_t unique_id =
      static_cast<uint64_t>(reinterpret_cast<uintptr_t>(this)) ^
      static_cast<uint64_t>(n);
  int file_counter = 0;
  auto run_path = [this, unique_id, &file_counter]() {
    return StringPrintf("%s/mergepurge_run_%llx_%d.bin",
                        options_.temp_dir.c_str(),
                        static_cast<unsigned long long>(unique_id),
                        file_counter++);
  };

  std::vector<std::string> runs;
  std::vector<Entry> buffer;
  buffer.reserve(options_.memory_records);
  auto flush_run = [&]() -> Status {
    MERGEPURGE_RETURN_NOT_OK(
        FaultInjector::Global().OnPoint(fault_points::kSortSpill));
    std::sort(buffer.begin(), buffer.end());
    std::string path = run_path();
    RunWriter writer(path);
    if (!writer.ok()) return Status::IoError("cannot create run: " + path);
    for (const Entry& entry : buffer) {
      writer.Write(entry);
      ++local_stats.entries_written;
    }
    runs.push_back(std::move(path));
    buffer.clear();
    return Status::OK();
  };

  for (size_t t = 0; t < n; ++t) {
    buffer.push_back(
        {builder.BuildKey(dataset.record(static_cast<TupleId>(t))),
         static_cast<TupleId>(t)});
    if (buffer.size() == options_.memory_records) {
      MERGEPURGE_RETURN_NOT_OK(flush_run());
    }
  }
  if (!buffer.empty()) MERGEPURGE_RETURN_NOT_OK(flush_run());
  local_stats.initial_runs = static_cast<int>(runs.size());

  auto cleanup = [](const std::vector<std::string>& paths) {
    for (const std::string& path : paths) std::remove(path.c_str());
  };

  // Phase 2: repeated fan_in-way merges until one run remains; the last
  // merge streams directly into the output order.
  std::vector<TupleId> order;
  order.reserve(n);

  while (true) {
    bool final_round = runs.size() <= options_.fan_in;
    std::vector<std::string> next_runs;
    ++local_stats.merge_passes;

    for (size_t group_start = 0; group_start < runs.size();
         group_start += options_.fan_in) {
      size_t group_end =
          std::min(runs.size(), group_start + options_.fan_in);

      std::vector<RunReader> readers;
      readers.reserve(group_end - group_start);
      for (size_t r = group_start; r < group_end; ++r) {
        readers.emplace_back(runs[r]);
        if (!readers.back().ok()) {
          cleanup(runs);
          cleanup(next_runs);
          return Status::IoError("cannot reopen run: " + runs[r]);
        }
      }

      // (entry, reader index) min-heap.
      using HeapItem = std::pair<Entry, size_t>;
      auto greater = [](const HeapItem& a, const HeapItem& b) {
        return b.first < a.first;
      };
      std::priority_queue<HeapItem, std::vector<HeapItem>,
                          decltype(greater)>
          heap(greater);
      for (size_t r = 0; r < readers.size(); ++r) {
        Entry entry;
        if (readers[r].Read(&entry)) {
          ++local_stats.entries_read;
          heap.emplace(std::move(entry), r);
        }
      }

      std::string out_path;
      std::optional<RunWriter> writer;
      if (!final_round) {
        out_path = run_path();
        writer.emplace(out_path);
        if (!writer->ok()) {
          cleanup(runs);
          cleanup(next_runs);
          return Status::IoError("cannot create run: " + out_path);
        }
      }

      while (!heap.empty()) {
        HeapItem item = heap.top();
        heap.pop();
        if (final_round) {
          order.push_back(item.first.tid);
        } else {
          writer->Write(item.first);
          ++local_stats.entries_written;
        }
        Entry entry;
        if (readers[item.second].Read(&entry)) {
          ++local_stats.entries_read;
          heap.emplace(std::move(entry), item.second);
        }
      }
      if (!final_round) next_runs.push_back(std::move(out_path));
    }

    cleanup(runs);
    if (final_round) break;
    runs = std::move(next_runs);
  }

  sort_span.AddArg("initial_runs",
                   static_cast<uint64_t>(local_stats.initial_runs));
  sort_span.AddArg("merge_passes",
                   static_cast<uint64_t>(local_stats.merge_passes));
  sort_span.AddArg("fan_in", static_cast<uint64_t>(options_.fan_in));
  FlushIoStats(local_stats,
               /*spills=*/static_cast<uint64_t>(local_stats.initial_runs));
  if (stats != nullptr) *stats = local_stats;
  return order;
}

}  // namespace mergepurge
