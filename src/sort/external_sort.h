// External merge sort with bounded memory and a configurable merge fan-in.
//
// The paper's experiments "used merge sort, as well as its parallel
// variant, which used a 16-way merge algorithm to merge the sorted runs"
// (§3.5 footnote), and its I/O analysis counts ~log N passes for the global
// sort. ExternalSorter reproduces that component: it forms sorted runs of
// at most `memory_records` (key, tid) entries, spills them to run files,
// and k-way merges with fan-in `fan_in`, counting records moved and merge
// passes so the I/O model of §3.5 can be validated empirically.

#ifndef MERGEPURGE_SORT_EXTERNAL_SORT_H_
#define MERGEPURGE_SORT_EXTERNAL_SORT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "keys/key_builder.h"
#include "record/dataset.h"
#include "util/status.h"

namespace mergepurge {

struct ExternalSortOptions {
  // Maximum (key, tid) entries held in memory at once; each full batch
  // becomes one initial sorted run.
  size_t memory_records = 100000;

  // Merge fan-in (the paper used 16).
  size_t fan_in = 16;

  // Directory for run files; the sorter creates and removes its own files.
  std::string temp_dir = "/tmp";
};

struct IoStats {
  uint64_t entries_written = 0;  // Entries spilled to run files.
  uint64_t entries_read = 0;     // Entries read back during merging.
  int initial_runs = 0;
  int merge_passes = 0;          // Full passes over the data while merging.
};

class ExternalSorter {
 public:
  explicit ExternalSorter(ExternalSortOptions options);

  // Returns tuple ids sorted by the key built from `key_spec` (ties broken
  // by tuple id). When the data fits in memory_records no file I/O occurs.
  Result<std::vector<TupleId>> Sort(const Dataset& dataset,
                                    const KeySpec& key_spec,
                                    IoStats* stats) const;

 private:
  ExternalSortOptions options_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_SORT_EXTERNAL_SORT_H_
