#include "text/edit_distance.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace mergepurge {

namespace {

inline int Min3(int a, int b, int c) { return std::min(a, std::min(b, c)); }

}  // namespace

int EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);

  // Single rolling row over the shorter string.
  std::vector<int> row(n + 1);
  for (size_t j = 0; j <= n; ++j) row[j] = static_cast<int>(j);
  for (size_t i = 1; i <= m; ++i) {
    int diag = row[0];
    row[0] = static_cast<int>(i);
    for (size_t j = 1; j <= n; ++j) {
      int next_diag = row[j];
      int cost = (a[j - 1] == b[i - 1]) ? 0 : 1;
      row[j] = Min3(row[j] + 1, row[j - 1] + 1, diag + cost);
      diag = next_diag;
    }
  }
  return row[n];
}

int DamerauDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);

  // Three rolling rows (need i-2 for the transposition case).
  std::vector<int> prev2(m + 1), prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      curr[j] = Min3(prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost);
      if (i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1]) {
        curr[j] = std::min(curr[j], prev2[j - 2] + 1);
      }
    }
    std::swap(prev2, prev);
    std::swap(prev, curr);
  }
  return prev[m];
}

namespace {

// Shared bounded DP. If with_transpositions is true, computes OSA Damerau.
// Values are clamped at kInf = max_distance + 1 and the computation aborts
// as soon as an entire row exceeds the bound. Strings in this domain are
// short (names, street lines), so full rows are cheap; the early exit is
// what matters during window scanning.
int BoundedDistanceImpl(std::string_view a, std::string_view b,
                        int max_distance, bool with_transpositions) {
  if (max_distance < 0) return 0;
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  if (std::abs(n - m) > max_distance) return max_distance + 1;
  if (n == 0) return m;
  if (m == 0) return n;

  const int kInf = max_distance + 1;
  std::vector<int> prev2(static_cast<size_t>(m) + 1, kInf);
  std::vector<int> prev(static_cast<size_t>(m) + 1, kInf);
  std::vector<int> curr(static_cast<size_t>(m) + 1, kInf);
  for (int j = 0; j <= m; ++j) prev[j] = std::min(j, kInf);

  for (int i = 1; i <= n; ++i) {
    curr[0] = std::min(i, kInf);
    int row_min = curr[0];
    for (int j = 1; j <= m; ++j) {
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      int best = Min3(prev[j] + 1, curr[j - 1] + 1, prev[j - 1] + cost);
      if (with_transpositions && i > 1 && j > 1 && a[i - 1] == b[j - 2] &&
          a[i - 2] == b[j - 1]) {
        best = std::min(best, prev2[j - 2] + 1);
      }
      curr[j] = std::min(best, kInf);
      row_min = std::min(row_min, curr[j]);
    }
    if (row_min > max_distance) return kInf;
    std::swap(prev2, prev);
    std::swap(prev, curr);
  }
  return prev[m];
}

}  // namespace

int BoundedEditDistance(std::string_view a, std::string_view b,
                        int max_distance) {
  return BoundedDistanceImpl(a, b, max_distance, /*with_transpositions=*/false);
}

int BoundedDamerauDistance(std::string_view a, std::string_view b,
                           int max_distance) {
  return BoundedDistanceImpl(a, b, max_distance, /*with_transpositions=*/true);
}

double StringSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  int d = DamerauDistance(a, b);
  return 1.0 - static_cast<double>(d) / static_cast<double>(longest);
}

bool WithinDistance(std::string_view a, std::string_view b,
                    int max_distance) {
  return BoundedDamerauDistance(a, b, max_distance) <= max_distance;
}

}  // namespace mergepurge
