// Typographical distance functions used by the equational theory.
//
// The paper evaluated "a number of alternative distance functions ...
// including distances based upon edit distance, phonetic distance and
// 'typewriter' distance" and reported results with edit distance. We
// implement:
//   * Levenshtein edit distance (insert/delete/substitute, unit costs),
//   * Damerau (optimal string alignment) distance adding transpositions —
//     the dominant real-world typo per the spelling-correction literature
//     the paper cites (Kukich '92),
//   * thresholded variants that abandon the computation once the distance
//     provably exceeds a bound (banded DP), keeping window scanning cheap,
//   * a normalized similarity in [0,1] for rule thresholds.

#ifndef MERGEPURGE_TEXT_EDIT_DISTANCE_H_
#define MERGEPURGE_TEXT_EDIT_DISTANCE_H_

#include <string_view>

namespace mergepurge {

// Classic Levenshtein distance. O(|a|*|b|) time, O(min) space.
int EditDistance(std::string_view a, std::string_view b);

// Optimal-string-alignment Damerau distance: Levenshtein plus adjacent
// transposition as a unit-cost operation.
int DamerauDistance(std::string_view a, std::string_view b);

// Banded Levenshtein: returns the exact distance if it is <= max_distance,
// otherwise returns max_distance + 1. Runs in O(max_distance * min(|a|,|b|)).
int BoundedEditDistance(std::string_view a, std::string_view b,
                        int max_distance);

// Banded Damerau (OSA) with the same early-exit contract.
int BoundedDamerauDistance(std::string_view a, std::string_view b,
                           int max_distance);

// 1 - distance / max(|a|, |b|), using Damerau distance; returns 1.0 when
// both strings are empty. This is the "differ slightly" measure the rule
// base thresholds.
double StringSimilarity(std::string_view a, std::string_view b);

// Returns true if the strings are within the given Damerau distance. This
// is the form the rule base uses; it exploits the banded computation.
bool WithinDistance(std::string_view a, std::string_view b, int max_distance);

}  // namespace mergepurge

#endif  // MERGEPURGE_TEXT_EDIT_DISTANCE_H_
