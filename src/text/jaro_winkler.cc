#include "text/jaro_winkler.h"

#include <algorithm>
#include <string>
#include <vector>

namespace mergepurge {

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;

  const size_t match_window =
      std::max(a.size(), b.size()) / 2 > 0
          ? std::max(a.size(), b.size()) / 2 - 1
          : 0;

  std::vector<char> a_matched(a.size(), 0);
  std::vector<char> b_matched(b.size(), 0);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    size_t lo = i > match_window ? i - match_window : 0;
    size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = 1;
      b_matched[j] = 1;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions: matched characters out of order, halved.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  double jaro = JaroSimilarity(a, b);
  if (prefix_scale <= 0.0) return jaro;
  if (prefix_scale > 0.25) prefix_scale = 0.25;  // Keeps the result <= 1.
  size_t prefix = 0;
  size_t limit = std::min({a.size(), b.size(), size_t{4}});
  while (prefix < limit && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

double NgramSimilarity(std::string_view a, std::string_view b, size_t n) {
  if (n == 0) n = 2;
  if (a.size() < n || b.size() < n) {
    if (a == b) return 1.0;
    return 0.0;
  }
  // Dice over multisets of n-grams: 2*|A ∩ B| / (|A| + |B|).
  std::vector<std::string_view> a_grams;
  a_grams.reserve(a.size() - n + 1);
  for (size_t i = 0; i + n <= a.size(); ++i) {
    a_grams.push_back(a.substr(i, n));
  }
  std::sort(a_grams.begin(), a_grams.end());

  std::vector<char> used(a_grams.size(), 0);
  size_t common = 0;
  for (size_t i = 0; i + n <= b.size(); ++i) {
    std::string_view gram = b.substr(i, n);
    auto it = std::lower_bound(a_grams.begin(), a_grams.end(), gram);
    while (it != a_grams.end() && *it == gram) {
      size_t index = static_cast<size_t>(it - a_grams.begin());
      if (!used[index]) {
        used[index] = 1;
        ++common;
        break;
      }
      ++it;
    }
  }
  const size_t total = a_grams.size() + (b.size() - n + 1);
  return 2.0 * static_cast<double>(common) / static_cast<double>(total);
}

}  // namespace mergepurge
