// Jaro and Jaro-Winkler similarity, plus character n-gram (Dice) overlap —
// the two other distance families standard in the record-linkage
// literature that grew out of merge/purge-era systems. Available as rule
// language builtins (jaro_winkler, ngram_similarity) for custom theories
// and ablations; the built-in employee theory keeps the paper's
// edit-distance family.

#ifndef MERGEPURGE_TEXT_JARO_WINKLER_H_
#define MERGEPURGE_TEXT_JARO_WINKLER_H_

#include <string_view>

namespace mergepurge {

// Jaro similarity in [0,1]: transposition-tolerant common-character
// matching within a half-length window. 1.0 for two empty strings.
double JaroSimilarity(std::string_view a, std::string_view b);

// Jaro-Winkler: Jaro boosted by up to 4 characters of common prefix with
// scaling factor p (standard 0.1, capped so the result stays <= 1).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

// Dice coefficient over character bigrams (n=2) or trigrams (n=3) in
// [0,1]. Strings shorter than n compare by equality (1.0 or 0.0); two
// empty strings give 1.0.
double NgramSimilarity(std::string_view a, std::string_view b, size_t n);

}  // namespace mergepurge

#endif  // MERGEPURGE_TEXT_JARO_WINKLER_H_
