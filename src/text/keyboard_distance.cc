#include "text/keyboard_distance.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <vector>

namespace mergepurge {

namespace {

// Row-major QWERTY layout; -1 marks "no position".
struct KeyPosition {
  int row;
  int col;
};

KeyPosition PositionOf(char c) {
  static constexpr const char* kRows[4] = {
      "1234567890",
      "qwertyuiop",
      "asdfghjkl",
      "zxcvbnm",
  };
  char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (int r = 0; r < 4; ++r) {
    const char* hit = std::strchr(kRows[r], lower);
    if (hit != nullptr && lower != '\0') {
      return {r, static_cast<int>(hit - kRows[r])};
    }
  }
  return {-1, -1};
}

}  // namespace

bool AreKeysAdjacent(char a, char b) {
  KeyPosition pa = PositionOf(a);
  KeyPosition pb = PositionOf(b);
  if (pa.row < 0 || pb.row < 0) return false;
  if (pa.row == pb.row && pa.col == pb.col) return false;
  return std::abs(pa.row - pb.row) <= 1 && std::abs(pa.col - pb.col) <= 1;
}

char NeighborKey(char c, unsigned index) {
  KeyPosition p = PositionOf(c);
  if (p.row < 0) return c;
  static constexpr const char* kRows[4] = {
      "1234567890",
      "qwertyuiop",
      "asdfghjkl",
      "zxcvbnm",
  };
  std::vector<char> neighbors;
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      if (dr == 0 && dc == 0) continue;
      int r = p.row + dr;
      int c2 = p.col + dc;
      if (r < 0 || r >= 4) continue;
      int row_len = static_cast<int>(std::strlen(kRows[r]));
      if (c2 < 0 || c2 >= row_len) continue;
      neighbors.push_back(kRows[r][c2]);
    }
  }
  if (neighbors.empty()) return c;
  char out = neighbors[index % neighbors.size()];
  if (std::isupper(static_cast<unsigned char>(c))) {
    out = static_cast<char>(std::toupper(static_cast<unsigned char>(out)));
  }
  return out;
}

double KeyboardSubstitutionCost(char a, char b) {
  if (a == b) return 0.0;
  if (std::tolower(static_cast<unsigned char>(a)) ==
      std::tolower(static_cast<unsigned char>(b))) {
    return 0.0;
  }
  return AreKeysAdjacent(a, b) ? 0.5 : 1.0;
}

double KeyboardDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<double>(m);
  if (m == 0) return static_cast<double>(n);

  std::vector<double> prev(m + 1), curr(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<double>(j);
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<double>(i);
    for (size_t j = 1; j <= m; ++j) {
      double sub = prev[j - 1] + KeyboardSubstitutionCost(a[i - 1], b[j - 1]);
      curr[j] = std::min({prev[j] + 1.0, curr[j - 1] + 1.0, sub});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double KeyboardSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - KeyboardDistance(a, b) / static_cast<double>(longest);
}

}  // namespace mergepurge
