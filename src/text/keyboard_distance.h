// "Typewriter" distance: an edit distance whose substitution cost depends on
// the physical QWERTY distance between the two keys, modelling the fact that
// typists most often hit a neighbouring key. One of the three distance
// families the paper's rule base was evaluated with.

#ifndef MERGEPURGE_TEXT_KEYBOARD_DISTANCE_H_
#define MERGEPURGE_TEXT_KEYBOARD_DISTANCE_H_

#include <string_view>

namespace mergepurge {

// Cost of substituting key a for key b: 0 if equal, 0.5 if the keys are
// horizontally or vertically adjacent on a QWERTY layout, 1.0 otherwise.
// Non-letter/digit characters always cost 1.0 unless equal.
double KeyboardSubstitutionCost(char a, char b);

// Weighted Levenshtein with KeyboardSubstitutionCost for substitutions and
// unit cost for insertions/deletions.
double KeyboardDistance(std::string_view a, std::string_view b);

// Normalized similarity in [0,1]: 1 - distance / max(|a|, |b|).
double KeyboardSimilarity(std::string_view a, std::string_view b);

// True if a and b are QWERTY-adjacent keys (used by tests and the error
// model, which generates neighbour-key substitutions).
bool AreKeysAdjacent(char a, char b);

// Returns a QWERTY neighbour of c chosen by `index` (wrapping), or c itself
// when c has no known neighbours. Deterministic helper for the error model.
char NeighborKey(char c, unsigned index);

}  // namespace mergepurge

#endif  // MERGEPURGE_TEXT_KEYBOARD_DISTANCE_H_
