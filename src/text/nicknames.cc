#include "text/nicknames.h"

#include "util/string_util.h"

namespace mergepurge {

void NicknameTable::AddVariant(std::string_view canonical,
                               std::string_view variant) {
  variant_to_canonical_[ToUpperAscii(variant)] = ToUpperAscii(canonical);
}

void NicknameTable::AddGroup(std::string_view canonical,
                             const std::vector<std::string_view>& variants) {
  std::string canon = ToUpperAscii(canonical);
  variant_to_canonical_[canon] = canon;
  for (std::string_view v : variants) AddVariant(canonical, v);
}

std::string NicknameTable::Canonicalize(std::string_view name) const {
  std::string upper = ToUpperAscii(name);
  auto it = variant_to_canonical_.find(upper);
  return it != variant_to_canonical_.end() ? it->second : upper;
}

bool NicknameTable::SameCanonicalName(std::string_view a,
                                      std::string_view b) const {
  return Canonicalize(a) == Canonicalize(b);
}

const NicknameTable& NicknameTable::Default() {
  static const NicknameTable* table = [] {
    auto* t = new NicknameTable();
    t->AddGroup("ROBERT", {"BOB", "BOBBY", "ROB", "ROBBIE", "BERT",
                           "ROBERTO"});
    t->AddGroup("WILLIAM", {"BILL", "BILLY", "WILL", "WILLIE", "LIAM",
                            "GUILLERMO", "WILHELM"});
    t->AddGroup("JOSEPH", {"JOE", "JOEY", "JOS", "GIUSEPPE", "JOSE",
                           "JOSEF"});
    t->AddGroup("JOHN", {"JACK", "JOHNNY", "JON", "JUAN", "GIOVANNI",
                         "JOHANN", "IAN", "SEAN"});
    t->AddGroup("JAMES", {"JIM", "JIMMY", "JAMIE", "DIEGO", "SEAMUS"});
    t->AddGroup("MICHAEL", {"MIKE", "MICKEY", "MICK", "MIGUEL", "MICHEL",
                            "MIKHAIL"});
    t->AddGroup("RICHARD", {"DICK", "RICK", "RICKY", "RICH", "RICARDO"});
    t->AddGroup("CHARLES", {"CHUCK", "CHARLIE", "CHAS", "CARLOS", "CARL",
                            "KARL"});
    t->AddGroup("THOMAS", {"TOM", "TOMMY", "TOMAS"});
    t->AddGroup("DAVID", {"DAVE", "DAVEY", "DAVIDE"});
    t->AddGroup("DANIEL", {"DAN", "DANNY", "DANILO"});
    t->AddGroup("EDWARD", {"ED", "EDDIE", "TED", "NED", "EDUARDO"});
    t->AddGroup("ANTHONY", {"TONY", "ANTONIO", "ANTON"});
    t->AddGroup("STEVEN", {"STEVE", "STEPHEN", "ESTEBAN", "STEFAN"});
    t->AddGroup("LAWRENCE", {"LARRY", "LAURENCE", "LORENZO"});
    t->AddGroup("PETER", {"PETE", "PEDRO", "PIETRO", "PIERRE"});
    t->AddGroup("PAUL", {"PABLO", "PAOLO", "PAVEL"});
    t->AddGroup("GEORGE", {"JORGE", "GIORGIO", "GEORG"});
    t->AddGroup("FRANCIS", {"FRANK", "FRANKIE", "FRANCISCO", "FRANCESCO",
                            "FRANCOIS"});
    t->AddGroup("HENRY", {"HANK", "HARRY", "ENRIQUE", "ENRICO", "HEINRICH"});
    t->AddGroup("ALEXANDER", {"ALEX", "AL", "SANDY", "ALEJANDRO",
                              "ALESSANDRO"});
    t->AddGroup("NICHOLAS", {"NICK", "NICKY", "NICOLAS", "NICOLA", "NIKOLAI"});
    t->AddGroup("ELIZABETH", {"LIZ", "BETH", "BETTY", "BETSY", "LIZZIE",
                              "ELISA", "ISABEL", "ELISABETTA"});
    t->AddGroup("MARGARET", {"PEGGY", "MEG", "MAGGIE", "MARGE", "MARGARITA",
                             "MARGUERITE"});
    t->AddGroup("KATHERINE", {"KATE", "KATIE", "KATHY", "CATHERINE", "KAREN",
                              "CATALINA", "CATERINA"});
    t->AddGroup("MARY", {"MARIA", "MARIE", "MOLLY", "POLLY", "MAMIE"});
    t->AddGroup("SUSAN", {"SUE", "SUSIE", "SUZANNE", "SUSANNA"});
    t->AddGroup("PATRICIA", {"PAT", "PATSY", "TRICIA", "PATRIZIA"});
    t->AddGroup("BARBARA", {"BARB", "BABS", "BARBRA"});
    t->AddGroup("JENNIFER", {"JEN", "JENNY", "JENNA"});
    t->AddGroup("DOROTHY", {"DOT", "DOTTIE", "DOROTEA"});
    t->AddGroup("HELEN", {"NELL", "NELLIE", "ELENA", "HELENE"});
    t->AddGroup("ANN", {"ANNE", "ANNA", "ANNIE", "NAN", "ANITA"});
    t->AddGroup("JANE", {"JANET", "JANICE", "JOAN", "JUANA", "GIOVANNA"});
    t->AddGroup("CHRISTINE", {"CHRIS", "CHRISSY", "TINA", "CRISTINA",
                              "KRISTEN"});
    return t;
  }();
  return *table;
}

}  // namespace mergepurge
