// Nickname / name-equivalence table (paper §3.2): "A nicknames database or
// name equivalence database is used to assign a common name to records
// containing identified nicknames" — e.g. Joseph and Giuseppe are the same
// name in English and Italian; Bob is a diminutive of Robert.
//
// Canonicalize() maps any known variant to the canonical form; names not in
// the table pass through unchanged. The table is case-insensitive and works
// on normalized (upper-case) names as produced by NormalizeName().

#ifndef MERGEPURGE_TEXT_NICKNAMES_H_
#define MERGEPURGE_TEXT_NICKNAMES_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mergepurge {

class NicknameTable {
 public:
  // Builds the built-in table of common English nicknames and
  // cross-language equivalents.
  static const NicknameTable& Default();

  NicknameTable() = default;

  // Registers `variant` as mapping to `canonical`. Both are stored
  // upper-cased. Re-registering a variant overwrites the old mapping.
  void AddVariant(std::string_view canonical, std::string_view variant);

  // Registers canonical plus each of its variants.
  void AddGroup(std::string_view canonical,
                const std::vector<std::string_view>& variants);

  // Returns the canonical form of `name`, or `name` itself (upper-cased)
  // when unknown.
  std::string Canonicalize(std::string_view name) const;

  // True when both names canonicalize to the same string.
  bool SameCanonicalName(std::string_view a, std::string_view b) const;

  size_t size() const { return variant_to_canonical_.size(); }

 private:
  std::unordered_map<std::string, std::string> variant_to_canonical_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_TEXT_NICKNAMES_H_
