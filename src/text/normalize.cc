#include "text/normalize.h"

#include <cctype>
#include <string_view>
#include <vector>

#include "util/string_util.h"

namespace mergepurge {

namespace {

// Token-level rewrite table entry.
struct TokenRewrite {
  std::string_view from;
  std::string_view to;
};

constexpr TokenRewrite kStreetRewrites[] = {
    {"STREET", "ST"},    {"AVENUE", "AVE"},   {"ROAD", "RD"},
    {"DRIVE", "DR"},     {"LANE", "LN"},      {"BOULEVARD", "BLVD"},
    {"COURT", "CT"},     {"PLACE", "PL"},     {"TERRACE", "TER"},
    {"CIRCLE", "CIR"},   {"HIGHWAY", "HWY"},  {"PARKWAY", "PKWY"},
    {"NORTH", "N"},      {"SOUTH", "S"},      {"EAST", "E"},
    {"WEST", "W"},       {"APARTMENT", "APT"}, {"SUITE", "STE"},
};

constexpr std::string_view kSalutations[] = {"MR", "MRS", "MS", "DR", "PROF"};
constexpr std::string_view kSuffixes[] = {"JR", "SR", "II", "III", "IV"};

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : s) {
    if (c == ' ') {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace

std::string NormalizeBasic(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (char c : s) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      out += static_cast<char>(std::toupper(uc));
    } else if (std::isspace(uc) || c == '-' || c == '/' || c == ',' ||
               c == '.') {
      // Separators become (collapsed) spaces.
      pending_space = true;
    }
    // Other punctuation (apostrophes etc.) is dropped entirely, so
    // O'BRIEN -> OBRIEN.
  }
  return out;
}

std::string NormalizeName(std::string_view s) {
  std::string basic = NormalizeBasic(s);
  std::vector<std::string> tokens = Tokenize(basic);
  size_t begin = 0;
  size_t end = tokens.size();
  if (begin < end) {
    for (std::string_view sal : kSalutations) {
      if (tokens[begin] == sal) {
        ++begin;
        break;
      }
    }
  }
  if (begin < end) {
    for (std::string_view suf : kSuffixes) {
      if (tokens[end - 1] == suf) {
        --end;
        break;
      }
    }
  }
  std::vector<std::string> kept(tokens.begin() + static_cast<long>(begin),
                                tokens.begin() + static_cast<long>(end));
  // Never strip down to nothing: a name that is only "JR" stays "JR".
  if (kept.empty()) return basic;
  return Join(kept, " ");
}

std::string NormalizeAddress(std::string_view s) {
  std::string basic = NormalizeBasic(s);
  std::vector<std::string> tokens = Tokenize(basic);
  for (std::string& token : tokens) {
    for (const TokenRewrite& rewrite : kStreetRewrites) {
      if (token == rewrite.from) {
        token = std::string(rewrite.to);
        break;
      }
    }
  }
  return Join(tokens, " ");
}

std::string NormalizeDigits(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) out += c;
  }
  return out;
}

void ConditionEmployeeRecord(Record* record) {
  Record& r = *record;
  r.set_field(employee::kSsn,
              NormalizeDigits(r.field(employee::kSsn)));
  r.set_field(employee::kFirstName,
              NormalizeName(r.field(employee::kFirstName)));
  r.set_field(employee::kInitial,
              NormalizeBasic(r.field(employee::kInitial)));
  r.set_field(employee::kLastName,
              NormalizeName(r.field(employee::kLastName)));
  r.set_field(employee::kAddress,
              NormalizeAddress(r.field(employee::kAddress)));
  r.set_field(employee::kApartment,
              NormalizeAddress(r.field(employee::kApartment)));
  r.set_field(employee::kCity,
              NormalizeBasic(r.field(employee::kCity)));
  r.set_field(employee::kState,
              NormalizeBasic(r.field(employee::kState)));
  r.set_field(employee::kZip,
              NormalizeDigits(r.field(employee::kZip)));
}

void ConditionEmployeeDataset(Dataset* dataset) {
  for (size_t i = 0; i < dataset->size(); ++i) {
    ConditionEmployeeRecord(
        &dataset->mutable_record(static_cast<TupleId>(i)));
  }
}

}  // namespace mergepurge
