// Record conditioning / pre-processing (paper §3.2): normalization of case,
// whitespace and punctuation, salutation and suffix stripping for name
// fields, and street-type abbreviation canonicalization for address fields.
// Conditioning runs once over the concatenated list before key creation.

#ifndef MERGEPURGE_TEXT_NORMALIZE_H_
#define MERGEPURGE_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

#include "record/dataset.h"

namespace mergepurge {

// Collapses runs of whitespace to single spaces, trims ends, upper-cases,
// and drops punctuation except digits/letters/spaces.
std::string NormalizeBasic(std::string_view s);

// NormalizeBasic plus: strips leading salutations (MR, MRS, MS, DR, PROF)
// and trailing generational suffixes (JR, SR, II, III, IV).
std::string NormalizeName(std::string_view s);

// NormalizeBasic plus: canonicalizes street-type words (STREET->ST,
// AVENUE->AVE, ROAD->RD, DRIVE->DR, LANE->LN, BOULEVARD->BLVD, COURT->CT,
// PLACE->PL) and directionals (NORTH->N, ...).
std::string NormalizeAddress(std::string_view s);

// Keeps only digits (for ssn / zip fields).
std::string NormalizeDigits(std::string_view s);

// Conditions one employee-schema record in place, applying the
// appropriate normalizer per field. Used by the dataset conditioner below
// and by read-only probes that must key a candidate record exactly as an
// admitted one without touching a Dataset.
void ConditionEmployeeRecord(Record* record);

// Conditions every record of an employee-schema dataset in place, applying
// the appropriate normalizer per field.
void ConditionEmployeeDataset(Dataset* dataset);

}  // namespace mergepurge

#endif  // MERGEPURGE_TEXT_NORMALIZE_H_
