#include "text/phonetic.h"

#include <cctype>

namespace mergepurge {

namespace {

// Soundex digit classes; 0 means "not coded" (vowels, h, w, y).
char SoundexDigit(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'b':
    case 'f':
    case 'p':
    case 'v':
      return '1';
    case 'c':
    case 'g':
    case 'j':
    case 'k':
    case 'q':
    case 's':
    case 'x':
    case 'z':
      return '2';
    case 'd':
    case 't':
      return '3';
    case 'l':
      return '4';
    case 'm':
    case 'n':
      return '5';
    case 'r':
      return '6';
    default:
      return '0';
  }
}

bool IsVowel(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return true;
    default:
      return false;
  }
}

// Strips non-letters and upper-cases; returns empty if no letters.
std::string LettersUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      out += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  return out;
}

}  // namespace

std::string Soundex(std::string_view name) {
  std::string letters = LettersUpper(name);
  if (letters.empty()) return "";

  std::string code;
  code += letters[0];
  char prev_digit = SoundexDigit(letters[0]);
  for (size_t i = 1; i < letters.size() && code.size() < 4; ++i) {
    char c = letters[i];
    char digit = SoundexDigit(c);
    char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (lower == 'h' || lower == 'w') {
      // h and w are transparent: they do not reset the repeat suppression.
      continue;
    }
    if (digit != '0' && digit != prev_digit) code += digit;
    prev_digit = digit;
  }
  while (code.size() < 4) code += '0';
  return code;
}

std::string Nysiis(std::string_view name) {
  std::string s = LettersUpper(name);
  if (s.empty()) return "";

  // Initial-letter transformations.
  auto starts_with = [&s](const char* p) {
    return s.rfind(p, 0) == 0;
  };
  if (starts_with("MAC")) {
    s.replace(0, 3, "MCC");
  } else if (starts_with("KN")) {
    s.replace(0, 2, "NN");
  } else if (starts_with("K")) {
    s.replace(0, 1, "C");
  } else if (starts_with("PH") || starts_with("PF")) {
    s.replace(0, 2, "FF");
  } else if (starts_with("SCH")) {
    s.replace(0, 3, "SSS");
  }

  // Final-letter transformations.
  auto ends_with = [&s](const char* p) {
    size_t len = std::char_traits<char>::length(p);
    return s.size() >= len && s.compare(s.size() - len, len, p) == 0;
  };
  if (ends_with("EE") || ends_with("IE")) {
    s.replace(s.size() - 2, 2, "Y");
  } else if (ends_with("DT") || ends_with("RT") || ends_with("RD") ||
             ends_with("NT") || ends_with("ND")) {
    s.replace(s.size() - 2, 2, "D");
  }

  std::string key;
  key += s[0];
  char last = s[0];
  for (size_t i = 1; i < s.size(); ++i) {
    char c = s[i];
    std::string repl(1, c);
    if (IsVowel(c)) {
      if (i + 1 < s.size() && c == 'E' && s[i + 1] == 'V') {
        repl = "AF";
        ++i;  // Consume the V.
      } else {
        repl = "A";
      }
    } else if (c == 'Q') {
      repl = "G";
    } else if (c == 'Z') {
      repl = "S";
    } else if (c == 'M') {
      repl = "N";
    } else if (c == 'K') {
      repl = (i + 1 < s.size() && s[i + 1] == 'N') ? "N" : "C";
    } else if (c == 'S' && i + 2 < s.size() && s[i + 1] == 'C' &&
               s[i + 2] == 'H') {
      repl = "SSS";
      i += 2;
    } else if (c == 'P' && i + 1 < s.size() && s[i + 1] == 'H') {
      repl = "FF";
      ++i;
    } else if (c == 'H' &&
               (!IsVowel(last) ||
                (i + 1 < s.size() && !IsVowel(s[i + 1])))) {
      repl = std::string(1, last);
    } else if (c == 'W' && IsVowel(last)) {
      repl = std::string(1, last);
    }
    for (char rc : repl) {
      if (rc != key.back()) key += rc;
      last = rc;
    }
  }

  // Trailing S / AY / A cleanup.
  if (key.size() > 1 && key.back() == 'S') key.pop_back();
  if (key.size() > 2 && key.compare(key.size() - 2, 2, "AY") == 0) {
    key.replace(key.size() - 2, 2, "Y");
  }
  if (key.size() > 1 && key.back() == 'A') key.pop_back();

  if (key.size() > 6) key.resize(6);
  return key;
}

bool SoundsAlikeSoundex(std::string_view a, std::string_view b) {
  std::string ca = Soundex(a);
  if (ca.empty()) return false;
  return ca == Soundex(b);
}

bool SoundsAlikeNysiis(std::string_view a, std::string_view b) {
  std::string ca = Nysiis(a);
  if (ca.empty()) return false;
  return ca == Nysiis(b);
}

}  // namespace mergepurge
