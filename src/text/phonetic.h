// Phonetic codes: Soundex and NYSIIS. The equational theory can use phonetic
// equality as a cheap "names sound alike" gate before the more expensive
// edit-distance comparison, and the ablation bench compares phonetic-gated
// matching against pure edit distance (paper §2.3: "phonetic distance").

#ifndef MERGEPURGE_TEXT_PHONETIC_H_
#define MERGEPURGE_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace mergepurge {

// American Soundex: first letter + 3 digits (e.g. "Robert" -> "R163").
// Non-alphabetic characters are ignored; an empty or all-symbol input
// yields an empty code.
std::string Soundex(std::string_view name);

// NYSIIS (New York State Identification and Intelligence System) code,
// truncated to 6 characters as in the original specification.
std::string Nysiis(std::string_view name);

// True when both names have non-empty equal Soundex codes.
bool SoundsAlikeSoundex(std::string_view a, std::string_view b);

// True when both names have non-empty equal NYSIIS codes.
bool SoundsAlikeNysiis(std::string_view a, std::string_view b);

}  // namespace mergepurge

#endif  // MERGEPURGE_TEXT_PHONETIC_H_
