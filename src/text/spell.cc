#include "text/spell.h"

#include <algorithm>

#include "text/edit_distance.h"
#include "text/phonetic.h"
#include "util/string_util.h"

namespace mergepurge {

SpellCorrector::SpellCorrector(const std::vector<std::string>& corpus) {
  corpus_.reserve(corpus.size());
  for (const std::string& raw : corpus) {
    std::string word = ToUpperAscii(raw);
    if (word.empty()) continue;
    auto [it, inserted] =
        exact_.emplace(word, static_cast<uint32_t>(corpus_.size()));
    if (!inserted) continue;
    corpus_.push_back(word);
    uint32_t id = it->second;
    soundex_buckets_[Soundex(word)].push_back(id);
    letter_buckets_[word[0]].push_back(id);
  }
}

int SpellCorrector::MaxDistanceFor(size_t length) {
  return length >= 6 ? 2 : 1;
}

bool SpellCorrector::Contains(std::string_view word) const {
  return exact_.count(ToUpperAscii(word)) != 0;
}

std::string SpellCorrector::Correct(std::string_view raw) const {
  std::string word = ToUpperAscii(raw);
  if (word.empty() || exact_.count(word) != 0) return word;

  const int budget = MaxDistanceFor(word.size());

  // Gather candidates from the phonetic bucket and the first-letter bucket;
  // the union covers both "sounds right, typed wrong" and "first letters
  // right" misspellings without scanning the whole corpus.
  std::vector<uint32_t> candidates;
  auto add_bucket = [&candidates](const std::vector<uint32_t>* bucket) {
    if (bucket != nullptr) {
      candidates.insert(candidates.end(), bucket->begin(), bucket->end());
    }
  };
  if (auto it = soundex_buckets_.find(Soundex(word));
      it != soundex_buckets_.end()) {
    add_bucket(&it->second);
  }
  if (auto it = letter_buckets_.find(word[0]); it != letter_buckets_.end()) {
    add_bucket(&it->second);
  }

  int best_distance = budget + 1;
  uint32_t best_id = 0;
  int best_count = 0;
  uint32_t last_seen = static_cast<uint32_t>(-1);
  std::sort(candidates.begin(), candidates.end());
  for (uint32_t id : candidates) {
    if (id == last_seen) continue;  // Dedup the union of the two buckets.
    last_seen = id;
    int d = BoundedDamerauDistance(word, corpus_[id], best_distance);
    if (d < best_distance) {
      best_distance = d;
      best_id = id;
      best_count = 1;
    } else if (d == best_distance && best_distance <= budget) {
      ++best_count;
    }
  }

  // Accept only unambiguous corrections: a tie between two corpus words
  // (e.g. a typo equidistant from two city names) is left unchanged, as a
  // wrong "correction" is worse for merge accuracy than no correction.
  if (best_distance <= budget && best_count == 1) return corpus_[best_id];
  return word;
}

}  // namespace mergepurge
