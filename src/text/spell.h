// Corpus-based spelling correction (paper §3.2): the paper corrected the
// city field against a corpus of US city names using Bickel's simple-and-
// fast method, gaining ~1.5-2.0% detected duplicates. We implement a
// corpus corrector in that spirit: candidates are retrieved from cheap
// buckets (Soundex code and first letter), then ranked by bounded Damerau
// distance; a correction is accepted only when it is unambiguous and within
// a small distance budget relative to word length.

#ifndef MERGEPURGE_TEXT_SPELL_H_
#define MERGEPURGE_TEXT_SPELL_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mergepurge {

class SpellCorrector {
 public:
  // Builds the index over the corpus of correctly spelled (upper-case)
  // words. Duplicates in the corpus are ignored.
  explicit SpellCorrector(const std::vector<std::string>& corpus);

  // Returns the corrected word: `word` itself when it is in the corpus or
  // no sufficiently close unambiguous candidate exists, otherwise the
  // closest corpus word. Input is treated case-insensitively; output is
  // upper-case.
  std::string Correct(std::string_view word) const;

  // True if the (upper-cased) word is in the corpus.
  bool Contains(std::string_view word) const;

  size_t corpus_size() const { return corpus_.size(); }

 private:
  // Maximum accepted distance for a word of the given length: 1 for short
  // words, 2 for words of >= 6 characters (matches the typo statistics of
  // Kukich '92: ~80% of misspellings are a single error).
  static int MaxDistanceFor(size_t length);

  std::vector<std::string> corpus_;
  std::unordered_map<std::string, std::vector<uint32_t>> soundex_buckets_;
  std::unordered_map<char, std::vector<uint32_t>> letter_buckets_;
  std::unordered_map<std::string, uint32_t> exact_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_TEXT_SPELL_H_
