// Little-endian fixed-width integer coding for the durability file
// formats (service/wal, service/snapshot). Byte-order explicit so the
// files are portable across hosts; bounds-checked Get* so a corrupt
// length field fails the decode instead of reading past the buffer.

#ifndef MERGEPURGE_UTIL_CODING_H_
#define MERGEPURGE_UTIL_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace mergepurge {

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

// Reads a u32/u64 at *pos, advancing it; false when fewer bytes remain.
inline bool GetU32(std::string_view data, size_t* pos, uint32_t* out) {
  if (data.size() < 4 || *pos > data.size() - 4) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 4;
  *out = v;
  return true;
}

inline bool GetU64(std::string_view data, size_t* pos, uint64_t* out) {
  if (data.size() < 8 || *pos > data.size() - 8) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data[*pos + i]))
         << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_CODING_H_
