// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for WAL records and
// snapshot bodies. Self-contained table-driven implementation — the
// container has no zlib dev headers, and a checksum this small does not
// justify a dependency. Incremental use: feed the previous return value
// back as `seed` to extend a checksum across multiple buffers.

#ifndef MERGEPURGE_UTIL_CRC32_H_
#define MERGEPURGE_UTIL_CRC32_H_

#include <cstdint>
#include <string_view>

namespace mergepurge {

uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_CRC32_H_
