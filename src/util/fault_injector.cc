#include "util/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace mergepurge {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, FaultSchedule schedule) {
  MutexLock lock(mu_);
  PointState state;
  state.schedule = schedule;
  state.rng = Rng(schedule.seed);
  points_[point] = std::move(state);
  armed_.store(true, std::memory_order_release);
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  for (std::string_view clause : SplitView(spec, ';')) {
    clause = TrimAscii(clause);
    if (clause.empty()) continue;
    size_t eq = clause.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          "fault spec clause missing 'point=schedule': " +
          std::string(clause));
    }
    std::string point(TrimAscii(clause.substr(0, eq)));
    std::string_view sched = clause.substr(eq + 1);
    std::vector<std::string_view> parts = SplitView(sched, ':');
    if (parts.empty()) {
      return Status::InvalidArgument("empty fault schedule for " + point);
    }
    std::string_view kind = parts[0];
    if (kind == "fail") {
      uint64_t n = 1;
      uint64_t skip = 0;
      if (parts.size() > 3) {
        return Status::InvalidArgument("fail takes at most two arguments: " +
                                       std::string(sched));
      }
      if (parts.size() >= 2) {
        char* end = nullptr;
        std::string arg(parts[1]);
        n = std::strtoull(arg.c_str(), &end, 10);
        if (end == arg.c_str() || *end != '\0' || n == 0) {
          return Status::InvalidArgument("bad fail count: " + arg);
        }
      }
      if (parts.size() == 3) {
        std::string_view skip_part = parts[2];
        if (skip_part.rfind("skip=", 0) != 0) {
          return Status::InvalidArgument("expected 'skip=K': " +
                                         std::string(skip_part));
        }
        char* end = nullptr;
        std::string skip_str(skip_part.substr(5));
        skip = std::strtoull(skip_str.c_str(), &end, 10);
        if (end == skip_str.c_str() || *end != '\0') {
          return Status::InvalidArgument("bad skip count: " + skip_str);
        }
      }
      Arm(point, FaultSchedule::FailN(n, skip));
    } else if (kind == "straggle") {
      if (parts.size() != 2) {
        return Status::InvalidArgument("straggle needs ':MS': " +
                                       std::string(sched));
      }
      std::string arg(parts[1]);
      char* end = nullptr;
      long ms = std::strtol(arg.c_str(), &end, 10);
      if (end == arg.c_str() || *end != '\0' || ms < 0) {
        return Status::InvalidArgument("bad straggle duration: " + arg);
      }
      Arm(point, FaultSchedule::StraggleMs(static_cast<int>(ms)));
    } else if (kind == "rate") {
      if (parts.size() < 2 || parts.size() > 3) {
        return Status::InvalidArgument("rate needs ':P[:seed=S]': " +
                                       std::string(sched));
      }
      std::string arg(parts[1]);
      char* end = nullptr;
      double p = std::strtod(arg.c_str(), &end);
      if (end == arg.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("bad fault rate: " + arg);
      }
      uint64_t seed = 1;
      if (parts.size() == 3) {
        std::string_view seed_part = parts[2];
        if (seed_part.rfind("seed=", 0) != 0) {
          return Status::InvalidArgument("expected 'seed=S': " +
                                         std::string(seed_part));
        }
        std::string seed_str(seed_part.substr(5));
        seed = std::strtoull(seed_str.c_str(), &end, 10);
        if (end == seed_str.c_str() || *end != '\0') {
          return Status::InvalidArgument("bad fault seed: " + seed_str);
        }
      }
      Arm(point, FaultSchedule::RandomRate(p, seed));
    } else {
      return Status::InvalidArgument("unknown fault schedule kind: " +
                                     std::string(kind));
    }
  }
  return Status::OK();
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  points_.clear();
  armed_.store(false, std::memory_order_release);
  faults_injected_.store(0, std::memory_order_relaxed);
}

Status FaultInjector::OnPoint(const char* point) {
  // Fast path: nothing armed anywhere.
  if (!armed_.load(std::memory_order_acquire)) return Status::OK();

  int straggle_ms = 0;
  Status verdict = Status::OK();
  {
    MutexLock lock(mu_);
    auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    PointState& state = it->second;
    ++state.hits;
    switch (state.schedule.kind) {
      case FaultSchedule::Kind::kFailN:
        if (state.hits > state.schedule.skip &&
            state.failures_delivered < state.schedule.count) {
          ++state.failures_delivered;
          verdict = Status::InjectedFault(
              StringPrintf("%s: injected failure %llu/%llu", point,
                           static_cast<unsigned long long>(
                               state.failures_delivered),
                           static_cast<unsigned long long>(
                               state.schedule.count)));
        }
        break;
      case FaultSchedule::Kind::kStraggle:
        straggle_ms = state.schedule.straggle_ms;
        break;
      case FaultSchedule::Kind::kRandom:
        if (state.rng.NextBernoulli(state.schedule.rate)) {
          ++state.failures_delivered;
          verdict = Status::InjectedFault(
              StringPrintf("%s: injected random failure (hit %llu)", point,
                           static_cast<unsigned long long>(state.hits)));
        }
        break;
    }
  }
  if (!verdict.ok()) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
    static Counter* const tripped =
        MetricsRegistry::Global().GetCounter(metric_names::kFaultsTripped);
    tripped->Increment();
    return verdict;
  }
  if (straggle_ms > 0) {
    // Sleep outside the lock so a straggler never blocks other points.
    std::this_thread::sleep_for(std::chrono::milliseconds(straggle_ms));
  }
  return Status::OK();
}

uint64_t FaultInjector::HitCount(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

}  // namespace mergepurge
