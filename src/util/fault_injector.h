// FaultInjector: programmable fault points for chaos-testing the parallel
// and multi-pass pipelines. Library code consults a named fault point at
// the top of each unit of restartable work (fragment scan, cluster SNM,
// sort spill, pairs-file write); tests and the CLI arm points with
// deterministic failure schedules. With no schedule armed, a point check
// is a single relaxed atomic load — safe to leave in production paths.
//
// Schedules:
//   fail-once        first hit of the point fails, later hits succeed
//   fail-N-times     first N hits fail
//   straggle-for-ms  every hit sleeps for the given duration, then succeeds
//                    (models the paper's slow shared-nothing site)
//   random-rate      each hit fails with probability p, from a seeded RNG
//                    (deterministic across runs for a fixed seed)
//
// A spec string programs several points at once, e.g.
//   "parallel.fragment_scan=fail:2;io.pairs_write=rate:0.2:seed=7"
// (see ArmFromSpec for the grammar); the CLI exposes this as --faults=SPEC.

#ifndef MERGEPURGE_UTIL_FAULT_INJECTOR_H_
#define MERGEPURGE_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"
#include "util/sync.h"

namespace mergepurge {

// Canonical fault-point names used by library code.
namespace fault_points {
inline constexpr char kFragmentScan[] = "parallel.fragment_scan";
inline constexpr char kClusterSnm[] = "parallel.cluster_snm";
inline constexpr char kSortSpill[] = "sort.spill";
inline constexpr char kPairsWrite[] = "io.pairs_write";
// Durability crash points (service WAL + snapshot paths). Each models
// the process dying at that instant: a tripped point leaves partial
// on-disk state exactly as a real crash would (torn WAL record, partial
// snapshot temp file, un-renamed temp) and the writer goes fail-stop.
inline constexpr char kWalAppend[] = "wal-append";
inline constexpr char kWalFsync[] = "wal-fsync";
inline constexpr char kSnapshotWrite[] = "snapshot-write";
inline constexpr char kSnapshotRename[] = "snapshot-rename";
}  // namespace fault_points

struct FaultSchedule {
  enum class Kind {
    kFailN,      // Fail the first `count` hits (count == 1 is fail-once).
    kStraggle,   // Sleep `straggle_ms` on every hit, then succeed.
    kRandom,     // Fail each hit with probability `rate` (seeded).
  };

  Kind kind = Kind::kFailN;
  uint64_t count = 1;     // kFailN.
  uint64_t skip = 0;      // kFailN: let this many hits through first.
  int straggle_ms = 0;    // kStraggle.
  double rate = 0.0;      // kRandom.
  uint64_t seed = 1;      // kRandom.

  static FaultSchedule FailOnce() { return FailN(1); }
  // Fails hits (skip, skip + n]; skip > 0 models a process that dies
  // mid-run after some work has already been persisted.
  static FaultSchedule FailN(uint64_t n, uint64_t skip = 0) {
    FaultSchedule s;
    s.kind = Kind::kFailN;
    s.count = n;
    s.skip = skip;
    return s;
  }
  static FaultSchedule StraggleMs(int ms) {
    FaultSchedule s;
    s.kind = Kind::kStraggle;
    s.straggle_ms = ms;
    return s;
  }
  static FaultSchedule RandomRate(double rate, uint64_t seed) {
    FaultSchedule s;
    s.kind = Kind::kRandom;
    s.rate = rate;
    s.seed = seed;
    return s;
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;

  // The process-wide instance library code consults. Tests that need
  // isolation can construct their own and pass it down explicitly.
  static FaultInjector& Global();

  // Arms `point` with a schedule (replacing any previous one).
  void Arm(const std::string& point, FaultSchedule schedule);

  // Parses and arms a multi-point spec:
  //   SPEC    := CLAUSE (';' CLAUSE)*
  //   CLAUSE  := POINT '=' SCHED
  //   SCHED   := 'fail' [':' N [':skip=' K]] (default N=1: fail-once;
  //                                           skip=K lets the first K
  //                                           hits through)
  //            | 'straggle' ':' MS
  //            | 'rate' ':' P [':seed=' S]   (default seed=1)
  // Unknown point names are accepted (code may gain points later); a
  // malformed clause is an InvalidArgument.
  Status ArmFromSpec(const std::string& spec);

  // Disarms every point and zeroes the counters.
  void Reset();

  // Consulted by library code. Returns OK when the point is disarmed or
  // the schedule says this hit survives; returns InjectedFault otherwise.
  // kStraggle schedules sleep, then return OK.
  Status OnPoint(const char* point);

  // Total faults injected (all points) since the last Reset.
  uint64_t faults_injected() const {
    return faults_injected_.load(std::memory_order_relaxed);
  }

  // Hits observed at a specific point since the last Reset (armed points
  // only; disarmed points are not tracked).
  uint64_t HitCount(const std::string& point) const;

 private:
  struct PointState {
    FaultSchedule schedule;
    uint64_t hits = 0;
    uint64_t failures_delivered = 0;
    Rng rng{1};
  };

  // Fast-path flag: true iff any point is armed.
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> faults_injected_{0};

  mutable Mutex mu_{lockrank::kFaultInjector};
  std::map<std::string, PointState> points_ MERGEPURGE_GUARDED_BY(mu_);
};

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_FAULT_INJECTOR_H_
