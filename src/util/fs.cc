#include "util/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mergepurge {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " failed: " + path + " (" + std::strerror(errno) + ")";
}

// Directory part of `path`, or "." when it has none.
std::string DirName(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("MakeDirs: empty path");
  std::string prefix;
  size_t pos = 0;
  while (pos <= path.size()) {
    size_t slash = path.find('/', pos);
    if (slash == std::string::npos) slash = path.size();
    prefix = path.substr(0, slash);
    pos = slash + 1;
    if (prefix.empty()) continue;  // Leading '/' of an absolute path.
    if (mkdir(prefix.c_str(), 0777) == 0 || errno == EEXIST) {
      struct stat st;
      if (stat(prefix.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
        return Status::IoError("MakeDirs: not a directory: " + prefix);
      }
      continue;
    }
    return Status::IoError(ErrnoMessage("mkdir", prefix));
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSizeOf(const std::string& path) {
  struct stat st;
  if (stat(path.c_str(), &st) != 0) {
    return Status::IoError(ErrnoMessage("stat", path));
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return Status::IoError(ErrnoMessage("opendir", dir));
  std::vector<std::string> names;
  while (struct dirent* entry = readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status FsyncFd(int fd, const std::string& what) {
  if (fsync(fd) != 0) return Status::IoError(ErrnoMessage("fsync", what));
  return Status::OK();
}

Status FsyncPath(const std::string& path) {
  int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError(ErrnoMessage("open for fsync", path));
  Status status = FsyncFd(fd, path);
  close(fd);
  return status;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IoError(ErrnoMessage("truncate", path));
  }
  return FsyncPath(path);
}

Status RemoveFile(const std::string& path) {
  if (unlink(path.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("unlink", path));
  }
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));
  size_t written = 0;
  while (written < content.size()) {
    ssize_t n = write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      unlink(tmp.c_str());
      return Status::IoError(ErrnoMessage("write", tmp));
    }
    written += static_cast<size_t>(n);
  }
  Status status = FsyncFd(fd, tmp);
  close(fd);
  if (!status.ok()) {
    unlink(tmp.c_str());
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status rename_status = Status::IoError(ErrnoMessage("rename", tmp));
    unlink(tmp.c_str());
    return rename_status;
  }
  return FsyncPath(DirName(path));
}

}  // namespace mergepurge
