// Durable filesystem primitives shared by the crash-consistent writers
// (core/checkpoint, service/wal, service/snapshot). Every function
// reports failure as a Status — a full disk or a failed fsync must
// surface to the caller, never silently yield a manifest pointing at a
// truncated file. POSIX-only by design (the toolchain targets linux).
//
// The durable-write protocol used throughout:
//   1. write `path.tmp` in full,
//   2. fsync the tmp file (data hits the platter before the name does),
//   3. rename(tmp, path)  — atomic replacement,
//   4. fsync the containing directory (the rename itself is durable).
// A reader therefore either sees the complete old file or the complete
// new one, across power loss.

#ifndef MERGEPURGE_UTIL_FS_H_
#define MERGEPURGE_UTIL_FS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace mergepurge {

// mkdir -p: creates `path` and any missing parents. Existing directories
// are fine; a non-directory in the way is an IoError.
Status MakeDirs(const std::string& path);

// True iff `path` exists (any file type).
bool PathExists(const std::string& path);

// Regular-file size; IoError when absent/unstatable.
Result<uint64_t> FileSizeOf(const std::string& path);

// Entry names in `dir` (no "." / ".."), sorted ascending.
Result<std::vector<std::string>> ListDir(const std::string& dir);

// fsync an open descriptor; `what` names it in error messages.
Status FsyncFd(int fd, const std::string& what);

// Opens `path` read-only, fsyncs it, closes. Works on directories too
// (how rename durability is achieved on POSIX).
Status FsyncPath(const std::string& path);

// Truncates the file to `size` bytes (used by WAL recovery to cut a torn
// tail), then fsyncs it.
Status TruncateFile(const std::string& path, uint64_t size);

Status RemoveFile(const std::string& path);

// The full durable-write protocol above in one call: tmp + fsync +
// rename + directory fsync. Any failure removes the tmp file and returns
// the error.
Status WriteFileDurable(const std::string& path, std::string_view content);

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_FS_H_
