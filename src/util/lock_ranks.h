// The process-wide lock hierarchy, as numbers.
//
// Every Mutex/SharedMutex in the codebase is constructed with one of the
// ranks below; a thread may only acquire a lock whose rank is STRICTLY
// GREATER than every lock it already holds. The rank order therefore IS
// the acquisition order: lower rank = outer lock, and the debug-build
// LockOrderValidator (util/sync.cc, MERGEPURGE_LOCK_ORDER_CHECKS) aborts
// the process on any out-of-order acquire.
//
// The same hierarchy lives as data in tools/lock_hierarchy.json — the
// manifest tools/mergepurge_deadlockcheck verifies this header, the
// source tree, and docs/concurrency.md against. Adding a lock means
// adding it in all three places; the checker fails CI until they agree.
//
// Ranks are spaced by 10 so a new lock can slot between two existing
// ones without renumbering the world. The coordinator's three leaf
// mutexes (routing/closure/pool) are deliberately adjacent: they are
// EXCLUDES-paired in the manifest — never held together in either
// order — so their relative ranks exist only to keep the validator's
// strict ordering total.

#ifndef MERGEPURGE_UTIL_LOCK_RANKS_H_
#define MERGEPURGE_UTIL_LOCK_RANKS_H_

namespace mergepurge {
namespace lockrank {

// A lock constructed without a rank: invisible to the runtime validator
// (and flagged by mergepurge_deadlockcheck, which requires every
// declaration in src/ to carry a rank).
inline constexpr int kUnranked = -1;

// --- Service front end (outermost) ------------------------------------------
inline constexpr int kServerConn = 10;       // Server::conn_mu_
inline constexpr int kBatcher = 20;          // UpsertBatcher::mu_
inline constexpr int kEngine = 30;           // MatchService::engine_mu_
inline constexpr int kRecovery = 40;         // MatchService::recovery_mu_
inline constexpr int kTheoryPool = 50;       // MatchService::theory_mu_
inline constexpr int kLabels = 60;           // IncrementalMergePurge::labels_mu_

// --- Durability --------------------------------------------------------------
inline constexpr int kWal = 70;              // WalWriter::mu_
inline constexpr int kSnapshotter = 80;      // Snapshotter::mu_

// --- Shard coordinator (EXCLUDES-paired leaves) ------------------------------
inline constexpr int kCoordRouting = 90;     // CoordService::routing_mu_
inline constexpr int kCoordClosure = 91;     // CoordService::closure_mu_
inline constexpr int kCoordPool = 92;        // CoordService::pool_mu_

// --- Parallel batch engine ---------------------------------------------------
inline constexpr int kResilientRun = 100;    // ResilientRunner::RunContext::mu
inline constexpr int kThreadPool = 110;      // ThreadPool::mu_

// --- Cross-cutting leaves (innermost) ----------------------------------------
inline constexpr int kFaultInjector = 120;   // FaultInjector::mu_
inline constexpr int kSnapshotRing = 130;    // SnapshotRing::mu_
inline constexpr int kProgress = 140;        // ProgressReporter::mu_
inline constexpr int kTrace = 150;           // TraceRecorder::mu_
inline constexpr int kDrain = 160;           // SignalDrain::mu_
inline constexpr int kMetricsRegistry = 170; // MetricsRegistry::mu_
inline constexpr int kLog = 180;             // logging.cc LogMutex()

// Human-readable name for validator abort messages. Returns the rank's
// lock as declared in tools/lock_hierarchy.json, or "?" for a rank the
// hierarchy does not know (which deadlockcheck would reject anyway).
inline constexpr const char* LockRankName(int rank) {
  switch (rank) {
    case kServerConn: return "Server::conn_mu_";
    case kBatcher: return "UpsertBatcher::mu_";
    case kEngine: return "MatchService::engine_mu_";
    case kRecovery: return "MatchService::recovery_mu_";
    case kTheoryPool: return "MatchService::theory_mu_";
    case kLabels: return "IncrementalMergePurge::labels_mu_";
    case kWal: return "WalWriter::mu_";
    case kSnapshotter: return "Snapshotter::mu_";
    case kCoordRouting: return "CoordService::routing_mu_";
    case kCoordClosure: return "CoordService::closure_mu_";
    case kCoordPool: return "CoordService::pool_mu_";
    case kResilientRun: return "ResilientRunner::RunContext::mu";
    case kThreadPool: return "ThreadPool::mu_";
    case kFaultInjector: return "FaultInjector::mu_";
    case kSnapshotRing: return "SnapshotRing::mu_";
    case kProgress: return "ProgressReporter::mu_";
    case kTrace: return "TraceRecorder::mu_";
    case kDrain: return "SignalDrain::mu_";
    case kMetricsRegistry: return "MetricsRegistry::mu_";
    case kLog: return "LogMutex";
    default: return "?";
  }
}

}  // namespace lockrank
}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_LOCK_RANKS_H_
