#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mergepurge {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace mergepurge
