#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/sync.h"
#include "util/thread_id.h"

namespace mergepurge {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_thread_ids{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Serializes writes to stderr. Leaked so logging stays usable during
// static destruction.
Mutex& LogMutex() {
  static Mutex* mu = new Mutex(lockrank::kLog);
  return *mu;
}

// "HH:MM:SS.mmm" wall-clock timestamp into `out` (size >= 16).
void FormatTimestamp(char* out, size_t out_size) {
  using std::chrono::system_clock;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);
  std::snprintf(out, out_size, "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, millis);
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

std::optional<LogLevel> ParseLogLevel(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return std::nullopt;
}

void SetLogThreadIds(bool enabled) {
  g_thread_ids.store(enabled, std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char timestamp[16];
  FormatTimestamp(timestamp, sizeof(timestamp));
  MutexLock lock(LogMutex());
  if (g_thread_ids.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "[%s] [%s] [t%u] %s\n", timestamp,
                 LevelName(level), CurrentThreadOrdinal(), message.c_str());
  } else {
    std::fprintf(stderr, "[%s] [%s] %s\n", timestamp, LevelName(level),
                 message.c_str());
  }
}

}  // namespace mergepurge
