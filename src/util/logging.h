// Minimal leveled logging to stderr. Used by benches and the parallel
// coordinator; library hot paths never log.
//
// Line format: "[HH:MM:SS.mmm] [LEVEL] message" — with thread-id
// prefixes enabled (SetLogThreadIds), "[HH:MM:SS.mmm] [LEVEL] [tN]
// message", where N is the thread's dense ordinal (util/thread_id.h).

#ifndef MERGEPURGE_UTIL_LOGGING_H_
#define MERGEPURGE_UTIL_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace mergepurge {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug" / "info" / "warning" (or "warn") / "error"
// (case-insensitive); nullopt on anything else. Backs the --log-level=
// CLI flag.
std::optional<LogLevel> ParseLogLevel(std::string_view name);

// When enabled, each line carries the emitting thread's dense ordinal —
// useful when reading interleaved parallel-runner output. Off by default.
void SetLogThreadIds(bool enabled);

// Emits one formatted line to stderr if enabled.
void LogMessage(LogLevel level, const std::string& message);

namespace internal_logging {

// Stream-style builder: LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace mergepurge

#define MERGEPURGE_LOG(level)                 \
  ::mergepurge::internal_logging::LogLine(    \
      ::mergepurge::LogLevel::level)

#endif  // MERGEPURGE_UTIL_LOGGING_H_
