// Minimal leveled logging to stderr. Used by benches and the parallel
// coordinator; library hot paths never log.

#ifndef MERGEPURGE_UTIL_LOGGING_H_
#define MERGEPURGE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace mergepurge {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line ("[LEVEL] message\n") to stderr if enabled.
void LogMessage(LogLevel level, const std::string& message);

namespace internal_logging {

// Stream-style builder: LOG(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

}  // namespace mergepurge

#define MERGEPURGE_LOG(level)                 \
  ::mergepurge::internal_logging::LogLine(    \
      ::mergepurge::LogLevel::level)

#endif  // MERGEPURGE_UTIL_LOGGING_H_
