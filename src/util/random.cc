#include "util/random.h"

#include <cassert>

namespace mergepurge {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased zone.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  if (span == 0) return static_cast<int64_t>(NextUint64());
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double target = NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64() ^ 0xd6e8feb86659fd93ull); }

}  // namespace mergepurge
