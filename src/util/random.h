// Deterministic pseudo-random number generation.
//
// Every stochastic component of the system (database generator, error model,
// sampling) draws from an Rng seeded from the experiment configuration, so
// every experiment is reproducible bit-for-bit across runs and platforms.
// The engine is xoshiro256** seeded via splitmix64; both are public-domain
// algorithms with well-studied statistical quality.

#ifndef MERGEPURGE_UTIL_RANDOM_H_
#define MERGEPURGE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mergepurge {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform over [0, bound). bound must be > 0. Uses Lemire's unbiased
  // multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound);

  // Uniform over [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform over [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Samples an index in [0, weights.size()) with probability proportional
  // to weights[i]. Weights must be non-negative with a positive sum;
  // otherwise returns 0.
  size_t NextWeighted(const std::vector<double>& weights);

  // Derives an independent child generator; used to give each parallel
  // worker / generator stage its own deterministic stream.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_RANDOM_H_
