#include "util/status.h"

namespace mergepurge {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kPartialFailure:
      return "PartialFailure";
    case StatusCode::kInjectedFault:
      return "InjectedFault";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace mergepurge
