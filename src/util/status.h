// Status and Result<T>: exception-free error handling for library code.
//
// Library functions that can fail return a Status (or a Result<T> when they
// also produce a value). Exceptions are never thrown across the public API;
// this follows the RocksDB / Arrow idiom for database engines where error
// paths must be cheap, explicit, and visible at every call site.

#ifndef MERGEPURGE_UTIL_STATUS_H_
#define MERGEPURGE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace mergepurge {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIoError,
  kParseError,
  kInternal,
  kUnimplemented,
  // Some, but not all, of the requested work completed (e.g. a parallel
  // run whose retries were exhausted on a subset of fragments). The
  // message names the unprocessed units.
  kPartialFailure,
  // A fault injected by FaultInjector (tests / chaos runs only).
  kInjectedFault,
};

// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error value. The OK status carries no
// allocation; error statuses carry a code and a message.
//
// [[nodiscard]]: a dropped Status is a swallowed failure (the PR 7
// checkpoint-fsync bug was exactly that), so every function returning
// one by value must have its result checked, propagated, or discarded
// explicitly with `(void)` and a comment. -Werror=unused-result makes
// the warning an error repo-wide.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status PartialFailure(std::string msg) {
    return Status(StatusCode::kPartialFailure, std::move(msg));
  }
  static Status InjectedFault(std::string msg) {
    return Status(StatusCode::kInjectedFault, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

// A value or an error Status. Accessing the value of an errored Result is a
// programming error and asserts in debug builds. [[nodiscard]] for the
// same reason as Status: an unchecked Result hides its error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit: allows `return value;` and `return status;`
  // from functions declared to return Result<T>.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mergepurge

// Propagates a non-OK Status from an expression, RocksDB-style.
#define MERGEPURGE_RETURN_NOT_OK(expr)                 \
  do {                                                 \
    ::mergepurge::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                         \
  } while (false)

#endif  // MERGEPURGE_UTIL_STATUS_H_
