#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mergepurge {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> SplitView(std::string_view s, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Prefix(std::string_view s, size_t n) {
  return s.substr(0, n < s.size() ? n : s.size());
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

uint64_t Fnv1a64(std::string_view s, uint64_t seed) {
  uint64_t hash = seed;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace mergepurge
