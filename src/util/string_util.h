// Small string helpers shared across modules. ASCII-only by design: the
// record domain (names, US addresses) is ASCII and the 1995 system predates
// Unicode-aware matching.

#ifndef MERGEPURGE_UTIL_STRING_UTIL_H_
#define MERGEPURGE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mergepurge {

// Lower/upper-case a copy (ASCII).
std::string ToLowerAscii(std::string_view s);
std::string ToUpperAscii(std::string_view s);

// Removes leading and trailing whitespace.
std::string_view TrimAscii(std::string_view s);

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> SplitView(std::string_view s, char delim);

// Joins with a delimiter string.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

// True if s consists only of ASCII digits (and is non-empty).
bool IsAllDigits(std::string_view s);

// True if a and b are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// Returns the first n characters (fewer if s is shorter).
std::string_view Prefix(std::string_view s, size_t n);

// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// 64-bit FNV-1a hash; `seed` chains multi-part digests (pass the previous
// digest as the next seed). Used for checkpoint manifests.
uint64_t Fnv1a64(std::string_view s,
                 uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_STRING_UTIL_H_
