// Runtime lock-order validator (MERGEPURGE_LOCK_ORDER_CHECKS builds).
//
// Each thread tracks the ranks of the locks it holds in acquisition
// order. OnAcquire aborts the process — with both lock names, from
// util/lock_ranks.h — when the new rank is not strictly greater than
// every held rank, i.e. the moment the declared hierarchy
// (tools/lock_hierarchy.json) is violated, whether or not the schedule
// would have deadlocked this run.

#include "util/sync.h"

#if defined(MERGEPURGE_LOCK_ORDER_CHECKS)

#include <cstdio>
#include <cstdlib>

namespace mergepurge {
namespace lockorder {

namespace {

// Deep enough for every legal chain (the full hierarchy is 20 ranks) and
// fixed-size so the hot path never allocates. Overflow means runaway
// recursive locking and aborts too.
constexpr int kMaxHeld = 32;

thread_local int t_held[kMaxHeld];
thread_local int t_depth = 0;

[[noreturn]] void Die(const char* what, int held, int acquiring) {
  std::fprintf(stderr,
               "lockorder: %s: acquiring %s (rank %d) while holding %s "
               "(rank %d); hierarchy is src/util/lock_ranks.h / "
               "tools/lock_hierarchy.json\n",
               what, lockrank::LockRankName(acquiring), acquiring,
               lockrank::LockRankName(held), held);
  std::abort();
}

void Push(int rank) {
  if (t_depth >= kMaxHeld) {
    std::fprintf(stderr, "lockorder: more than %d locks held at once\n",
                 kMaxHeld);
    std::abort();
  }
  t_held[t_depth++] = rank;
}

}  // namespace

void OnAcquire(int rank) {
  if (rank == lockrank::kUnranked) return;
  for (int i = 0; i < t_depth; ++i) {
    if (t_held[i] >= rank) Die("lock-order inversion", t_held[i], rank);
  }
  Push(rank);
}

void OnTryAcquire(int rank) {
  if (rank == lockrank::kUnranked) return;
  Push(rank);
}

void OnRelease(int rank) {
  if (rank == lockrank::kUnranked) return;
  // Non-LIFO release is legal (MutexLock::Unlock mid-scope while another
  // scoped lock is open): drop the most recent matching entry.
  for (int i = t_depth - 1; i >= 0; --i) {
    if (t_held[i] != rank) continue;
    for (int j = i; j + 1 < t_depth; ++j) t_held[j] = t_held[j + 1];
    --t_depth;
    return;
  }
  // Releasing a rank that was never recorded: an unlock not paired with
  // a tracked lock (corruption or a bypassed hook) — loud, not silent.
  std::fprintf(stderr, "lockorder: release of %s (rank %d) not held\n",
               lockrank::LockRankName(rank), rank);
  std::abort();
}

}  // namespace lockorder
}  // namespace mergepurge

#endif  // MERGEPURGE_LOCK_ORDER_CHECKS
