// Machine-checked locking for the concurrent core.
//
// Every lock in this codebase is one of the capability-annotated wrappers
// below; every field a lock protects says so with MERGEPURGE_GUARDED_BY,
// and every function that expects a lock already held says so with
// MERGEPURGE_REQUIRES. Under clang the annotations are Thread Safety
// Analysis capabilities, so `-Wthread-safety -Werror` turns each lock
// invariant into a compile error when violated (tools/ci.sh runs that
// build when clang is available); under gcc they compile away to nothing
// and the wrappers are zero-cost forwarding shims over the std types.
//
// The companion linter, tools/lockcheck.py, forbids new naked
// std::mutex / std::lock_guard / bare .lock()/.unlock() / detached
// threads outside this header, so the annotated vocabulary stays the
// only way to synchronize. Conventions, and the process-wide lock
// hierarchy the annotations encode, are documented in
// docs/concurrency.md.
//
// Vocabulary:
//   Mutex            exclusive capability over std::mutex
//   SharedMutex      reader/writer capability over std::shared_mutex
//   CondVar          condition variable bound to a Mutex at each wait
//   MutexLock        scoped exclusive acquire (with early Unlock/relock)
//   WriterLock       scoped exclusive acquire of a SharedMutex
//   ReaderLock       scoped shared acquire of a SharedMutex
//
// CondVar deliberately has no predicate overload: a predicate lambda is
// analyzed as a separate function, outside the waiting scope, so clang
// cannot see that the lock is held inside it. Write the loop instead:
//
//   MutexLock lock(mu_);
//   while (!done_) cv_.Wait(mu_);         // done_ GUARDED_BY(mu_)

#ifndef MERGEPURGE_UTIL_SYNC_H_
#define MERGEPURGE_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/lock_ranks.h"

// --- Annotation macros -------------------------------------------------------
// Expand to clang Thread Safety Analysis attributes when the compiler
// understands them (clang with -Wthread-safety); expand to nothing
// everywhere else, so gcc builds are untouched.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MERGEPURGE_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MERGEPURGE_THREAD_ANNOTATION
#define MERGEPURGE_THREAD_ANNOTATION(x)  // Not clang: no-op.
#endif

// A type that acts as a lock (a "capability" in clang's terms).
#define MERGEPURGE_CAPABILITY(x) \
  MERGEPURGE_THREAD_ANNOTATION(capability(x))

// An RAII type whose lifetime equals a critical section.
#define MERGEPURGE_SCOPED_CAPABILITY \
  MERGEPURGE_THREAD_ANNOTATION(scoped_lockable)

// Field annotations: the named lock protects this field / the data the
// pointer or reference field points at.
#define MERGEPURGE_GUARDED_BY(x) MERGEPURGE_THREAD_ANNOTATION(guarded_by(x))
#define MERGEPURGE_PT_GUARDED_BY(x) \
  MERGEPURGE_THREAD_ANNOTATION(pt_guarded_by(x))

// Lock-ordering edges, stated on the Mutex member itself.
#define MERGEPURGE_ACQUIRED_BEFORE(...) \
  MERGEPURGE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define MERGEPURGE_ACQUIRED_AFTER(...) \
  MERGEPURGE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function preconditions: the caller must hold the capability
// (exclusively / at least shared) before calling.
#define MERGEPURGE_REQUIRES(...) \
  MERGEPURGE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MERGEPURGE_REQUIRES_SHARED(...) \
  MERGEPURGE_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Function effects: acquires / releases the capability.
#define MERGEPURGE_ACQUIRE(...) \
  MERGEPURGE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MERGEPURGE_ACQUIRE_SHARED(...) \
  MERGEPURGE_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define MERGEPURGE_RELEASE(...) \
  MERGEPURGE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MERGEPURGE_RELEASE_SHARED(...) \
  MERGEPURGE_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define MERGEPURGE_TRY_ACQUIRE(...) \
  MERGEPURGE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// The function must NOT be called with the capability held (anti-deadlock
// for functions that acquire it themselves).
#define MERGEPURGE_EXCLUDES(...) \
  MERGEPURGE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// The function returns a reference to the named capability.
#define MERGEPURGE_RETURN_CAPABILITY(x) \
  MERGEPURGE_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch — every use must carry a lockcheck allowlist comment
// explaining why the analysis cannot see the invariant.
#define MERGEPURGE_NO_THREAD_SAFETY_ANALYSIS \
  MERGEPURGE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mergepurge {

// --- Runtime lock-order validation -------------------------------------------
// When MERGEPURGE_LOCK_ORDER_CHECKS is defined (debug / sanitizer builds;
// the CMake option defaults ON whenever MERGEPURGE_SANITIZE is set), each
// thread keeps a stack of the ranks it holds and OnAcquire aborts the
// process if the new lock's rank is not strictly greater than every held
// rank — the dynamic twin of tools/mergepurge_deadlockcheck's static
// check, catching orderings the static call graph cannot see (callbacks,
// std::function indirection). Unranked locks (lockrank::kUnranked) are
// invisible to the validator. Plain builds compile the hooks to nothing.

namespace lockorder {
#if defined(MERGEPURGE_LOCK_ORDER_CHECKS)
// Checks rank order against the caller's held stack, then records the
// acquire. Called BEFORE blocking on the underlying primitive so an
// inversion aborts deterministically instead of only when it deadlocks.
void OnAcquire(int rank);
// Records a successful try-acquire WITHOUT the order check: a try-lock
// never blocks, so out-of-rank try-acquisition cannot deadlock.
void OnTryAcquire(int rank);
// Pops the (most recent) record of `rank` from the held stack.
void OnRelease(int rank);
#else
inline void OnAcquire(int) {}
inline void OnTryAcquire(int) {}
inline void OnRelease(int) {}
#endif
}  // namespace lockorder

// --- Annotated lock types ----------------------------------------------------

// Exclusive lock. Prefer MutexLock over manual Lock()/Unlock() pairs.
// Construct with a lockrank:: constant (util/lock_ranks.h) — the
// deadlockcheck tool requires every declaration in src/ to carry one.
class MERGEPURGE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() MERGEPURGE_ACQUIRE() {
    lockorder::OnAcquire(rank_);
    mu_.lock();
  }
  void Unlock() MERGEPURGE_RELEASE() {
    mu_.unlock();
    lockorder::OnRelease(rank_);
  }
  bool TryLock() MERGEPURGE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockorder::OnTryAcquire(rank_);
    return true;
  }

  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const int rank_ = lockrank::kUnranked;
};

// Reader/writer lock. Writers use Lock/Unlock (or WriterLock), readers
// use ReaderLock()/ReaderUnlock() (or the ReaderLock scoped type).
// Shared and exclusive acquisition occupy the same rank: a reader
// holding the shared side still must not wait on a lower-ranked lock.
class MERGEPURGE_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank) : rank_(rank) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() MERGEPURGE_ACQUIRE() {
    lockorder::OnAcquire(rank_);
    mu_.lock();
  }
  void Unlock() MERGEPURGE_RELEASE() {
    mu_.unlock();
    lockorder::OnRelease(rank_);
  }
  void LockShared() MERGEPURGE_ACQUIRE_SHARED() {
    lockorder::OnAcquire(rank_);
    mu_.lock_shared();
  }
  void UnlockShared() MERGEPURGE_RELEASE_SHARED() {
    mu_.unlock_shared();
    lockorder::OnRelease(rank_);
  }

  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const int rank_ = lockrank::kUnranked;
};

// Condition variable usable only with Mutex. Waits atomically release and
// reacquire the caller's (already held) Mutex, so every Wait* member
// REQUIRES the mutex — clang rejects a wait outside the critical section.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) MERGEPURGE_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      MERGEPURGE_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(adopted, deadline);
    adopted.release();
    return status;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      MERGEPURGE_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_for(adopted, timeout);
    adopted.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// --- Scoped critical sections ------------------------------------------------

// Exclusive critical section over a Mutex. Supports the batcher/runner
// pattern of stepping outside the lock mid-scope:
//
//   MutexLock lock(mu_);
//   ...
//   lock.Unlock();   // leave the critical section
//   ...              // lock-free work
//   lock.Lock();     // re-enter before the next guarded access
class MERGEPURGE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MERGEPURGE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() MERGEPURGE_RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() MERGEPURGE_RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() MERGEPURGE_ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

// Exclusive critical section over a SharedMutex (the writer side).
class MERGEPURGE_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) MERGEPURGE_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterLock() MERGEPURGE_RELEASE() { mu_.Unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Shared critical section over a SharedMutex (the reader side).
class MERGEPURGE_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) MERGEPURGE_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.LockShared();
  }
  ~ReaderLock() MERGEPURGE_RELEASE() { mu_.UnlockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_SYNC_H_
