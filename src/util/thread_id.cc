#include "util/thread_id.h"

#include <atomic>

namespace mergepurge {

uint32_t CurrentThreadOrdinal() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace mergepurge
