// Small dense thread ids. std::this_thread::get_id() is opaque and wide;
// observability wants compact ordinals ("t3") for log prefixes, trace
// events and counter striping. Ordinals are assigned on first use per
// thread, in order of first call, and are never reused within a process.

#ifndef MERGEPURGE_UTIL_THREAD_ID_H_
#define MERGEPURGE_UTIL_THREAD_ID_H_

#include <cstdint>

namespace mergepurge {

// This thread's dense ordinal: 0 for the first thread that asks, 1 for the
// next, and so on. Constant for the lifetime of the thread; the first call
// pays one atomic increment, later calls read a thread-local.
uint32_t CurrentThreadOrdinal();

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_THREAD_ID_H_
