#include "util/thread_pool.h"

namespace mergepurge {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutting_down_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

size_t ThreadPool::exceptions_caught() const {
  MutexLock lock(mu_);
  return exceptions_caught_;
}

std::string ThreadPool::first_exception_message() const {
  MutexLock lock(mu_);
  return first_exception_message_;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutting_down_ && queue_.empty()) task_available_.Wait(mu_);
      if (queue_.empty()) {
        // shutting_down_ must be true here.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::string exception_message;
    bool threw = false;
    try {
      task();
    } catch (const std::exception& e) {
      threw = true;
      exception_message = e.what();
    } catch (...) {
      threw = true;
      exception_message = "unknown exception";
    }
    {
      MutexLock lock(mu_);
      if (threw) {
        if (exceptions_caught_ == 0) {
          first_exception_message_ = std::move(exception_message);
        }
        ++exceptions_caught_;
      }
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace mergepurge
