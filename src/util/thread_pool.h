// A fixed-size worker pool used by the parallel merge/purge implementations.
//
// Design notes: the shared-nothing coordinator in src/parallel assigns whole
// fragments or clusters as tasks; tasks are coarse, so a simple mutex-guarded
// queue is sufficient (no work stealing needed). Wait() provides a barrier so
// phases (cluster -> sort -> window-scan) stay ordered as in the paper.

#ifndef MERGEPURGE_UTIL_THREAD_POOL_H_
#define MERGEPURGE_UTIL_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace mergepurge {

class ThreadPool {
 public:
  // Spawns num_threads workers. num_threads == 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);

  // Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. A task that throws is caught by the worker (the pool
  // survives); the count and first exception message are retrievable via
  // exceptions_caught() / first_exception_message().
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  // Number of tasks that exited via an exception since construction.
  size_t exceptions_caught() const;

  // what() of the first caught exception ("" if none; "unknown exception"
  // for non-std::exception throws).
  std::string first_exception_message() const;

 private:
  void WorkerLoop();

  mutable Mutex mu_{lockrank::kThreadPool};
  CondVar task_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ MERGEPURGE_GUARDED_BY(mu_);
  size_t in_flight_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  bool shutting_down_ MERGEPURGE_GUARDED_BY(mu_) = false;
  size_t exceptions_caught_ MERGEPURGE_GUARDED_BY(mu_) = 0;
  std::string first_exception_message_ MERGEPURGE_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_THREAD_POOL_H_
