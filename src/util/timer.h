// Wall-clock timing helpers for the experiment harnesses.

#ifndef MERGEPURGE_UTIL_TIMER_H_
#define MERGEPURGE_UTIL_TIMER_H_

#include <chrono>

namespace mergepurge {

// A monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_TIMER_H_
