// Wall-clock timing helpers for the experiment harnesses.

#ifndef MERGEPURGE_UTIL_TIMER_H_
#define MERGEPURGE_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace mergepurge {

// A monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  // Integral microseconds, the unit trace spans are recorded in
  // (chrome://tracing timestamps are microsecond ticks).
  uint64_t ElapsedMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mergepurge

#endif  // MERGEPURGE_UTIL_TIMER_H_
