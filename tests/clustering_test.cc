#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/histogram.h"
#include "cluster/partitioner.h"
#include "core/clustering_method.h"
#include "core/sorted_neighborhood.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

TEST(HistogramTest, BinCountMatchesDepth) {
  EXPECT_EQ(Histogram(1).num_bins(), 37u);
  EXPECT_EQ(Histogram(2).num_bins(), 37u * 37u);
  EXPECT_EQ(Histogram(3).num_bins(), 37u * 37u * 37u);
}

TEST(HistogramTest, DepthClamped) {
  EXPECT_EQ(Histogram(0).depth(), 1u);
  EXPECT_EQ(Histogram(9).depth(), 4u);
}

TEST(HistogramTest, BinMappingIsMonotoneInPrefix) {
  Histogram h(3);
  // Alphabetical prefixes map to increasing bins.
  EXPECT_LT(h.BinOf("ABC"), h.BinOf("ABD"));
  EXPECT_LT(h.BinOf("ABZ"), h.BinOf("ACA"));
  EXPECT_LT(h.BinOf("AZZ"), h.BinOf("BAA"));
  // Padding maps below 'A'; digits sort between "other" and letters,
  // matching ASCII order so key ranges stay contiguous.
  EXPECT_LT(h.BinOf("A"), h.BinOf("AA"));
  EXPECT_LT(h.BinOf("1BC"), h.BinOf("ABC"));
  EXPECT_LT(h.BinOf("1"), h.BinOf("2"));
  EXPECT_LT(h.BinOf("9ZZ"), h.BinOf("AAA"));
  // Case-insensitive.
  EXPECT_EQ(h.BinOf("abc"), h.BinOf("ABC"));
}

TEST(HistogramTest, CountsAccumulate) {
  Histogram h(2);
  h.Add("AB");
  h.Add("AB");
  h.Add("CD");
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.count(h.BinOf("AB")), 2u);
  EXPECT_EQ(h.count(h.BinOf("CD")), 1u);
}

TEST(PartitionerTest, RejectsBadInput) {
  Histogram empty(2);
  EXPECT_FALSE(KeyPartitioner::FromHistogram(empty, 4).ok());
  Histogram h(2);
  h.Add("AB");
  EXPECT_FALSE(KeyPartitioner::FromHistogram(h, 0).ok());
}

TEST(PartitionerTest, UniformDataYieldsBalancedClusters) {
  Histogram h(2);
  // Uniform over 26 leading letters.
  for (char c1 = 'A'; c1 <= 'Z'; ++c1) {
    for (char c2 = 'A'; c2 <= 'Z'; ++c2) {
      std::string key{c1, c2};
      for (int k = 0; k < 3; ++k) h.Add(key);
    }
  }
  auto partitioner = KeyPartitioner::FromHistogram(h, 8);
  ASSERT_TRUE(partitioner.ok());
  // Count mass per cluster.
  std::vector<uint64_t> mass(8, 0);
  for (char c1 = 'A'; c1 <= 'Z'; ++c1) {
    for (char c2 = 'A'; c2 <= 'Z'; ++c2) {
      std::string key{c1, c2};
      mass[partitioner->ClusterOf(key)] += 3;
    }
  }
  uint64_t total = 26 * 26 * 3;
  for (uint64_t m : mass) {
    EXPECT_GT(m, total / 16);  // No cluster under half the average.
    EXPECT_LT(m, total / 4);   // No cluster over twice the average.
  }
}

TEST(PartitionerTest, SkewedDataStillCoversAllClusters) {
  Histogram h(1);
  // Heavy skew: 90% of keys start with 'S'.
  for (int i = 0; i < 900; ++i) h.Add("S");
  for (int i = 0; i < 50; ++i) h.Add("A");
  for (int i = 0; i < 50; ++i) h.Add("Z");
  auto partitioner = KeyPartitioner::FromHistogram(h, 4);
  ASSERT_TRUE(partitioner.ok());
  // The hot bin cannot be split (it is one bin), but cluster assignment
  // must remain monotone and within range.
  EXPECT_LE(partitioner->ClusterOf("A"), partitioner->ClusterOf("S"));
  EXPECT_LE(partitioner->ClusterOf("S"), partitioner->ClusterOf("Z"));
  EXPECT_LT(partitioner->ClusterOf("Z"), 4u);
}

TEST(PartitionerTest, ClustersAreContiguousKeyRanges) {
  Histogram h(2);
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    std::string key;
    key += static_cast<char>('A' + rng.NextBounded(26));
    key += static_cast<char>('A' + rng.NextBounded(26));
    h.Add(key);
  }
  auto partitioner = KeyPartitioner::FromHistogram(h, 10);
  ASSERT_TRUE(partitioner.ok());
  // Monotone in key order => contiguous ranges.
  size_t prev = 0;
  for (char c1 = 'A'; c1 <= 'Z'; ++c1) {
    for (char c2 = 'A'; c2 <= 'Z'; ++c2) {
      size_t cluster = partitioner->ClusterOf(std::string{c1, c2});
      EXPECT_GE(cluster, prev);
      prev = cluster;
    }
  }
}

TEST(BuildHistogramTest, SamplingApproximatesFullScan) {
  std::vector<std::string> keys;
  Rng gen(5);
  for (int i = 0; i < 20000; ++i) {
    keys.push_back(std::string(1, 'A' + gen.NextBounded(26)));
  }
  Rng rng(6);
  Histogram full = BuildHistogram(keys, 1, 0, &rng);
  Histogram sampled = BuildHistogram(keys, 1, 2000, &rng);
  EXPECT_EQ(full.total(), keys.size());
  EXPECT_EQ(sampled.total(), 2000u);
  // Sampled distribution within a few percent of the true one.
  for (size_t bin = 0; bin < full.num_bins(); ++bin) {
    double p_full = static_cast<double>(full.count(bin)) / full.total();
    double p_sample =
        static_cast<double>(sampled.count(bin)) / sampled.total();
    EXPECT_NEAR(p_full, p_sample, 0.03);
  }
}

// --- Clustering method end-to-end. ---

class ClusteringMethodTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 1500;
    config.duplicate_selection_rate = 0.35;
    config.max_duplicates_per_record = 5;
    config.seed = 77;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    truth_ = std::move(db->truth);
    ConditionEmployeeDataset(&dataset_);
  }

  Dataset dataset_;
  GroundTruth truth_;
  EmployeeTheory theory_;
};

TEST_F(ClusteringMethodTest, FindsDuplicatesWithReasonableAccuracy) {
  ClusteringOptions options;
  options.num_clusters = 32;
  options.window = 10;
  auto pass = ClusteringMethod(options).Run(dataset_, LastNameKey(),
                                            theory_);
  ASSERT_TRUE(pass.ok()) << pass.status().ToString();
  AccuracyReport report =
      EvaluatePairSet(pass->pairs, dataset_.size(), truth_);
  EXPECT_GT(report.recall_percent, 35.0);
  EXPECT_LT(report.false_positive_percent, 10.0);
}

TEST_F(ClusteringMethodTest, AccuracyComparableToSnm) {
  // Paper §3.4 found SNM edging higher than the clustering method on the
  // 468k-record run; at unit-test scale the ordering fluctuates with the
  // seed, so this test only pins both methods to the same accuracy band
  // (the figure-3 bench reports the actual comparison at scale).
  ClusteringOptions options;
  options.num_clusters = 32;
  options.window = 10;
  auto cluster_pass =
      ClusteringMethod(options).Run(dataset_, LastNameKey(), theory_);
  auto snm_pass =
      SortedNeighborhood(10).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(cluster_pass.ok());
  ASSERT_TRUE(snm_pass.ok());
  AccuracyReport cluster_report =
      EvaluatePairSet(cluster_pass->pairs, dataset_.size(), truth_);
  AccuracyReport snm_report =
      EvaluatePairSet(snm_pass->pairs, dataset_.size(), truth_);
  EXPECT_GT(cluster_report.recall_percent, 35.0);
  EXPECT_GT(snm_report.recall_percent, 35.0);
  EXPECT_NEAR(cluster_report.recall_percent, snm_report.recall_percent,
              15.0);
}

TEST_F(ClusteringMethodTest, FullKeyAblationStaysComparable) {
  // Sorting clusters by the full variable-length key instead of the fixed
  // cluster key changes which in-window pairs are seen; at this scale the
  // two stay within a few points of each other.
  ClusteringOptions fixed_options;
  fixed_options.num_clusters = 16;
  fixed_options.window = 10;
  ClusteringOptions full_options = fixed_options;
  full_options.sort_with_full_key = true;

  auto fixed_pass = ClusteringMethod(fixed_options)
                        .Run(dataset_, LastNameKey(), theory_);
  auto full_pass = ClusteringMethod(full_options)
                       .Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(fixed_pass.ok());
  ASSERT_TRUE(full_pass.ok());
  AccuracyReport fixed_report =
      EvaluatePairSet(fixed_pass->pairs, dataset_.size(), truth_);
  AccuracyReport full_report =
      EvaluatePairSet(full_pass->pairs, dataset_.size(), truth_);
  EXPECT_NEAR(full_report.recall_percent, fixed_report.recall_percent,
              10.0);
}

TEST_F(ClusteringMethodTest, ClusterStatsPopulated) {
  ClusteringOptions options;
  options.num_clusters = 16;
  ClusteringMethod method(options);
  auto pass = method.Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(pass.ok());
  const ClusterStats& stats = method.last_cluster_stats();
  EXPECT_EQ(stats.num_clusters, 16u);
  EXPECT_GT(stats.largest_cluster, 0u);
  EXPECT_LE(stats.largest_cluster, dataset_.size());
}

TEST_F(ClusteringMethodTest, RejectsBadOptions) {
  ClusteringOptions options;
  options.window = 1;
  EXPECT_FALSE(
      ClusteringMethod(options).Run(dataset_, LastNameKey(), theory_).ok());
  options.window = 10;
  options.num_clusters = 0;
  EXPECT_FALSE(
      ClusteringMethod(options).Run(dataset_, LastNameKey(), theory_).ok());
}

TEST_F(ClusteringMethodTest, EmptyDatasetYieldsEmptyResult) {
  Dataset empty(employee::MakeSchema());
  ClusteringOptions options;
  auto pass = ClusteringMethod(options).Run(empty, LastNameKey(), theory_);
  ASSERT_TRUE(pass.ok());
  EXPECT_EQ(pass->pairs.size(), 0u);
}

TEST_F(ClusteringMethodTest, OneClusterEqualsSnmWithFixedKey) {
  // With C=1 every record lands in the same cluster; sorting by the fixed
  // key makes the pass equivalent to SNM run on the fixed-width key spec.
  ClusteringOptions options;
  options.num_clusters = 1;
  options.window = 8;
  auto cluster_pass =
      ClusteringMethod(options).Run(dataset_, LastNameKey(), theory_);
  ASSERT_TRUE(cluster_pass.ok());

  KeySpec fixed = LastNameKey().FixedWidth(options.fixed_key_prefix);
  auto snm_pass = SortedNeighborhood(8).Run(dataset_, fixed, theory_);
  ASSERT_TRUE(snm_pass.ok());

  EXPECT_EQ(cluster_pass->pairs.size(), snm_pass->pairs.size());
  snm_pass->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(cluster_pass->pairs.Contains(a, b));
  });
}

}  // namespace
}  // namespace mergepurge
