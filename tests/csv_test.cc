#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "io/csv.h"
#include "util/random.h"

namespace mergepurge {
namespace {

TEST(CsvParseTest, SimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 3u);
  EXPECT_EQ((*fields)[0], "a");
  EXPECT_EQ((*fields)[2], "c");
}

TEST(CsvParseTest, EmptyFields) {
  auto fields = ParseCsvLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields->size(), 3u);
  for (const auto& f : *fields) EXPECT_EQ(f, "");
}

TEST(CsvParseTest, QuotedFieldWithComma) {
  auto fields = ParseCsvLine("\"a,b\",c");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 2u);
  EXPECT_EQ((*fields)[0], "a,b");
}

TEST(CsvParseTest, DoubledQuotes) {
  auto fields = ParseCsvLine("\"he said \"\"hi\"\"\"");
  ASSERT_TRUE(fields.ok());
  ASSERT_EQ(fields->size(), 1u);
  EXPECT_EQ((*fields)[0], "he said \"hi\"");
}

TEST(CsvParseTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine("\"oops").ok());
}

TEST(CsvParseTest, QuoteMidFieldFails) {
  EXPECT_FALSE(ParseCsvLine("ab\"cd\"").ok());
}

TEST(CsvEscapeTest, PlainPassesThrough) {
  EXPECT_EQ(EscapeCsvField("abc"), "abc");
}

TEST(CsvEscapeTest, CommaAndQuoteAreQuoted) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
}

TEST(CsvEscapeTest, EdgeSpacesAreQuoted) {
  EXPECT_EQ(EscapeCsvField(" x"), "\" x\"");
}

Dataset MakeDataset() {
  Dataset d(Schema({"name", "city"}));
  d.Append(Record({"SMITH, JOHN", "NEW YORK"}));
  d.Append(Record({"o\"neil", ""}));
  return d;
}

TEST(CsvRoundTripTest, StringRoundTrip) {
  Dataset original = MakeDataset();
  std::string text = WriteCsvString(original);
  Result<Dataset> parsed = ReadCsvString(original.schema(), text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed->record(i), original.record(i));
  }
}

TEST(CsvRoundTripTest, FileRoundTrip) {
  Dataset original = MakeDataset();
  std::string path = testing::TempDir() + "/mergepurge_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  Result<Dataset> parsed = ReadCsvFile(original.schema(), path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), original.size());
  std::remove(path.c_str());
}

TEST(CsvReadTest, HeaderMismatchFails) {
  Result<Dataset> parsed =
      ReadCsvString(Schema({"x", "y"}), "a,b\n1,2\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, WrongFieldCountFails) {
  Result<Dataset> parsed = ReadCsvString(Schema({"x", "y"}), "x,y\n1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(CsvReadTest, ErrorsNameSourceAndOneBasedLine) {
  // Data-row errors carry source:line with 1-based line numbers (the
  // header is line 1, the first data row is line 2).
  Result<Dataset> parsed =
      ReadCsvString(Schema({"x", "y"}), "x,y\na,b\n1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("<string>:3:"),
            std::string::npos)
      << parsed.status().message();
  EXPECT_NE(parsed.status().message().find("expected 2 fields, got 1"),
            std::string::npos)
      << parsed.status().message();

  // Header errors point at line 1.
  Result<Dataset> bad_header = ReadCsvString(Schema({"x"}), "y\nv\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.status().message().find("<string>:1:"),
            std::string::npos)
      << bad_header.status().message();
}

TEST(CsvReadTest, FileErrorsIncludeFilePath) {
  std::string path = testing::TempDir() + "/mergepurge_csv_bad.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "x,y\n1,2\nonly-one-field\n";
  }
  Result<Dataset> parsed = ReadCsvFile(Schema({"x", "y"}), path);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().message().find(path + ":3:"),
            std::string::npos)
      << parsed.status().message();
  std::remove(path.c_str());
}

TEST(CsvReadTest, MissingFileFails) {
  Result<Dataset> parsed =
      ReadCsvFile(Schema({"x"}), "/nonexistent/path.csv");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kIoError);
}

TEST(CsvReadTest, CrlfLineEndingsAccepted) {
  Result<Dataset> parsed = ReadCsvString(Schema({"x"}), "x\r\nv\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ(parsed->record(0).field(0), "v");
}

TEST(CsvReadTest, BlankLinesSkipped) {
  Result<Dataset> parsed = ReadCsvString(Schema({"x"}), "x\n\nv\n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 1u);
}

// Property: any dataset of random printable fields (no newlines) survives
// a write/parse round trip bit-for-bit.
class CsvPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  static constexpr char kChars[] =
      "abcXYZ 019,\"'#;|\t-_.!";  // Includes quoting triggers.
  Schema schema({"f0", "f1", "f2"});
  Dataset original(schema);
  for (int row = 0; row < 200; ++row) {
    std::vector<std::string> fields;
    for (int f = 0; f < 3; ++f) {
      std::string value;
      size_t len = rng.NextBounded(12);
      for (size_t i = 0; i < len; ++i) {
        value += kChars[rng.NextBounded(sizeof(kChars) - 1)];
      }
      fields.push_back(std::move(value));
    }
    original.Append(Record(std::move(fields)));
  }
  std::string text = WriteCsvString(original);
  Result<Dataset> parsed = ReadCsvString(schema, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(parsed->record(i), original.record(i)) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace mergepurge
