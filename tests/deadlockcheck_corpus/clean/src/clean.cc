#include "util/sync.h"
namespace mergepurge {
class Inner {
 public:
  void Touch();
 private:
  Mutex mu_{lockrank::kInner};
};
class Outer {
 public:
  void Work(Inner& inner);
 private:
  Mutex mu_{lockrank::kOuter};
};
void Inner::Touch() { MutexLock lock(mu_); }
void Outer::Work(Inner& inner) {
  MutexLock lock(mu_);
  inner.Touch();
}
}  // namespace mergepurge
