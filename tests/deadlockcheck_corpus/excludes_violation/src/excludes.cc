#include "util/sync.h"
namespace mergepurge {
class Pair {
 public:
  void Nest();
 private:
  Mutex a_mu_{lockrank::kA};
  Mutex b_mu_{lockrank::kB};
};
// Deliberate: a_mu_ and b_mu_ are an EXCLUDES pair.
void Pair::Nest() {
  MutexLock a(a_mu_);
  MutexLock b(b_mu_);
}
}  // namespace mergepurge
