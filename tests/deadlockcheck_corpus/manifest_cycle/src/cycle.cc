#include "util/sync.h"
namespace mergepurge {
class Cy {
 public:
  void Work();
 private:
  Mutex a_mu_{lockrank::kA};
  Mutex b_mu_{lockrank::kB};
};
void Cy::Work() { MutexLock a(a_mu_); }
}  // namespace mergepurge
