#include "util/sync.h"
namespace mergepurge {
class Worker {
 public:
  void Backwards();
 private:
  Mutex outer_mu_{lockrank::kOuter};
  Mutex inner_mu_{lockrank::kInner};
};
// Deliberate inversion: the rank-20 lock is taken first.
void Worker::Backwards() {
  MutexLock in(inner_mu_);
  MutexLock out(outer_mu_);
}
}  // namespace mergepurge
