#include "util/sync.h"
namespace mergepurge {
class Low {
 public:
  void Grab();
 private:
  Mutex mu_{lockrank::kLow};
};
class High {
 public:
  void Helper(Low& low);
  void Work(Low& low);
 private:
  Mutex mu_{lockrank::kHigh};
};
void Low::Grab() { MutexLock lock(mu_); }
// Helper itself holds nothing; the inversion is only visible through
// the call graph: Work holds rank 20 and Helper reaches rank 10.
void High::Helper(Low& low) { low.Grab(); }
void High::Work(Low& low) {
  MutexLock lock(mu_);
  Helper(low);
}
}  // namespace mergepurge
