#include "util/sync.h"
namespace mergepurge {
class Sloppy {
 public:
  void Work();
 private:
  Mutex good_mu_{lockrank::kGood};
  Mutex bad_mu_;  // deliberate: constructed without a lockrank
};
void Sloppy::Work() { MutexLock lock(good_mu_); }
}  // namespace mergepurge
