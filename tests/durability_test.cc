// Durability subsystem: WAL framing and torn-tail recovery, snapshot
// round trips and config-digest refusal, engine Restore ≡ incremental
// replay, and the service-level crash matrix — for every injected crash
// point, a service reconstructed over the same data dir must reach
// exactly the state a serial replay of the WAL reaches, and must never
// lose an acknowledged upsert.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "service/match_service.h"
#include "service/snapshot.h"
#include "service/wal.h"
#include "util/fault_injector.h"
#include "util/fs.h"

namespace mergepurge {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/mergepurge_durability_XXXXXX";
    char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path_ = made != nullptr ? made : "/tmp/mergepurge_durability_bad";
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class FaultInjectorGuard {
 public:
  FaultInjectorGuard() { FaultInjector::Global().Reset(); }
  ~FaultInjectorGuard() { FaultInjector::Global().Reset(); }
};

Record MakeRecord(std::string_view ssn, std::string_view first,
                  std::string_view last, std::string_view address) {
  Record r;
  r.set_field(employee::kSsn, std::string(ssn));
  r.set_field(employee::kFirstName, std::string(first));
  r.set_field(employee::kLastName, std::string(last));
  r.set_field(employee::kAddress, std::string(address));
  r.set_field(employee::kCity, "SPRINGFIELD");
  r.set_field(employee::kState, "IL");
  r.set_field(employee::kZip, "62701");
  return r;
}

std::vector<Record> SmallBatch(int tag) {
  return {
      MakeRecord("00000000" + std::to_string(tag), "JOHN", "DOE",
                 std::to_string(tag) + " ELM ST"),
      MakeRecord("11111111" + std::to_string(tag), "JANE", "ROE",
                 std::to_string(tag) + " OAK AVE"),
  };
}

MergePurgeOptions EngineOptions() {
  MergePurgeOptions options;
  options.keys = StandardThreeKeys();
  options.window = 8;
  return options;
}

Dataset GenerateDataset(size_t num_records, uint64_t seed) {
  GeneratorConfig config;
  config.num_records = num_records;
  config.seed = seed;
  auto db = DatabaseGenerator(config).Generate();
  EXPECT_TRUE(db.ok());
  return std::move(db->dataset);
}

// Serial replay of WAL batches into a fresh engine — the reference state
// every recovery path must reproduce. Mirrors the server's replay: raw
// records re-enter through AddBatch (which re-conditions), deterministic
// rejections are skipped.
std::unique_ptr<IncrementalMergePurge> ReplaySerially(
    const std::vector<WalBatch>& batches) {
  auto engine = std::make_unique<IncrementalMergePurge>(EngineOptions());
  EmployeeTheory theory;
  for (const WalBatch& batch : batches) {
    Dataset dataset(employee::MakeSchema());
    dataset.Reserve(batch.records.size());
    for (const Record& record : batch.records) dataset.Append(record);
    (void)engine->AddBatch(dataset, theory);
  }
  return engine;
}

void ExpectSameState(const Dataset& got_records,
                     const std::vector<uint32_t>& got_labels,
                     const IncrementalMergePurge& want) {
  ASSERT_EQ(got_records.size(), want.size());
  const Dataset& expect = want.records();
  const size_t fields = expect.schema().num_fields();
  for (size_t t = 0; t < expect.size(); ++t) {
    for (size_t f = 0; f < fields; ++f) {
      ASSERT_EQ(got_records.record(static_cast<TupleId>(t)).field(f),
                expect.record(static_cast<TupleId>(t)).field(f))
          << "tuple " << t << " field " << f;
    }
  }
  EXPECT_EQ(got_labels, want.ComponentLabels());
}

// --- WAL framing. ---

TEST(WalTest, CommitAndReadRoundTrip) {
  TempDir dir;
  WalWriter writer(FsyncPolicy::kNone);
  ASSERT_TRUE(writer.Open(dir.path(), 1).ok());
  for (int i = 0; i < 3; ++i) {
    Result<uint64_t> seq = writer.Commit(SmallBatch(i));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, static_cast<uint64_t>(i + 1));
  }
  writer.Close();

  WalReadStats stats;
  Result<std::vector<WalBatch>> batches =
      ReadWalForRecovery(dir.path(), 0, &stats);
  ASSERT_TRUE(batches.ok());
  ASSERT_EQ(batches->size(), 3u);
  EXPECT_EQ(stats.last_seq, 3u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
  for (int i = 0; i < 3; ++i) {
    const WalBatch& batch = (*batches)[i];
    EXPECT_EQ(batch.seq, static_cast<uint64_t>(i + 1));
    const std::vector<Record> want = SmallBatch(i);
    ASSERT_EQ(batch.records.size(), want.size());
    for (size_t r = 0; r < want.size(); ++r) {
      for (size_t f = 0; f < employee::kNumFields; ++f) {
        EXPECT_EQ(batch.records[r].field(f), want[r].field(f));
      }
    }
  }

  // after_seq skips the prefix (the snapshot-covered part).
  Result<std::vector<WalBatch>> tail =
      ReadWalForRecovery(dir.path(), 2, nullptr);
  ASSERT_TRUE(tail.ok());
  ASSERT_EQ(tail->size(), 1u);
  EXPECT_EQ(tail->front().seq, 3u);
}

TEST(WalTest, ReopenContinuesSequenceNumbers) {
  TempDir dir;
  {
    WalWriter writer(FsyncPolicy::kNone);
    ASSERT_TRUE(writer.Open(dir.path(), 1).ok());
    ASSERT_TRUE(writer.Commit(SmallBatch(0)).ok());
    writer.Close();
  }
  WalReadStats stats;
  ASSERT_TRUE(ReadWalForRecovery(dir.path(), 0, &stats).ok());
  WalWriter writer(FsyncPolicy::kNone);
  ASSERT_TRUE(writer.Open(dir.path(), stats.last_seq + 1).ok());
  Result<uint64_t> seq = writer.Commit(SmallBatch(1));
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 2u);
  writer.Close();

  Result<std::vector<WalBatch>> batches =
      ReadWalForRecovery(dir.path(), 0, nullptr);
  ASSERT_TRUE(batches.ok());
  ASSERT_EQ(batches->size(), 2u);
}

// The torn-write matrix: truncate the segment at EVERY byte offset
// inside the final record's frame; recovery must keep exactly the intact
// prefix, cut the torn tail in place, and report the cut size.
TEST(WalTest, TornTailCutAtEveryByteOffset) {
  TempDir dir;
  uint64_t good_end = 0;
  std::string full_bytes;
  const std::string segment =
      dir.path() + "/" + WalSegmentFileName(1);
  {
    WalWriter writer(FsyncPolicy::kNone);
    ASSERT_TRUE(writer.Open(dir.path(), 1).ok());
    ASSERT_TRUE(writer.Commit(SmallBatch(0)).ok());
    ASSERT_TRUE(writer.Commit(SmallBatch(1)).ok());
    Result<uint64_t> size = FileSizeOf(segment);
    ASSERT_TRUE(size.ok());
    good_end = *size;
    ASSERT_TRUE(writer.Commit(SmallBatch(2)).ok());
    writer.Close();
    std::ifstream in(segment, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    full_bytes = buf.str();
  }
  ASSERT_GT(full_bytes.size(), good_end);

  for (uint64_t cut = good_end; cut < full_bytes.size(); ++cut) {
    {
      std::ofstream out(segment, std::ios::binary | std::ios::trunc);
      out.write(full_bytes.data(), static_cast<std::streamsize>(cut));
    }
    WalReadStats stats;
    Result<std::vector<WalBatch>> batches =
        ReadWalForRecovery(dir.path(), 0, &stats);
    ASSERT_TRUE(batches.ok()) << "cut at " << cut;
    ASSERT_EQ(batches->size(), 2u) << "cut at " << cut;
    EXPECT_EQ(stats.last_seq, 2u) << "cut at " << cut;
    EXPECT_EQ(stats.truncated_bytes, cut - good_end) << "cut at " << cut;
    // The cut is made durable in place: the file now ends at the last
    // intact record, so a writer can append immediately.
    Result<uint64_t> size = FileSizeOf(segment);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, good_end) << "cut at " << cut;
  }

  // The untouched file reads back whole.
  {
    std::ofstream out(segment, std::ios::binary | std::ios::trunc);
    out.write(full_bytes.data(),
              static_cast<std::streamsize>(full_bytes.size()));
  }
  WalReadStats stats;
  Result<std::vector<WalBatch>> batches =
      ReadWalForRecovery(dir.path(), 0, &stats);
  ASSERT_TRUE(batches.ok());
  EXPECT_EQ(batches->size(), 3u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

// --- Snapshots. ---

TEST(SnapshotTest, SaveAndLoadRoundTrip) {
  TempDir dir;
  IncrementalMergePurge engine(EngineOptions());
  EmployeeTheory theory;
  Dataset data = GenerateDataset(60, 7);
  ASSERT_TRUE(engine.AddBatch(data, theory).ok());

  const uint64_t digest = EngineConfigDigest(EngineOptions());
  SnapshotState state;
  state.seq = 5;
  state.records = engine.records();
  state.pairs = engine.pairs();
  ASSERT_TRUE(SaveSnapshot(dir.path(), digest, state).ok());

  Result<SnapshotState> loaded = LoadNewestSnapshot(dir.path(), digest);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->seq, 5u);
  EXPECT_EQ(loaded->records.size(), engine.records().size());
  EXPECT_EQ(loaded->pairs.ToSortedVector(),
            engine.pairs().ToSortedVector());

  // Restore onto a fresh engine reproduces the full state.
  IncrementalMergePurge restored(EngineOptions());
  ASSERT_TRUE(
      restored.Restore(std::move(loaded->records), std::move(loaded->pairs))
          .ok());
  ExpectSameState(restored.records(), restored.ComponentLabels(), engine);
}

TEST(SnapshotTest, ConfigDigestMismatchIsRefused) {
  TempDir dir;
  IncrementalMergePurge engine(EngineOptions());
  EmployeeTheory theory;
  ASSERT_TRUE(engine.AddBatch(GenerateDataset(20, 3), theory).ok());
  SnapshotState state;
  state.seq = 1;
  state.records = engine.records();
  state.pairs = engine.pairs();
  const uint64_t digest = EngineConfigDigest(EngineOptions());
  ASSERT_TRUE(SaveSnapshot(dir.path(), digest, state).ok());

  // A different window is a different engine: loading must refuse hard
  // (not fall back to empty), or recovery would silently mis-merge.
  MergePurgeOptions other = EngineOptions();
  other.window = 4;
  Result<SnapshotState> loaded =
      LoadNewestSnapshot(dir.path(), EngineConfigDigest(other));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, EmptyDirIsNotFound) {
  TempDir dir;
  Result<SnapshotState> loaded =
      LoadNewestSnapshot(dir.path(), EngineConfigDigest(EngineOptions()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --- Restore ≡ replay at the engine level. ---

TEST(RestoreTest, RestoreMidstreamMatchesUninterruptedRun) {
  Dataset data = GenerateDataset(120, 11);
  EmployeeTheory theory;
  const size_t half = data.size() / 2;

  // Reference: one engine sees everything in two batches.
  IncrementalMergePurge reference(EngineOptions());
  Dataset first(data.schema());
  Dataset second(data.schema());
  for (size_t i = 0; i < data.size(); ++i) {
    (i < half ? first : second).Append(data.record(static_cast<TupleId>(i)));
  }
  ASSERT_TRUE(reference.AddBatch(first, theory).ok());

  // Snapshot the midpoint, restore into a fresh engine, continue there.
  Dataset snapshot_records = reference.records();
  PairSet snapshot_pairs = reference.pairs();
  IncrementalMergePurge restored(EngineOptions());
  ASSERT_TRUE(restored
                  .Restore(std::move(snapshot_records),
                           std::move(snapshot_pairs))
                  .ok());

  ASSERT_TRUE(reference.AddBatch(second, theory).ok());
  ASSERT_TRUE(restored.AddBatch(second, theory).ok());

  ExpectSameState(restored.records(), restored.ComponentLabels(), reference);
  EXPECT_EQ(restored.pairs().ToSortedVector(),
            reference.pairs().ToSortedVector());
}

// --- The service-level crash matrix. ---

MatchServiceOptions DurableServiceOptions(const std::string& data_dir) {
  MatchServiceOptions options;
  options.engine = EngineOptions();
  // One upsert == one batch (the test thread is the only client).
  options.batcher.max_delay_ms = 0.0;
  options.durability.data_dir = data_dir;
  options.durability.fsync = FsyncPolicy::kAlways;
  options.durability.snapshot_every_batches = 3;
  options.durability.snapshot_interval_ms = 20;
  options.durability.keep_wal = true;  // Full log for the replay diff.
  return options;
}

MatchService::TheoryFactory EmployeeFactory() {
  return [] { return std::make_unique<EmployeeTheory>(); };
}

struct CrashCase {
  const char* point;
  // Number of faulted OnPoint calls to skip first (0 = fail immediately).
  uint64_t skip;
};

class CrashMatrixTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashMatrixTest, RecoveryEqualsSerialReplayAndKeepsAckedRecords) {
  FaultInjectorGuard guard;
  const CrashCase param = GetParam();
  TempDir dir;
  Dataset data = GenerateDataset(80, 23);
  constexpr size_t kBatch = 4;

  uint64_t acked_records = 0;
  {
    MatchService service(DurableServiceOptions(dir.path()),
                         EmployeeFactory());
    ASSERT_TRUE(service.init_status().ok());

    // Healthy prefix: enough batches that a background snapshot lands.
    size_t next = 0;
    for (int i = 0; i < 8 && next + kBatch <= data.size(); ++i) {
      std::vector<Record> batch;
      for (size_t r = 0; r < kBatch; ++r) {
        batch.push_back(data.record(static_cast<TupleId>(next + r)));
      }
      Result<MatchService::UpsertOutcome> outcome =
          service.Upsert(std::move(batch));
      ASSERT_TRUE(outcome.ok());
      acked_records += kBatch;
      next += kBatch;
    }

    // Arm the crash point, then keep the workload running into it. A
    // WAL-point fault makes the in-flight upsert fail (never acked); a
    // snapshot-point fault breaks the snapshotter while upserts keep
    // committing. Either way the process then "crashes".
    FaultInjector::Global().Arm(param.point,
                                FaultSchedule::FailN(1, param.skip));
    (void)service.SnapshotNow();  // Deterministic hit for snapshot points.
    for (int i = 0; i < 4 && next + kBatch <= data.size(); ++i) {
      std::vector<Record> batch;
      for (size_t r = 0; r < kBatch; ++r) {
        batch.push_back(data.record(static_cast<TupleId>(next + r)));
      }
      Result<MatchService::UpsertOutcome> outcome =
          service.Upsert(std::move(batch));
      if (outcome.ok()) acked_records += kBatch;
      next += kBatch;
    }
    service.SimulateCrashForTesting();
    service.Drain();
  }
  FaultInjector::Global().Reset();

  // Restart over the crashed data dir.
  MatchService recovered(DurableServiceOptions(dir.path()),
                         EmployeeFactory());
  ASSERT_TRUE(recovered.init_status().ok());
  MatchService::Stats stats = recovered.GetStats();

  // Zero acknowledged upserts lost. (A batch whose WAL append completed
  // but whose fsync "failed" may survive unacknowledged — at-least-once,
  // never at-most.)
  EXPECT_GE(stats.records, acked_records) << "crash point " << param.point;
  EXPECT_LE(stats.records, acked_records + kBatch)
      << "crash point " << param.point;

  // Recovery ≡ serial replay of the surviving WAL.
  Result<std::vector<WalBatch>> wal =
      ReadWalForRecovery(dir.path(), 0, nullptr);
  ASSERT_TRUE(wal.ok());
  ASSERT_FALSE(wal->empty());
  ASSERT_EQ(wal->front().seq, 1u) << "keep_wal must preserve the full log";
  std::unique_ptr<IncrementalMergePurge> reference = ReplaySerially(*wal);
  recovered.Drain();
  ExpectSameState(recovered.CopyRecords(), recovered.ComponentLabels(),
                  *reference);
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, CrashMatrixTest,
    ::testing::Values(CrashCase{fault_points::kWalAppend, 0},
                      CrashCase{fault_points::kWalFsync, 0},
                      CrashCase{fault_points::kSnapshotWrite, 0},
                      CrashCase{fault_points::kSnapshotRename, 0}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = info.param.point;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Clean drain + restart: the final snapshot covers everything, the WAL
// is truncated (keep_wal off), and recovery replays nothing.
TEST(ServiceDurabilityTest, CleanRestartRecoversFromSnapshotAlone) {
  TempDir dir;
  Dataset data = GenerateDataset(60, 31);
  Dataset before_records{employee::MakeSchema()};
  std::vector<uint32_t> before_labels;
  {
    MatchServiceOptions options = DurableServiceOptions(dir.path());
    options.durability.keep_wal = false;
    MatchService service(options, EmployeeFactory());
    ASSERT_TRUE(service.init_status().ok());
    for (size_t next = 0; next + 4 <= data.size(); next += 4) {
      std::vector<Record> batch;
      for (size_t r = 0; r < 4; ++r) {
        batch.push_back(data.record(static_cast<TupleId>(next + r)));
      }
      ASSERT_TRUE(service.Upsert(std::move(batch)).ok());
    }
    service.Drain();
    before_records = service.CopyRecords();
    before_labels = service.ComponentLabels();
  }

  MatchServiceOptions options = DurableServiceOptions(dir.path());
  options.durability.keep_wal = false;
  MatchService recovered(options, EmployeeFactory());
  ASSERT_TRUE(recovered.init_status().ok());
  MatchService::DurabilityInfo info = recovered.GetDurability();
  EXPECT_TRUE(info.enabled);
  EXPECT_TRUE(info.recovery.snapshot_loaded);
  EXPECT_EQ(info.recovery.batches_replayed, 0u)
      << "the drain snapshot must cover the full log";
  recovered.Drain();
  ASSERT_EQ(recovered.CopyRecords().size(), before_records.size());
  EXPECT_EQ(recovered.ComponentLabels(), before_labels);
}

// Changing engine parameters between runs must refuse recovery rather
// than mis-merge under the new configuration.
TEST(ServiceDurabilityTest, ChangedEngineConfigRefusesToRecover) {
  TempDir dir;
  {
    MatchService service(DurableServiceOptions(dir.path()),
                         EmployeeFactory());
    ASSERT_TRUE(service.init_status().ok());
    std::vector<Record> batch = SmallBatch(0);
    for (int i = 1; i < 4; ++i) {
      std::vector<Record> more = SmallBatch(i);
      batch.insert(batch.end(), more.begin(), more.end());
    }
    ASSERT_TRUE(service.Upsert(std::move(batch)).ok());
    ASSERT_TRUE(service.SnapshotNow().ok());
    service.Drain();
  }
  MatchServiceOptions options = DurableServiceOptions(dir.path());
  options.engine.window = 4;
  MatchService service(options, EmployeeFactory());
  ASSERT_FALSE(service.init_status().ok());
  EXPECT_EQ(service.init_status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace mergepurge
