#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "text/edit_distance.h"
#include "util/random.h"

namespace mergepurge {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistance("same", "same"), 0);
}

TEST(EditDistanceTest, TranspositionCostsTwoInLevenshtein) {
  EXPECT_EQ(EditDistance("ab", "ba"), 2);
}

TEST(DamerauTest, TranspositionCostsOne) {
  EXPECT_EQ(DamerauDistance("ab", "ba"), 1);
  EXPECT_EQ(DamerauDistance("SMITH", "SMIHT"), 1);
  EXPECT_EQ(DamerauDistance("193456782", "913456782"), 1);
}

TEST(DamerauTest, MatchesLevenshteinWithoutTranspositions) {
  EXPECT_EQ(DamerauDistance("kitten", "sitting"), 3);
  EXPECT_EQ(DamerauDistance("abc", ""), 3);
}

TEST(BoundedTest, ExactWithinBound) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 3), 3);
  EXPECT_EQ(BoundedDamerauDistance("ab", "ba", 1), 1);
}

TEST(BoundedTest, ExceedsBoundReturnsBoundPlusOne) {
  EXPECT_EQ(BoundedEditDistance("kitten", "sitting", 2), 3);
  EXPECT_EQ(BoundedEditDistance("aaaa", "bbbb", 1), 2);
}

TEST(BoundedTest, LengthGapShortCircuits) {
  EXPECT_EQ(BoundedEditDistance("a", "abcdefg", 2), 3);
}

TEST(SimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(StringSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(StringSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(StringSimilarity("abc", ""), 0.0);
  EXPECT_NEAR(StringSimilarity("MICHAEL", "MICHAL"), 1.0 - 1.0 / 7.0, 1e-9);
}

TEST(WithinDistanceTest, UsesDamerau) {
  EXPECT_TRUE(WithinDistance("ab", "ba", 1));
  EXPECT_FALSE(WithinDistance("abcd", "dcba", 1));
}

// Property tests over random string pairs.
class DistancePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

std::string RandomString(Rng* rng, int max_len) {
  int len = static_cast<int>(rng->NextBounded(max_len + 1));
  std::string s;
  for (int i = 0; i < len; ++i) {
    s += static_cast<char>('a' + rng->NextBounded(4));  // Small alphabet.
  }
  return s;
}

TEST_P(DistancePropertyTest, InvariantsHold) {
  auto [seed, max_len] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  for (int trial = 0; trial < 300; ++trial) {
    std::string a = RandomString(&rng, max_len);
    std::string b = RandomString(&rng, max_len);
    std::string c = RandomString(&rng, max_len);

    int lev = EditDistance(a, b);
    int dam = DamerauDistance(a, b);

    // Symmetry.
    EXPECT_EQ(lev, EditDistance(b, a));
    EXPECT_EQ(dam, DamerauDistance(b, a));
    // Identity of indiscernibles.
    EXPECT_EQ(lev == 0, a == b);
    EXPECT_EQ(dam == 0, a == b);
    // Damerau never exceeds Levenshtein; Levenshtein <= 2 * Damerau (OSA).
    EXPECT_LE(dam, lev);
    EXPECT_LE(lev, 2 * dam);
    // Length difference lower bound, max length upper bound.
    int len_gap = static_cast<int>(a.size()) - static_cast<int>(b.size());
    if (len_gap < 0) len_gap = -len_gap;
    EXPECT_GE(dam, len_gap);
    EXPECT_LE(lev, static_cast<int>(std::max(a.size(), b.size())));
    // Levenshtein triangle inequality.
    EXPECT_LE(EditDistance(a, c),
              EditDistance(a, b) + EditDistance(b, c));

    // Bounded versions agree with full versions for every bound.
    for (int bound = 0; bound <= max_len; ++bound) {
      int be = BoundedEditDistance(a, b, bound);
      int bd = BoundedDamerauDistance(a, b, bound);
      EXPECT_EQ(be, lev <= bound ? lev : bound + 1)
          << "a=" << a << " b=" << b << " bound=" << bound;
      EXPECT_EQ(bd, dam <= bound ? dam : bound + 1)
          << "a=" << a << " b=" << b << " bound=" << bound;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DistancePropertyTest,
    ::testing::Values(std::make_tuple(1, 6), std::make_tuple(2, 10),
                      std::make_tuple(3, 14), std::make_tuple(4, 3),
                      std::make_tuple(5, 20)));

}  // namespace
}  // namespace mergepurge
