// Per-rule coverage of the 26-rule employee theory: for each rule, a pair
// engineered to exercise its evidence combination (asserting the fired
// rule where the rule is the first that can match, and `fired <= rule`
// where a more specific rule legitimately shadows it), plus negative
// variants that must NOT match.

#include <string>

#include <gtest/gtest.h>

#include "rules/employee_theory.h"
#include "record/schema.h"

namespace mergepurge {
namespace {

Record Base() {
  Record r;
  r.set_field(employee::kSsn, "123456789");
  r.set_field(employee::kFirstName, "MICHAEL");
  r.set_field(employee::kInitial, "A");
  r.set_field(employee::kLastName, "JOHNSON");
  r.set_field(employee::kAddress, "42 MAPLE AVE");
  r.set_field(employee::kApartment, "APT 7");
  r.set_field(employee::kCity, "CHICAGO");
  r.set_field(employee::kState, "IL");
  r.set_field(employee::kZip, "60601");
  return r;
}

// A record unrelated to Base() in every evidence dimension.
Record Stranger() {
  Record r;
  r.set_field(employee::kSsn, "987650000");
  r.set_field(employee::kFirstName, "GWENDOLYN");
  r.set_field(employee::kInitial, "Z");
  r.set_field(employee::kLastName, "FITZWILLIAM");
  r.set_field(employee::kAddress, "9000 CACTUS BLVD");
  r.set_field(employee::kApartment, "");
  r.set_field(employee::kCity, "PHOENIX");
  r.set_field(employee::kState, "AZ");
  r.set_field(employee::kZip, "85001");
  return r;
}

int RuleIndex(std::string_view name) {
  for (size_t i = 0; i < EmployeeTheory::kNumRules; ++i) {
    if (EmployeeTheory::RuleName(i) == name) return static_cast<int>(i);
  }
  ADD_FAILURE() << "unknown rule " << name;
  return -1;
}

class RuleCoverageTest : public ::testing::Test {
 protected:
  // Asserts the pair matches and the fired rule is exactly `name`.
  void ExpectFires(const Record& a, const Record& b,
                   std::string_view name) {
    int fired = theory_.MatchingRule(a, b);
    ASSERT_GE(fired, 0) << "no rule fired; expected " << name;
    EXPECT_EQ(EmployeeTheory::RuleName(fired), name);
    // Symmetry of the decision.
    EXPECT_GE(theory_.MatchingRule(b, a), 0);
  }

  // Asserts the pair matches via `name` or a MORE specific (earlier) rule.
  void ExpectMatchesAtMost(const Record& a, const Record& b,
                           std::string_view name) {
    int fired = theory_.MatchingRule(a, b);
    ASSERT_GE(fired, 0) << "no rule fired; expected at most " << name;
    EXPECT_LE(fired, RuleIndex(name))
        << "fired " << EmployeeTheory::RuleName(fired);
  }

  void ExpectNoMatch(const Record& a, const Record& b) {
    EXPECT_EQ(theory_.MatchingRule(a, b), -1);
    EXPECT_EQ(theory_.MatchingRule(b, a), -1);
  }

  EmployeeTheory theory_;
};

TEST_F(RuleCoverageTest, Rule00IdenticalRecords) {
  Record a = Base();
  ExpectFires(a, a, "identical-records");
}

TEST_F(RuleCoverageTest, Rule01ExactNamesAndAddress) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");  // Breaks identity, keeps names.
  ExpectFires(a, b, "exact-names-and-address");
}

TEST_F(RuleCoverageTest, Rule02ExactSsnAndNames) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kAddress, "1 OTHER RD");  // Breaks rule 1.
  b.set_field(employee::kCity, "DETROIT");
  b.set_field(employee::kZip, "48201");
  ExpectFires(a, b, "exact-ssn-and-names");
}

TEST_F(RuleCoverageTest, Rule03SsnNamesSimilar) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kFirstName, "MICHEL");  // Differ slightly.
  b.set_field(employee::kAddress, "1 OTHER RD");
  ExpectFires(a, b, "ssn-names-similar");
}

TEST_F(RuleCoverageTest, Rule04ShadowedByRule03) {
  // Initial-match first names with equal SSN and last name satisfy rule 3
  // first (FirstSimilar subsumes initial_match) — the OPS5-style shadowing
  // documented in the theory. The pair must still match.
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kFirstName, "M");
  b.set_field(employee::kAddress, "1 OTHER RD");
  ExpectMatchesAtMost(a, b, "ssn-last-and-first-initial");
}

TEST_F(RuleCoverageTest, Rule05SsnNickname) {
  // Nickname + weakly similar (not >= 0.8) surname: rule 3 fails on
  // LastSimilar, rule 5 accepts via the weak threshold.
  Record a = Base();
  a.set_field(employee::kFirstName, "ROBERT");
  Record b = a;
  b.set_field(employee::kFirstName, "BOB");
  b.set_field(employee::kLastName, "JOHNSTAN");  // sim 0.75: weak band.
  b.set_field(employee::kAddress, "1 OTHER RD");
  b.set_field(employee::kCity, "DETROIT");
  b.set_field(employee::kZip, "48201");
  ExpectFires(a, b, "ssn-nickname");
}

TEST_F(RuleCoverageTest, Rule06SsnAddress) {
  // SSN + address agree; names are destroyed.
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kFirstName, "GWENDOLYN");
  b.set_field(employee::kLastName, "FITZWILLIAM");
  ExpectFires(a, b, "ssn-address");
}

TEST_F(RuleCoverageTest, Rule07SsnLocationLast) {
  // SSN + city/state/zip agree, surname weakly similar, address moved.
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kFirstName, "GWENDOLYN");
  b.set_field(employee::kLastName, "JOHNSSON");  // Weak band.
  b.set_field(employee::kAddress, "9000 CACTUS BLVD");
  b.set_field(employee::kApartment, "");
  ExpectFires(a, b, "ssn-location-last");
}

TEST_F(RuleCoverageTest, Rule08SsnCloseNames) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "123456780");  // One digit off.
  b.set_field(employee::kAddress, "1 OTHER RD");
  b.set_field(employee::kCity, "DETROIT");
  b.set_field(employee::kZip, "48201");
  ExpectFires(a, b, "ssn-close-names");
}

TEST_F(RuleCoverageTest, Rule09SsnCloseAddress) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "123456780");
  b.set_field(employee::kFirstName, "GWENDOLYN");  // Kills name rules.
  ExpectFires(a, b, "ssn-close-address");
}

TEST_F(RuleCoverageTest, Rule10SsnTransposedNameAddress) {
  // The paper's 193456782 / 913456782 example: transposed SSN, names fine.
  Record a = Base();
  a.set_field(employee::kSsn, "193456782");
  Record b = Base();
  b.set_field(employee::kSsn, "913456782");
  // Transposed SSN is also damerau distance 1 -> ssn-close rules fire
  // first; that is correct and more specific.
  ExpectMatchesAtMost(a, b, "ssn-transposed-name-address");
}

TEST_F(RuleCoverageTest, Rule11PaperExampleRule) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");   // SSN unrelated.
  b.set_field(employee::kFirstName, "MICHEL");  // Differ slightly.
  ExpectFires(a, b, "paper-example-rule");
}

TEST_F(RuleCoverageTest, Rule12NamesExactAddressSimilar) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kAddress, "42 MAPLE AV");  // Similar, not equal.
  ExpectFires(a, b, "names-exact-address-similar");
}

TEST_F(RuleCoverageTest, Rule13NamesSimilarAddressCorroborated) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "");            // Missing: compatible.
  b.set_field(employee::kFirstName, "MICHEL");
  b.set_field(employee::kLastName, "JOHNSONS");
  b.set_field(employee::kAddress, "42 MAPLE AV");
  ExpectFires(a, b, "names-similar-address-corroborated");
}

TEST_F(RuleCoverageTest, Rule14NicknameLastAddress) {
  Record a = Base();
  a.set_field(employee::kFirstName, "ROBERT");
  Record b = a;
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "BOB");
  b.set_field(employee::kAddress, "42 MAPLE AV");
  // SSNs contradict -> rule 13 fails (SsnCompatible false); nickname rule
  // has no ssn condition.
  ExpectFires(a, b, "nickname-last-address");
}

TEST_F(RuleCoverageTest, Rule15InitialsAddressLocation) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "M");  // Initial only.
  // FirstSimilar subsumes initial_match, so the paper-example rule (last
  // equal + first similar + address equal) legitimately fires first.
  ExpectMatchesAtMost(a, b, "initials-address-location");
}

TEST_F(RuleCoverageTest, Rule16LastTransposedAddress) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kLastName, "JOHNOSN");   // Adjacent transposition.
  b.set_field(employee::kAddress, "42 MAPLE AV");
  // Surname transposition keeps similarity >= 0.8 for 7+ chars, so rule 13
  // can fire first; both are acceptable evidence paths.
  ExpectMatchesAtMost(a, b, "last-transposed-address");
}

TEST_F(RuleCoverageTest, Rule18MissingFirstAddress) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "");
  ExpectFires(a, b, "missing-first-address");
}

TEST_F(RuleCoverageTest, Rule19HyphenatedLastAddress) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kLastName, "JOHNSON-SMITH");
  b.set_field(employee::kAddress, "42 MAPLE AV");
  ExpectFires(a, b, "hyphenated-last-address");
}

TEST_F(RuleCoverageTest, Rule20StreetNumberZip) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "MICHEL");
  b.set_field(employee::kAddress, "42 MAPEL STREET ROAD");  // Name mangled.
  ExpectFires(a, b, "street-number-zip");
}

TEST_F(RuleCoverageTest, Rule21PhoneticNamesAddress) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "MYKAYL");   // Sounds like MICHAEL.
  b.set_field(employee::kLastName, "JONSON");    // Sounds like JOHNSON,
  b.set_field(employee::kAddress, "42 MAPLE AV");  // sim 0.75 band...
  ExpectMatchesAtMost(a, b, "phonetic-names-address");
}

TEST_F(RuleCoverageTest, Rule22LastNameChanged) {
  Record a = Base();
  a.set_field(employee::kFirstName, "MARY");
  Record b = a;
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kLastName, "FITZWILLIAM");  // Marriage.
  ExpectFires(a, b, "last-name-changed");
}

TEST_F(RuleCoverageTest, Rule23NamesZipAddress) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  // First name similar by edit distance but NOT a nickname variant and
  // NOT phonetically equal (keeps rules 14 and 21 out of the way).
  b.set_field(employee::kFirstName, "MICHREL");
  // Different street number keeps rule 20 out; still address-similar.
  b.set_field(employee::kAddress, "420 MAPLE AV");
  b.set_field(employee::kApartment, "APT 9");  // Apt conflict kills 13.
  ExpectFires(a, b, "names-zip-address");
}

TEST_F(RuleCoverageTest, Rule24ApartmentCorroborated) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "");          // Missing first name...
  b.set_field(employee::kLastName, "JOHNSTAN");   // ...weak-band surname:
  // rule 18 needs surname equality, the phonetic rule needs a first name,
  // so only the apartment-corroborated evidence remains.
  ExpectFires(a, b, "apartment-corroborated");
}

TEST_F(RuleCoverageTest, Rule25AggregateSimilarity) {
  // Small typos spread across every field; no single rule's exact-match
  // demands hold, but the weighted whole-record similarity is high.
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "123456789");
  b.set_field(employee::kFirstName, "MICHAEL");
  b.set_field(employee::kLastName, "JOHNSSON");   // Weak band.
  b.set_field(employee::kAddress, "42 MAPLE AVEN");
  b.set_field(employee::kApartment, "APT 9");     // Conflict kills 6/13/24.
  b.set_field(employee::kCity, "CHICAGA");
  b.set_field(employee::kZip, "60611");
  ExpectMatchesAtMost(a, b, "aggregate-similarity");
}

// --- Negatives: near-miss pairs that must NOT match. ---

TEST_F(RuleCoverageTest, StrangersDoNotMatch) {
  ExpectNoMatch(Base(), Stranger());
}

TEST_F(RuleCoverageTest, SameSurnameDifferentEverythingElse) {
  Record a = Base();
  Record b = Stranger();
  b.set_field(employee::kLastName, "JOHNSON");
  ExpectNoMatch(a, b);
}

TEST_F(RuleCoverageTest, SameAddressDifferentPeople) {
  // Housemates with different names and SSNs: no rule may merge them.
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "GWENDOLYN");
  b.set_field(employee::kLastName, "FITZWILLIAM");
  ExpectNoMatch(a, b);
}

TEST_F(RuleCoverageTest, SameFirstNameOnly) {
  Record a = Base();
  Record b = Stranger();
  b.set_field(employee::kFirstName, "MICHAEL");
  ExpectNoMatch(a, b);
}

TEST_F(RuleCoverageTest, SsnCollisionAloneInsufficient) {
  // "two records have exactly the same social security numbers, but the
  // names and addresses are completely different ... we may perhaps
  // assume [they are different persons]" (§2.3).
  Record a = Base();
  Record b = Stranger();
  b.set_field(employee::kSsn, a.fields()[employee::kSsn]);
  ExpectNoMatch(a, b);
}

TEST_F(RuleCoverageTest, MarriageRuleNeedsFullHouseholdAgreement) {
  Record a = Base();
  a.set_field(employee::kFirstName, "MARY");
  Record b = a;
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kLastName, "FITZWILLIAM");
  b.set_field(employee::kApartment, "");  // Missing apartment: no rule 22.
  ExpectNoMatch(a, b);
}

TEST_F(RuleCoverageTest, WeakSurnameWithoutCorroborationFails) {
  Record a = Base();
  Record b = Base();
  b.set_field(employee::kSsn, "555550000");
  b.set_field(employee::kFirstName, "GWENDOLYN");
  b.set_field(employee::kLastName, "JOHNSSON");
  b.set_field(employee::kApartment, "");  // No apartment corroboration.
  ExpectNoMatch(a, b);
}

}  // namespace
}  // namespace mergepurge
