// Engine-level parameter matrix: the MergePurgeEngine must behave sanely
// across the cross-product of method x window x key count, and accuracy
// must respond to each knob in the documented direction.

#include <tuple>

#include <gtest/gtest.h>

#include "core/merge_purge.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"

namespace mergepurge {
namespace {

const GeneratedDatabase& SharedDb() {
  static const GeneratedDatabase* db = [] {
    GeneratorConfig config;
    config.num_records = 1200;
    config.duplicate_selection_rate = 0.5;
    config.max_duplicates_per_record = 4;
    config.seed = 20240707;
    auto generated = DatabaseGenerator(config).Generate();
    return new GeneratedDatabase(std::move(*generated));
  }();
  return *db;
}

using MatrixParam =
    std::tuple<MergePurgeOptions::Method, size_t /*window*/,
               size_t /*num_keys*/>;

class EngineMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(EngineMatrixTest, RunsAndProducesSaneResult) {
  auto [method, window, num_keys] = GetParam();
  const GeneratedDatabase& db = SharedDb();

  MergePurgeOptions options;
  options.method = method;
  options.window = window;
  auto all_keys = StandardThreeKeys();
  options.keys.assign(all_keys.begin(), all_keys.begin() + num_keys);
  options.clustering.num_clusters = 16;

  EmployeeTheory theory;
  auto result = MergePurgeEngine(options).Run(db.dataset, theory);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Structural sanity.
  EXPECT_EQ(result->component_of.size(), db.dataset.size());
  EXPECT_EQ(result->detail.passes.size(), num_keys);
  EXPECT_GT(result->num_entities, 0u);
  EXPECT_LE(result->num_entities, db.dataset.size());

  // Purge count equals entity count; purged records keep the schema.
  Dataset purged = result->Purge(db.dataset);
  EXPECT_EQ(purged.size(), result->num_entities);
  for (size_t i = 0; i < purged.size(); ++i) {
    EXPECT_EQ(purged.record(static_cast<TupleId>(i)).num_fields(),
              db.dataset.schema().num_fields());
  }

  // Accuracy floor: even the weakest cell (1 key, w=4) finds a third of
  // the duplicates; FP stays bounded.
  AccuracyReport report =
      EvaluateComponents(result->component_of, db.truth);
  EXPECT_GT(report.recall_percent, 33.0);
  EXPECT_LT(report.false_positive_percent, 12.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrixTest,
    ::testing::Combine(
        ::testing::Values(MergePurgeOptions::Method::kSortedNeighborhood,
                          MergePurgeOptions::Method::kClustering),
        ::testing::Values(4u, 10u, 25u), ::testing::Values(1u, 2u, 3u)));

TEST(EngineDirectionTest, MoreKeysNeverHurt) {
  const GeneratedDatabase& db = SharedDb();
  EmployeeTheory theory;
  double previous = -1.0;
  for (size_t num_keys = 1; num_keys <= 3; ++num_keys) {
    MergePurgeOptions options;
    auto all_keys = StandardThreeKeys();
    options.keys.assign(all_keys.begin(), all_keys.begin() + num_keys);
    options.window = 8;
    auto result = MergePurgeEngine(options).Run(db.dataset, theory);
    ASSERT_TRUE(result.ok());
    double recall =
        EvaluateComponents(result->component_of, db.truth).recall_percent;
    EXPECT_GE(recall, previous);
    previous = recall;
  }
}

TEST(EngineDirectionTest, WiderWindowNeverHurtsSingleKey) {
  const GeneratedDatabase& db = SharedDb();
  EmployeeTheory theory;
  double previous = -1.0;
  for (size_t window : {2u, 6u, 12u, 24u}) {
    MergePurgeOptions options;
    options.keys = {LastNameKey()};
    options.window = window;
    auto result = MergePurgeEngine(options).Run(db.dataset, theory);
    ASSERT_TRUE(result.ok());
    double recall =
        EvaluateComponents(result->component_of, db.truth).recall_percent;
    EXPECT_GE(recall, previous);
    previous = recall;
  }
}

}  // namespace
}  // namespace mergepurge
