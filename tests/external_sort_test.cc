#include <numeric>

#include <gtest/gtest.h>

#include "core/sorted_neighborhood.h"
#include "rules/employee_theory.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "sort/external_sort.h"

namespace mergepurge {
namespace {

class ExternalSortTest : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    GeneratorConfig config;
    config.num_records = 2000;
    config.duplicate_selection_rate = 0.3;
    config.seed = 17;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
  }

  Dataset dataset_;
};

TEST_P(ExternalSortTest, MatchesInMemorySort) {
  ExternalSortOptions options;
  options.memory_records = GetParam();
  options.fan_in = 4;
  options.temp_dir = testing::TempDir();
  ExternalSorter sorter(options);

  IoStats stats;
  auto order = sorter.Sort(dataset_, LastNameKey(), &stats);
  ASSERT_TRUE(order.ok()) << order.status().ToString();

  auto expected = SortedNeighborhood::SortByKey(dataset_, LastNameKey());
  ASSERT_EQ(order->size(), expected.size());
  EXPECT_EQ(*order, expected);
}

INSTANTIATE_TEST_SUITE_P(RunSizes, ExternalSortTest,
                         ::testing::Values(100, 333, 1000, 5000));

TEST(ExternalSortStatsTest, InMemoryPathDoesNoIo) {
  GeneratorConfig config;
  config.num_records = 100;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  ExternalSortOptions options;
  options.memory_records = 100000;
  ExternalSorter sorter(options);
  IoStats stats;
  auto order = sorter.Sort(db->dataset, LastNameKey(), &stats);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(stats.entries_written, 0u);
  EXPECT_EQ(stats.entries_read, 0u);
  EXPECT_EQ(stats.merge_passes, 0);
  EXPECT_EQ(stats.initial_runs, 1);
}

TEST(ExternalSortStatsTest, RunAndPassAccounting) {
  GeneratorConfig config;
  config.num_records = 1000;
  config.duplicate_selection_rate = 0.0;
  config.seed = 23;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  size_t n = db->dataset.size();

  ExternalSortOptions options;
  options.memory_records = 100;  // 10 runs.
  options.fan_in = 4;            // Merge tree: 10 -> 3 -> 1: 2 passes.
  options.temp_dir = testing::TempDir();
  ExternalSorter sorter(options);
  IoStats stats;
  auto order = sorter.Sort(db->dataset, LastNameKey(), &stats);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(stats.initial_runs, 10);
  EXPECT_EQ(stats.merge_passes, 2);
  // Every entry is written in run formation; pass 1 rewrites all entries
  // into 3 runs; final pass streams to memory (reads only).
  EXPECT_EQ(stats.entries_written, n + n);
  EXPECT_EQ(stats.entries_read, 2 * n);
}

TEST(ExternalSortStatsTest, HighFanInSinglePass) {
  GeneratorConfig config;
  config.num_records = 500;
  config.duplicate_selection_rate = 0.0;  // Exactly 500 records, 10 runs.
  config.seed = 29;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  ExternalSortOptions options;
  options.memory_records = 50;
  options.fan_in = 16;  // The paper's fan-in: all runs merge in one pass.
  options.temp_dir = testing::TempDir();
  IoStats stats;
  auto order = ExternalSorter(options).Sort(db->dataset, LastNameKey(),
                                            &stats);
  ASSERT_TRUE(order.ok());
  EXPECT_LE(stats.initial_runs, 16);
  EXPECT_EQ(stats.merge_passes, 1);
}

TEST(ExternalSortStatsTest, RejectsBadOptions) {
  Dataset d(employee::MakeSchema());
  ExternalSortOptions zero_memory;
  zero_memory.memory_records = 0;
  EXPECT_FALSE(
      ExternalSorter(zero_memory).Sort(d, LastNameKey(), nullptr).ok());
  ExternalSortOptions tiny_fan;
  tiny_fan.fan_in = 1;
  EXPECT_FALSE(
      ExternalSorter(tiny_fan).Sort(d, LastNameKey(), nullptr).ok());
}

TEST(ExternalSortSnmTest, ExternalSortModeMatchesInMemoryPass) {
  GeneratorConfig config;
  config.num_records = 600;
  config.duplicate_selection_rate = 0.5;
  config.seed = 37;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  EmployeeTheory theory;
  auto in_memory =
      SortedNeighborhood(8).Run(db->dataset, LastNameKey(), theory);
  ASSERT_TRUE(in_memory.ok());

  SnmOptions options;
  options.window = 8;
  options.external_sort_memory = 100;  // Force spilling and merging.
  options.external_sort_fan_in = 3;
  options.temp_dir = testing::TempDir();
  auto external = SortedNeighborhood(options).Run(db->dataset,
                                                  LastNameKey(), theory);
  ASSERT_TRUE(external.ok()) << external.status().ToString();

  EXPECT_EQ(external->pairs.size(), in_memory->pairs.size());
  in_memory->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(external->pairs.Contains(a, b));
  });
}

TEST(ExternalSortStatsTest, EmptyDataset) {
  Dataset d(employee::MakeSchema());
  ExternalSortOptions options;
  IoStats stats;
  auto order = ExternalSorter(options).Sort(d, LastNameKey(), &stats);
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order->empty());
}

}  // namespace
}  // namespace mergepurge
