// Fault-tolerance layer: FaultInjector schedules, ThreadPool exception
// capture, ResilientRunner retry/reassignment/deadline/partial-result
// semantics, the fault-injection equivalence matrix (parallel runs under
// every programmed failure schedule produce the fault-free pair set), and
// checkpoint/resume for multi-pass runs.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/merge_purge.h"
#include "core/multipass.h"
#include "core/sorted_neighborhood.h"
#include "gen/generator.h"
#include "io/csv.h"
#include "io/pairs_io.h"
#include "keys/standard_keys.h"
#include "parallel/parallel_clustering.h"
#include "parallel/parallel_snm.h"
#include "parallel/resilient_runner.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"
#include "util/fault_injector.h"
#include "util/thread_pool.h"

namespace mergepurge {
namespace {

// Every test that arms the global injector must disarm it, or schedules
// would leak into later tests (and other suites).
class FaultInjectorGuard {
 public:
  FaultInjectorGuard() { FaultInjector::Global().Reset(); }
  ~FaultInjectorGuard() { FaultInjector::Global().Reset(); }
};

// --- FaultInjector. ---

TEST(FaultInjectorTest, DisarmedIsOk) {
  FaultInjectorGuard guard;
  EXPECT_TRUE(
      FaultInjector::Global().OnPoint(fault_points::kFragmentScan).ok());
  EXPECT_EQ(FaultInjector::Global().faults_injected(), 0u);
}

TEST(FaultInjectorTest, FailOnceFailsExactlyOnce) {
  FaultInjectorGuard guard;
  FaultInjector injector;
  injector.Arm("p", FaultSchedule::FailOnce());
  Status first = injector.OnPoint("p");
  EXPECT_EQ(first.code(), StatusCode::kInjectedFault);
  EXPECT_TRUE(injector.OnPoint("p").ok());
  EXPECT_TRUE(injector.OnPoint("p").ok());
  EXPECT_EQ(injector.faults_injected(), 1u);
  EXPECT_EQ(injector.HitCount("p"), 3u);
}

TEST(FaultInjectorTest, FailNWithSkip) {
  FaultInjector injector;
  injector.Arm("p", FaultSchedule::FailN(2, /*skip=*/1));
  EXPECT_TRUE(injector.OnPoint("p").ok());    // Skipped.
  EXPECT_FALSE(injector.OnPoint("p").ok());   // Fail 1.
  EXPECT_FALSE(injector.OnPoint("p").ok());   // Fail 2.
  EXPECT_TRUE(injector.OnPoint("p").ok());    // Budget spent.
}

TEST(FaultInjectorTest, RandomRateIsSeededDeterministic) {
  auto run = [] {
    FaultInjector injector;
    injector.Arm("p", FaultSchedule::RandomRate(0.3, 99));
    std::vector<bool> verdicts;
    for (int i = 0; i < 64; ++i) verdicts.push_back(injector.OnPoint("p").ok());
    return verdicts;
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b);
  // With rate 0.3 over 64 hits, both outcomes must occur.
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
}

TEST(FaultInjectorTest, StraggleDelaysButSucceeds) {
  FaultInjector injector;
  injector.Arm("p", FaultSchedule::StraggleMs(30));
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(injector.OnPoint("p").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 25);
}

TEST(FaultInjectorTest, ArmFromSpecParsesMultipleClauses) {
  FaultInjector injector;
  ASSERT_TRUE(injector
                  .ArmFromSpec("parallel.fragment_scan=fail:2;"
                               "io.pairs_write=rate:0.5:seed=3;"
                               "sort.spill=straggle:5")
                  .ok());
  EXPECT_FALSE(injector.OnPoint(fault_points::kFragmentScan).ok());
  EXPECT_FALSE(injector.OnPoint(fault_points::kFragmentScan).ok());
  EXPECT_TRUE(injector.OnPoint(fault_points::kFragmentScan).ok());
  EXPECT_TRUE(injector.OnPoint(fault_points::kSortSpill).ok());
}

TEST(FaultInjectorTest, ArmFromSpecRejectsMalformedClauses) {
  FaultInjector injector;
  EXPECT_FALSE(injector.ArmFromSpec("nopoint").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=explode").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=fail:0").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=rate:1.5").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=rate:0.2:sneed=1").ok());
  EXPECT_FALSE(injector.ArmFromSpec("p=straggle").ok());
}

// --- ThreadPool exception capture. ---

TEST(ThreadPoolTest, ThrowingTaskIsCaughtAndReported) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  pool.Submit([] { throw std::runtime_error("task blew up"); });
  pool.Submit([&] { ++survivors; });
  pool.Submit([] { throw 42; });  // Non-std::exception throw.
  pool.Submit([&] { ++survivors; });
  pool.Wait();
  EXPECT_EQ(survivors.load(), 2);
  EXPECT_EQ(pool.exceptions_caught(), 2u);
  // First message is one of the two (ordering depends on scheduling).
  std::string message = pool.first_exception_message();
  EXPECT_TRUE(message == "task blew up" || message == "unknown exception")
      << message;
}

// --- ResilientRunner. ---

TEST(ResilientRunnerTest, AllTasksCommitWithoutFaults) {
  ResilientOptions options;
  options.num_workers = 3;
  ResilientRunner runner(options);
  std::atomic<int> total{0};
  std::vector<ResilientTask> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&, i](const AttemptContext& ctx) {
      ctx.Commit([&] { total += i; });
      return Status::OK();
    });
  }
  ResilientReport report = runner.Run(tasks);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(total.load(), 45);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_TRUE(report.unprocessed.empty());
}

TEST(ResilientRunnerTest, RetriesTransientFailures) {
  ResilientOptions options;
  options.num_workers = 2;
  options.max_attempts_per_worker = 2;
  ResilientRunner runner(options);

  // Each task fails its first attempt.
  std::vector<std::unique_ptr<std::atomic<int>>> attempt_counts;
  std::atomic<int> commits{0};
  std::vector<ResilientTask> tasks;
  for (int i = 0; i < 6; ++i) {
    attempt_counts.push_back(std::make_unique<std::atomic<int>>(0));
    std::atomic<int>* count = attempt_counts.back().get();
    tasks.push_back([&, count](const AttemptContext& ctx) {
      if (count->fetch_add(1) == 0) {
        return Status::Internal("transient");
      }
      ctx.Commit([&] { ++commits; });
      return Status::OK();
    });
  }
  ResilientReport report = runner.Run(tasks);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(commits.load(), 6);
  EXPECT_EQ(report.retries, 6u);
  for (const TaskOutcome& outcome : report.outcomes) {
    EXPECT_EQ(outcome.attempts, 2u);
    EXPECT_TRUE(outcome.committed);
  }
}

TEST(ResilientRunnerTest, ReassignsToAnotherWorkerAfterMaxAttempts) {
  ResilientOptions options;
  options.num_workers = 2;
  options.max_attempts_per_worker = 2;
  options.max_workers_per_task = 2;
  ResilientRunner runner(options);

  // Fails every attempt on the initial worker (0); succeeds elsewhere.
  std::vector<ResilientTask> tasks;
  std::atomic<int> commits{0};
  tasks.push_back([&](const AttemptContext& ctx) {
    if (ctx.worker == 0) return Status::Internal("site 0 is down");
    ctx.Commit([&] { ++commits; });
    return Status::OK();
  });
  ResilientReport report = runner.Run(tasks, /*initial_workers=*/{0});
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(commits.load(), 1);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_EQ(report.outcomes[0].final_worker, 1u);
  EXPECT_EQ(report.outcomes[0].attempts, 3u);  // 2 on worker 0, 1 on 1.
}

TEST(ResilientRunnerTest, ExhaustionReportsExactUnprocessedSet) {
  ResilientOptions options;
  options.num_workers = 2;
  options.max_attempts_per_worker = 1;
  options.max_workers_per_task = 2;
  ResilientRunner runner(options);

  std::atomic<int> commits{0};
  std::vector<ResilientTask> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&, i](const AttemptContext& ctx) {
      if (i == 1 || i == 3) return Status::Internal("permanent");
      ctx.Commit([&] { ++commits; });
      return Status::OK();
    });
  }
  ResilientReport report = runner.Run(tasks);
  EXPECT_EQ(report.status.code(), StatusCode::kPartialFailure);
  EXPECT_EQ(report.unprocessed, (std::vector<size_t>{1, 3}));
  EXPECT_EQ(commits.load(), 3);
  EXPECT_NE(report.status.message().find("[1,3]"), std::string::npos)
      << report.status.message();
}

TEST(ResilientRunnerTest, DeadlineSpawnsSpeculativeCopyAndCommitsOnce) {
  ResilientOptions options;
  options.num_workers = 2;
  options.task_deadline_ms = 30;
  ResilientRunner runner(options);

  // First attempt straggles; the speculative copy finishes first. The
  // commit protocol must apply the result exactly once either way.
  std::atomic<int> attempts{0};
  std::atomic<int> commits{0};
  std::vector<ResilientTask> tasks;
  tasks.push_back([&](const AttemptContext& ctx) {
    if (attempts.fetch_add(1) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
    ctx.Commit([&] { ++commits; });
    return Status::OK();
  });
  ResilientReport report = runner.Run(tasks);
  EXPECT_TRUE(report.status.ok()) << report.status.ToString();
  EXPECT_EQ(commits.load(), 1);
  EXPECT_EQ(report.speculations, 1u);
  EXPECT_GE(attempts.load(), 2);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].speculated);
}

// --- Fault-injection equivalence matrix (the acceptance criterion). ---

class FaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    GeneratorConfig config;
    config.num_records = 900;
    config.duplicate_selection_rate = 0.5;
    config.max_duplicates_per_record = 4;
    config.seed = 4242;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    ConditionEmployeeDataset(&dataset_);

    EmployeeTheory serial_theory;
    auto serial =
        SortedNeighborhood(10).Run(dataset_, LastNameKey(), serial_theory);
    ASSERT_TRUE(serial.ok());
    serial_pairs_ = std::move(serial->pairs);
  }

  void TearDown() override { FaultInjector::Global().Reset(); }

  static TheoryFactory Factory() {
    return [] { return std::make_unique<EmployeeTheory>(); };
  }

  void ExpectSerialPairs(const ParallelRunResult& result) {
    EXPECT_EQ(result.pairs.size(), serial_pairs_.size());
    serial_pairs_.ForEach([&](TupleId a, TupleId b) {
      EXPECT_TRUE(result.pairs.Contains(a, b));
    });
  }

  Dataset dataset_;
  PairSet serial_pairs_;
};

TEST_F(FaultMatrixTest, SnmSurvivesFailOncePerFragment) {
  // Every fragment's first scan attempt fails; retries recover all of
  // them and the pair set is exactly the fault-free one.
  FaultInjector::Global().Arm(fault_points::kFragmentScan,
                              FaultSchedule::FailN(4));  // 4 fragments.
  ParallelSnm parallel(4, 10);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->retries, 4u);
  ExpectSerialPairs(*result);
}

TEST_F(FaultMatrixTest, SnmSurvivesSeededRandomFailures) {
  FaultInjector::Global().Arm(fault_points::kFragmentScan,
                              FaultSchedule::RandomRate(0.2, 2026));
  ResilientOptions resilience;
  resilience.max_attempts_per_worker = 3;
  resilience.max_workers_per_task = 3;
  ParallelSnm parallel(3, 10, /*block_records=*/64, resilience);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSerialPairs(*result);
}

TEST_F(FaultMatrixTest, SnmSurvivesPermanentStraggler) {
  // Every scan attempt straggles past the deadline; speculative copies
  // also straggle but complete — first finished commit wins, and the
  // result is still exactly the serial pair set.
  FaultInjector::Global().Arm(fault_points::kFragmentScan,
                              FaultSchedule::StraggleMs(60));
  ResilientOptions resilience;
  resilience.task_deadline_ms = 25;
  ParallelSnm parallel(2, 10, /*block_records=*/0, resilience);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectSerialPairs(*result);
}

TEST_F(FaultMatrixTest, SnmReportsPartialFailureWhenRetriesExhausted) {
  FaultInjector::Global().Arm(fault_points::kFragmentScan,
                              FaultSchedule::FailN(1u << 20));
  ParallelSnm parallel(3, 10);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPartialFailure);
  EXPECT_NE(result.status().message().find("unprocessed"),
            std::string::npos);
}

TEST_F(FaultMatrixTest, ClusteringSurvivesFailures) {
  // Serial clustering baseline with the same TOTAL cluster count.
  ClusteringOptions serial_options;
  serial_options.num_clusters = 8 * 3;
  serial_options.window = 10;
  EmployeeTheory serial_theory;
  auto serial = ClusteringMethod(serial_options)
                    .Run(dataset_, LastNameKey(), serial_theory);
  ASSERT_TRUE(serial.ok());

  FaultInjector::Global().Arm(fault_points::kClusterSnm,
                              FaultSchedule::RandomRate(0.2, 7));
  ClusteringOptions parallel_options;
  parallel_options.num_clusters = 8;
  parallel_options.window = 10;
  ResilientOptions resilience;
  resilience.max_attempts_per_worker = 3;
  resilience.max_workers_per_task = 3;
  ParallelClustering parallel(3, parallel_options, resilience);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->pairs.size(), serial->pairs.size());
  serial->pairs.ForEach([&](TupleId a, TupleId b) {
    EXPECT_TRUE(result->pairs.Contains(a, b));
  });
}

TEST_F(FaultMatrixTest, ClusteringReportsPartialFailureWhenExhausted) {
  FaultInjector::Global().Arm(fault_points::kClusterSnm,
                              FaultSchedule::FailN(1u << 20));
  ClusteringOptions options;
  options.num_clusters = 4;
  ParallelClustering parallel(2, options);
  auto result = parallel.Run(dataset_, LastNameKey(), Factory());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPartialFailure);
}

// --- Checkpoint/resume. ---

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    dir_ = std::filesystem::temp_directory_path() /
           ("mergepurge_ckpt_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);

    GeneratorConfig config;
    config.num_records = 500;
    config.duplicate_selection_rate = 0.5;
    config.seed = 11;
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    dataset_ = std::move(db->dataset);
    ConditionEmployeeDataset(&dataset_);
  }

  void TearDown() override {
    FaultInjector::Global().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string dir() const { return dir_.string(); }

  std::filesystem::path dir_;
  Dataset dataset_;
  EmployeeTheory theory_;
};

TEST_F(CheckpointTest, ManifestRoundTrips) {
  std::filesystem::create_directories(dir_);
  PassManifest manifest;
  manifest.key_name = "last-name";
  manifest.key_digest = 0xabcdef;
  manifest.config_digest = 0x1234;
  manifest.dataset_digest = 0x5678;
  manifest.pairs_file = PairsFileName(0);
  manifest.complete = true;
  PairSet pairs;
  pairs.Add(1, 2);
  pairs.Add(3, 9);
  ASSERT_TRUE(WritePassCheckpoint(dir(), 0, manifest, pairs).ok());

  auto read = ReadPassManifest(dir(), 0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(ManifestMatches(*read, "last-name", 0xabcdef, 0x1234,
                              0x5678));
  EXPECT_FALSE(ManifestMatches(*read, "last-name", 0xabcdef, 0x1234,
                               0x9999));
  auto stored = LoadCheckpointedPairs(dir(), *read);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->size(), 2u);
  EXPECT_TRUE(stored->Contains(3, 9));

  // No stray temp files after the write-to-temp + rename protocol.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
  EXPECT_EQ(ReadPassManifest(dir(), 1).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CheckpointTest, SecondRunResumesEveryPass) {
  MultiPass multipass(MultiPass::Method::kSortedNeighborhood, 10);
  std::vector<KeySpec> keys = {LastNameKey(), FirstNameKey(), AddressKey()};

  auto first = multipass.Run(dataset_, keys, theory_, dir());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->passes_resumed, 0u);

  auto second = multipass.Run(dataset_, keys, theory_, dir());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->passes_resumed, 3u);
  for (const PassResult& pass : second->passes) EXPECT_TRUE(pass.resumed);
  EXPECT_EQ(second->component_of, first->component_of);
  EXPECT_EQ(second->union_pair_count, first->union_pair_count);
}

TEST_F(CheckpointTest, KilledBetweenPassesResumesToIdenticalResult) {
  MultiPass multipass(MultiPass::Method::kSortedNeighborhood, 10);
  std::vector<KeySpec> keys = {LastNameKey(), FirstNameKey(), AddressKey()};

  // Fault-free baseline (no checkpointing).
  auto baseline = multipass.Run(dataset_, keys, theory_);
  ASSERT_TRUE(baseline.ok());

  // "Kill" the run between passes: pass 0's checkpoint lands, then the
  // pairs write of pass 1 fails and the run aborts.
  FaultInjector::Global().Arm(fault_points::kPairsWrite,
                              FaultSchedule::FailN(1, /*skip=*/1));
  auto killed = multipass.Run(dataset_, keys, theory_, dir());
  ASSERT_FALSE(killed.ok());
  EXPECT_EQ(killed.status().code(), StatusCode::kInjectedFault);
  FaultInjector::Global().Reset();

  // Pass 0 must be checkpointed, pass 1 must not be.
  EXPECT_TRUE(ReadPassManifest(dir(), 0).ok());
  EXPECT_FALSE(ReadPassManifest(dir(), 1).ok());

  // Resume: pass 0 is loaded, passes 1-2 recomputed; the closure equals
  // the fault-free run exactly.
  auto resumed = multipass.Run(dataset_, keys, theory_, dir());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->passes_resumed, 1u);
  EXPECT_TRUE(resumed->passes[0].resumed);
  EXPECT_FALSE(resumed->passes[1].resumed);
  EXPECT_EQ(resumed->component_of, baseline->component_of);
  EXPECT_EQ(resumed->union_pair_count, baseline->union_pair_count);
}

TEST_F(CheckpointTest, ChangedParametersInvalidateCheckpoint) {
  std::vector<KeySpec> keys = {LastNameKey()};
  MultiPass w10(MultiPass::Method::kSortedNeighborhood, 10);
  ASSERT_TRUE(w10.Run(dataset_, keys, theory_, dir()).ok());

  // Different window -> config digest differs -> no resume.
  MultiPass w20(MultiPass::Method::kSortedNeighborhood, 20);
  auto rerun = w20.Run(dataset_, keys, theory_, dir());
  ASSERT_TRUE(rerun.ok());
  EXPECT_EQ(rerun->passes_resumed, 0u);

  // Different dataset -> dataset digest differs -> no resume.
  Dataset smaller(dataset_.schema());
  for (size_t t = 0; t + 1 < dataset_.size(); ++t) {
    smaller.Append(dataset_.record(static_cast<TupleId>(t)));
  }
  auto other = w20.Run(smaller, keys, theory_, dir());
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->passes_resumed, 0u);
}

TEST_F(CheckpointTest, EngineResumesToByteIdenticalOutput) {
  // The CLI-level guarantee behind `mergepurge --resume=DIR`: a run
  // killed between passes, restarted with the same flags, produces
  // byte-identical purged output to the never-killed run.
  MergePurgeOptions options;
  options.keys = {LastNameKey(), FirstNameKey(), AddressKey()};
  options.window = 10;

  MergePurgeEngine plain(options);
  auto baseline = plain.Run(dataset_, theory_);
  ASSERT_TRUE(baseline.ok());
  std::string baseline_csv = WriteCsvString(baseline->Purge(dataset_));

  options.checkpoint_dir = dir();
  MergePurgeEngine checkpointed(options);
  FaultInjector::Global().Arm(fault_points::kPairsWrite,
                              FaultSchedule::FailN(1, /*skip=*/1));
  ASSERT_FALSE(checkpointed.Run(dataset_, theory_).ok());
  FaultInjector::Global().Reset();

  auto resumed = checkpointed.Run(dataset_, theory_);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->detail.passes_resumed, 1u);
  EXPECT_EQ(WriteCsvString(resumed->Purge(dataset_)), baseline_csv);
}

TEST_F(CheckpointTest, SortSpillFaultAbortsExternalSortPass) {
  // The sort.spill point wires the external-sort spill path into the
  // same injector; a spill failure surfaces as a Status, not a crash.
  FaultInjector::Global().Arm(fault_points::kSortSpill,
                              FaultSchedule::FailOnce());
  SnmOptions options;
  options.window = 10;
  options.external_sort_memory = 64;
  options.temp_dir = dir();
  std::filesystem::create_directories(dir_);
  auto result =
      SortedNeighborhood(options).Run(dataset_, LastNameKey(), theory_);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInjectedFault);

  // Disarmed, the same configuration succeeds.
  FaultInjector::Global().Reset();
  auto retry =
      SortedNeighborhood(options).Run(dataset_, LastNameKey(), theory_);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

}  // namespace
}  // namespace mergepurge
