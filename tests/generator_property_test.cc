// Generator property sweeps: duplication-rate scaling, error-severity
// monotonicity (harder data -> lower recall), and the household mechanism
// that produces the paper's realistic false positives.

#include <gtest/gtest.h>

#include "core/multipass.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "keys/standard_keys.h"
#include "rules/employee_theory.h"
#include "text/normalize.h"

namespace mergepurge {
namespace {

class DuplicationRateTest : public ::testing::TestWithParam<double> {};

TEST_P(DuplicationRateTest, DuplicateCountTracksRate) {
  const double rate = GetParam();
  GeneratorConfig config;
  config.num_records = 3000;
  config.duplicate_selection_rate = rate;
  config.max_duplicates_per_record = 5;
  config.seed = 11;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());
  // E[duplicates] = rate * N * 3 (uniform 1..5).
  double expected =
      rate * static_cast<double>(config.num_records) * 3.0;
  double actual = static_cast<double>(db->truth.NumDuplicateTuples());
  if (expected == 0.0) {
    EXPECT_EQ(actual, 0.0);
  } else {
    EXPECT_NEAR(actual / expected, 1.0, 0.12) << "rate " << rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, DuplicationRateTest,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.9));

class SeverityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeverityTest, HarderDataLowersRecall) {
  EmployeeTheory theory;
  double previous = 101.0;
  for (double severity : {0.5, 1.5, 3.0}) {
    GeneratorConfig config;
    config.num_records = 1200;
    config.duplicate_selection_rate = 0.5;
    config.error_severity = severity;
    config.field_corruption_prob = 0.30 + 0.08 * severity;
    config.seed = GetParam();
    auto db = DatabaseGenerator(config).Generate();
    ASSERT_TRUE(db.ok());
    ConditionEmployeeDataset(&db->dataset);
    MultiPass mp(MultiPass::Method::kSortedNeighborhood, 10);
    auto result = mp.Run(db->dataset, StandardThreeKeys(), theory);
    ASSERT_TRUE(result.ok());
    double recall =
        EvaluateComponents(result->component_of, db->truth).recall_percent;
    EXPECT_LT(recall, previous + 2.0)
        << "severity " << severity << " should not be easier";
    previous = recall;
  }
  // The hardest setting is materially harder than the easiest.
  EXPECT_LT(previous, 90.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeverityTest, ::testing::Values(7, 8));

TEST(HouseholdTest, FamiliesShareSurnameAndAddress) {
  GeneratorConfig config;
  config.num_records = 4000;
  config.duplicate_selection_rate = 0.0;  // Originals only.
  config.family_prob = 0.5;               // Plenty of households.
  config.shuffle = false;                 // Families stay adjacent.
  config.seed = 13;
  auto db = DatabaseGenerator(config).Generate();
  ASSERT_TRUE(db.ok());

  size_t families = 0;
  for (size_t t = 1; t < db->dataset.size(); ++t) {
    const Record& prev = db->dataset.record(static_cast<TupleId>(t - 1));
    const Record& curr = db->dataset.record(static_cast<TupleId>(t));
    bool same_household =
        curr.field(employee::kLastName) == prev.field(employee::kLastName) &&
        curr.field(employee::kAddress) == prev.field(employee::kAddress) &&
        curr.field(employee::kZip) == prev.field(employee::kZip);
    if (!same_household) continue;
    ++families;
    // Family members are distinct people: own SSN, distinct origin.
    EXPECT_NE(curr.field(employee::kSsn), prev.field(employee::kSsn));
    EXPECT_FALSE(db->truth.IsTruePair(static_cast<TupleId>(t - 1),
                                      static_cast<TupleId>(t)));
  }
  // Expect roughly family_prob of records to be household members.
  EXPECT_GT(families, db->dataset.size() / 4);
}

TEST(HouseholdTest, FamiliesCauseFalsePositives) {
  EmployeeTheory theory;
  auto run = [&theory](double family_prob) {
    GeneratorConfig config;
    config.num_records = 2500;
    config.duplicate_selection_rate = 0.5;
    config.family_prob = family_prob;
    config.seed = 17;
    auto db = DatabaseGenerator(config).Generate();
    ConditionEmployeeDataset(&db->dataset);
    MultiPass mp(MultiPass::Method::kSortedNeighborhood, 10);
    auto result = mp.Run(db->dataset, StandardThreeKeys(), theory);
    return EvaluateComponents(result->component_of, db->truth)
        .false_positive_percent;
  };
  double without_families = run(0.0);
  double with_families = run(0.10);
  EXPECT_GT(with_families, without_families);
  // FP stays in the paper's "small" regime even with households.
  EXPECT_LT(with_families, 10.0);
}

}  // namespace
}  // namespace mergepurge
